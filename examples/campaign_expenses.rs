//! Campaign-expense analysis: the paper's EXPENSE workload (§8.4).
//!
//! Simulates the 2012 Obama-campaign expense ledger, flags the seven
//! $10M+ spike days, and lets MC (SUM is independent + anti-monotonic on
//! positive amounts) explain where the money went. Sweeping `c` shows
//! the paper's reported behavior: a 4-clause GMMB INC. explanation at
//! high `c` that widens as `c` drops. The sweep runs through one MC
//! session — the unit grid is built once and every previously scored
//! candidate re-scores from the cross-`c` influence cache.
//!
//! ```text
//! cargo run --release --example campaign_expenses
//! ```

use scorpion::data::expense::{self, ExpenseConfig};
use scorpion::prelude::*;
use std::sync::Arc;

fn main() {
    let ds = expense::generate(ExpenseConfig::default());

    let builder = Scorpion::on(ds.table.clone())
        .group_by(&[ds.group_attr()], Arc::new(Sum), ds.agg_attr())
        .expect("group by date");

    println!("Per-day SUM(disb_amt): typical vs spike days");
    let sums = builder.results();
    let typical: f64 =
        ds.holdout_days.iter().map(|&d| sums[d]).sum::<f64>() / ds.holdout_days.len() as f64;
    println!("  typical day  ≈ ${typical:>12.0}");
    for &d in &ds.outlier_days {
        println!("  {}    ${:>12.0}  ← outlier", builder.display_key(d), sums[d]);
    }

    let request = builder
        .outliers(ds.outlier_days.iter().map(|&d| (d, 1.0)))
        .holdouts(ds.holdout_days.iter().copied())
        .explain_attrs(ds.explain_attrs())
        .algorithm(Algorithm::BottomUp(McConfig::default()))
        .params(0.5, 1.0)
        .build()
        .expect("labels");
    let session = ScorpionSession::new(request).expect("session");

    println!("\nMC explanations by c (λ = 0.5):");
    let amounts = ds.table.num(ds.agg_attr()).expect("amounts");
    for c in [1.0, 0.5, 0.2, 0.1, 0.0] {
        let ex = session.run_with_c(c).expect("explain");
        let best = ex.best();
        let all_rows: Vec<u32> = (0..ds.table.len() as u32).collect();
        let sel = best.predicate.select(&ds.table, &all_rows).expect("select");
        let avg = if sel.is_empty() {
            0.0
        } else {
            sel.iter().map(|&r| amounts[r as usize]).sum::<f64>() / sel.len() as f64
        };
        println!(
            "  c = {c:<4} [{}] {} rows, avg ${avg:.0}, {} cache hits\n           {}",
            ex.diagnostics.algorithm,
            sel.len(),
            ex.diagnostics.cache_hits,
            best.predicate.display(&ds.table)
        );
    }
    println!("(planted explanation: GMMB INC. / DC / MEDIA BUY media purchases)");
}

//! Campaign-expense analysis: the paper's EXPENSE workload (§8.4).
//!
//! Simulates the 2012 Obama-campaign expense ledger, flags the seven
//! $10M+ spike days, and lets MC (SUM is independent + anti-monotonic on
//! positive amounts) explain where the money went. Sweeping `c` shows
//! the paper's reported behavior: a 4-clause GMMB INC. explanation at
//! high `c` that widens as `c` drops.
//!
//! ```text
//! cargo run --release --example campaign_expenses
//! ```

use scorpion::data::expense::{self, ExpenseConfig};
use scorpion::prelude::*;

fn main() {
    let ds = expense::generate(ExpenseConfig::default());
    let grouping = group_by(&ds.table, &[ds.group_attr()]).expect("group by date");
    let sums = aggregate_groups(&ds.table, &grouping, ds.agg_attr(), |v| v.iter().sum::<f64>())
        .expect("sum");

    println!("Per-day SUM(disb_amt): typical vs spike days");
    let typical: f64 =
        ds.holdout_days.iter().map(|&d| sums[d]).sum::<f64>() / ds.holdout_days.len() as f64;
    println!("  typical day  ≈ ${typical:>12.0}");
    for &d in &ds.outlier_days {
        println!("  {}    ${:>12.0}  ← outlier", grouping.display_key(&ds.table, d), sums[d]);
    }

    let query = LabeledQuery {
        table: &ds.table,
        grouping: &grouping,
        agg: &Sum,
        agg_attr: ds.agg_attr(),
        outliers: ds.outlier_days.iter().map(|&d| (d, 1.0)).collect(),
        holdouts: ds.holdout_days.clone(),
    };

    println!("\nMC explanations by c (λ = 0.5):");
    let amounts = ds.table.num(ds.agg_attr()).expect("amounts");
    for c in [1.0, 0.5, 0.2, 0.1, 0.0] {
        let cfg = ScorpionConfig {
            params: InfluenceParams { lambda: 0.5, c },
            explain_attrs: Some(ds.explain_attrs()),
            ..ScorpionConfig::default()
        };
        let ex = explain(&query, &cfg).expect("explain");
        let best = ex.best();
        let all_rows: Vec<u32> = (0..ds.table.len() as u32).collect();
        let sel = best.predicate.select(&ds.table, &all_rows).expect("select");
        let avg = if sel.is_empty() {
            0.0
        } else {
            sel.iter().map(|&r| amounts[r as usize]).sum::<f64>() / sel.len() as f64
        };
        println!(
            "  c = {c:<4} [{}] {} rows, avg ${avg:.0}\n           {}",
            ex.diagnostics.algorithm,
            sel.len(),
            best.predicate.display(&ds.table)
        );
    }
    println!("(planted explanation: GMMB INC. / DC / MEDIA BUY media purchases)");
}

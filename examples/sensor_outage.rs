//! Sensor outage analysis: the paper's two INTEL workloads (§8.4).
//!
//! Simulates the Intel Lab deployment with (1) a dying sensor and (2) a
//! battery-drained sensor, runs `STDDEV(temp) GROUP BY hour`, labels the
//! failure hours as outliers, and shows how the explanation sharpens as
//! `c` grows — from `sensorid = 15` to the voltage/light signature.
//!
//! ```text
//! cargo run --release --example sensor_outage
//! ```

use scorpion::data::intel::{self, IntelConfig};
use scorpion::prelude::*;

fn main() {
    for (title, cfg) in [
        ("Workload 1 — sensor 15 dying (temps > 100°C)", IntelConfig::workload1()),
        ("Workload 2 — sensor 18 losing battery power", IntelConfig::workload2()),
    ] {
        println!("== {title} ==");
        let mode = cfg.failure;
        let ds = intel::generate(cfg);
        let grouping = group_by(&ds.table, &[ds.group_attr()]).expect("group by hour");

        // Show the user's view: STDDEV(temp) per hour.
        let sds = aggregate_groups(&ds.table, &grouping, ds.agg_attr(), |v| {
            let n = v.len() as f64;
            let m = v.iter().sum::<f64>() / n;
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n).sqrt()
        })
        .expect("stddev");
        let peak = sds.iter().cloned().fold(0.0, f64::max);
        let normal = sds
            .iter()
            .enumerate()
            .filter(|(i, _)| !ds.outlier_hours.contains(i))
            .map(|(_, &v)| v)
            .fold(0.0, f64::max);
        println!("  STDDEV(temp): normal hours peak {normal:.1}, failure hours peak {peak:.1}");

        let query = LabeledQuery {
            table: &ds.table,
            grouping: &grouping,
            agg: &StdDev,
            agg_attr: ds.agg_attr(),
            outliers: ds.outlier_hours.iter().map(|&h| (h, 1.0)).collect(),
            holdouts: ds.holdout_hours.clone(),
        };

        for c in [0.1, 0.5, 1.0] {
            let cfg = ScorpionConfig {
                params: InfluenceParams { lambda: 0.5, c },
                explain_attrs: Some(ds.explain_attrs()),
                ..ScorpionConfig::default()
            };
            let ex = explain(&query, &cfg).expect("explain");
            println!(
                "  c = {c:<4} [{}] {}",
                ex.diagnostics.algorithm,
                ex.best().predicate.display(&ds.table)
            );
        }
        let expected = intel::failing_sensor(mode);
        println!("  (planted failure: sensor s{expected:02})\n");
    }
}

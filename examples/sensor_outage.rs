//! Sensor outage analysis: the paper's two INTEL workloads (§8.4).
//!
//! Simulates the Intel Lab deployment with (1) a dying sensor and (2) a
//! battery-drained sensor, runs `STDDEV(temp) GROUP BY hour`, labels the
//! failure hours as outliers, and shows how the explanation sharpens as
//! `c` grows — from `sensorid = 15` to the voltage/light signature. All
//! `c` values run through one session, so the DT partitioning happens
//! once per workload.
//!
//! ```text
//! cargo run --release --example sensor_outage
//! ```

use scorpion::data::intel::{self, IntelConfig};
use scorpion::prelude::*;
use std::sync::Arc;

fn main() {
    for (title, cfg) in [
        ("Workload 1 — sensor 15 dying (temps > 100°C)", IntelConfig::workload1()),
        ("Workload 2 — sensor 18 losing battery power", IntelConfig::workload2()),
    ] {
        println!("== {title} ==");
        let mode = cfg.failure;
        let ds = intel::generate(cfg);

        let builder = Scorpion::on(ds.table.clone())
            .group_by(&[ds.group_attr()], Arc::new(StdDev), ds.agg_attr())
            .expect("group by hour");

        // Show the user's view: STDDEV(temp) per hour.
        let sds = builder.results();
        let peak = sds.iter().cloned().fold(0.0, f64::max);
        let normal = sds
            .iter()
            .enumerate()
            .filter(|(i, _)| !ds.outlier_hours.contains(i))
            .map(|(_, &v)| v)
            .fold(0.0, f64::max);
        println!("  STDDEV(temp): normal hours peak {normal:.1}, failure hours peak {peak:.1}");

        let request = builder
            .outliers(ds.outlier_hours.iter().map(|&h| (h, 1.0)))
            .holdouts(ds.holdout_hours.iter().copied())
            .explain_attrs(ds.explain_attrs())
            .params(0.5, 0.5)
            .build()
            .expect("labels");

        let session = ScorpionSession::new(request).expect("session");
        for c in [0.1, 0.5, 1.0] {
            let ex = session.run_with_c(c).expect("explain");
            println!(
                "  c = {c:<4} [{}] {}",
                ex.diagnostics.algorithm,
                ex.best().predicate.display(&ds.table)
            );
        }
        let expected = intel::failing_sensor(mode);
        println!("  (planted failure: sensor s{expected:02})\n");
    }
}

//! Quickstart: the paper's running example (§2, Tables 1 & 2).
//!
//! Builds the 9-row sensor table, runs `SELECT avg(temp) GROUP BY time`
//! through the `Scorpion` builder, labels the 12PM and 1PM averages as
//! "too high" with 11AM as the hold-out, and asks Scorpion why — once
//! per `c`, through a session so only the first run pays for
//! partitioning.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scorpion::prelude::*;

fn main() {
    // Table 1 of the paper.
    let schema = Schema::new(vec![
        Field::disc("time"),
        Field::disc("sensorid"),
        Field::cont("voltage"),
        Field::cont("humidity"),
        Field::cont("temp"),
    ])
    .expect("schema");
    let rows: [(&str, &str, f64, f64, f64); 9] = [
        ("11AM", "1", 2.64, 0.4, 34.0),
        ("11AM", "2", 2.65, 0.5, 35.0),
        ("11AM", "3", 2.63, 0.4, 35.0),
        ("12PM", "1", 2.70, 0.3, 35.0),
        ("12PM", "2", 2.70, 0.5, 35.0),
        ("12PM", "3", 2.30, 0.4, 100.0),
        ("1PM", "1", 2.70, 0.3, 35.0),
        ("1PM", "2", 2.70, 0.5, 35.0),
        ("1PM", "3", 2.30, 0.5, 80.0),
    ];
    let mut b = TableBuilder::new(schema);
    for (t, s, v, h, temp) in rows {
        b.push_row(vec![t.into(), s.into(), v.into(), h.into(), temp.into()]).expect("row");
    }

    // Q1: SELECT avg(temp), time FROM sensors GROUP BY time.
    let builder = Scorpion::on(b.build())
        .sql("SELECT avg(temp), time FROM sensors GROUP BY time")
        .expect("query");
    println!("Query results (Table 2):");
    for (i, avg) in builder.results().iter().enumerate() {
        println!("  α{} {}  AVG(temp) = {avg:.1}", i + 1, builder.display_key(i));
    }

    // The analyst flags α2 (12PM) and α3 (1PM) as too high, α1 as normal.
    let request = builder
        .outlier(1, 1.0)
        .outlier(2, 1.0)
        .holdout(0)
        .params(0.5, 1.0)
        .build()
        .expect("labels");
    let table = request.table().clone();
    let grouping = request.grouping().clone();

    // One session: the DT partitioning runs once, each `c` re-scores.
    let session = ScorpionSession::new(request).expect("session");
    println!("\nScorpion explanations by c (λ = 0.5):");
    for c in [1.0, 0.5, 0.0] {
        let ex = session.run_with_c(c).expect("explain");
        let best = ex.best();
        println!(
            "  c = {c:<4}  [{}]  inf = {:+.3}  {}",
            ex.diagnostics.algorithm,
            best.influence,
            best.predicate.display(&table)
        );

        // Show the updated output with the explanation's tuples removed.
        let all_rows: Vec<u32> = (0..table.len() as u32).collect();
        let removed = best.predicate.select(&table, &all_rows).expect("select");
        let temps = table.num(4).expect("temp");
        print!("            after deletion:");
        for g in 0..grouping.len() {
            let kept: Vec<f64> = grouping
                .rows(g)
                .iter()
                .filter(|r| !removed.contains(r))
                .map(|&r| temps[r as usize])
                .collect();
            let avg = if kept.is_empty() {
                f64::NAN
            } else {
                kept.iter().sum::<f64>() / kept.len() as f64
            };
            print!("  {} → {avg:.1}", grouping.display_key(&table, g));
        }
        println!();
    }
}

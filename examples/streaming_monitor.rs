//! Continuous monitoring demo: ingest a live sensor feed, maintain a
//! sliding-window `STDDEV(temp) GROUP BY hour` series with mergeable
//! partial aggregates, auto-flag an injected dropout episode, and
//! re-explain it incrementally as the window slides.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```
//!
//! Expected outcome: around tick 30 the detector flags the hot hours,
//! the first (cold) explanation names the dying sensor `s07`, and every
//! subsequent slide re-explains **warm** — reusing the cached DT
//! partitions because the flagged hours' chunks are untouched.

use scorpion::agg::aggregate_by_name;
use scorpion::data::stream::{
    feed_schema, sensor_id, FeedConfig, SensorFeed, FEED_AGG_ATTR, FEED_GROUP_ATTR,
};
use scorpion::stream::{
    ContinuousConfig, ContinuousSession, DetectorConfig, SlidingWindow, StreamConfig,
};

fn main() {
    let feed_cfg = FeedConfig::demo();
    let bad_sensor = sensor_id(feed_cfg.episodes[0].sensor);
    let episode_start = feed_cfg.episodes[0].start;
    println!(
        "streaming monitor: {} sensors, dropout episode on {bad_sensor} from tick {episode_start}",
        feed_cfg.n_sensors
    );

    let mut feed = SensorFeed::new(feed_cfg);
    let window_cfg = StreamConfig::new(feed_schema(), FEED_GROUP_ATTR, FEED_AGG_ATTR, 24)
        .expect("stream config");
    let mut window = SlidingWindow::new(window_cfg, aggregate_by_name("stddev").unwrap());
    // Half-window warm-up plus a scale floor: a young window's series is
    // too short and too flat for robust statistics to mean anything.
    let session = ContinuousSession::new(ContinuousConfig {
        detector: DetectorConfig { min_groups: 12, min_scale: 0.05, ..Default::default() },
        ..Default::default()
    });

    let mut first_flagged_tick = None;
    let mut explained_correctly = false;
    let mut warm_runs = 0u64;

    for _ in 0..44 {
        let chunk = feed.next_chunk();
        let tick = chunk.tick;
        window.push_chunk(chunk.rows).expect("ingest");

        let Some(ex) = session.explain(&window).expect("explain") else {
            continue;
        };
        if first_flagged_tick.is_none() {
            first_flagged_tick = Some(tick);
            let flagged: Vec<String> =
                ex.outliers.iter().map(|&i| ex.grouping.display_key(&ex.table, i)).collect();
            println!(
                "\ntick {tick}: flagged {} hour(s) [{}] (center {:.2}, scale {:.2})",
                flagged.len(),
                flagged.join(", "),
                ex.detection.center,
                ex.detection.scale,
            );
        }
        if ex.warm {
            warm_runs += 1;
        }
        let best = ex.explanation.best();
        let rendered = best.predicate.display(&ex.table);
        println!(
            "tick {tick}: {} explanation in {:6.1} ms ({} partitions) → {rendered}",
            if ex.warm { "warm" } else { "cold" },
            ex.explanation.diagnostics.runtime.as_secs_f64() * 1e3,
            ex.explanation.diagnostics.partitions,
        );
        if rendered.contains(&bad_sensor) {
            explained_correctly = true;
        }
    }

    let stats = session.stats();
    println!("\nsession: {} cold run(s), {} warm run(s)", stats.cold_runs, stats.warm_runs);

    assert!(first_flagged_tick.is_some(), "the injected episode was never flagged");
    assert!(explained_correctly, "no explanation named the injected cause {bad_sensor}");
    assert!(warm_runs > 0, "window slides with untouched outlier chunks should re-explain warm");
    println!("ok: injected cause {bad_sensor} recovered, warm re-explanation exercised");
}

//! Synthetic playground: the SYNTH ground-truth workload (§8.1) with all
//! three algorithms and the `c` knob (§7).
//!
//! Generates SYNTH-2D-Hard, runs NAIVE / DT / MC over a grid of `c`
//! values, and prints each algorithm's predicate with precision / recall
//! / F-score against the planted outer cube — a miniature of Figures
//! 9–12. Each algorithm sweeps its `c` grid through one session, so the
//! expensive preparation phase runs once per algorithm.
//!
//! ```text
//! cargo run --release --example synthetic_playground
//! ```

use scorpion::data::synth::{self, SynthConfig};
use scorpion::eval::predicate_accuracy;
use scorpion::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let ds = synth::generate(SynthConfig::hard(2));
    println!(
        "SYNTH-2D-Hard: outer cube {}, inner cube {}",
        ds.truth_predicate(false).display(&ds.table),
        ds.truth_predicate(true).display(&ds.table),
    );

    let base = Scorpion::on(ds.table.clone())
        .group_by(&[ds.group_attr()], Arc::new(Sum), ds.agg_attr())
        .expect("group by Ad")
        .outliers(ds.outlier_groups.iter().map(|&g| (g, 1.0)))
        .holdouts(ds.holdout_groups.iter().copied())
        .explain_attrs(ds.dim_attrs())
        .params(0.5, 0.5)
        .build()
        .expect("labels");
    let outlier_rows: Vec<u32> =
        ds.outlier_groups.iter().flat_map(|&g| base.grouping().rows(g).iter().copied()).collect();

    let algos: [(&str, Algorithm); 3] = [
        ("DT", Algorithm::DecisionTree(DtConfig::default())),
        ("MC", Algorithm::BottomUp(McConfig::default())),
        (
            "NAIVE",
            Algorithm::Naive(NaiveConfig {
                time_budget: Some(Duration::from_secs(10)),
                ..NaiveConfig::default()
            }),
        ),
    ];

    println!(
        "\n{:<6} {:<5} {:>6} {:>6} {:>6} {:>8}  predicate",
        "algo", "c", "P", "R", "F", "time(s)"
    );
    for (name, algo) in &algos {
        let session = ScorpionSession::new(base.with_algorithm(algo.clone())).expect("session");
        for c in [0.0, 0.1, 0.3, 0.5] {
            let ex = session.run_with_c(c).expect("explain");
            let best = ex.best();
            let acc =
                predicate_accuracy(&ds.table, &best.predicate, &outlier_rows, ds.truth_rows(false));
            println!(
                "{:<6} {:<5} {:>6.2} {:>6.2} {:>6.2} {:>8.2}  {}",
                name,
                c,
                acc.precision,
                acc.recall,
                acc.f_score,
                ex.diagnostics.runtime.as_secs_f64(),
                best.predicate.display(&ds.table)
            );
        }
    }
}

//! SQL-driven exploration: the full front-to-back flow of the paper's
//! system (Figure 2) — load a CSV, run a SQL aggregate query, label
//! outliers, explain, and preview the repaired series.
//!
//! ```text
//! cargo run --release --example sql_explore
//! ```

use scorpion::prelude::*;
use scorpion::table::csv::parse_csv_with_schema;

fn main() {
    // A small CSV export of the paper's sensors table (in practice:
    // scorpion::table::csv::load_csv(path)).
    let csv = "\
time,sensorid,voltage,temp
11AM,1,2.64,34.0
11AM,2,2.65,35.0
11AM,3,2.63,35.0
12PM,1,2.70,35.0
12PM,2,2.70,35.0
12PM,3,2.30,100.0
1PM,1,2.70,35.0
1PM,2,2.70,35.0
1PM,3,2.30,80.0
";
    let schema = Schema::new(vec![
        Field::disc("time"),
        Field::disc("sensorid"),
        Field::cont("voltage"),
        Field::cont("temp"),
    ])
    .expect("schema");
    let table = parse_csv_with_schema(csv, schema).expect("csv");

    // The analyst's query, verbatim SQL.
    let sql = "SELECT avg(temp), time FROM sensors GROUP BY time";
    let builder = Scorpion::on(table).sql(sql).expect("query");
    println!("{sql}");
    for (i, v) in builder.results().iter().enumerate() {
        println!("  {}  ->  {v:.1}", builder.display_key(i));
    }

    // Auto-label the most deviant result(s); a UI would take clicks.
    let request = builder.auto_label(2).build().expect("labels");
    println!(
        "\nauto-labeled outliers: {:?}, hold-outs: {:?}",
        request.outliers(),
        request.holdouts()
    );

    let ex = request.explain().expect("explain");
    println!(
        "\nbest explanation [{}]: {}",
        ex.diagnostics.algorithm,
        ex.best().predicate.display(request.table())
    );

    // §4.1: plot the updated output with the explanation removed.
    let preview = ex
        .preview(
            request.table(),
            request.grouping(),
            request.aggregate().as_ref(),
            request.agg_attr(),
        )
        .expect("preview");
    println!("\nupdated series after deletion:");
    for (i, (before, after)) in preview.iter().enumerate() {
        println!(
            "  {}  {before:.1} -> {after:.1}",
            request.grouping().display_key(request.table(), i)
        );
    }
}

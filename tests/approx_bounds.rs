//! Honesty of the two-stage approximate influence search: across many
//! sampler seeds, every reported score stays within the reported error
//! bound of the exact score, and the top-1 predicate matches the exact
//! search whenever the bound is smaller than the exact top-1/top-2 gap.

use scorpion::prelude::*;
use scorpion_core::PrunedBatch;

/// SplitMix64 — deterministic per-seed data without a rand dependency.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform f64 in [0, 1) from a counter.
fn unit(seed: u64, i: u64) -> f64 {
    (mix(seed.wrapping_mul(0x0100_0000_01B3) ^ i) >> 11) as f64 / (1u64 << 53) as f64
}

/// Two labeled groups over one dimension `x ∈ [0, 100)`; the outlier
/// group carries a planted high-value band whose position moves with
/// the seed, plus noise so candidate influences are not degenerate.
fn planted(seed: u64, rows_per_group: usize) -> Table {
    let schema = Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
    let band_lo = 10.0 + (seed % 17) as f64 * 4.0; // within [10, 74)
    let mut b = TableBuilder::new(schema);
    for i in 0..rows_per_group {
        let x = unit(seed, i as u64) * 100.0;
        let noise = unit(seed, 1_000_000 + i as u64) * 8.0;
        let v = if (band_lo..band_lo + 6.0).contains(&x) { 70.0 + noise } else { 8.0 + noise };
        b.push_row(vec!["o".into(), Value::from(x), v.into()]).unwrap();
        let hx = unit(seed, 2_000_000 + i as u64) * 100.0;
        let hv = 8.0 + unit(seed, 3_000_000 + i as u64) * 8.0;
        b.push_row(vec!["h".into(), Value::from(hx), Value::from(hv)]).unwrap();
    }
    b.build()
}

/// 32 half-open bins over the x domain — the candidate set.
fn candidates() -> Vec<Predicate> {
    (0..32)
        .map(|i| {
            let lo = i as f64 * 100.0 / 32.0;
            Predicate::conjunction([Clause::range(1, lo, lo + 100.0 / 32.0)]).unwrap()
        })
        .collect()
}

fn scorer_for<'t>(t: &'t Table, g: &Grouping, agg: &'t dyn Aggregate) -> Scorer<'t> {
    let (o_idx, h_idx) = if g.display_key(t, 0) == "o" { (0, 1) } else { (1, 0) };
    Scorer::new(
        t,
        agg,
        2,
        vec![GroupSpec { rows: g.rows(o_idx).to_vec(), error: 1.0 }],
        vec![GroupSpec { rows: g.rows(h_idx).to_vec(), error: 1.0 }],
        InfluenceParams { lambda: 0.7, c: 0.5 },
        false,
    )
    .unwrap()
}

fn run_seed(seed: u64, agg: &dyn Aggregate) -> (Vec<f64>, PrunedBatch) {
    let t = planted(seed, 400);
    let g = group_by(&t, &[0]).unwrap();
    let preds = candidates();

    let exact_scorer = scorer_for(&t, &g, agg);
    let exact: Vec<f64> = exact_scorer
        .influence_batch(&preds, 1)
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("exact batch");

    let cfg = ApproxConfig { sample_rate: 0.2, min_rows: 16, seed, ..ApproxConfig::default() };
    let approx_scorer = scorer_for(&t, &g, agg).with_approx(cfg).expect("approx state");
    let batch = approx_scorer.influence_batch_pruned(&preds, 1, 2);
    (exact, batch)
}

/// Index of the largest element.
fn argmax(xs: &[f64]) -> usize {
    xs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap()
}

/// Across 100 seeds: (a) every pruned candidate's reported score is
/// within the reported error bound of its exact influence (the bound is
/// honest), and (b) whenever the bound is below the exact top-1/top-2
/// gap, the approximate top-1 is the exact top-1. With this problem
/// shape the pruning must also actually fire on most seeds — a bound
/// that is trivially honest because nothing was pruned proves nothing.
#[test]
fn bound_is_honest_and_top1_matches_across_seeds() {
    for agg in [&Sum as &dyn Aggregate, &Avg as &dyn Aggregate] {
        let mut total_pruned = 0u64;
        for seed in 0..100u64 {
            let (exact, batch) = run_seed(seed, agg);
            total_pruned += batch.pruned;
            let scores: Vec<f64> =
                batch.scores.into_iter().collect::<Result<_, _>>().expect("approx batch");

            // Honesty: observed error never exceeds the reported bound.
            let slack = 1e-7 * (1.0 + batch.error_bound.abs());
            for (i, (a, e)) in scores.iter().zip(&exact).enumerate() {
                assert!(
                    (a - e).abs() <= batch.error_bound + slack,
                    "[{} seed {seed}] candidate {i}: |{a} - {e}| > bound {}",
                    agg.name(),
                    batch.error_bound,
                );
            }

            // Top-1 parity whenever the bound cannot bridge the gap.
            let mut ranked = exact.clone();
            ranked.sort_by(|a, b| b.total_cmp(a));
            let gap = ranked[0] - ranked[1];
            if batch.error_bound < gap {
                assert_eq!(
                    argmax(&scores),
                    argmax(&exact),
                    "[{} seed {seed}] top-1 diverged with bound {} < gap {gap}",
                    agg.name(),
                    batch.error_bound,
                );
            }
        }
        assert!(
            total_pruned > 100,
            "[{}] pruning barely fired ({total_pruned} over 100 seeds) — \
             the honesty assertions were vacuous",
            agg.name()
        );
    }
}

/// MEDIAN has no `(count, sum)`-determined state: the approximate path
/// must fall back to exact scoring and say why.
#[test]
fn median_falls_back_to_exact() {
    let t = planted(7, 200);
    let g = group_by(&t, &[0]).unwrap();
    let preds = candidates();

    let exact: Vec<f64> = scorer_for(&t, &g, &Median)
        .influence_batch(&preds, 1)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap();
    let approx_scorer = scorer_for(&t, &g, &Median).with_approx(ApproxConfig::default()).unwrap();
    assert!(approx_scorer.approx_state().unwrap().fallback().is_some(), "median must fall back");
    let batch = approx_scorer.influence_batch_pruned(&preds, 1, 2);
    assert_eq!(batch.pruned, 0);
    assert_eq!(batch.error_bound, 0.0);
    let scores: Vec<f64> = batch.scores.into_iter().collect::<Result<_, _>>().unwrap();
    for (a, e) in scores.iter().zip(&exact) {
        assert_eq!(a.to_bits(), e.to_bits(), "fallback scoring must be bit-exact");
    }
}

//! Tier-1 property tests for the sketch-backed aggregate tier, driven
//! through the public crate surface: the approximate answers every
//! sketch-capable aggregate produces must stay inside its own
//! runtime-reported error bound against the exact `compute` oracle, and
//! the streaming laws (merge ≡ single-stream, retract ∘ insert ≡
//! identity) must hold at the aggregate level — not just inside the
//! sketch crate.

use proptest::prelude::*;
use scorpion::prelude::*;

/// `|est − exact| ≤ rel·|exact| + floor`, with a hair of slack for
/// values landing exactly on a log-bucket boundary.
fn within(est: f64, exact: f64, rel: f64) -> bool {
    (est - exact).abs() <= rel * exact.abs() * (1.0 + 1e-9) + 1e-9
}

/// Fills a fresh sketch partial from `values` via the aggregate's tier.
fn sketch_of(agg: &dyn SketchAggregate, values: &[f64]) -> SketchPartial {
    let mut p = agg.sketch_empty();
    for &v in values {
        p.insert(v);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every percentile the registry can name answers within the
    /// sketch's reported relative error of the exact rank statistic.
    #[test]
    fn percentile_sketch_tracks_exact(
        values in prop::collection::vec(0.5f64..1e5f64, 1..300),
        bp in 1u32..101u32,
    ) {
        let agg = Percentile::new(bp as f64 / 100.0).unwrap();
        let exact = agg.compute(&values);
        let tier = agg.sketch().expect("percentile has a sketch tier");
        let partial = sketch_of(tier, &values);
        let est = tier.sketch_finalize(&partial);
        let rel = partial.error_bound().magnitude();
        prop_assert!(within(est, exact, rel), "p{bp}: {est} vs {exact} (rel {rel})");
    }

    /// MEDIAN's tier is the q = 0.5 percentile: same bound, same law.
    #[test]
    fn median_sketch_tracks_exact(
        values in prop::collection::vec(-1e4f64..1e4f64, 1..300),
    ) {
        let agg = Median;
        let exact = agg.compute(&values);
        let tier = agg.sketch().expect("median has a sketch tier");
        let partial = sketch_of(tier, &values);
        let est = tier.sketch_finalize(&partial);
        let rel = partial.error_bound().magnitude();
        prop_assert!(within(est, exact, rel), "median {est} vs {exact} (rel {rel})");
    }

    /// HLL++ COUNT DISTINCT stays within 4σ of the exact distinct count
    /// (σ = 1.04/√m, reported by the partial's error bound).
    #[test]
    fn count_distinct_sketch_tracks_exact(
        values in prop::collection::vec(0u32..5_000u32, 1..2_000),
    ) {
        let agg = CountDistinct;
        let vals: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let exact = agg.compute(&vals);
        let tier = agg.sketch().expect("count_distinct has a sketch tier");
        let partial = sketch_of(tier, &vals);
        let est = tier.sketch_finalize(&partial);
        let sigma = partial.error_bound().magnitude();
        prop_assert!(
            (est - exact).abs() <= 4.0 * sigma * exact + 2.0,
            "distinct {est} vs {exact} (sigma {sigma})"
        );
    }

    /// Merge law at the aggregate level: splitting a stream across two
    /// partials and merging equals one single-stream partial.
    #[test]
    fn sketch_merge_is_single_stream(
        left in prop::collection::vec(0.1f64..1e4f64, 0..200),
        right in prop::collection::vec(0.1f64..1e4f64, 0..200),
    ) {
        for agg in [&Median as &dyn Aggregate, &CountDistinct] {
            let tier = agg.sketch().unwrap();
            let mut split = sketch_of(tier, &left);
            split.merge(&sketch_of(tier, &right)).unwrap();
            let mut whole: Vec<f64> = left.clone();
            whole.extend_from_slice(&right);
            let single = sketch_of(tier, &whole);
            let (a, b) = (tier.sketch_finalize(&split), tier.sketch_finalize(&single));
            prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// Retract law for the quantile family: merging a chunk in and
    /// retracting it again restores the original estimate exactly —
    /// the property the sliding window's eviction path relies on.
    #[test]
    fn quantile_retract_inverts_merge(
        base in prop::collection::vec(0.1f64..1e4f64, 1..200),
        chunk in prop::collection::vec(0.1f64..1e4f64, 1..200),
    ) {
        let tier = Median.sketch().unwrap();
        prop_assert!(tier.sketch_retractable());
        let mut acc = sketch_of(tier, &base);
        let before = tier.sketch_finalize(&acc);
        let delta = sketch_of(tier, &chunk);
        acc.merge(&delta).unwrap();
        let retracted = acc.retract(&delta).unwrap();
        prop_assert!(retracted, "quantile sketches retract exactly");
        let after = tier.sketch_finalize(&acc);
        prop_assert_eq!(before.to_bits(), after.to_bits(), "{} vs {}", before, after);
    }
}

/// HLL is honest about not being retractable — the window re-merges
/// instead, and the registry exposes the split.
#[test]
fn count_distinct_declares_no_retraction() {
    let tier = CountDistinct.sketch().unwrap();
    assert!(!tier.sketch_retractable());
    let mut p = tier.sketch_empty();
    p.insert(1.0);
    let d = tier.sketch_empty();
    assert!(!p.retract(&d).unwrap(), "Ok(false) signals re-merge");
}

/// The registry resolves the full sketch-aggregate vocabulary.
#[test]
fn registry_resolves_sketch_vocabulary() {
    for name in ["p50", "p90", "p99", "percentile:0.25", "count_distinct", "median"] {
        let agg = aggregate_by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
        assert!(agg.sketch().is_some(), "{name} must expose a sketch tier");
    }
}

//! Robustness and failure-injection tests: degenerate tables, extreme
//! parameters, adversarial values. Scorpion must degrade gracefully —
//! errors where the input is invalid, finite results everywhere else.

use scorpion::prelude::*;

fn two_group_table(rows: &[(&str, f64, f64)]) -> Table {
    let schema = Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
    let mut b = TableBuilder::new(schema);
    for &(g, x, v) in rows {
        b.push_row(vec![g.into(), x.into(), v.into()]).unwrap();
    }
    b.build()
}

fn explain_with(t: &Table, g: &Grouping, algo: Algorithm, c: f64) -> Explanation {
    let holdouts: Vec<usize> = if g.len() > 1 { vec![1] } else { vec![] };
    Scorpion::on(t.clone())
        .query(g.clone(), std::sync::Arc::new(Avg), 2)
        .unwrap()
        .outlier(0, 1.0)
        .holdouts(holdouts)
        .params(0.5, c)
        .algorithm(algo)
        .build()
        .unwrap()
        .explain()
        .unwrap()
}

#[test]
fn single_tuple_groups() {
    let t = two_group_table(&[("o", 1.0, 100.0), ("h", 1.0, 10.0)]);
    let g = group_by(&t, &[0]).unwrap();
    for algo in
        [Algorithm::DecisionTree(DtConfig::default()), Algorithm::Naive(NaiveConfig::default())]
    {
        let ex = explain_with(&t, &g, algo, 0.5);
        assert!(ex.best().influence.is_finite());
    }
}

#[test]
fn constant_attribute_values() {
    // Every tuple identical: no split can exist; result must be total.
    let rows: Vec<(&str, f64, f64)> =
        (0..40).map(|i| (if i % 2 == 0 { "o" } else { "h" }, 5.0, 7.0)).collect();
    let t = two_group_table(&rows);
    let g = group_by(&t, &[0]).unwrap();
    for algo in [
        Algorithm::DecisionTree(DtConfig::default()),
        Algorithm::BottomUp(McConfig::default()),
        Algorithm::Naive(NaiveConfig::default()),
    ] {
        let ex = explain_with(&t, &g, algo, 0.5);
        assert!(ex.best().influence.is_finite());
    }
}

#[test]
fn extreme_magnitudes_stay_finite() {
    let rows: Vec<(&str, f64, f64)> = (0..60)
        .map(|i| {
            let x = i as f64;
            let v = if i % 10 == 0 { 1e12 } else { 1e-12 };
            (if i % 2 == 0 { "o" } else { "h" }, x, v)
        })
        .collect();
    let t = two_group_table(&rows);
    let g = group_by(&t, &[0]).unwrap();
    let ex = explain_with(&t, &g, Algorithm::DecisionTree(DtConfig::default()), 1.0);
    assert!(ex.best().influence.is_finite());
}

#[test]
fn negative_values_route_away_from_mc() {
    let rows: Vec<(&str, f64, f64)> =
        (0..30).map(|i| (if i % 2 == 0 { "o" } else { "h" }, i as f64, -5.0 + i as f64)).collect();
    let t = two_group_table(&rows);
    let ex = Scorpion::on(t)
        .group_by(&[0], std::sync::Arc::new(Sum), 2)
        .unwrap()
        .outlier(0, 1.0)
        .holdout(1)
        .build()
        .unwrap()
        .explain()
        .unwrap();
    // Sum over negative data is not anti-monotonic → Auto must avoid MC.
    assert_eq!(ex.diagnostics.algorithm, "dt");
}

#[test]
fn c_extremes_zero_and_two() {
    let rows: Vec<(&str, f64, f64)> = (0..80)
        .map(|i| {
            let x = (i / 2) as f64;
            let hot = (10.0..20.0).contains(&x);
            let v = if hot && i % 2 == 0 { 50.0 } else { 1.0 };
            (if i % 2 == 0 { "o" } else { "h" }, x, v)
        })
        .collect();
    let t = two_group_table(&rows);
    let g = group_by(&t, &[0]).unwrap();
    for c in [0.0, 2.0] {
        let ex = explain_with(&t, &g, Algorithm::DecisionTree(DtConfig::default()), c);
        assert!(ex.best().influence.is_finite(), "c = {c}");
    }
}

#[test]
fn lambda_extremes() {
    let rows: Vec<(&str, f64, f64)> = (0..60)
        .map(|i| {
            let x = (i / 2) as f64;
            let v = if (10.0..20.0).contains(&x) && i % 2 == 0 { 50.0 } else { 1.0 };
            (if i % 2 == 0 { "o" } else { "h" }, x, v)
        })
        .collect();
    let t = two_group_table(&rows);
    let g = group_by(&t, &[0]).unwrap();
    for lambda in [0.0, 1.0] {
        let ex = Scorpion::on(t.clone())
            .query(g.clone(), std::sync::Arc::new(Avg), 2)
            .unwrap()
            .outlier(0, 1.0)
            .holdout(1)
            .params(lambda, 0.5)
            .build()
            .unwrap()
            .explain()
            .unwrap();
        assert!(ex.best().influence.is_finite(), "lambda = {lambda}");
    }
    // λ = 1 ignores hold-outs entirely: influence never negative for the
    // best predicate (the empty-effect predicate scores 0).
}

#[test]
fn many_groups_few_rows() {
    let schema = Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
    let mut b = TableBuilder::new(schema);
    for g in 0..50 {
        for i in 0..3 {
            let v = if g == 0 && i == 0 { 100.0 } else { 1.0 };
            b.push_row(vec![Value::from(format!("g{g}")), Value::from(i as f64), Value::from(v)])
                .unwrap();
        }
    }
    let t = b.build();
    let ex = Scorpion::on(t)
        .group_by(&[0], std::sync::Arc::new(Avg), 2)
        .unwrap()
        .outlier(0, 1.0)
        .holdouts(1..30)
        .build()
        .unwrap()
        .explain()
        .unwrap();
    assert!(ex.best().influence.is_finite());
}

#[test]
fn max_explain_attrs_drops_noise_without_losing_answer() {
    // x drives the anomaly; y, z are noise — feature selection down to a
    // single attribute must keep x.
    let schema = Schema::new(vec![
        Field::disc("g"),
        Field::cont("x"),
        Field::cont("y"),
        Field::cont("z"),
        Field::cont("v"),
    ])
    .unwrap();
    let mut b = TableBuilder::new(schema);
    for i in 0..300 {
        let x = (i as f64 * 7.3) % 100.0;
        let y = (i as f64 * 11.7) % 100.0;
        let z = (i as f64 * 3.1) % 100.0;
        let v = if (30.0..60.0).contains(&x) { 80.0 } else { 5.0 };
        b.push_row(vec![
            Value::from("o"),
            Value::from(x),
            Value::from(y),
            Value::from(z),
            Value::from(v),
        ])
        .unwrap();
        b.push_row(vec![
            Value::from("h"),
            Value::from(x),
            Value::from(y),
            Value::from(z),
            Value::from(5.0),
        ])
        .unwrap();
    }
    let t = b.build();
    let ex = Scorpion::on(t.clone())
        .group_by(&[0], std::sync::Arc::new(Avg), 4)
        .unwrap()
        .outlier(0, 1.0)
        .holdout(1)
        .params(0.5, 0.3)
        .max_explain_attrs(1)
        .build()
        .unwrap()
        .explain()
        .unwrap();
    let best = &ex.best().predicate;
    assert!(best.clause(1).is_some(), "x clause expected: {}", best.display(&t));
    assert!(best.clause(2).is_none() && best.clause(3).is_none());
}

//! Parity and warm-path guarantees of the `Explainer` engine API.
//!
//! Two families of checks, per algorithm (DT / MC / NAIVE):
//!
//! 1. **Parity** — the owned engine path
//!    (`ExplainRequest::prepare` + `PreparedPlan::run`) returns the
//!    same ranked predicates and influences as the borrowed
//!    `explain(&LabeledQuery, …)` path on planted workloads. The
//!    influence cache stores per-group `(n, Δ)` pairs and replays the
//!    exact scoring arithmetic, so equality is to machine precision.
//!
//! 2. **Warm runs** — a session's second run at a new `c` matches a
//!    cold run at that `c` (exactly for MC/NAIVE, whose searches are
//!    deterministic; at-least-as-good for DT, whose warm merge sees a
//!    superset of the cold inputs) while performing strictly fewer
//!    scorer calls — the §8.3.3 cache generalized to every engine.

use scorpion::prelude::*;
use std::sync::Arc;

/// Planted workload: outlier group "o" runs hot for x ∈ [20, 60); the
/// hold-out group "h" is uniform.
fn planted(n: usize) -> Table {
    let schema = Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
    let mut b = TableBuilder::new(schema);
    for i in 0..n {
        let x = (i as f64 * 7.3) % 100.0;
        let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
        b.push_row(vec!["o".into(), Value::from(x), v.into()]).unwrap();
        b.push_row(vec!["h".into(), Value::from(x), Value::from(10.0)]).unwrap();
    }
    b.build()
}

fn algorithms() -> Vec<(&'static str, Algorithm, Arc<dyn Aggregate>)> {
    vec![
        (
            "dt",
            Algorithm::DecisionTree(DtConfig { sampling: None, ..DtConfig::default() }),
            Arc::new(Avg),
        ),
        ("mc", Algorithm::BottomUp(McConfig::default()), Arc::new(Sum)),
        (
            "naive",
            Algorithm::Naive(NaiveConfig { time_budget: None, ..NaiveConfig::default() }),
            Arc::new(Sum),
        ),
    ]
}

fn request(t: &Table, algorithm: Algorithm, agg: Arc<dyn Aggregate>, c: f64) -> ExplainRequest {
    Scorpion::on(t.clone())
        .group_by(&[0], agg, 2)
        .unwrap()
        .outlier(0, 1.0)
        .holdout(1)
        .params(0.5, c)
        .algorithm(algorithm)
        .build()
        .unwrap()
}

fn assert_same_results(name: &str, a: &Explanation, b: &Explanation) {
    assert_eq!(
        a.predicates.len(),
        b.predicates.len(),
        "[{name}] result counts differ: {} vs {}",
        a.predicates.len(),
        b.predicates.len()
    );
    for (i, (x, y)) in a.predicates.iter().zip(&b.predicates).enumerate() {
        assert_eq!(x.predicate, y.predicate, "[{name}] predicate #{i} differs");
        assert!(
            (x.influence - y.influence).abs() <= 1e-12 * x.influence.abs().max(1.0),
            "[{name}] influence #{i}: {} vs {}",
            x.influence,
            y.influence
        );
    }
}

/// The engine path must reproduce the borrowed `explain()` path exactly.
#[test]
fn engine_api_matches_explain_for_all_algorithms() {
    let t = planted(300);
    let g = group_by(&t, &[0]).unwrap();
    for (name, algo, agg) in algorithms() {
        let c = 0.4;
        let old = {
            let q = LabeledQuery {
                table: &t,
                grouping: &g,
                agg: agg.as_ref(),
                agg_attr: 2,
                outliers: vec![(0, 1.0)],
                holdouts: vec![1],
            };
            let cfg = ScorpionConfig {
                params: InfluenceParams { lambda: 0.5, c },
                algorithm: algo.clone(),
                ..ScorpionConfig::default()
            };
            explain(&q, &cfg).unwrap()
        };
        let new = request(&t, algo, agg, c).explain().unwrap();
        assert_eq!(old.diagnostics.algorithm, new.diagnostics.algorithm);
        assert_same_results(name, &old, &new);
    }
}

/// Acceptance: the session accepts every engine, and a warm second run
/// at a new `c` performs strictly fewer scorer calls than the cold run
/// — for DT **and** MC **and** NAIVE.
#[test]
fn warm_second_run_is_strictly_cheaper_for_every_engine() {
    let t = planted(300);
    for (name, algo, agg) in algorithms() {
        let session = ScorpionSession::new(request(&t, algo, agg, 0.5)).unwrap();
        assert_eq!(session.algorithm(), name);
        let cold = session.run_with_c(0.5).unwrap();
        let warm = session.run_with_c(0.3).unwrap();
        assert!(
            warm.diagnostics.scorer_calls < cold.diagnostics.scorer_calls,
            "[{name}] warm {} vs cold {} scorer calls",
            warm.diagnostics.scorer_calls,
            cold.diagnostics.scorer_calls
        );
        assert!(
            warm.diagnostics.cache_hits > 0,
            "[{name}] warm run should hit the influence cache"
        );
    }
}

/// A warm run at a new `c` must match a cold run at that `c`: exactly
/// for MC and NAIVE (deterministic searches over identical prepared
/// artifacts and bit-identical cached scores), and at-least-as-good for
/// DT (the warm merge sees a superset of the cold run's inputs).
#[test]
fn warm_run_matches_cold_run_at_new_c() {
    let t = planted(300);
    for (name, algo, agg) in algorithms() {
        let warm_session =
            ScorpionSession::new(request(&t, algo.clone(), agg.clone(), 0.5)).unwrap();
        let _ = warm_session.run_with_c(0.5).unwrap();
        let warm = warm_session.run_with_c(0.3).unwrap();

        let cold_session = ScorpionSession::new(request(&t, algo, agg, 0.5)).unwrap();
        let cold = cold_session.run_with_c(0.3).unwrap();

        if name == "dt" {
            assert!(
                warm.best().influence >= cold.best().influence - 1e-9,
                "[dt] warm merge regressed: {} vs {}",
                warm.best().influence,
                cold.best().influence
            );
        } else {
            assert_same_results(name, &warm, &cold);
        }
    }
}

/// MC and NAIVE sessions work through explicit engines too (not only
/// via the request's algorithm field).
#[test]
fn explicit_engine_override() {
    let t = planted(200);
    let req = request(&t, Algorithm::Auto, Arc::new(Sum), 0.5);
    let session =
        ScorpionSession::with_engine(req, Box::new(McEngine::new(McConfig::default()))).unwrap();
    assert_eq!(session.algorithm(), "mc");
    let ex = session.run_default().unwrap();
    assert_eq!(ex.diagnostics.algorithm, "mc");
    assert!(ex.best().influence.is_finite());
}

/// The server substrate under concurrency: N threads hammering one
/// shared `TableRegistry`/`PlanCache` must produce bit-exact results vs
/// the single-threaded borrowed `explain()` path — the shared sessions,
/// shared influence caches, and racing plan builders may never change
/// an answer. (DT is excluded from the bit-exact check: its warm merge
/// legitimately sees a superset of the cold inputs across `c` values;
/// it is asserted at-least-as-good instead.)
#[test]
fn concurrent_shared_plan_cache_matches_borrowed_explain() {
    use scorpion::server::{PlanCache, PlanEntry, PlanKey, TableRegistry};

    let t = planted(300);
    let g = group_by(&t, &[0]).unwrap();
    let cs = [0.5, 0.3, 0.7];

    // Single-threaded reference: the borrowed explain() path per (algo, c).
    let mut reference = std::collections::HashMap::new();
    for (name, algo, agg) in algorithms() {
        for &c in &cs {
            let q = LabeledQuery {
                table: &t,
                grouping: &g,
                agg: agg.as_ref(),
                agg_attr: 2,
                outliers: vec![(0, 1.0)],
                holdouts: vec![1],
            };
            let cfg = ScorpionConfig {
                params: InfluenceParams { lambda: 0.5, c },
                algorithm: algo.clone(),
                ..ScorpionConfig::default()
            };
            reference.insert((name, c.to_bits()), explain(&q, &cfg).unwrap());
        }
    }

    let registry = TableRegistry::new();
    registry.insert("planted", t.clone());
    let plans = PlanCache::with_capacity(64);
    let algos = algorithms();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|worker| {
                let registry = &registry;
                let plans = &plans;
                let algos = &algos;
                let reference = &reference;
                s.spawn(move || {
                    // Each worker walks the (algo, c) grid in a
                    // different rotation so hits and misses interleave.
                    for step in 0..algos.len() * cs.len() {
                        let idx = (step + worker) % (algos.len() * cs.len());
                        let (name, algo, agg) = &algos[idx / cs.len()];
                        let c = cs[idx % cs.len()];
                        let entry = registry.get("planted").expect("registered");
                        let key = PlanKey::new(
                            &entry,
                            "planted",
                            "group_by g avg v",
                            "o:[0]|h:[1]",
                            name,
                        );
                        let (plan, _hit) = plans
                            .get_or_create(&key, || -> Result<PlanEntry, ScorpionError> {
                                let builder = Scorpion::on(entry.table.clone())
                                    .group_by(&[0], agg.clone(), 2)?
                                    .outlier(0, 1.0)
                                    .holdout(1)
                                    .params(0.5, 0.5)
                                    .algorithm(algo.clone());
                                Ok(PlanEntry {
                                    session: ScorpionSession::new(builder.build()?)?,
                                    display_keys: Vec::new(),
                                    results: Vec::new(),
                                })
                            })
                            .unwrap();
                        let ex = plan.session.run(InfluenceParams { lambda: 0.5, c }).unwrap();
                        let want = &reference[&(*name, c.to_bits())];
                        if *name == "dt" {
                            assert!(
                                ex.best().influence >= want.best().influence - 1e-9,
                                "[dt@{c}] warm merge regressed: {} vs {}",
                                ex.best().influence,
                                want.best().influence
                            );
                        } else {
                            assert_same_results(name, want, &ex);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    });

    let stats = plans.stats();
    // One resident plan per distinct key; racing builders may each
    // count a miss for the same key (the first insert wins and the
    // losers adopt it), so misses can exceed residency, never
    // undershoot it.
    assert_eq!(stats.entries, algos.len(), "one plan per algorithm: {stats:?}");
    assert!(stats.misses as usize >= stats.entries, "{stats:?}");
    assert!(stats.hits > 0, "concurrent workers must share warm plans: {stats:?}");

    // Acceptance: a warm repeat at a fresh c runs through the shared
    // influence cache — cache hits in its Diagnostics, cheaper than its
    // own cold run.
    for (name, _, _) in &algos {
        let entry = registry.get("planted").unwrap();
        let key = PlanKey::new(&entry, "planted", "group_by g avg v", "o:[0]|h:[1]", name);
        let (plan, hit) = plans
            .get_or_create(&key, || -> Result<PlanEntry, ScorpionError> {
                panic!("plan for {name} must already be cached")
            })
            .unwrap();
        assert!(hit);
        let warm = plan.session.run(InfluenceParams { lambda: 0.5, c: 0.9 }).unwrap();
        assert!(warm.diagnostics.cache_hits > 0, "[{name}] warm repeat missed the cache");
    }
}

/// The influence cache reproduces scores bit-for-bit: re-running at the
/// *same* parameters from a warm plan returns identical results with
/// zero additional partition re-scoring cost for NAIVE (every candidate
/// hits the cache).
#[test]
fn naive_rerun_at_same_c_is_pure_cache() {
    let t = planted(200);
    let req = request(
        &t,
        Algorithm::Naive(NaiveConfig { time_budget: None, ..NaiveConfig::default() }),
        Arc::new(Sum),
        0.5,
    );
    let plan = req.prepare().unwrap();
    let first = plan.run(&req.params()).unwrap();
    let second = plan.run(&req.params()).unwrap();
    assert_same_results("naive", &first, &second);
    assert_eq!(
        second.diagnostics.scorer_calls, 0,
        "a completed NAIVE enumeration re-run must be answered entirely from cache"
    );
    assert_eq!(second.diagnostics.cache_hits, second.diagnostics.candidates);
}

//! End-to-end tests across crates: all three evaluation workloads,
//! algorithm equivalences, and the caching session.

use scorpion::data::expense::{self, ExpenseConfig};
use scorpion::data::intel::{self, IntelConfig};
use scorpion::data::synth::{self, SynthConfig};
use scorpion::eval::predicate_accuracy;
use scorpion::prelude::*;
use std::time::Duration;

fn synth_query<'a>(ds: &'a synth::SynthDataset, grouping: &'a Grouping) -> LabeledQuery<'a> {
    LabeledQuery {
        table: &ds.table,
        grouping,
        agg: &Sum,
        agg_attr: ds.agg_attr(),
        outliers: ds.outlier_groups.iter().map(|&g| (g, 1.0)).collect(),
        holdouts: ds.holdout_groups.clone(),
    }
}

fn outlier_union(ds: &synth::SynthDataset, grouping: &Grouping) -> Vec<u32> {
    ds.outlier_groups.iter().flat_map(|&g| grouping.rows(g).iter().copied()).collect()
}

#[test]
fn synth_easy_all_algorithms_beat_random() {
    let ds = synth::generate(SynthConfig::easy(2).with_tuples_per_group(400));
    let grouping = group_by(&ds.table, &[0]).unwrap();
    let q = synth_query(&ds, &grouping);
    let rows = outlier_union(&ds, &grouping);
    // A random quarter-box baseline has F ≈ 0.25 against the outer cube.
    for algo in [
        Algorithm::DecisionTree(DtConfig::default()),
        Algorithm::BottomUp(McConfig::default()),
        Algorithm::Naive(NaiveConfig {
            time_budget: Some(Duration::from_secs(10)),
            ..NaiveConfig::default()
        }),
    ] {
        let cfg = ScorpionConfig {
            params: InfluenceParams { lambda: 0.5, c: 0.3 },
            algorithm: algo,
            explain_attrs: Some(ds.dim_attrs()),
            force_blackbox: false,
            max_explain_attrs: None,
            approx: None,
        };
        let ex = explain(&q, &cfg).unwrap();
        let acc = predicate_accuracy(&ds.table, &ex.best().predicate, &rows, ds.truth_rows(false));
        assert!(
            acc.f_score > 0.4,
            "[{}] F = {} for {}",
            ex.diagnostics.algorithm,
            acc.f_score,
            ex.best().predicate.display(&ds.table)
        );
    }
}

#[test]
fn auto_selection_picks_mc_for_synth() {
    let ds = synth::generate(SynthConfig::easy(2).with_tuples_per_group(200));
    let grouping = group_by(&ds.table, &[0]).unwrap();
    let q = synth_query(&ds, &grouping);
    // SUM over non-negative-ish values... SYNTH Av values can dip below 0
    // (N(10,10)), so Auto must NOT pick MC blindly; just check it runs.
    let ex = explain(&q, &ScorpionConfig::default()).unwrap();
    assert!(["mc", "dt"].contains(&ex.diagnostics.algorithm));
    assert!(ex.best().influence.is_finite());
}

#[test]
fn blackbox_and_incremental_agree_end_to_end() {
    let ds = synth::generate(SynthConfig::easy(2).with_tuples_per_group(150));
    let grouping = group_by(&ds.table, &[0]).unwrap();
    let q = synth_query(&ds, &grouping);
    let mk = |blackbox: bool| ScorpionConfig {
        params: InfluenceParams { lambda: 0.5, c: 0.2 },
        algorithm: Algorithm::DecisionTree(DtConfig { sampling: None, ..DtConfig::default() }),
        explain_attrs: Some(ds.dim_attrs()),
        force_blackbox: blackbox,
        max_explain_attrs: None,
        approx: None,
    };
    let fast = explain(&q, &mk(false)).unwrap();
    let slow = explain(&q, &mk(true)).unwrap();
    // The two paths may break floating-point ties differently at split
    // boundaries, so require equivalent results rather than identical
    // trees: near-equal influence and heavily overlapping selections.
    let rel = (fast.best().influence - slow.best().influence).abs()
        / fast.best().influence.abs().max(1.0);
    assert!(
        rel < 0.05,
        "influence mismatch: {} vs {}",
        fast.best().influence,
        slow.best().influence
    );
    let rows = outlier_union(&ds, &grouping);
    let a: std::collections::HashSet<u32> =
        fast.best().predicate.select(&ds.table, &rows).unwrap().into_iter().collect();
    let b: std::collections::HashSet<u32> =
        slow.best().predicate.select(&ds.table, &rows).unwrap().into_iter().collect();
    let jaccard = a.intersection(&b).count() as f64 / a.union(&b).count().max(1) as f64;
    assert!(jaccard > 0.8, "selection overlap too low: {jaccard}");
}

#[test]
fn intel_workload1_names_sensor15() {
    let ds = intel::generate(IntelConfig::workload1());
    let grouping = group_by(&ds.table, &[0]).unwrap();
    let q = LabeledQuery {
        table: &ds.table,
        grouping: &grouping,
        agg: &StdDev,
        agg_attr: ds.agg_attr(),
        outliers: ds.outlier_hours.iter().map(|&h| (h, 1.0)).collect(),
        holdouts: ds.holdout_hours.clone(),
    };
    let cfg = ScorpionConfig {
        params: InfluenceParams { lambda: 0.5, c: 1.0 },
        explain_attrs: Some(ds.explain_attrs()),
        ..ScorpionConfig::default()
    };
    let ex = explain(&q, &cfg).unwrap();
    assert_eq!(ex.diagnostics.algorithm, "dt"); // STDDEV → DT via Auto
    let best = &ex.best().predicate;
    let s15 = ds.table.cat(1).unwrap().code_of("s15").unwrap();
    let clause = best.clause(1).expect("sensorid clause");
    assert!(clause.matches_code(s15), "got {}", best.display(&ds.table));
}

#[test]
fn expense_workload_recovers_gmmb() {
    let ds = expense::generate(ExpenseConfig { days: 90, ..ExpenseConfig::default() });
    let grouping = group_by(&ds.table, &[0]).unwrap();
    let q = LabeledQuery {
        table: &ds.table,
        grouping: &grouping,
        agg: &Sum,
        agg_attr: ds.agg_attr(),
        outliers: ds.outlier_days.iter().map(|&d| (d, 1.0)).collect(),
        holdouts: ds.holdout_days.clone(),
    };
    let cfg = ScorpionConfig {
        params: InfluenceParams { lambda: 0.5, c: 0.5 },
        explain_attrs: Some(ds.explain_attrs()),
        ..ScorpionConfig::default()
    };
    let ex = explain(&q, &cfg).unwrap();
    assert_eq!(ex.diagnostics.algorithm, "mc"); // SUM over positive amounts
    let rows: Vec<u32> =
        ds.outlier_days.iter().flat_map(|&d| grouping.rows(d).iter().copied()).collect();
    let acc = predicate_accuracy(&ds.table, &ex.best().predicate, &rows, &ds.big_expense_rows);
    assert!(
        acc.f_score > 0.5,
        "F = {} for {}",
        acc.f_score,
        ex.best().predicate.display(&ds.table)
    );
}

#[test]
fn session_caching_is_consistent_across_c() {
    let ds = synth::generate(SynthConfig::easy(2).with_tuples_per_group(300));
    let dim_attrs = ds.dim_attrs();
    let agg_attr = ds.agg_attr();
    let table = ds.table.clone();
    let req = Scorpion::on(table.clone())
        .group_by(&[0], std::sync::Arc::new(Avg), agg_attr)
        .unwrap()
        .outliers(ds.outlier_groups.iter().map(|&g| (g, 1.0)))
        .holdouts(ds.holdout_groups.iter().copied())
        .explain_attrs(dim_attrs)
        .params(0.5, 0.5)
        .algorithm(Algorithm::DecisionTree(DtConfig { sampling: None, ..DtConfig::default() }))
        .build()
        .unwrap();
    let session = ScorpionSession::new(req).unwrap();
    let mut last_n = usize::MAX;
    let all: Vec<u32> = (0..table.len() as u32).collect();
    for c in [0.5, 0.3, 0.1] {
        let ex = session.run_with_c(c).unwrap();
        let n = ex.best().predicate.count(&table, &all).unwrap();
        // Lower c should never be *more* selective by an order of
        // magnitude; sanity: selections stay non-trivial and influence
        // finite.
        assert!(ex.best().influence.is_finite());
        assert!(n > 0);
        last_n = last_n.min(n);
    }
    assert!(session.is_warm());
}

#[test]
fn median_falls_back_to_naive_blackbox() {
    let ds = synth::generate(SynthConfig::easy(2).with_tuples_per_group(60));
    let grouping = group_by(&ds.table, &[0]).unwrap();
    let q = LabeledQuery {
        table: &ds.table,
        grouping: &grouping,
        agg: &Median,
        agg_attr: ds.agg_attr(),
        outliers: ds.outlier_groups.iter().map(|&g| (g, 1.0)).collect(),
        holdouts: ds.holdout_groups.clone(),
    };
    let cfg = ScorpionConfig {
        params: InfluenceParams { lambda: 0.5, c: 0.5 },
        explain_attrs: Some(ds.dim_attrs()),
        ..ScorpionConfig::default()
    };
    let ex = explain(&q, &cfg).unwrap();
    assert_eq!(ex.diagnostics.algorithm, "naive");
    assert!(ex.best().influence.is_finite());
}

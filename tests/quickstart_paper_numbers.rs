//! End-to-end check of the paper's running example (§2–§3): Tables 1–2,
//! the hand-computed influences, and the final explanation.

use scorpion::prelude::*;

fn sensors() -> Table {
    let schema = Schema::new(vec![
        Field::disc("time"),
        Field::disc("sensorid"),
        Field::cont("voltage"),
        Field::cont("humidity"),
        Field::cont("temp"),
    ])
    .unwrap();
    let rows: [(&str, &str, f64, f64, f64); 9] = [
        ("11AM", "1", 2.64, 0.4, 34.0),
        ("11AM", "2", 2.65, 0.5, 35.0),
        ("11AM", "3", 2.63, 0.4, 35.0),
        ("12PM", "1", 2.70, 0.3, 35.0),
        ("12PM", "2", 2.70, 0.5, 35.0),
        ("12PM", "3", 2.30, 0.4, 100.0),
        ("1PM", "1", 2.70, 0.3, 35.0),
        ("1PM", "2", 2.70, 0.5, 35.0),
        ("1PM", "3", 2.30, 0.5, 80.0),
    ];
    let mut b = TableBuilder::new(schema);
    for (t, s, v, h, temp) in rows {
        b.push_row(vec![t.into(), s.into(), v.into(), h.into(), temp.into()]).unwrap();
    }
    b.build()
}

#[test]
fn table2_aggregates() {
    let t = sensors();
    let g = group_by(&t, &[0]).unwrap();
    let avgs = aggregate_groups(&t, &g, 4, |v| v.iter().sum::<f64>() / v.len() as f64).unwrap();
    assert!((avgs[0] - 34.6667).abs() < 1e-3); // α1
    assert!((avgs[1] - 56.6667).abs() < 1e-3); // α2
    assert!((avgs[2] - 50.0).abs() < 1e-9); // α3
}

#[test]
fn section32_tuple_influences() {
    // §3.2: removing T4 from g_α2 yields inf = (56.6 − 67.5)/1 = −10.8;
    // removing T6 yields +21.6.
    let t = sensors();
    let g = group_by(&t, &[0]).unwrap();
    let scorer = Scorer::new(
        &t,
        &Avg,
        4,
        vec![GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 }],
        vec![],
        InfluenceParams { lambda: 1.0, c: 1.0 },
        false,
    )
    .unwrap();
    let infs = scorer.outlier_tuple_influences(0);
    assert!((infs[0] + 10.8333).abs() < 1e-3, "T4: {}", infs[0]);
    assert!((infs[1] + 10.8333).abs() < 1e-3, "T5: {}", infs[1]);
    assert!((infs[2] - 21.6667).abs() < 1e-3, "T6: {}", infs[2]);
}

#[test]
fn explanation_targets_sensor3_low_voltage() {
    let t = sensors();
    // One session across the c sweep: partitioning runs once.
    let session = ScorpionSession::new(
        Scorpion::on(t.clone())
            .sql("SELECT avg(temp), time FROM sensors GROUP BY time")
            .unwrap()
            .outlier(1, 1.0)
            .outlier(2, 1.0)
            .holdout(0)
            .build()
            .unwrap(),
    )
    .unwrap();
    for c in [0.0, 0.5, 1.0] {
        let ex = session.run_with_c(c).unwrap();
        let best = &ex.best().predicate;
        // The anomalous readings are rows 5 (T6) and 8 (T9); a correct
        // explanation must select them and spare the hold-out's normal
        // rows 0–2 of sensors 1 and 2.
        let all: Vec<u32> = (0..9).collect();
        let sel = best.select(&t, &all).unwrap();
        assert!(sel.contains(&5), "c={c}: T6 missing from {sel:?}");
        assert!(sel.contains(&8), "c={c}: T9 missing from {sel:?}");
        assert!(!sel.contains(&0) && !sel.contains(&1), "c={c}: hold-out rows hit");
    }
}

#[test]
fn error_vector_too_low_prefers_cool_readings() {
    // §3.2: with v = <−1> the cool readings become the influential ones.
    let t = sensors();
    let req = Scorpion::on(t.clone())
        .group_by(&[0], std::sync::Arc::new(Avg), 4)
        .unwrap()
        .outlier(1, -1.0)
        .params(1.0, 1.0)
        .build()
        .unwrap();
    let ex = req.explain().unwrap();
    let sel = ex.best().predicate.select(&t, &[3, 4, 5]).unwrap();
    // T6 (row 5, the 100° reading) must NOT be selected: deleting it
    // lowers the average further.
    assert!(!sel.contains(&5), "100° reading selected: {sel:?}");
    assert!(!sel.is_empty());
}

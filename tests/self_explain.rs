//! E2E self-explain: the service explains its own latency outliers.
//!
//! Latency is injected into one (endpoint, algorithm) cell — slow
//! `explain` requests running the `naive` algorithm on a plan-cache
//! miss, interleaved with fast `dt` hits — by recording events straight
//! into the process-wide flight recorder (the test hook; the ring has
//! no idea whether an event came from a socket). Then both surfaces
//! must name the planted cell's attributes:
//!
//! * `GET /debug/slow` over the live ring, and
//! * `scorpion audit --telemetry-csv` over the
//!   `GET /debug/telemetry?format=csv` dump of the same ring.

use scorpion::obs::{telemetry, CacheHit, TelemetryEvent};
use scorpion::server::{client, Json, Server, ServerConfig};
use std::process::Command;

/// 64 requests: fast (dt, plan-cache hit, ~2ms) throughout, with a
/// burst over the last two 8-event slices where every other request is
/// the planted slow cell (naive, plan-cache miss, ~80ms).
fn planted_events() -> Vec<TelemetryEvent> {
    (0..64u64)
        .map(|i| {
            let slow = i >= 48 && i % 2 == 0;
            let mut e = TelemetryEvent::blank(i + 1, "explain");
            e.table = "sensors".into();
            e.aggregate = "avg".into();
            e.status = 200;
            e.algorithm = if slow { "naive".into() } else { "dt".into() };
            e.plan_cache = if slow { CacheHit::Miss } else { CacheHit::Hit };
            // Jitter keeps the MAD non-degenerate.
            e.total_us = if slow { 80_000 + i * 37 } else { 2_000 + i * 13 };
            e.phases_us = vec![("run.score", e.total_us * 9 / 10)];
            e
        })
        .collect()
}

fn best_predicate(doc: &Json) -> String {
    assert_eq!(
        doc.get("outcome").and_then(Json::as_str),
        Some("explained"),
        "expected an explanation: {doc:?}"
    );
    let slow = doc.get("slow_slices").and_then(Json::as_array).unwrap();
    assert!(!slow.is_empty());
    doc.get("explanations")
        .and_then(Json::as_array)
        .and_then(|a| a.first())
        .and_then(|e| e.get("predicate"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no ranked predicate in {doc:?}"))
        .to_owned()
}

fn names_planted_cell(predicate: &str) {
    assert!(
        predicate.contains("naive") || predicate.contains("plan_cache"),
        "top predicate must name the planted (algorithm=naive, plan_cache=miss) \
         cell, got: {predicate}"
    );
}

#[test]
fn debug_slow_and_audit_name_the_injected_cell() {
    let server = Server::bind(&ServerConfig { port: 0, workers: 2, ..ServerConfig::default() })
        .expect("bind ephemeral port");
    let handle = server.spawn().expect("spawn server");

    // Inject the latency outliers into the flight recorder.
    telemetry().clear();
    for event in planted_events() {
        telemetry().record(event);
    }

    let mut c = client::Client::connect(handle.addr()).unwrap();

    // Dump the ring as CSV first, while it holds exactly the planted
    // events (each /debug request appends its own event after its
    // response is written).
    let (status, csv) = c.get_text("/debug/telemetry?format=csv").unwrap();
    assert_eq!(status, 200);
    assert!(csv.lines().next().unwrap().contains("latency_ms"), "CSV header: {csv}");

    // Surface 1: the live self-explain endpoint.
    let (status, slow) = c.get("/debug/slow").unwrap();
    assert_eq!(status, 200, "{slow:?}");
    names_planted_cell(&best_predicate(&slow));

    // Surface 2: `scorpion audit` over the offline dump.
    let dir = std::env::temp_dir().join("scorpion_self_explain_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("telemetry.csv");
    std::fs::write(&path, &csv).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_scorpion"))
        .args(["audit", "--telemetry-csv", path.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = Json::parse(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    names_planted_cell(&best_predicate(&doc));

    // The human rendering names the cell too.
    let out = Command::new(env!("CARGO_BIN_EXE_scorpion"))
        .args(["audit", "--telemetry-csv", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("slow slices"), "{text}");
    assert!(text.contains("naive") || text.contains("plan_cache"), "{text}");
    handle.stop();
}

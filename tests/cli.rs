//! CLI contract tests for the `scorpion` binary: exit codes, help
//! output (including under a closed pipe), `--json` output, and the
//! `serve` subcommand end to end.

use scorpion::server::{client, Json};
use std::io::Read;
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scorpion"))
}

fn sample_csv_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("scorpion_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut text = String::from("g,x,v\n");
    for i in 0..60 {
        let x = (i as f64 * 7.3) % 100.0;
        let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
        text.push_str(&format!("o,{x},{v}\nh,{x},10\n"));
    }
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn help_exits_zero_with_usage() {
    for args in [
        &["--help"][..],
        &["-h"][..],
        &["serve", "--help"][..],
        &["serve", "-h"][..],
        &["audit", "--help"][..],
        &["audit", "-h"][..],
    ] {
        let out = bin().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("usage: scorpion"), "{args:?}: {text}");
    }
    let serve_help = bin().args(["serve", "--help"]).output().unwrap();
    let text = String::from_utf8(serve_help.stdout).unwrap();
    for endpoint in ["/explain", "/tables", "/healthz", "/stats", "/debug/telemetry", "/debug/slow"]
    {
        assert!(text.contains(endpoint), "serve help missing {endpoint}: {text}");
    }
    for flag in ["--slow-ms", "--telemetry-events"] {
        assert!(text.contains(flag), "serve help missing {flag}: {text}");
    }
    let audit_help = bin().args(["audit", "--help"]).output().unwrap();
    let text = String::from_utf8(audit_help.stdout).unwrap();
    assert!(text.contains("--telemetry-csv"), "{text}");
    assert!(text.contains("/debug/telemetry"), "{text}");
}

/// `scorpion --help | head -1`: the pipe closes before the help text is
/// fully written; the process must still exit 0, not die of SIGPIPE or
/// panic on the write error.
#[test]
fn help_tolerates_closed_pipe() {
    for args in [&["--help"][..], &["serve", "--help"][..]] {
        let mut child = bin().args(args).stdout(Stdio::piped()).spawn().unwrap();
        // Close the read end without draining it.
        drop(child.stdout.take());
        let status = child.wait().unwrap();
        assert_eq!(status.code(), Some(0), "{args:?} under closed pipe: {status:?}");
    }
}

#[test]
fn bad_invocations_exit_two() {
    for args in [
        &[][..],                     // missing --csv/--sql
        &["--no-such-flag"][..],     // unknown flag
        &["serve", "--no-such"][..], // unknown serve flag
        &["--csv"][..],              // missing value
        &["audit"][..],              // missing --telemetry-csv
        &["audit", "--no-such"][..], // unknown audit flag
    ] {
        let out = bin().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}

#[test]
fn json_output_parses_and_ranks() {
    let csv = sample_csv_path("json.csv");
    let out = bin()
        .args([
            "--csv",
            csv.to_str().unwrap(),
            "--sql",
            "SELECT avg(v) FROM t GROUP BY g",
            "--outliers",
            "o",
            "--holdouts",
            "h",
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = Json::parse(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    assert_eq!(doc.get("results").and_then(Json::as_array).map(<[Json]>::len), Some(2));
    let explanations = doc.get("explanations").and_then(Json::as_array).unwrap();
    assert!(!explanations.is_empty());
    assert!(explanations[0].get("influence").and_then(Json::as_f64).is_some());
    assert!(doc
        .get("diagnostics")
        .and_then(|d| d.get("scorer_calls"))
        .and_then(Json::as_f64)
        .is_some());
    // The one-shot path stamps a trace id from the same process-wide
    // sequence the server uses, so offline runs correlate too.
    let trace_id = doc
        .get("diagnostics")
        .and_then(|d| d.get("trace_id"))
        .and_then(Json::as_f64)
        .expect("diagnostics.trace_id in --json output");
    assert!(trace_id >= 1.0, "{trace_id}");
    let phases = doc
        .get("diagnostics")
        .and_then(|d| d.get("phases"))
        .and_then(Json::as_array)
        .expect("diagnostics.phases in --json output");
    assert!(!phases.is_empty());
    let names: Vec<&str> =
        phases.iter().filter_map(|p| p.get("name").and_then(Json::as_str)).collect();
    assert!(names.contains(&"run.score"), "{names:?}");
}

/// Out-of-range approximate-search knobs exit 2 with a message that
/// names the valid range, before any data is read.
#[test]
fn approx_flags_validate_ranges() {
    let csv = sample_csv_path("approx_validate.csv");
    for (flag, value, range) in [
        ("--approx-rate", "1.5", "(0.0, 1.0]"),
        ("--approx-rate", "0.0", "(0.0, 1.0]"),
        ("--approx-rate", "abc", "(0.0, 1.0]"),
        ("--approx-confidence", "0.4", "(0.5, 1.0]"),
        ("--approx-confidence", "1.2", "(0.5, 1.0]"),
    ] {
        let out = bin()
            .args([
                "--csv",
                csv.to_str().unwrap(),
                "--sql",
                "SELECT avg(v) FROM t GROUP BY g",
                flag,
                value,
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag} {value}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(range), "{flag} {value}: stderr must name {range}, got: {err}");
    }
}

/// `--approx --json` surfaces the approximate-search diagnostics:
/// `approx_error_bound` is a number (0.0 when nothing was pruned) and
/// `candidates_pruned` is present.
#[test]
fn approx_json_reports_error_bound() {
    let csv = sample_csv_path("approx_json.csv");
    let out = bin()
        .args([
            "--csv",
            csv.to_str().unwrap(),
            "--sql",
            "SELECT avg(v) FROM t GROUP BY g",
            "--outliers",
            "o",
            "--holdouts",
            "h",
            "--approx",
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = Json::parse(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    let d = doc.get("diagnostics").expect("diagnostics");
    let bound = d.get("approx_error_bound").and_then(Json::as_f64);
    assert!(bound.is_some(), "approx runs must report approx_error_bound: {d:?}");
    assert!(bound.unwrap() >= 0.0);
    assert!(d.get("candidates_pruned").and_then(Json::as_f64).is_some());
}

/// `--verbose` prints the phase table to stderr — aligned columns, a
/// TOTAL row — without disturbing the `--json` document on stdout.
#[test]
fn verbose_phase_table_on_stderr() {
    let csv = sample_csv_path("verbose.csv");
    let out = bin()
        .args([
            "--csv",
            csv.to_str().unwrap(),
            "--sql",
            "SELECT avg(v) FROM t GROUP BY g",
            "--outliers",
            "o",
            "--holdouts",
            "h",
            "--json",
            "--verbose",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    // stdout is still one clean JSON document.
    assert!(Json::parse(std::str::from_utf8(&out.stdout).unwrap().trim()).is_ok());
    let table = String::from_utf8(out.stderr).unwrap();
    assert!(table.contains("phase"), "{table}");
    assert!(table.contains("run.score"), "{table}");
    assert!(table.contains("TOTAL"), "{table}");
    // Columns align: every phase row ends at the same width as the header.
    let lines: Vec<&str> = table.lines().filter(|l| l.contains("  ")).collect();
    assert!(lines.len() >= 3, "{table}");
}

/// `--trace FILE` writes a chrome://tracing JSON dump with the nested
/// prepare/run span structure.
#[test]
fn trace_flag_writes_chrome_trace() {
    let csv = sample_csv_path("trace.csv");
    let trace = std::env::temp_dir().join("scorpion_cli_test").join("trace_out.json");
    let _ = std::fs::remove_file(&trace);
    let out = bin()
        .args([
            "--csv",
            csv.to_str().unwrap(),
            "--sql",
            "SELECT avg(v) FROM t GROUP BY g",
            "--outliers",
            "o",
            "--holdouts",
            "h",
            "--json",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let doc = Json::parse(&text).expect("trace is valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    assert!(!events.is_empty());
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
    for required in ["prepare", "run", "score"] {
        assert!(names.contains(&required), "missing span `{required}` in {names:?}");
    }
    for e in events {
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
    }
}

/// `scorpion audit --telemetry-csv` over a planted dump: the slow
/// (naive, plan-cache-miss) cell must surface in both the JSON document
/// (the `/debug/slow` shape) and the human rendering.
#[test]
fn audit_subcommand_explains_telemetry_dump() {
    use scorpion::obs::{CacheHit, TelemetryEvent};
    let events: Vec<TelemetryEvent> = (0..64u64)
        .map(|i| {
            let slow = i >= 48 && i % 2 == 0;
            let mut e = TelemetryEvent::blank(i + 1, "explain");
            e.table = "sensors".into();
            e.aggregate = "avg".into();
            e.status = 200;
            e.algorithm = if slow { "naive".into() } else { "dt".into() };
            e.plan_cache = if slow { CacheHit::Miss } else { CacheHit::Hit };
            e.total_us = if slow { 90_000 + i * 41 } else { 1_500 + i * 11 };
            e
        })
        .collect();
    let table = scorpion::core::events_to_table(&events).unwrap();
    let dir = std::env::temp_dir().join("scorpion_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("audit_dump.csv");
    std::fs::write(&path, scorpion::core::table_csv(&table).unwrap()).unwrap();

    let out = bin()
        .args(["audit", "--telemetry-csv", path.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = Json::parse(std::str::from_utf8(&out.stdout).unwrap().trim()).unwrap();
    assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("explained"), "{doc:?}");
    assert_eq!(doc.get("events").and_then(Json::as_f64), Some(64.0));
    let predicate = doc
        .get("explanations")
        .and_then(Json::as_array)
        .and_then(|a| a.first())
        .and_then(|e| e.get("predicate"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no predicate in {doc:?}"));
    assert!(predicate.contains("naive") || predicate.contains("plan_cache"), "{predicate}");

    let out = bin().args(["audit", "--telemetry-csv", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("slow slices"), "{text}");
    assert!(text.contains("naive") || text.contains("plan_cache"), "{text}");
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// `scorpion serve --port 0` prints the bound address, serves
/// `/healthz` and `/explain`, and shuts down on SIGKILL without
/// leaving the port wedged.
#[test]
fn serve_subcommand_end_to_end() {
    let csv = sample_csv_path("serve.csv");
    let child = bin()
        .args([
            "serve",
            "--csv",
            &format!("planted={}", csv.display()),
            "--port",
            "0",
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut child = KillOnDrop(child);
    // First stdout line: "scorpion-server listening on http://ADDR (..".
    let mut line = String::new();
    let mut stdout = child.0.stdout.take().unwrap();
    let mut buf = [0u8; 1];
    while stdout.read(&mut buf).unwrap() == 1 && buf[0] != b'\n' {
        line.push(buf[0] as char);
    }
    let addr: std::net::SocketAddr = line
        .split("http://")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {line:?}"))
        .parse()
        .unwrap();

    let mut c = client::Client::connect(addr).unwrap();
    let (status, health) = c.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("tables").and_then(Json::as_f64), Some(1.0));

    let body = Json::obj([
        ("table", Json::from("planted")),
        ("sql", Json::from("SELECT avg(v) FROM planted GROUP BY g")),
        ("outliers", Json::arr(["o"])),
        ("holdouts", Json::arr(["h"])),
        ("c", Json::from(0.5)),
    ]);
    let (status, resp) = c.post("/explain", &body).unwrap();
    assert_eq!(status, 200, "{resp:?}");
    assert_eq!(resp.get("plan_cache").and_then(Json::as_str), Some("miss"));
    let (status, resp) = c.post("/explain", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(resp.get("plan_cache").and_then(Json::as_str), Some("hit"));
}

/// `--slow-ms 0` flags every request as slow: the stderr log line gets
/// the ` slow` marker and an inline `phases=` breakdown even without
/// `--access-log`.
#[test]
fn serve_slow_ms_logs_phase_breakdown() {
    let csv = sample_csv_path("slow.csv");
    let child = bin()
        .args([
            "serve",
            "--csv",
            &format!("planted={}", csv.display()),
            "--port",
            "0",
            "--workers",
            "2",
            "--slow-ms",
            "0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut child = KillOnDrop(child);
    let mut line = String::new();
    let mut stdout = child.0.stdout.take().unwrap();
    let mut buf = [0u8; 1];
    while stdout.read(&mut buf).unwrap() == 1 && buf[0] != b'\n' {
        line.push(buf[0] as char);
    }
    let addr: std::net::SocketAddr = line
        .split("http://")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {line:?}"))
        .parse()
        .unwrap();

    let mut c = client::Client::connect(addr).unwrap();
    let body = Json::obj([
        ("table", Json::from("planted")),
        ("sql", Json::from("SELECT avg(v) FROM planted GROUP BY g")),
        ("outliers", Json::arr(["o"])),
        ("holdouts", Json::arr(["h"])),
    ]);
    let (status, _) = c.post("/explain", &body).unwrap();
    assert_eq!(status, 200);
    drop(c);

    // Kill the server, then drain its stderr.
    let mut stderr = child.0.stderr.take().unwrap();
    let _ = child.0.kill();
    let _ = child.0.wait();
    let mut log = String::new();
    stderr.read_to_string(&mut log).unwrap();
    let slow_line = log
        .lines()
        .find(|l| l.contains("POST /explain") && l.contains(" slow"))
        .unwrap_or_else(|| panic!("no slow /explain line in stderr: {log}"));
    assert!(slow_line.contains("trace="), "{slow_line}");
    assert!(slow_line.contains("phases="), "{slow_line}");
    // The breakdown names real engine phases with elapsed times.
    assert!(slow_line.contains("ms"), "{slow_line}");
}

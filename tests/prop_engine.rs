//! Cross-crate property tests: influence semantics and predicate algebra
//! under randomized tables.

use proptest::prelude::*;
use scorpion::prelude::*;

/// Builds a small random two-group table over one dimension attribute.
fn build_table(xs: &[(f64, f64, bool)]) -> Table {
    // (x, v, in_outlier_group)
    let schema = Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
    let mut b = TableBuilder::new(schema);
    for &(x, v, outlier) in xs {
        let g = if outlier { "o" } else { "h" };
        b.push_row(vec![g.into(), x.into(), v.into()]).unwrap();
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The influence of any predicate under λ=1, H=∅, c=1 equals the mean
    /// of the matched tuples' single-tuple influences (the independence
    /// identity behind §5.2 for AVG-free aggregates like SUM).
    #[test]
    fn sum_influence_is_mean_of_tuple_influences(
        data in prop::collection::vec((0.0f64..100.0, 0.0f64..50.0), 4..40),
        lo in 0.0f64..50.0,
        width in 1.0f64..50.0,
    ) {
        let rows: Vec<(f64, f64, bool)> =
            data.iter().map(|&(x, v)| (x, v, true)).collect();
        let t = build_table(&rows);
        let g = group_by(&t, &[0]).unwrap();
        let scorer = Scorer::new(
            &t, &Sum, 2,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![],
            InfluenceParams { lambda: 1.0, c: 1.0 },
            false,
        ).unwrap();
        let pred = Predicate::conjunction([Clause::range(1, lo, lo + width)]).unwrap();
        let inf = scorer.influence(&pred).unwrap();
        let deltas = scorer.outlier_tuple_deltas(0);
        let xs = t.num(1).unwrap();
        let matched: Vec<f64> = g.rows(0).iter().enumerate()
            .filter(|(_, &r)| (lo..lo + width).contains(&xs[r as usize]))
            .map(|(i, _)| deltas[i])
            .collect();
        let want = if matched.is_empty() { 0.0 }
                   else { matched.iter().sum::<f64>() / matched.len() as f64 };
        prop_assert!((inf - want).abs() < 1e-6 * want.abs().max(1.0), "{inf} vs {want}");
    }

    /// Widening a predicate never decreases Δ for SUM over non-negative
    /// values (§5.3 anti-monotonicity), at the engine level.
    #[test]
    fn widening_never_decreases_delta(
        data in prop::collection::vec((0.0f64..100.0, 0.0f64..50.0), 4..40),
        lo in 0.0f64..40.0,
        w1 in 1.0f64..30.0,
        extra in 0.0f64..30.0,
    ) {
        let rows: Vec<(f64, f64, bool)> =
            data.iter().map(|&(x, v)| (x, v, true)).collect();
        let t = build_table(&rows);
        let g = group_by(&t, &[0]).unwrap();
        let scorer = Scorer::new(
            &t, &Sum, 2,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![],
            // c = 0 makes influence equal Δ (λ = 1).
            InfluenceParams { lambda: 1.0, c: 0.0 },
            false,
        ).unwrap();
        let narrow = Predicate::conjunction([Clause::range(1, lo, lo + w1)]).unwrap();
        let wide = Predicate::conjunction([Clause::range(1, lo, lo + w1 + extra)]).unwrap();
        let d_narrow = scorer.influence(&narrow).unwrap();
        let d_wide = scorer.influence(&wide).unwrap();
        prop_assert!(d_wide >= d_narrow - 1e-9);
    }

    /// Hold-out penalties only lower influence: for any predicate,
    /// inf(O, H, p, V) ≤ inf(O, ∅, p, V).
    #[test]
    fn holdout_penalty_is_nonpositive(
        data in prop::collection::vec((0.0f64..100.0, 0.0f64..50.0, any::<bool>()), 8..60),
        lo in 0.0f64..50.0,
        width in 1.0f64..50.0,
    ) {
        // Need at least one tuple per group.
        let mut rows = data.clone();
        rows.push((1.0, 1.0, true));
        rows.push((1.0, 1.0, false));
        let t = build_table(&rows);
        let g = group_by(&t, &[0]).unwrap();
        let (o_idx, h_idx) = {
            let k0 = g.display_key(&t, 0);
            if k0 == "o" { (0, 1) } else { (1, 0) }
        };
        let scorer = Scorer::new(
            &t, &Sum, 2,
            vec![GroupSpec { rows: g.rows(o_idx).to_vec(), error: 1.0 }],
            vec![GroupSpec { rows: g.rows(h_idx).to_vec(), error: 1.0 }],
            InfluenceParams { lambda: 0.5, c: 0.5 },
            false,
        ).unwrap();
        let pred = Predicate::conjunction([Clause::range(1, lo, lo + width)]).unwrap();
        let with_h = scorer.influence(&pred).unwrap();
        let without_h = scorer.influence_outliers_only(&pred).unwrap();
        prop_assert!(with_h <= without_h + 1e-9);
    }

    /// Predicate algebra laws hold on randomized boxes: intersection
    /// implies both operands; both operands imply the hull.
    #[test]
    fn algebra_laws(
        a_lo in 0.0f64..80.0, a_w in 1.0f64..40.0,
        b_lo in 0.0f64..80.0, b_w in 1.0f64..40.0,
        c_lo in 0.0f64..80.0, c_w in 1.0f64..40.0,
    ) {
        let a = Predicate::conjunction([
            Clause::range(1, a_lo, a_lo + a_w),
            Clause::range(2, c_lo, c_lo + c_w),
        ]).unwrap();
        let b = Predicate::conjunction([Clause::range(1, b_lo, b_lo + b_w)]).unwrap();
        if let Some(i) = a.intersect(&b) {
            prop_assert!(i.implies(&a));
            prop_assert!(i.implies(&b));
        }
        let h = a.hull(&b);
        prop_assert!(a.implies(&h));
        prop_assert!(b.implies(&h));
    }

    /// Carving a box by another yields pieces that partition the
    /// original's selection: same rows, no duplicates.
    #[test]
    fn carve_partitions_selection(
        data in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 10..80),
        s_lo in 0.0f64..60.0, s_w in 5.0f64..40.0,
        o_lo in 0.0f64..60.0, o_w in 5.0f64..40.0,
    ) {
        let rows: Vec<(f64, f64, bool)> =
            data.iter().map(|&(x, v)| (x, v, true)).collect();
        let t = build_table(&rows);
        let domains = domains_of(&t).unwrap();
        let subject = Predicate::conjunction([Clause::range(1, s_lo, s_lo + s_w)]).unwrap();
        let by = Predicate::conjunction([Clause::range(1, o_lo, o_lo + o_w)]).unwrap();
        let (inter, rems) = subject.carve(&by, &domains);
        let all: Vec<u32> = (0..t.len() as u32).collect();
        let mut got: Vec<u32> = Vec::new();
        if let Some(i) = inter {
            got.extend(i.select(&t, &all).unwrap());
        }
        for r in &rems {
            got.extend(r.select(&t, &all).unwrap());
        }
        got.sort_unstable();
        // No duplicates (pieces are disjoint)...
        let mut dedup = got.clone();
        dedup.dedup();
        prop_assert_eq!(&dedup, &got);
        // ...and exactly the subject's selection.
        prop_assert_eq!(got, subject.select(&t, &all).unwrap());
    }
}

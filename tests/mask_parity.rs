//! Oracle parity gate for the bitmap execution layer (property-based).
//!
//! For randomized tables, clauses, and row subsets, the mask path —
//! [`Predicate::mask`] / [`Predicate::mask_uncached`] composed with
//! popcount and selection-vector iteration — must agree with the
//! row-at-a-time [`PredicateMatcher`] oracle on `count`, `select`, and
//! full `(n, Δ)` influence (where agreement is *bit-exact*: the masked
//! aggregate fold visits rows in the same ascending order the oracle
//! does).

use proptest::prelude::*;
use scorpion::prelude::*;
use scorpion::table::{ClauseMaskCache, PredicateMatcher};

/// Builds a random table: a discrete group attribute (2 groups), one
/// continuous attribute, one discrete attribute (4 values), and the
/// aggregate attribute.
fn build_table(rows: &[(f64, usize, f64, bool)]) -> Table {
    let schema =
        Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::disc("s"), Field::cont("v")])
            .unwrap();
    let mut b = TableBuilder::new(schema);
    for &(x, s, v, outlier) in rows {
        let g = if outlier { "o" } else { "h" };
        let s = ["red", "green", "blue", "gray"][s % 4];
        b.push_row(vec![g.into(), x.into(), s.into(), v.into()]).unwrap();
    }
    b.build()
}

/// A random conjunction: a range clause over `x` and, when `with_set`,
/// a set clause over `s` (codes drawn from the interned dictionary).
fn build_predicate(t: &Table, lo: f64, width: f64, with_set: bool, set_bits: usize) -> Predicate {
    let mut clauses = vec![Clause::range(1, lo, lo + width)];
    if with_set {
        let card = t.cat(2).unwrap().cardinality() as u32;
        let codes: Vec<u32> = (0..card).filter(|c| (set_bits >> c) & 1 == 1).collect();
        if !codes.is_empty() {
            clauses.push(Clause::in_set(2, codes));
        }
    }
    Predicate::conjunction(clauses).unwrap()
}

/// The oracle: row-at-a-time matcher selection over `rows`.
fn oracle_select(m: &PredicateMatcher<'_>, rows: &[u32]) -> Vec<u32> {
    rows.iter().copied().filter(|&r| m.matches(r)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `Predicate::mask` ∘ popcount/iter ≡ `PredicateMatcher` for
    /// count, select, and membership, over the full table and over
    /// random row subsets; cached and uncached masks agree.
    #[test]
    fn mask_count_select_match_matcher(
        data in prop::collection::vec(
            (0.0f64..100.0, 0usize..4, -50.0f64..50.0, any::<bool>()), 1..120),
        lo in 0.0f64..90.0,
        width in 0.5f64..60.0,
        with_set in any::<bool>(),
        set_bits in 1usize..16,
        subset_stride in 1usize..5,
        subset_offset in 0usize..4,
    ) {
        let t = build_table(&data);
        let p = build_predicate(&t, lo, width, with_set, set_bits);
        let m = p.matcher(&t).unwrap();
        let cache = ClauseMaskCache::new();
        let mask = p.mask(&t, &cache).unwrap();
        let uncached = p.mask_uncached(&t).unwrap();

        let all: Vec<u32> = (0..t.len() as u32).collect();
        let want_all = oracle_select(&m, &all);
        // Selection-vector iteration and popcount against the oracle.
        prop_assert_eq!(mask.to_rows(), want_all.clone());
        prop_assert_eq!(mask.count_ones(), want_all.len());
        prop_assert_eq!(uncached.to_rows(), want_all.clone());

        // Membership over a random (sorted) row subset.
        let subset: Vec<u32> =
            all.iter().copied().skip(subset_offset).step_by(subset_stride).collect();
        prop_assert_eq!(p.select(&t, &subset).unwrap(), oracle_select(&m, &subset));
        prop_assert_eq!(p.count(&t, &subset).unwrap(), oracle_select(&m, &subset).len());
    }

    /// The masked `(n, Δ)` influence fold is bit-exact with the
    /// row-at-a-time oracle, for incremental (AVG) and black-box
    /// (MEDIAN) aggregates, with and without hold-out groups.
    #[test]
    fn masked_influence_is_bit_exact_with_rowwise_oracle(
        data in prop::collection::vec(
            (0.0f64..100.0, 0usize..4, -50.0f64..50.0, any::<bool>()), 2..100),
        lo in 0.0f64..90.0,
        width in 0.5f64..60.0,
        with_set in any::<bool>(),
        set_bits in 1usize..16,
        lambda in 0.0f64..1.0,
        c in 0.0f64..1.5,
    ) {
        // Guarantee both groups are inhabited.
        let mut rows = data.clone();
        rows.push((1.0, 0, 1.0, true));
        rows.push((2.0, 1, 2.0, false));
        let t = build_table(&rows);
        let g = group_by(&t, &[0]).unwrap();
        let o_idx = (0..g.len()).find(|&i| g.display_key(&t, i) == "o").unwrap();
        let h_idx = 1 - o_idx;
        let p = build_predicate(&t, lo, width, with_set, set_bits);

        for blackbox in [false, true] {
            let agg: &dyn Aggregate = if blackbox { &Median } else { &Avg };
            let s = Scorer::new(
                &t, agg, 3,
                vec![GroupSpec { rows: g.rows(o_idx).to_vec(), error: 1.0 }],
                vec![GroupSpec { rows: g.rows(h_idx).to_vec(), error: 1.0 }],
                InfluenceParams { lambda, c },
                false,
            ).unwrap();
            let masked = s.influence(&p).unwrap();
            let oracle = s.influence_rowwise(&p).unwrap();
            prop_assert_eq!(
                masked.to_bits(), oracle.to_bits(),
                "blackbox={}: mask {} != oracle {}", blackbox, masked, oracle
            );
            // Outlier-only influence (MC's pruning estimate) too.
            let via_cache = s
                .with_params(InfluenceParams { lambda, c })
                .unwrap()
                .influence_outliers_only(&p)
                .unwrap();
            prop_assert!(via_cache.is_finite() || via_cache.is_nan() == oracle.is_nan());
        }
    }
}

/// Regression: `ClauseMaskCache::clear()` must reset the hit counter
/// along with the entries. It used to leave `hits()` at its old value,
/// so a rebind's fresh cache reported stale hit counts from the
/// previous data snapshot in diagnostics.
#[test]
fn clause_mask_cache_clear_resets_counters() {
    let rows: Vec<(f64, usize, f64, bool)> =
        (0..64).map(|i| (i as f64, i % 4, i as f64, i % 2 == 0)).collect();
    let t = build_table(&rows);
    let p = build_predicate(&t, 10.0, 20.0, false, 0);
    let cache = ClauseMaskCache::new();

    p.mask(&t, &cache).unwrap();
    p.mask(&t, &cache).unwrap();
    assert!(cache.hits() > 0, "second lookup must hit");
    assert!(!cache.is_empty(), "first lookup must populate");

    cache.clear();
    assert_eq!(cache.len(), 0, "clear() must drop entries");
    assert_eq!(cache.hits(), 0, "clear() must reset the hit counter");

    // A fresh miss/hit cycle counts from zero.
    p.mask(&t, &cache).unwrap();
    assert_eq!(cache.hits(), 0);
    p.mask(&t, &cache).unwrap();
    assert_eq!(cache.hits(), 1);
}

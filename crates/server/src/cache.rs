//! The sharded plan cache: warm [`ScorpionSession`]s keyed by
//! `(table generation, normalized SQL, labels, algorithm)`.
//!
//! The influence parameters `(λ, c)` are deliberately **not** part of
//! the key — that is the whole point: a repeated `POST /explain` for the
//! same query and labels at a new `c` lands on the cached session and
//! re-runs through its prepared plan's influence cache (pure arithmetic,
//! no matcher passes) instead of re-parsing, re-partitioning, and
//! re-scoring from scratch. Replacing a table bumps its generation,
//! which changes every dependent key and strands the stale entries until
//! eviction collects them.
//!
//! Eviction is **prepare-cost-aware**: each resident entry remembers how
//! long it took to build (SQL parse + session + `prepare`), and an
//! incoming entry may only evict residents that are not dramatically
//! more expensive than itself. A burst of cheap MC preps can therefore
//! no longer wash a multi-second DT prep out of the cache; when every
//! resident is too expensive to displace, the incoming entry is simply
//! *not admitted* (the caller still gets its freshly built session —
//! it just isn't cached) and `admission_denied` is counted.

use crate::registry::TableEntry;
use parking_lot::Mutex;
use scorpion_core::ScorpionSession;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cache key. Construct with [`PlanKey::new`] so SQL normalization and
/// field separation stay consistent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey(String);

impl PlanKey {
    /// Builds a key from the coordinates that determine a prepared
    /// plan's validity. `labels` is the caller's canonical rendering of
    /// the label specification (indices or keys, auto-label `k`, …);
    /// requests that spell the same labels differently simply occupy
    /// two cache slots — both correct, neither shared.
    pub fn new(entry: &TableEntry, name: &str, sql: &str, labels: &str, algorithm: &str) -> Self {
        PlanKey(format!(
            "{name}@{generation}\u{1}{sql}\u{1}{labels}\u{1}{algorithm}",
            generation = entry.generation,
            sql = normalize_sql(sql),
        ))
    }
}

/// Collapses runs of whitespace to single spaces and trims, so
/// formatting differences in the SQL text do not fragment the cache.
/// Identifier case is preserved (the engine treats it as significant).
pub fn normalize_sql(sql: &str) -> String {
    sql.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// A cached, warm session plus the result-series metadata needed to
/// render responses without re-running the query.
pub struct PlanEntry {
    /// The reusable session (prepared lazily on first run).
    pub session: ScorpionSession,
    /// Human-readable group keys, in result order.
    pub display_keys: Vec<String>,
    /// The aggregate result series, in result order.
    pub results: Vec<f64>,
}

/// Counters the `/stats` endpoint reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build a session.
    pub misses: u64,
    /// Entries evicted to admit a newer one.
    pub evictions: u64,
    /// Built entries refused residency because every evictable slot
    /// held a strictly more expensive prepare.
    pub admission_denied: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A resident entry plus its admission metadata.
struct Slot {
    entry: Arc<PlanEntry>,
    /// Measured build cost (parse + session + prepare) at insert time.
    cost: Duration,
    /// Last-access tick for LRU ordering within the shard.
    tick: u64,
}

/// Admission headroom: an incoming entry may evict residents costing up
/// to this factor more than itself. Wide enough that measurement jitter
/// between same-class preps never blocks admission, narrow enough that
/// a microsecond MC prep cannot displace a multi-second DT prep.
const COST_HEADROOM: u32 = 8;

/// Floor applied to the incoming cost before the headroom comparison:
/// below this, build-time differences are noise, and everything cheap
/// should compete as plain LRU.
const COST_FLOOR: Duration = Duration::from_millis(1);

/// One lock shard: slots keyed by plan key, LRU-ordered by access tick,
/// evicted cost-aware.
#[derive(Default)]
struct CostShard {
    map: HashMap<PlanKey, Slot>,
    tick: u64,
}

impl CostShard {
    fn get(&mut self, key: &PlanKey) -> Option<Arc<PlanEntry>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.tick = tick;
            slot.entry.clone()
        })
    }

    /// Attempts to admit `entry` under the cost-aware policy, evicting
    /// the least-recently-used *displaceable* resident if the shard is
    /// full. Returns `(evicted, admitted)`.
    fn admit(
        &mut self,
        key: &PlanKey,
        entry: Arc<PlanEntry>,
        cost: Duration,
        cap: usize,
    ) -> (u64, bool) {
        self.tick += 1;
        let tick = self.tick;
        let mut evicted = 0;
        if self.map.len() >= cap.max(1) {
            let threshold = cost.max(COST_FLOOR).saturating_mul(COST_HEADROOM);
            let victim = self
                .map
                .iter()
                .filter(|(_, s)| s.cost <= threshold)
                .min_by_key(|(_, s)| s.tick)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                    evicted = 1;
                }
                // Every resident out-costs the incoming entry: keep them.
                None => return (0, false),
            }
        }
        self.map.insert(key.clone(), Slot { entry, cost, tick });
        (evicted, true)
    }
}

/// Sharded, cost-aware LRU cache of warm sessions.
pub struct PlanCache {
    shards: Vec<Mutex<CostShard>>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    admission_denied: AtomicU64,
}

/// Lock shards (power of two).
const SHARDS: usize = 8;

/// Default bound on cached sessions.
const DEFAULT_CAP: usize = 256;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(DEFAULT_CAP)
    }
}

impl PlanCache {
    /// A cache bounded to `cap` sessions (`0` = the default bound).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = if cap == 0 { DEFAULT_CAP } else { cap };
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(CostShard::default())).collect(),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            admission_denied: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<CostShard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Per-shard resident bound: the configured capacity rounded up to
    /// shard granularity, so the cache never under-provisions what the
    /// operator asked for (it may hold up to `SHARDS − 1` extra).
    fn shard_cap(&self) -> usize {
        self.cap.div_ceil(SHARDS)
    }

    /// Looks up `key`; on a miss, runs `build` (outside any lock — it
    /// parses SQL, constructs a session, and should *prepare* it, so the
    /// measured cost reflects what re-building would really cost) and
    /// offers the result to the cost-aware admission policy. Concurrent
    /// misses on the same key may both build; the first insert wins and
    /// later builders adopt it, so every caller shares one session
    /// object per key. A denied admission still returns the built entry
    /// — the response is served; the entry just isn't cached.
    pub fn get_or_create<E>(
        &self,
        key: &PlanKey,
        build: impl FnOnce() -> Result<PlanEntry, E>,
    ) -> Result<(Arc<PlanEntry>, bool), E> {
        if let Some(entry) = self.shard(key).lock().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((entry, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let build_start = Instant::now();
        let built = Arc::new(build()?);
        let cost = build_start.elapsed();
        let mut shard = self.shard(key).lock();
        if let Some(existing) = shard.get(key) {
            // A racing builder won; adopt its resident entry.
            return Ok((existing, false));
        }
        let (evicted, admitted) = shard.admit(key, built.clone(), cost, self.shard_cap());
        drop(shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        if !admitted {
            self.admission_denied.fetch_add(1, Ordering::Relaxed);
        }
        Ok((built, false))
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            admission_denied: self.admission_denied.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().map.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_core::Scorpion;
    use scorpion_table::{Field, Schema, Table, TableBuilder};

    fn sensors() -> Table {
        let schema =
            Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..20 {
            let g = if i % 2 == 0 { "o" } else { "h" };
            let v = if i == 0 { 100.0 } else { 10.0 };
            b.push_row(vec![g.into(), (i as f64).into(), v.into()]).unwrap();
        }
        b.build()
    }

    fn entry_for(table: &Table) -> PlanEntry {
        let builder = Scorpion::on(table.clone()).sql("SELECT avg(v) FROM t GROUP BY g").unwrap();
        let display_keys: Vec<String> =
            (0..builder.len()).map(|i| builder.display_key(i)).collect();
        let results = builder.results().to_vec();
        let req = builder.outlier(1, 1.0).holdout(0).build().unwrap();
        PlanEntry { session: ScorpionSession::new(req).unwrap(), display_keys, results }
    }

    fn key(gen_entry: &TableEntry, sql: &str) -> PlanKey {
        PlanKey::new(gen_entry, "t", sql, "o:[1]h:[0]", "auto")
    }

    #[test]
    fn hit_after_miss_shares_the_session() {
        let t = sensors();
        let cache = PlanCache::default();
        let te = TableEntry { table: std::sync::Arc::new(t.clone()), generation: 1 };
        let k = key(&te, "SELECT avg(v)  FROM t   GROUP BY g");
        let (a, hit_a) = cache.get_or_create::<()>(&k, || Ok(entry_for(&t))).unwrap();
        // Different whitespace, same normalized key.
        let k2 = key(&te, "SELECT avg(v) FROM t GROUP BY g");
        let (b, hit_b) = cache.get_or_create::<()>(&k2, || Ok(entry_for(&t))).unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn generation_bump_changes_the_key() {
        let t = sensors();
        let cache = PlanCache::default();
        let g1 = TableEntry { table: std::sync::Arc::new(t.clone()), generation: 1 };
        let g2 = TableEntry { table: std::sync::Arc::new(t.clone()), generation: 2 };
        let sql = "SELECT avg(v) FROM t GROUP BY g";
        cache.get_or_create::<()>(&key(&g1, sql), || Ok(entry_for(&t))).unwrap();
        let (_, hit) = cache.get_or_create::<()>(&key(&g2, sql), || Ok(entry_for(&t))).unwrap();
        assert!(!hit, "new generation must not hit the old plan");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_bounds_residency() {
        let t = sensors();
        let cache = PlanCache::with_capacity(8);
        let te = TableEntry { table: std::sync::Arc::new(t.clone()), generation: 1 };
        for i in 0..50 {
            let k = PlanKey::new(
                &te,
                "t",
                &format!("SELECT avg(v) FROM t GROUP BY g -- {i}"),
                "o:[1]h:[0]",
                "auto",
            );
            cache.get_or_create::<()>(&k, || Ok(entry_for(&t))).unwrap();
        }
        let s = cache.stats();
        assert!(s.entries <= 8, "{} entries resident", s.entries);
        // Every un-resident miss was either evicted later or denied
        // admission (same-class cheap preps normally all admit).
        assert_eq!((s.evictions + s.admission_denied) as usize, 50 - s.entries);
    }

    #[test]
    fn cheap_preps_cannot_evict_expensive_ones() {
        let t = sensors();
        let te = TableEntry { table: std::sync::Arc::new(t.clone()), generation: 1 };
        let mk = |tag: &str| key(&te, &format!("SELECT avg(v) FROM t GROUP BY g -- {tag}"));
        let mut shard = CostShard::default();

        // A slow DT-class prep takes residence in a full (cap 1) shard.
        let (_, admitted) =
            shard.admit(&mk("dt"), Arc::new(entry_for(&t)), Duration::from_secs(2), 1);
        assert!(admitted);

        // A cheap MC-class prep may not displace it: denied, no eviction.
        let (evicted, admitted) =
            shard.admit(&mk("mc"), Arc::new(entry_for(&t)), Duration::from_millis(1), 1);
        assert!(!admitted && evicted == 0, "cheap prep displaced an expensive one");
        assert!(shard.get(&mk("dt")).is_some(), "expensive resident must survive");
        assert!(shard.get(&mk("mc")).is_none());

        // A comparably expensive prep evicts it (plain LRU among peers).
        let (evicted, admitted) =
            shard.admit(&mk("dt2"), Arc::new(entry_for(&t)), Duration::from_secs(1), 1);
        assert!(admitted && evicted == 1);
        assert!(shard.get(&mk("dt2")).is_some());
        assert!(shard.get(&mk("dt")).is_none());
    }

    #[test]
    fn sub_floor_costs_compete_as_plain_lru() {
        let t = sensors();
        let te = TableEntry { table: std::sync::Arc::new(t.clone()), generation: 1 };
        let mk = |tag: &str| key(&te, &format!("SELECT avg(v) FROM t GROUP BY g -- {tag}"));
        let mut shard = CostShard::default();
        shard.admit(&mk("a"), Arc::new(entry_for(&t)), Duration::from_micros(900), 1);
        // Incoming is *cheaper*, but both are under the jitter floor:
        // LRU wins, the newcomer is admitted.
        let (evicted, admitted) =
            shard.admit(&mk("b"), Arc::new(entry_for(&t)), Duration::from_micros(100), 1);
        assert!(admitted && evicted == 1);
    }
}

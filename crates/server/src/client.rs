//! A tiny blocking HTTP/1.1 client for load generators and tests.
//!
//! Not a general client: it speaks exactly the dialect the server
//! emits (`Content-Length` bodies, keep-alive) and parses bodies as
//! JSON. Lives in the library so the `server_throughput` bench and the
//! integration tests measure the same wire path real clients use.

use crate::json::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive connection to one server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects (with a 5s I/O deadline).
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    /// `GET path`, returning `(status, parsed JSON body)`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, Json)> {
        self.request("GET", path, None).and_then(RawResponse::into_json)
    }

    /// `GET path` for non-JSON endpoints (`/metrics`), returning
    /// `(status, body text)`.
    pub fn get_text(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, None).map(|r| (r.status, r.body))
    }

    /// `POST path` with a JSON body, returning `(status, parsed body)`.
    pub fn post(&mut self, path: &str, body: &Json) -> io::Result<(u16, Json)> {
        self.post_raw(path, body).and_then(RawResponse::into_json)
    }

    /// `POST path` with a JSON body, returning the raw response with
    /// its headers (for inspecting `x-scorpion-trace-id` and friends).
    pub fn post_raw(&mut self, path: &str, body: &Json) -> io::Result<RawResponse> {
        let text = body
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.request("POST", path, Some(&text))
    }

    /// `POST path` with extra request headers (e.g. the
    /// `x-scorpion-deadline-ms` deadline), returning the raw response.
    pub fn post_with_headers(
        &mut self,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &Json,
    ) -> io::Result<RawResponse> {
        let text = body
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.request_with_headers("POST", path, extra_headers, Some(&text))
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<RawResponse> {
        self.request_with_headers(method, path, &[], body)
    }

    fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> io::Result<RawResponse> {
        let body = body.unwrap_or("");
        let mut extra = String::new();
        for (name, value) in extra_headers {
            extra.push_str(&format!("{name}: {value}\r\n"));
        }
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: scorpion\r\nContent-Length: {}\r\n\
             Content-Type: application/json\r\n{extra}\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<RawResponse> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            line.clear();
            self.reader.read_line(&mut line)?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let (name, value) = (name.trim().to_ascii_lowercase(), value.trim().to_owned());
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
        Ok(RawResponse { status, headers, body })
    }
}

/// A response before JSON parsing: status, lowercased headers, body
/// text.
pub struct RawResponse {
    /// HTTP status code.
    pub status: u16,
    /// `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body as text.
    pub body: String,
}

impl RawResponse {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn into_json(self) -> io::Result<(u16, Json)> {
        let json = if self.body.is_empty() {
            Json::Null
        } else {
            Json::parse(&self.body)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        };
        Ok((self.status, json))
    }
}

/// One-shot convenience: connect, send, disconnect.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, Json)> {
    Client::connect(addr)?.get(path)
}

/// One-shot convenience: connect, POST JSON, disconnect.
pub fn post(addr: SocketAddr, path: &str, body: &Json) -> io::Result<(u16, Json)> {
    Client::connect(addr)?.post(path, body)
}

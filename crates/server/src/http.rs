//! Minimal HTTP/1.1 framing with incremental, resumable parsing.
//!
//! Just enough of RFC 9112 for a JSON service: request-line + header
//! parsing, `Content-Length` bodies, keep-alive connection reuse, and
//! response serialization. No chunked encoding and no TLS — the
//! service's clients are `curl`, load generators, and dashboards.
//!
//! The core is [`RequestParser`], a push parser that accepts bytes as
//! they arrive ([`RequestParser::push`]) and yields complete requests
//! ([`RequestParser::next_request`]) without ever blocking — which is what lets
//! the server park idle connections on a readiness poller instead of
//! pinning a worker per connection. Framing is deliberately strict:
//! duplicate or conflicting `Content-Length` headers, non-numeric
//! lengths, and `Transfer-Encoding` (unimplemented, and a smuggling
//! vector when half-honored) are all rejected with 400, and an unbounded
//! header section is rejected with 431 before it can buffer without
//! limit.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Largest accepted request body (tables are POSTed as CSV text).
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Largest accepted header section.
const MAX_HEADER_BYTES: usize = 64 << 10;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (`/explain`).
    pub path: String,
    /// Raw query string, if any (without the `?`).
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Value of query parameter `name` (`""` for a bare flag). No
    /// percent-decoding — the service's parameters are plain tokens.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (k == name).then_some(v)
        })
    }

    /// True when the client asked to keep the connection open
    /// (HTTP/1.1 defaults to keep-alive).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the standard set.
    pub headers: Vec<(String, String)>,
    /// Content type of `body`.
    pub content_type: &'static str,
    /// The payload.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// The standard reason phrase for the status code.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes the response, with `Connection: keep-alive|close`
    /// according to `keep_alive`.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// One step of incremental parsing — what [`RequestParser::next_request`] found
/// in the bytes buffered so far.
#[derive(Debug)]
pub enum Feed {
    /// The buffer does not yet hold a complete request; push more bytes.
    NeedMore,
    /// A complete request (its bytes have been consumed from the buffer;
    /// pipelined follow-up bytes, if any, remain buffered).
    Request(Request),
    /// The buffered bytes are not a valid request. Send the response and
    /// close the connection — after a framing error the byte stream is
    /// desynchronized and nothing after it can be trusted.
    Malformed(Response),
}

/// An incremental HTTP/1.1 request parser.
///
/// Push bytes as they arrive off a (possibly non-blocking) socket, then
/// drain complete requests. The parser owns the connection's receive
/// buffer, so pipelined bytes beyond the first request survive between
/// calls and a request split across arbitrarily many reads reassembles
/// correctly.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

/// Parsed request head, pending its body.
struct Head {
    method: String,
    path: String,
    query: Option<String>,
    headers: Vec<(String, String)>,
    body_len: usize,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends bytes received from the connection.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when bytes are buffered but no complete request has been
    /// produced from them yet — the state in which an EOF or an idle
    /// timeout means a *truncated* request rather than a quiet
    /// keep-alive connection.
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Attempts to parse one complete request from the buffered bytes.
    pub fn next_request(&mut self) -> Feed {
        // Find the header terminator: an empty line. Lines end with CRLF
        // or bare LF, so the terminator is `\n\n` or `\n\r\n`.
        let Some(header_end) = find_header_end(&self.buf) else {
            if self.buf.len() > MAX_HEADER_BYTES {
                return Feed::Malformed(error_response(431, "headers too large"));
            }
            return Feed::NeedMore;
        };
        if header_end > MAX_HEADER_BYTES {
            return Feed::Malformed(error_response(431, "headers too large"));
        }
        let head = match parse_head(&self.buf[..header_end]) {
            Ok(head) => head,
            Err(resp) => return Feed::Malformed(resp),
        };
        let total = header_end + head.body_len;
        if self.buf.len() < total {
            return Feed::NeedMore;
        }
        let body = self.buf[header_end..total].to_vec();
        self.buf.drain(..total);
        Feed::Request(Request {
            method: head.method,
            path: head.path,
            query: head.query,
            headers: head.headers,
            body,
        })
    }

    /// Handles end-of-stream: `None` when the peer closed between
    /// requests (a clean keep-alive shutdown), or the 400 to send when
    /// the stream ended mid-request.
    pub fn on_eof(&mut self) -> Option<Response> {
        if self.mid_request() {
            self.buf.clear();
            Some(error_response(400, "truncated request"))
        } else {
            None
        }
    }
}

/// Index one past the header terminator (`\n\n` or `\n\r\n`), if the
/// buffer holds one.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parses the request-line + headers block (excluding the terminating
/// empty line is fine — empty lines are skipped) and validates framing.
fn parse_head(head: &[u8]) -> Result<Head, Response> {
    let text = String::from_utf8_lossy(head);
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(error_response(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(error_response(400, "unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };
    let method = method.to_ascii_uppercase();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the block's own terminator
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
            }
            None => return Err(error_response(400, "malformed header")),
        }
    }

    // Framing strictness (request-smuggling class): exactly zero or one
    // Content-Length, digits only, and no Transfer-Encoding at all.
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(error_response(400, "Transfer-Encoding is not supported"));
    }
    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length").map(|(_, v)| v);
    let body_len = match lengths.next() {
        None => 0,
        Some(v) => {
            if lengths.next().is_some() {
                return Err(error_response(400, "duplicate Content-Length"));
            }
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(error_response(400, "bad Content-Length"));
            }
            let n: usize = v.parse().map_err(|_| error_response(413, "body too large"))?;
            if n > MAX_BODY_BYTES {
                return Err(error_response(413, "body too large"));
            }
            n
        }
    };
    Ok(Head { method, path, query, headers, body_len })
}

/// Outcome of reading one request off a connection.
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly (or idled out) before
    /// sending a request — not an error.
    Closed,
    /// The bytes on the wire are not a valid request; the given
    /// response should be sent before closing.
    Malformed(Response),
}

/// Reads one HTTP/1.1 request from a buffered blocking stream — the
/// convenience wrapper over [`RequestParser`] for synchronous callers
/// (tests, simple clients).
pub fn read_request(r: &mut BufReader<impl Read>) -> io::Result<ReadOutcome> {
    let mut parser = RequestParser::new();
    read_request_into(r, &mut parser)
}

/// [`read_request`], but resuming an existing parser (which may hold
/// pipelined bytes from a previous request on the same stream).
pub fn read_request_into(
    r: &mut BufReader<impl Read>,
    parser: &mut RequestParser,
) -> io::Result<ReadOutcome> {
    loop {
        match parser.next_request() {
            Feed::Request(req) => return Ok(ReadOutcome::Request(req)),
            Feed::Malformed(resp) => return Ok(ReadOutcome::Malformed(resp)),
            Feed::NeedMore => {
                let chunk = r.fill_buf()?;
                if chunk.is_empty() {
                    return Ok(match parser.on_eof() {
                        Some(resp) => ReadOutcome::Malformed(resp),
                        None => ReadOutcome::Closed,
                    });
                }
                let n = chunk.len();
                parser.push(chunk);
                r.consume(n);
            }
        }
    }
}

/// A JSON error body `{"error": msg}` with the given status.
pub fn error_response(status: u16, msg: &str) -> Response {
    let body = crate::json::Json::obj([("error", msg)]).encode().expect("finite");
    Response::json(status, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_get_with_query() {
        let ReadOutcome::Request(req) = parse("GET /stats?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        else {
            panic!("expected request")
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert_eq!(req.query.as_deref(), Some("verbose=1"));
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let raw = "POST /explain HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody";
        let ReadOutcome::Request(req) = parse(raw) else { panic!("expected request") };
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"body");
        assert!(!req.keep_alive());
    }

    #[test]
    fn eof_is_clean_close() {
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn truncated_body_is_malformed_not_hung() {
        let raw = "POST /explain HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let ReadOutcome::Malformed(resp) = parse(raw) else { panic!("expected malformed") };
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn oversized_content_length_rejected_before_reading() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let ReadOutcome::Malformed(resp) = parse(&raw) else { panic!("expected malformed") };
        assert_eq!(resp.status, 413);
    }

    #[test]
    fn malformed_inputs_get_400() {
        for raw in
            ["garbage\r\n\r\n", "GET /x SPDY/3\r\n\r\n", "GET /x HTTP/1.1\r\nnocolon\r\n\r\n"]
        {
            let ReadOutcome::Malformed(resp) = parse(raw) else {
                panic!("expected malformed for {raw:?}")
            };
            assert_eq!(resp.status, 400);
        }
    }

    #[test]
    fn response_serializes_with_length() {
        let resp = Response::json(200, "{}".as_bytes().to_vec());
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn two_requests_on_one_connection() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(raw.as_bytes());
        let mut parser = RequestParser::new();
        let ReadOutcome::Request(a) = read_request_into(&mut r, &mut parser).unwrap() else {
            panic!()
        };
        let ReadOutcome::Request(b) = read_request_into(&mut r, &mut parser).unwrap() else {
            panic!()
        };
        assert_eq!(a.path, "/healthz");
        assert_eq!(b.path, "/stats");
        assert!(matches!(read_request_into(&mut r, &mut parser).unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn byte_at_a_time_feed_reassembles() {
        let raw = "POST /explain HTTP/1.1\r\nContent-Length: 5\r\nHost: x\r\n\r\nhello";
        let mut p = RequestParser::new();
        for (i, b) in raw.as_bytes().iter().enumerate() {
            match p.next_request() {
                Feed::NeedMore => {}
                other => panic!("unexpected {other:?} after {i} bytes"),
            }
            assert_eq!(p.mid_request(), i > 0);
            p.push(&[*b]);
        }
        let Feed::Request(req) = p.next_request() else { panic!("expected request") };
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
        assert!(!p.mid_request());
        assert!(p.on_eof().is_none());
    }

    #[test]
    fn pipelined_bytes_survive_between_requests() {
        let mut p = RequestParser::new();
        p.push(b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\nGET /par");
        let Feed::Request(a) = p.next_request() else { panic!() };
        assert_eq!(a.path, "/healthz");
        let Feed::Request(b) = p.next_request() else { panic!() };
        assert_eq!(b.path, "/stats");
        // The third request is incomplete: buffered, not lost.
        assert!(matches!(p.next_request(), Feed::NeedMore));
        assert!(p.mid_request());
        p.push(b"tial HTTP/1.1\r\n\r\n");
        let Feed::Request(c) = p.next_request() else { panic!() };
        assert_eq!(c.path, "/partial");
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let mut p = RequestParser::new();
        p.push(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody");
        let Feed::Malformed(resp) = p.next_request() else { panic!("expected malformed") };
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn conflicting_content_length_is_rejected() {
        let mut p = RequestParser::new();
        p.push(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 9\r\n\r\nbody");
        let Feed::Malformed(resp) = p.next_request() else { panic!("expected malformed") };
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn non_numeric_content_length_is_rejected() {
        for v in ["4x", "-1", "+4", "4 4", "0x10", ""] {
            let mut p = RequestParser::new();
            p.push(format!("POST /x HTTP/1.1\r\nContent-Length:{v}\r\n\r\n").as_bytes());
            let Feed::Malformed(resp) = p.next_request() else {
                panic!("expected malformed for {v:?}")
            };
            assert_eq!(resp.status, 400, "{v:?}");
        }
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let mut p = RequestParser::new();
        p.push(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        let Feed::Malformed(resp) = p.next_request() else { panic!("expected malformed") };
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn unterminated_header_block_hits_cap_with_431() {
        let mut p = RequestParser::new();
        p.push(b"GET /x HTTP/1.1\r\n");
        // A slowloris stream of headers that never terminates.
        while p.buf.len() <= MAX_HEADER_BYTES {
            match p.next_request() {
                Feed::NeedMore => {}
                other => panic!("unexpected {other:?}"),
            }
            p.push(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        let Feed::Malformed(resp) = p.next_request() else { panic!("expected malformed") };
        assert_eq!(resp.status, 431);
    }

    #[test]
    fn eof_mid_request_is_a_truncation_error() {
        let mut p = RequestParser::new();
        p.push(b"GET /x HTTP/1.1\r\nHost:");
        assert!(matches!(p.next_request(), Feed::NeedMore));
        let resp = p.on_eof().expect("mid-request EOF must error");
        assert_eq!(resp.status, 400);
        // The parser is reusable (the poller drops the conn anyway).
        assert!(!p.mid_request());
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let mut p = RequestParser::new();
        p.push(b"GET /lf HTTP/1.1\nHost: x\n\n");
        let Feed::Request(req) = p.next_request() else { panic!("expected request") };
        assert_eq!(req.path, "/lf");
        assert_eq!(req.header("host"), Some("x"));
    }
}

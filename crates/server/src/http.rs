//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Just enough of RFC 9112 for a JSON service: request-line + header
//! parsing, `Content-Length` bodies, keep-alive connection reuse, and
//! response serialization. No chunked encoding, no TLS, no pipelining
//! guarantees beyond sequential request/response on one connection —
//! the service's clients are `curl`, load generators, and dashboards.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Largest accepted request body (tables are POSTed as CSV text).
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Largest accepted header section.
const MAX_HEADER_BYTES: usize = 64 << 10;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (`/explain`).
    pub path: String,
    /// Raw query string, if any (without the `?`).
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Value of query parameter `name` (`""` for a bare flag). No
    /// percent-decoding — the service's parameters are plain tokens.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (k == name).then_some(v)
        })
    }

    /// True when the client asked to keep the connection open
    /// (HTTP/1.1 defaults to keep-alive).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the standard set.
    pub headers: Vec<(String, String)>,
    /// Content type of `body`.
    pub content_type: &'static str,
    /// The payload.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// The standard reason phrase for the status code.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response, with `Connection: keep-alive|close`
    /// according to `keep_alive`.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Outcome of reading one request off a connection.
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly (or idled out) before
    /// sending a request — not an error.
    Closed,
    /// The bytes on the wire are not a valid request; the given
    /// response should be sent before closing.
    Malformed(Response),
}

/// Reads one HTTP/1.1 request from a buffered stream.
pub fn read_request(r: &mut BufReader<impl Read>) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    let mut header_bytes = 0usize;
    if read_crlf_line(r, &mut line, &mut header_bytes)? == 0 {
        return Ok(ReadOutcome::Closed);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Malformed(error_response(400, "malformed request line")));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(error_response(400, "unsupported HTTP version")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };
    let method = method.to_ascii_uppercase();

    let mut headers = Vec::new();
    loop {
        line.clear();
        if read_crlf_line(r, &mut line, &mut header_bytes)? == 0 {
            // EOF mid-headers.
            return Ok(ReadOutcome::Malformed(error_response(400, "truncated headers")));
        }
        if line.is_empty() {
            break;
        }
        if header_bytes > MAX_HEADER_BYTES {
            return Ok(ReadOutcome::Malformed(error_response(400, "headers too large")));
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
            }
            None => return Ok(ReadOutcome::Malformed(error_response(400, "malformed header"))),
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose();
    let body = match content_length {
        Err(_) => return Ok(ReadOutcome::Malformed(error_response(400, "bad Content-Length"))),
        Ok(Some(n)) if n > MAX_BODY_BYTES => {
            return Ok(ReadOutcome::Malformed(error_response(413, "body too large")))
        }
        Ok(Some(n)) => {
            // Grow with the bytes that actually arrive — never allocate
            // the full declared length up front (a header alone must
            // not be able to commit 64 MB per connection).
            let mut body = Vec::with_capacity(n.min(64 << 10));
            let read = r.by_ref().take(n as u64).read_to_end(&mut body)?;
            if read < n {
                return Ok(ReadOutcome::Malformed(error_response(400, "truncated body")));
            }
            body
        }
        Ok(None) => Vec::new(),
    };
    Ok(ReadOutcome::Request(Request { method, path, query, headers, body }))
}

/// Reads one line, stripping the trailing CRLF (or bare LF). Returns the
/// number of raw bytes consumed (0 = EOF before any byte).
fn read_crlf_line(
    r: &mut BufReader<impl Read>,
    line: &mut String,
    total: &mut usize,
) -> io::Result<usize> {
    line.clear();
    let mut buf = Vec::new();
    let n = {
        let mut limited = r.by_ref().take((MAX_HEADER_BYTES + 2) as u64);
        limited.read_until(b'\n', &mut buf)?
    };
    *total += n;
    if n == 0 {
        return Ok(0);
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => *line = s,
        Err(_) => *line = String::from("\u{FFFD}"),
    }
    Ok(n)
}

/// A JSON error body `{"error": msg}` with the given status.
pub fn error_response(status: u16, msg: &str) -> Response {
    let body = crate::json::Json::obj([("error", msg)]).encode().expect("finite");
    Response::json(status, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_get_with_query() {
        let ReadOutcome::Request(req) = parse("GET /stats?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        else {
            panic!("expected request")
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert_eq!(req.query.as_deref(), Some("verbose=1"));
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let raw = "POST /explain HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody";
        let ReadOutcome::Request(req) = parse(raw) else { panic!("expected request") };
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"body");
        assert!(!req.keep_alive());
    }

    #[test]
    fn eof_is_clean_close() {
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn truncated_body_is_malformed_not_hung() {
        let raw = "POST /explain HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let ReadOutcome::Malformed(resp) = parse(raw) else { panic!("expected malformed") };
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn oversized_content_length_rejected_before_reading() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let ReadOutcome::Malformed(resp) = parse(&raw) else { panic!("expected malformed") };
        assert_eq!(resp.status, 413);
    }

    #[test]
    fn malformed_inputs_get_400() {
        for raw in
            ["garbage\r\n\r\n", "GET /x SPDY/3\r\n\r\n", "GET /x HTTP/1.1\r\nnocolon\r\n\r\n"]
        {
            let ReadOutcome::Malformed(resp) = parse(raw) else {
                panic!("expected malformed for {raw:?}")
            };
            assert_eq!(resp.status, 400);
        }
    }

    #[test]
    fn response_serializes_with_length() {
        let resp = Response::json(200, "{}".as_bytes().to_vec());
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn two_requests_on_one_connection() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(raw.as_bytes());
        let ReadOutcome::Request(a) = read_request(&mut r).unwrap() else { panic!() };
        let ReadOutcome::Request(b) = read_request(&mut r).unwrap() else { panic!() };
        assert_eq!(a.path, "/healthz");
        assert_eq!(b.path, "/stats");
        assert!(matches!(read_request(&mut r).unwrap(), ReadOutcome::Closed));
    }
}

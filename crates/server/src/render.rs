//! Shared JSON renderings of engine results.
//!
//! One home for the wire shapes of explanations and diagnostics, used
//! by both the HTTP handlers and the CLI's `--json` output — so the two
//! surfaces cannot silently diverge when a diagnostics field is added.

use crate::json::Json;
use scorpion_core::{Diagnostics, ScoredPredicate};
use scorpion_table::Table;

/// `NaN`-safe number rendering: the wire has no NaN, so degenerate
/// values become `null`.
pub fn num_or_null(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

/// The top-`k` ranked predicates as `[{influence, predicate}]`,
/// displayed against `table`.
pub fn explanations_json(table: &Table, predicates: &[ScoredPredicate], top: usize) -> Json {
    Json::Arr(
        predicates
            .iter()
            .take(top)
            .map(|sp| {
                Json::obj([
                    ("influence", num_or_null(sp.influence)),
                    ("predicate", Json::from(sp.predicate.display(table))),
                ])
            })
            .collect(),
    )
}

/// A [`Diagnostics`] block as a JSON object.
pub fn diagnostics_json(d: &Diagnostics) -> Json {
    let phases: Vec<Json> = d
        .phases
        .iter()
        .map(|p| {
            Json::obj([
                ("name", Json::from(p.name)),
                ("ms", Json::from(p.millis())),
                ("count", Json::from(p.count)),
            ])
        })
        .collect();
    Json::obj([
        ("trace_id", Json::from(d.trace_id)),
        ("runtime_ms", Json::from(d.runtime.as_secs_f64() * 1000.0)),
        ("scorer_calls", Json::from(d.scorer_calls)),
        ("cache_hits", Json::from(d.cache_hits)),
        ("cache_evictions", Json::from(d.cache_evictions)),
        ("mask_cache_hits", Json::from(d.mask_cache_hits)),
        ("mask_cache_entries", Json::from(d.mask_cache_entries)),
        ("candidates", Json::from(d.candidates)),
        ("candidates_pruned", Json::from(d.candidates_pruned)),
        ("approx_error_bound", d.approx_error_bound.map(num_or_null).unwrap_or(Json::Null)),
        ("approx_fallback", d.approx_fallback.map(Json::from).unwrap_or(Json::Null)),
        ("partitions", Json::from(d.partitions)),
        ("budget_exhausted", Json::from(d.budget_exhausted)),
        ("resident_rows", Json::from(d.resident_rows)),
        ("resident_bytes", Json::from(d.resident_bytes)),
        ("phases", Json::Arr(phases)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_table::{Field, Predicate, Schema, TableBuilder};

    #[test]
    fn renders_nan_as_null_and_caps_top() {
        let schema = Schema::new(vec![Field::cont("x")]).unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![1.0.into()]).unwrap();
        let t = b.build();
        let preds = vec![
            ScoredPredicate::new(Predicate::all(), f64::NAN),
            ScoredPredicate::new(Predicate::all(), 2.0),
        ];
        let j = explanations_json(&t, &preds, 1);
        let arr = j.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("influence"), Some(&Json::Null));
    }

    #[test]
    fn diagnostics_encode_cleanly() {
        let d = Diagnostics {
            algorithm: "dt",
            trace_id: 42,
            scorer_calls: 7,
            mask_cache_hits: 3,
            mask_cache_entries: 2,
            phases: vec![scorpion_core::PhaseTiming {
                name: "dt.split",
                nanos: 2_500_000,
                count: 4,
            }],
            ..Diagnostics::default()
        };
        let j = diagnostics_json(&d);
        assert_eq!(j.get("trace_id").and_then(Json::as_f64), Some(42.0));
        assert_eq!(j.get("approx_error_bound"), Some(&Json::Null), "exact runs render null");
        assert_eq!(j.get("candidates_pruned").and_then(Json::as_f64), Some(0.0));
        assert_eq!(j.get("scorer_calls").and_then(Json::as_f64), Some(7.0));
        assert_eq!(j.get("mask_cache_hits").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("mask_cache_entries").and_then(Json::as_f64), Some(2.0));
        let phases = j.get("phases").and_then(Json::as_array).unwrap();
        assert_eq!(phases[0].get("name").and_then(Json::as_str), Some("dt.split"));
        assert_eq!(phases[0].get("ms").and_then(Json::as_f64), Some(2.5));
        assert_eq!(phases[0].get("count").and_then(Json::as_f64), Some(4.0));
        assert!(j.encode().is_ok());
    }

    #[test]
    fn approx_diagnostics_render() {
        let d = Diagnostics {
            algorithm: "mc",
            candidates_pruned: 12,
            approx_error_bound: Some(0.25),
            approx_fallback: Some("aggregate is not incrementally removable; scored exactly"),
            ..Diagnostics::default()
        };
        let j = diagnostics_json(&d);
        assert_eq!(j.get("candidates_pruned").and_then(Json::as_f64), Some(12.0));
        assert_eq!(j.get("approx_error_bound").and_then(Json::as_f64), Some(0.25));
        assert!(j.get("approx_fallback").and_then(Json::as_str).is_some());
    }
}

//! Lock-free service counters behind `GET /stats` and `GET /metrics`.

use crate::json::Json;
use scorpion_obs::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The endpoints tracked individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET` / `POST /tables`.
    Tables,
    /// `POST /explain`.
    Explain,
    /// `GET /stats`.
    Stats,
    /// `GET /metrics`.
    Metrics,
    /// `GET /debug/telemetry` and `GET /debug/slow`.
    Debug,
    /// Anything else (404s, bad methods, malformed requests).
    Other,
}

impl Endpoint {
    /// The label used for stats, metrics, and the flight recorder's
    /// `endpoint` dimension.
    pub fn label(self) -> &'static str {
        ENDPOINTS.iter().find(|(e, _)| *e == self).expect("known endpoint").1
    }
}

const ENDPOINTS: [(Endpoint, &str); 7] = [
    (Endpoint::Healthz, "healthz"),
    (Endpoint::Tables, "tables"),
    (Endpoint::Explain, "explain"),
    (Endpoint::Stats, "stats"),
    (Endpoint::Metrics, "metrics"),
    (Endpoint::Debug, "debug"),
    (Endpoint::Other, "other"),
];

/// Per-endpoint counters: an error count plus a log-scale latency
/// histogram (microseconds) whose exact `count`/`sum`/`max` replace the
/// old scalar mean/max counters.
#[derive(Default)]
struct EndpointStats {
    errors: AtomicU64,
    latency_us: Histogram,
}

impl EndpointStats {
    fn record(&self, status: u16, elapsed: Duration) {
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_us.record(elapsed.as_micros() as u64);
    }

    fn to_json(&self) -> Json {
        let snap = self.latency_us.snapshot();
        let ms = |us: u64| us as f64 / 1000.0;
        Json::obj([
            ("count", Json::from(snap.count())),
            ("errors", Json::from(self.errors.load(Ordering::Relaxed))),
            ("mean_ms", Json::from(snap.mean() / 1000.0)),
            ("p50_ms", Json::from(ms(snap.quantile(0.5)))),
            ("p90_ms", Json::from(ms(snap.quantile(0.9)))),
            ("p99_ms", Json::from(ms(snap.quantile(0.99)))),
            ("max_ms", Json::from(ms(snap.max()))),
        ])
    }
}

/// One endpoint's exported counters, as consumed by the `/metrics`
/// renderer: `(name, error count, latency snapshot in µs)`.
pub struct EndpointMetrics {
    /// Prometheus label value (`"explain"`, `"stats"`, …).
    pub name: &'static str,
    /// Requests answered with status ≥ 400.
    pub errors: u64,
    /// Latency distribution in microseconds.
    pub latency_us: HistogramSnapshot,
}

/// Service-wide counters: per-endpoint latency histograms plus
/// connection, load-shedding, and trace-id state.
pub struct ServerStats {
    started: Instant,
    endpoints: [EndpointStats; 7],
    connections: AtomicU64,
    shed: AtomicU64,
    trace_ids_issued: AtomicU64,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            started: Instant::now(),
            endpoints: Default::default(),
            connections: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            trace_ids_issued: AtomicU64::new(0),
        }
    }
}

impl ServerStats {
    /// Fresh counters starting now.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Seconds since the service started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Records one handled request.
    pub fn record(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        let idx = ENDPOINTS.iter().position(|(e, _)| *e == endpoint).expect("known endpoint");
        self.endpoints[idx].record(status, elapsed);
    }

    /// Issues the next request trace id from the process-wide sequence
    /// ([`scorpion_obs::next_trace_id`]) — the CLI and continuous
    /// sessions draw from the same counter, so a response header, an
    /// access-log line, and a flight-recorder event all correlate by id.
    pub fn next_trace_id(&self) -> u64 {
        self.trace_ids_issued.fetch_add(1, Ordering::Relaxed);
        scorpion_obs::next_trace_id()
    }

    /// Trace ids issued by *this* server so far.
    pub fn trace_ids_issued(&self) -> u64 {
        self.trace_ids_issued.load(Ordering::Relaxed)
    }

    /// Counts an accepted connection.
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection shed by backpressure (503 at accept).
    pub fn shed_connection(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Renders the per-endpoint section of `/stats`.
    pub fn endpoints_json(&self) -> Json {
        Json::Obj(
            ENDPOINTS
                .iter()
                .enumerate()
                .map(|(i, (_, name))| ((*name).to_owned(), self.endpoints[i].to_json()))
                .collect(),
        )
    }

    /// Per-endpoint counters for the Prometheus exposition.
    pub fn endpoint_metrics(&self) -> Vec<EndpointMetrics> {
        ENDPOINTS
            .iter()
            .enumerate()
            .map(|(i, (_, name))| EndpointMetrics {
                name,
                errors: self.endpoints[i].errors.load(Ordering::Relaxed),
                latency_us: self.endpoints[i].latency_us.snapshot(),
            })
            .collect()
    }

    /// Total accepted connections.
    pub fn connections_total(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_endpoint_latency() {
        let s = ServerStats::new();
        s.record(Endpoint::Explain, 200, Duration::from_millis(10));
        s.record(Endpoint::Explain, 400, Duration::from_millis(30));
        s.record(Endpoint::Healthz, 200, Duration::from_micros(50));
        let j = s.endpoints_json();
        let explain = j.get("explain").unwrap();
        assert_eq!(explain.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(explain.get("errors").unwrap().as_f64(), Some(1.0));
        // count and sum are exact, so the mean and max survive the
        // histogram's bucketing untouched.
        assert_eq!(explain.get("mean_ms").unwrap().as_f64(), Some(20.0));
        assert_eq!(explain.get("max_ms").unwrap().as_f64(), Some(30.0));
        // Quantiles are bucketed: within 1/16 relative error.
        let p99 = explain.get("p99_ms").unwrap().as_f64().unwrap();
        assert!((28.0..=30.0).contains(&p99), "p99_ms = {p99}");
        assert_eq!(j.get("healthz").unwrap().get("count").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn trace_ids_are_unique_and_counted() {
        let s = ServerStats::new();
        let a = s.next_trace_id();
        let b = s.next_trace_id();
        assert_ne!(a, b);
        assert_eq!(s.trace_ids_issued(), 2);
    }

    #[test]
    fn debug_endpoint_is_tracked_and_labeled() {
        assert_eq!(Endpoint::Debug.label(), "debug");
        assert_eq!(Endpoint::Explain.label(), "explain");
        let s = ServerStats::new();
        s.record(Endpoint::Debug, 200, Duration::from_micros(10));
        let j = s.endpoints_json();
        assert_eq!(j.get("debug").unwrap().get("count").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn endpoint_metrics_expose_snapshots() {
        let s = ServerStats::new();
        s.record(Endpoint::Metrics, 200, Duration::from_micros(120));
        let m = s.endpoint_metrics();
        let metrics = m.iter().find(|e| e.name == "metrics").unwrap();
        assert_eq!(metrics.latency_us.count(), 1);
        assert_eq!(metrics.latency_us.max(), 120);
    }
}

//! Lock-free service counters behind `GET /stats`.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The endpoints tracked individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET` / `POST /tables`.
    Tables,
    /// `POST /explain`.
    Explain,
    /// `GET /stats`.
    Stats,
    /// Anything else (404s, bad methods, malformed requests).
    Other,
}

const ENDPOINTS: [(Endpoint, &str); 5] = [
    (Endpoint::Healthz, "healthz"),
    (Endpoint::Tables, "tables"),
    (Endpoint::Explain, "explain"),
    (Endpoint::Stats, "stats"),
    (Endpoint::Other, "other"),
];

/// Per-endpoint counters.
#[derive(Default)]
struct EndpointStats {
    count: AtomicU64,
    errors: AtomicU64,
    micros_total: AtomicU64,
    micros_max: AtomicU64,
}

impl EndpointStats {
    fn record(&self, status: u16, elapsed: Duration) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = elapsed.as_micros() as u64;
        self.micros_total.fetch_add(us, Ordering::Relaxed);
        self.micros_max.fetch_max(us, Ordering::Relaxed);
    }

    fn to_json(&self) -> Json {
        let count = self.count.load(Ordering::Relaxed);
        let total = self.micros_total.load(Ordering::Relaxed);
        let mean_ms = if count == 0 { 0.0 } else { total as f64 / count as f64 / 1000.0 };
        Json::obj([
            ("count", Json::from(count)),
            ("errors", Json::from(self.errors.load(Ordering::Relaxed))),
            ("mean_ms", Json::from(mean_ms)),
            ("max_ms", Json::from(self.micros_max.load(Ordering::Relaxed) as f64 / 1000.0)),
        ])
    }
}

/// Service-wide counters: per-endpoint latency plus connection and
/// load-shedding totals.
pub struct ServerStats {
    started: Instant,
    endpoints: [EndpointStats; 5],
    connections: AtomicU64,
    shed: AtomicU64,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            started: Instant::now(),
            endpoints: Default::default(),
            connections: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }
}

impl ServerStats {
    /// Fresh counters starting now.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Seconds since the service started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Records one handled request.
    pub fn record(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        let idx = ENDPOINTS.iter().position(|(e, _)| *e == endpoint).expect("known endpoint");
        self.endpoints[idx].record(status, elapsed);
    }

    /// Counts an accepted connection.
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection shed by backpressure (503 at accept).
    pub fn shed_connection(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Renders the per-endpoint section of `/stats`.
    pub fn endpoints_json(&self) -> Json {
        Json::Obj(
            ENDPOINTS
                .iter()
                .enumerate()
                .map(|(i, (_, name))| ((*name).to_owned(), self.endpoints[i].to_json()))
                .collect(),
        )
    }

    /// Total accepted connections.
    pub fn connections_total(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_endpoint_latency() {
        let s = ServerStats::new();
        s.record(Endpoint::Explain, 200, Duration::from_millis(10));
        s.record(Endpoint::Explain, 400, Duration::from_millis(30));
        s.record(Endpoint::Healthz, 200, Duration::from_micros(50));
        let j = s.endpoints_json();
        let explain = j.get("explain").unwrap();
        assert_eq!(explain.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(explain.get("errors").unwrap().as_f64(), Some(1.0));
        assert_eq!(explain.get("mean_ms").unwrap().as_f64(), Some(20.0));
        assert_eq!(explain.get("max_ms").unwrap().as_f64(), Some(30.0));
        assert_eq!(j.get("healthz").unwrap().get("count").unwrap().as_f64(), Some(1.0));
    }
}

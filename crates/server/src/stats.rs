//! Lock-free service counters behind `GET /stats` and `GET /metrics`.

use crate::json::Json;
use scorpion_obs::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The endpoints tracked individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET` / `POST /tables`.
    Tables,
    /// `POST /explain`.
    Explain,
    /// `GET /stats`.
    Stats,
    /// `GET /metrics`.
    Metrics,
    /// `GET /debug/telemetry` and `GET /debug/slow`.
    Debug,
    /// Anything else (404s, bad methods, malformed requests).
    Other,
}

impl Endpoint {
    /// The label used for stats, metrics, and the flight recorder's
    /// `endpoint` dimension.
    pub fn label(self) -> &'static str {
        ENDPOINTS.iter().find(|(e, _)| *e == self).expect("known endpoint").1
    }

    /// The endpoint a parsed request targets — the attribution used
    /// *before* dispatch, so a request shed at the queue is counted
    /// against the endpoint the client actually asked for rather than
    /// lumped under [`Endpoint::Other`].
    pub fn of(method: &str, path: &str) -> Endpoint {
        match (method, path) {
            (_, "/healthz") => Endpoint::Healthz,
            (_, "/tables") => Endpoint::Tables,
            (_, "/explain") => Endpoint::Explain,
            (_, "/stats") => Endpoint::Stats,
            (_, "/metrics") => Endpoint::Metrics,
            (_, p) if p.starts_with("/debug/") => Endpoint::Debug,
            _ => Endpoint::Other,
        }
    }
}

const ENDPOINTS: [(Endpoint, &str); 7] = [
    (Endpoint::Healthz, "healthz"),
    (Endpoint::Tables, "tables"),
    (Endpoint::Explain, "explain"),
    (Endpoint::Stats, "stats"),
    (Endpoint::Metrics, "metrics"),
    (Endpoint::Debug, "debug"),
    (Endpoint::Other, "other"),
];

/// Per-endpoint counters: an error count, a shed count, and a log-scale
/// latency histogram (microseconds) whose exact `count`/`sum`/`max`
/// replace the old scalar mean/max counters.
///
/// Sheds are deliberately *not* histogram samples: a 503 turned away at
/// the queue spent no time in a worker, and folding its near-zero
/// latency into the worker histogram would drag p50 down exactly when
/// the service is most overloaded.
#[derive(Default)]
struct EndpointStats {
    errors: AtomicU64,
    sheds: AtomicU64,
    latency_us: Histogram,
}

impl EndpointStats {
    fn record(&self, status: u16, elapsed: Duration) {
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_us.record(elapsed.as_micros() as u64);
    }

    fn to_json(&self) -> Json {
        let snap = self.latency_us.snapshot();
        let ms = |us: u64| us as f64 / 1000.0;
        Json::obj([
            ("count", Json::from(snap.count())),
            ("errors", Json::from(self.errors.load(Ordering::Relaxed))),
            ("shed", Json::from(self.sheds.load(Ordering::Relaxed))),
            ("mean_ms", Json::from(snap.mean() / 1000.0)),
            ("p50_ms", Json::from(ms(snap.quantile(0.5)))),
            ("p90_ms", Json::from(ms(snap.quantile(0.9)))),
            ("p99_ms", Json::from(ms(snap.quantile(0.99)))),
            ("max_ms", Json::from(ms(snap.max()))),
        ])
    }
}

/// One endpoint's exported counters, as consumed by the `/metrics`
/// renderer: `(name, error count, shed count, latency snapshot in µs)`.
pub struct EndpointMetrics {
    /// Prometheus label value (`"explain"`, `"stats"`, …).
    pub name: &'static str,
    /// Requests answered with status ≥ 400.
    pub errors: u64,
    /// Requests shed with 503 before reaching a worker (not included in
    /// the latency distribution).
    pub sheds: u64,
    /// Latency distribution in microseconds (worker-handled requests
    /// only).
    pub latency_us: HistogramSnapshot,
}

/// Service-wide counters: per-endpoint latency histograms plus
/// connection-lifecycle, load-shedding, deadline, and trace-id state.
pub struct ServerStats {
    started: Instant,
    endpoints: [EndpointStats; 7],
    connections: AtomicU64,
    open: AtomicI64,
    parked: AtomicU64,
    shed: AtomicU64,
    read_timeouts: AtomicU64,
    write_timeouts: AtomicU64,
    deadline_exceeded: AtomicU64,
    trace_ids_issued: AtomicU64,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            started: Instant::now(),
            endpoints: Default::default(),
            connections: AtomicU64::new(0),
            open: AtomicI64::new(0),
            parked: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            write_timeouts: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            trace_ids_issued: AtomicU64::new(0),
        }
    }
}

impl ServerStats {
    /// Fresh counters starting now.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Seconds since the service started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Records one handled request.
    pub fn record(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        let idx = ENDPOINTS.iter().position(|(e, _)| *e == endpoint).expect("known endpoint");
        self.endpoints[idx].record(status, elapsed);
    }

    /// Records one request shed with 503 before dispatch. Counts as an
    /// error against the endpoint the request targeted, with *no*
    /// latency-histogram sample — the request never ran.
    pub fn record_shed(&self, endpoint: Endpoint) {
        let idx = ENDPOINTS.iter().position(|(e, _)| *e == endpoint).expect("known endpoint");
        self.endpoints[idx].sheds.fetch_add(1, Ordering::Relaxed);
        self.endpoints[idx].errors.fetch_add(1, Ordering::Relaxed);
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Issues the next request trace id from the process-wide sequence
    /// ([`scorpion_obs::next_trace_id`]) — the CLI and continuous
    /// sessions draw from the same counter, so a response header, an
    /// access-log line, and a flight-recorder event all correlate by id.
    pub fn next_trace_id(&self) -> u64 {
        self.trace_ids_issued.fetch_add(1, Ordering::Relaxed);
        scorpion_obs::next_trace_id()
    }

    /// Trace ids issued by *this* server so far.
    pub fn trace_ids_issued(&self) -> u64 {
        self.trace_ids_issued.load(Ordering::Relaxed)
    }

    /// Counts an accepted connection (total and currently open).
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection close (accepted connections only).
    pub fn connection_closed(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently open (accepted and not yet closed).
    pub fn open_connections(&self) -> i64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Publishes the poller's parked-connection gauge: connections idle
    /// between requests, held open at zero worker cost.
    pub fn set_parked(&self, parked: u64) {
        self.parked.store(parked, Ordering::Relaxed);
    }

    /// Connections currently parked on the poller.
    pub fn parked_connections(&self) -> u64 {
        self.parked.load(Ordering::Relaxed)
    }

    /// Counts a connection shed by backpressure (503 before dispatch).
    pub fn shed_connection(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests/connections shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Counts a connection closed with 408 because the client failed to
    /// deliver a complete request in time (slow reader / slowloris).
    pub fn read_timeout(&self) {
        self.read_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Read timeouts so far.
    pub fn read_timeouts_total(&self) -> u64 {
        self.read_timeouts.load(Ordering::Relaxed)
    }

    /// Counts a connection dropped because the client stopped draining
    /// its response (slow writer).
    pub fn write_timeout(&self) {
        self.write_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Write timeouts so far.
    pub fn write_timeouts_total(&self) -> u64 {
        self.write_timeouts.load(Ordering::Relaxed)
    }

    /// Counts a request answered 504 because its deadline expired.
    pub fn deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Deadline-exceeded responses so far.
    pub fn deadline_exceeded_total(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Renders the per-endpoint section of `/stats`.
    pub fn endpoints_json(&self) -> Json {
        Json::Obj(
            ENDPOINTS
                .iter()
                .enumerate()
                .map(|(i, (_, name))| ((*name).to_owned(), self.endpoints[i].to_json()))
                .collect(),
        )
    }

    /// Per-endpoint counters for the Prometheus exposition.
    pub fn endpoint_metrics(&self) -> Vec<EndpointMetrics> {
        ENDPOINTS
            .iter()
            .enumerate()
            .map(|(i, (_, name))| EndpointMetrics {
                name,
                errors: self.endpoints[i].errors.load(Ordering::Relaxed),
                sheds: self.endpoints[i].sheds.load(Ordering::Relaxed),
                latency_us: self.endpoints[i].latency_us.snapshot(),
            })
            .collect()
    }

    /// Total accepted connections.
    pub fn connections_total(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_endpoint_latency() {
        let s = ServerStats::new();
        s.record(Endpoint::Explain, 200, Duration::from_millis(10));
        s.record(Endpoint::Explain, 400, Duration::from_millis(30));
        s.record(Endpoint::Healthz, 200, Duration::from_micros(50));
        let j = s.endpoints_json();
        let explain = j.get("explain").unwrap();
        assert_eq!(explain.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(explain.get("errors").unwrap().as_f64(), Some(1.0));
        // count and sum are exact, so the mean and max survive the
        // histogram's bucketing untouched.
        assert_eq!(explain.get("mean_ms").unwrap().as_f64(), Some(20.0));
        assert_eq!(explain.get("max_ms").unwrap().as_f64(), Some(30.0));
        // Quantiles are bucketed: within 1/16 relative error.
        let p99 = explain.get("p99_ms").unwrap().as_f64().unwrap();
        assert!((28.0..=30.0).contains(&p99), "p99_ms = {p99}");
        assert_eq!(j.get("healthz").unwrap().get("count").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn sheds_count_as_errors_without_latency_samples() {
        let s = ServerStats::new();
        s.record(Endpoint::Explain, 200, Duration::from_millis(10));
        s.record_shed(Endpoint::Explain);
        s.record_shed(Endpoint::Explain);
        let j = s.endpoints_json();
        let explain = j.get("explain").unwrap();
        // The histogram saw only the handled request; the sheds are
        // errors but not samples.
        assert_eq!(explain.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(explain.get("errors").unwrap().as_f64(), Some(2.0));
        assert_eq!(explain.get("shed").unwrap().as_f64(), Some(2.0));
        assert_eq!(s.shed_total(), 2);
        let m = s.endpoint_metrics();
        let explain = m.iter().find(|e| e.name == "explain").unwrap();
        assert_eq!(explain.sheds, 2);
        assert_eq!(explain.latency_us.count(), 1);
    }

    #[test]
    fn endpoint_of_attributes_requests() {
        assert_eq!(Endpoint::of("POST", "/explain"), Endpoint::Explain);
        assert_eq!(Endpoint::of("GET", "/healthz"), Endpoint::Healthz);
        assert_eq!(Endpoint::of("GET", "/debug/slow"), Endpoint::Debug);
        assert_eq!(Endpoint::of("GET", "/nope"), Endpoint::Other);
    }

    #[test]
    fn connection_lifecycle_gauges() {
        let s = ServerStats::new();
        s.connection();
        s.connection();
        assert_eq!(s.connections_total(), 2);
        assert_eq!(s.open_connections(), 2);
        s.connection_closed();
        assert_eq!(s.open_connections(), 1);
        s.set_parked(7);
        assert_eq!(s.parked_connections(), 7);
        s.read_timeout();
        s.write_timeout();
        s.deadline_exceeded();
        assert_eq!(s.read_timeouts_total(), 1);
        assert_eq!(s.write_timeouts_total(), 1);
        assert_eq!(s.deadline_exceeded_total(), 1);
    }

    #[test]
    fn trace_ids_are_unique_and_counted() {
        let s = ServerStats::new();
        let a = s.next_trace_id();
        let b = s.next_trace_id();
        assert_ne!(a, b);
        assert_eq!(s.trace_ids_issued(), 2);
    }

    #[test]
    fn debug_endpoint_is_tracked_and_labeled() {
        assert_eq!(Endpoint::Debug.label(), "debug");
        assert_eq!(Endpoint::Explain.label(), "explain");
        let s = ServerStats::new();
        s.record(Endpoint::Debug, 200, Duration::from_micros(10));
        let j = s.endpoints_json();
        assert_eq!(j.get("debug").unwrap().get("count").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn endpoint_metrics_expose_snapshots() {
        let s = ServerStats::new();
        s.record(Endpoint::Metrics, 200, Duration::from_micros(120));
        let m = s.endpoint_metrics();
        let metrics = m.iter().find(|e| e.name == "metrics").unwrap();
        assert_eq!(metrics.latency_us.count(), 1);
        assert_eq!(metrics.latency_us.max(), 120);
    }
}

//! The registry of named, `Arc`-shared tables the service multiplexes
//! sessions over.
//!
//! Every table carries a *generation*: a monotonically increasing stamp
//! bumped each time a name is (re)loaded. Plan-cache keys embed the
//! generation, so replacing a table's data instantly invalidates every
//! warm plan prepared against the old snapshot without any scanning.

use parking_lot::RwLock;
use scorpion_table::Table;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A registered table snapshot.
#[derive(Clone)]
pub struct TableEntry {
    /// The shared, immutable data.
    pub table: Arc<Table>,
    /// Generation stamp of this snapshot.
    pub generation: u64,
}

/// Named `Arc<Table>` snapshots shared across all sessions and workers.
#[derive(Default)]
pub struct TableRegistry {
    tables: RwLock<HashMap<String, TableEntry>>,
    generation: AtomicU64,
}

impl TableRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TableRegistry::default()
    }

    /// Registers (or replaces) `name`, returning the new generation.
    pub fn insert(&self, name: impl Into<String>, table: impl Into<Arc<Table>>) -> u64 {
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        self.tables.write().insert(name.into(), TableEntry { table: table.into(), generation });
        generation
    }

    /// The current snapshot of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<TableEntry> {
        self.tables.read().get(name).cloned()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }

    /// Snapshot of all entries as `(name, entry)`, sorted by name.
    pub fn list(&self) -> Vec<(String, TableEntry)> {
        let mut out: Vec<(String, TableEntry)> =
            self.tables.read().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_table::{Field, Schema, TableBuilder};

    fn tiny() -> Table {
        let schema = Schema::new(vec![Field::cont("x")]).unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![1.0.into()]).unwrap();
        b.build()
    }

    #[test]
    fn insert_bumps_generation_per_replacement() {
        let r = TableRegistry::new();
        let g1 = r.insert("a", tiny());
        let g2 = r.insert("b", tiny());
        let g3 = r.insert("a", tiny()); // replace
        assert!(g1 < g2 && g2 < g3);
        assert_eq!(r.get("a").unwrap().generation, g3);
        assert_eq!(r.len(), 2);
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn list_is_sorted() {
        let r = TableRegistry::new();
        r.insert("zeta", tiny());
        r.insert("alpha", tiny());
        let names: Vec<String> = r.list().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}

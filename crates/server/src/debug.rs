//! `GET /debug/*`: the flight recorder over HTTP.
//!
//! Two windows into the bounded event ring `scorpion_obs::telemetry()`
//! keeps while serving:
//!
//! * `/debug/telemetry` — the resident events as JSON rows (or
//!   `?format=csv`, the exact dump `scorpion audit --telemetry-csv`
//!   reads back).
//! * `/debug/slow` — the self-explain pipeline
//!   ([`scorpion_stream::explain_latency`]): the server groups its own
//!   request telemetry into arrival-order slices, flags the slow slices
//!   with the median/MAD detector, and runs the DT engine over the
//!   request dimensions — answering "why were we slow" with an
//!   influence-ranked predicate like
//!   `algorithm in {naive} AND plan_cache in {miss}`.

use crate::http::{error_response, Request, Response};
use crate::json::Json;
use crate::render::{diagnostics_json, explanations_json, num_or_null};
use scorpion_core::{table_csv, TelemetryTable};
use scorpion_stream::{explain_latency, Audit, AuditConfig, AuditOutcome};
use scorpion_table::Table;

/// The resident telemetry events as a JSON object (or CSV with
/// `?format=csv`).
pub fn handle_telemetry(req: &Request) -> Response {
    let recorder = scorpion_obs::telemetry();
    let table = match recorder.to_table() {
        Ok(t) => t,
        Err(e) => return error_response(500, &format!("telemetry snapshot failed: {e}")),
    };
    match req.query_param("format") {
        Some("csv") => match table_csv(&table) {
            Ok(csv) => Response {
                status: 200,
                headers: Vec::new(),
                content_type: "text/csv; charset=utf-8",
                body: csv.into_bytes(),
            },
            Err(e) => error_response(500, &format!("CSV rendering failed: {e}")),
        },
        None | Some("json") => {
            let body = Json::obj([
                ("enabled", Json::from(recorder.enabled())),
                ("capacity", Json::from(recorder.capacity())),
                ("recorded", Json::from(recorder.recorded())),
                ("events", table_rows_json(&table)),
            ]);
            match body.encode() {
                Ok(text) => Response::json(200, text),
                Err(e) => error_response(500, &format!("response encoding failed: {e}")),
            }
        }
        Some(other) => error_response(400, &format!("unknown format `{other}` (json|csv)")),
    }
}

/// Runs the self-explain pipeline over the live ring. Query parameters:
/// `threshold` (modified z-score, default 3.5) and `top` (predicates
/// returned, default 3).
pub fn handle_slow(req: &Request) -> Response {
    let mut cfg = AuditConfig::default();
    if let Some(raw) = req.query_param("threshold") {
        match raw.parse::<f64>() {
            Ok(z) if z > 0.0 && z.is_finite() => cfg.threshold = z,
            _ => return error_response(400, "bad `threshold`: expected a positive number"),
        }
    }
    let top = match req.query_param("top").map(str::parse::<usize>) {
        None => 3,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => return error_response(400, "bad `top`: expected a positive integer"),
    };

    let table = match scorpion_obs::telemetry().to_table() {
        Ok(t) => t,
        Err(e) => return error_response(500, &format!("telemetry snapshot failed: {e}")),
    };
    let audit = match explain_latency(&table, &cfg) {
        Ok(a) => a,
        Err(e) => return error_response(500, &format!("self-explain failed: {e}")),
    };
    match audit_json(&audit, cfg.min_events, top).encode() {
        Ok(text) => Response::json(200, text),
        Err(e) => error_response(500, &format!("response encoding failed: {e}")),
    }
}

/// An [`Audit`] finding as JSON. The `/debug/slow` body and
/// `scorpion audit --json` both render through this, so the live and
/// offline surfaces cannot diverge.
pub fn audit_json(audit: &Audit, min_events: usize, top: usize) -> Json {
    let mut fields = vec![
        ("events".to_owned(), Json::from(audit.events)),
        ("threshold".to_owned(), Json::from(audit.threshold)),
    ];
    match &audit.outcome {
        AuditOutcome::TooFewEvents => {
            fields.push(("outcome".to_owned(), Json::from("too_few_events")));
            fields.push(("min_events".to_owned(), Json::from(min_events)));
        }
        AuditOutcome::NoOutliers { center_ms, scale_ms } => {
            fields.push(("outcome".to_owned(), Json::from("no_outliers")));
            fields.push(("center_ms".to_owned(), num_or_null(*center_ms)));
            fields.push(("scale_ms".to_owned(), num_or_null(*scale_ms)));
        }
        AuditOutcome::Explained(report) => {
            fields.push(("outcome".to_owned(), Json::from("explained")));
            fields.push(("center_ms".to_owned(), num_or_null(report.center_ms)));
            fields.push(("scale_ms".to_owned(), num_or_null(report.scale_ms)));
            let slow: Vec<Json> = report
                .slow
                .iter()
                .map(|(key, ms)| {
                    Json::obj([("slice", Json::from(key.as_str())), ("avg_ms", num_or_null(*ms))])
                })
                .collect();
            fields.push(("slow_slices".to_owned(), Json::Arr(slow)));
            fields.push((
                "explanations".to_owned(),
                explanations_json(&report.table, &report.explanation.predicates, top),
            ));
            fields.push((
                "diagnostics".to_owned(),
                diagnostics_json(&report.explanation.diagnostics),
            ));
        }
    }
    Json::Obj(fields)
}

/// One JSON object per table row, keyed by column name.
fn table_rows_json(table: &Table) -> Json {
    let schema = table.schema();
    let rows = (0..table.len())
        .map(|row| {
            Json::Obj(
                schema
                    .iter()
                    .enumerate()
                    .map(|(attr, f)| {
                        let value = match table.value(row, attr) {
                            Ok(v) => match v.as_num() {
                                Some(n) => num_or_null(n),
                                None => Json::from(v.as_str().unwrap_or("")),
                            },
                            Err(_) => Json::Null,
                        };
                        (f.name().to_owned(), value)
                    })
                    .collect(),
            )
        })
        .collect();
    Json::Arr(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::ReadOutcome;
    use std::io::BufReader;

    fn get(target: &str) -> Request {
        let raw = format!("GET {target} HTTP/1.1\r\n\r\n");
        match crate::http::read_request(&mut BufReader::new(raw.as_bytes())).unwrap() {
            ReadOutcome::Request(req) => req,
            _ => panic!("expected request"),
        }
    }

    #[test]
    fn bad_parameters_are_rejected() {
        assert_eq!(handle_slow(&get("/debug/slow?threshold=-1")).status, 400);
        assert_eq!(handle_slow(&get("/debug/slow?threshold=nope")).status, 400);
        assert_eq!(handle_slow(&get("/debug/slow?top=0")).status, 400);
        assert_eq!(handle_telemetry(&get("/debug/telemetry?format=xml")).status, 400);
    }
}

//! A bounded worker thread pool with a backpressure queue.
//!
//! Jobs land on a bounded channel; when every worker is busy and the
//! queue is full, [`WorkerPool::try_submit`] fails *immediately* so the
//! poller can shed load (HTTP 503) instead of queueing unbounded work
//! — under overload a fast rejection beats a slow timeout.
//!
//! Jobs are request-shaped: the poller submits one job per *parsed
//! request* (the connection travels inside the job), so `busy` gauges
//! in-flight requests, never idle keep-alive sockets. Note that on
//! saturation the boxed job — and any payload captured in it — is
//! dropped by the failed `try_send`; a submitter that must recover the
//! payload (the poller wants the connection back to write the 503)
//! should hold it in a shared slot rather than move it into the
//! closure.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads draining a bounded job queue.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queued: Arc<AtomicUsize>,
    busy: Arc<AtomicUsize>,
    rejected: Arc<AtomicUsize>,
}

/// A cloneable, read-only view of a pool's load gauges — shareable with
/// observers (the `/stats` endpoint) that outlive no pool reference.
#[derive(Clone, Default)]
pub struct PoolGauges {
    queued: Arc<AtomicUsize>,
    busy: Arc<AtomicUsize>,
    rejected: Arc<AtomicUsize>,
    workers: usize,
}

impl PoolGauges {
    /// Jobs accepted but not yet started.
    pub fn queue_depth(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Workers currently running a job.
    pub fn busy_workers(&self) -> usize {
        self.busy.load(Ordering::Relaxed)
    }

    /// Submissions shed because the queue was saturated.
    pub fn rejected(&self) -> usize {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue full — every worker busy and no queue slot free.
    Saturated,
    /// The pool is shutting down.
    Closed,
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue of `queue_depth` pending
    /// jobs (both forced to at least 1).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let queued = Arc::new(AtomicUsize::new(0));
        let busy = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let queued = queued.clone();
                let busy = busy.clone();
                std::thread::Builder::new()
                    .name(format!("scorpion-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &queued, &busy))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers: handles,
            queued,
            busy,
            rejected: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// A shareable view of this pool's load gauges.
    pub fn gauges(&self) -> PoolGauges {
        PoolGauges {
            queued: self.queued.clone(),
            busy: self.busy.clone(),
            rejected: self.rejected.clone(),
            workers: self.workers.len(),
        }
    }

    /// Submits a job, failing fast when the queue is full.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        self.queued.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                match e {
                    TrySendError::Full(_) => Err(SubmitError::Saturated),
                    TrySendError::Disconnected(_) => Err(SubmitError::Closed),
                }
            }
        }
    }

    /// Stops accepting jobs, drains the queue, and joins every worker.
    pub fn shutdown(&mut self) {
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Stops accepting jobs and detaches the workers instead of joining
    /// them: each exits once its current job ends and the queue drains.
    /// Used on server stop, where joining would block on idle
    /// keep-alive connections until their read timeout.
    pub fn detach(&mut self) {
        drop(self.tx.take());
        self.workers.clear();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, queued: &AtomicUsize, busy: &AtomicUsize) {
    loop {
        // Hold the receiver lock only while dequeuing, never while
        // running a job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        let Ok(job) = job else { return };
        queued.fetch_sub(1, Ordering::Relaxed);
        busy.fetch_add(1, Ordering::Relaxed);
        // A panicking job must cost one request, not one worker: catch
        // the unwind so the thread (and the busy gauge) survive.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            eprintln!("worker survived a panicking job");
        }
        busy.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn runs_jobs_on_workers() {
        let pool = WorkerPool::new(4, 8);
        let (tx, rx) = channel();
        for i in 0..32 {
            let tx = tx.clone();
            // try_submit can saturate an 8-deep queue; retry.
            loop {
                let tx2 = tx.clone();
                match pool.try_submit(move || tx2.send(i).unwrap()) {
                    Ok(()) => break,
                    Err(SubmitError::Saturated) => std::thread::yield_now(),
                    Err(SubmitError::Closed) => panic!("pool closed"),
                }
            }
        }
        let mut got: Vec<i32> =
            (0..32).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn saturation_rejects_fast() {
        let pool = WorkerPool::new(1, 1);
        let (release_tx, release_rx) = channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        // Occupy the single worker...
        let rx1 = release_rx.clone();
        pool.try_submit(move || {
            rx1.lock().unwrap().recv().unwrap();
        })
        .unwrap();
        // ...wait until it actually started...
        while pool.gauges().busy_workers() == 0 {
            std::thread::yield_now();
        }
        // ...fill the single queue slot...
        let rx2 = release_rx.clone();
        pool.try_submit(move || {
            rx2.lock().unwrap().recv().unwrap();
        })
        .unwrap();
        // ...now the pool must shed.
        let r = pool.try_submit(|| {});
        assert_eq!(r, Err(SubmitError::Saturated));
        assert_eq!(pool.gauges().rejected(), 1);
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_drains_and_joins() {
        let mut pool = WorkerPool::new(2, 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let c = counter.clone();
            pool.try_submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert!(matches!(pool.try_submit(|| {}), Err(SubmitError::Closed)));
    }
}

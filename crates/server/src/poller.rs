//! The readiness poller: the request-grained heart of the server.
//!
//! One poller thread owns the (non-blocking) listener and every parked
//! connection. It sleeps in `poll(2)` until a socket has bytes, feeds
//! them through the connection's incremental [`RequestParser`], and
//! hands each *complete parsed request* to the bounded [`WorkerPool`].
//! The connection travels with the request into the worker; after the
//! response is written, keep-alive connections come back through the
//! [`ReturnQueue`] (a self-pipe wakes the poller) and park again.
//!
//! Worker occupancy therefore tracks **in-flight requests, not open
//! sockets**: a thousand idle keep-alive dashboards cost a thousand
//! parked fds and zero workers, and a slow client can only burn the
//! poller's non-blocking read, never a worker thread.
//!
//! Slow clients are bounded in both directions: a connection that has
//! started a request but not completed it within the read timeout is
//! closed with 408 (slowloris defense), an idle parked connection is
//! silently closed after the idle timeout, and response writes carry a
//! write timeout (a peer that stops draining gets dropped, counted in
//! `write_timeouts`).

use crate::http::{error_response, Feed, Request, RequestParser, Response};
use crate::pool::{SubmitError, WorkerPool};
use crate::server::{dispatch_recorded, RequestContext, ServerState};
use crate::stats::Endpoint;
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw `poll(2)` binding — the one readiness syscall the server needs,
/// wrapped without a libc dependency.
mod sys {
    use std::os::unix::io::RawFd;

    /// There is data to read.
    pub const POLLIN: i16 = 0x001;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    /// Polls `fds` for up to `timeout_ms` (−1 = forever), retrying on
    /// EINTR. Returns the number of descriptors with non-zero `revents`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// Poller timeouts, resolved from `ServerConfig` milliseconds.
#[derive(Clone, Copy)]
pub(crate) struct PollerConfig {
    /// Max time a connection may sit mid-request before 408/close.
    pub read_timeout: Duration,
    /// Max time a parked connection may idle between requests.
    pub idle_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
}

/// One accepted connection: the socket plus its resumable parse state.
/// Closing is dropping — the `Drop` impl keeps the open-connection
/// gauge honest no matter which thread lets go of the connection.
pub(crate) struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    last_activity: Instant,
    state: Arc<ServerState>,
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.state.stats.connection_closed();
    }
}

/// The worker → poller hand-back channel: finished keep-alive
/// connections queue here, and a byte on the self-pipe wakes the poller
/// out of `poll(2)` to re-park them.
pub(crate) struct ReturnQueue {
    queue: Mutex<Vec<Conn>>,
    wake: UnixStream,
}

impl ReturnQueue {
    /// Returns a connection to the poller for re-parking.
    pub fn give(&self, conn: Conn) {
        self.queue.lock().push(conn);
        let _ = (&self.wake).write(&[1]);
    }
}

/// Read chunk size for draining ready sockets.
const READ_CHUNK: usize = 16 << 10;

/// Poll tick: the upper bound on stop-flag and timeout-sweep latency.
const POLL_TICK_MS: i32 = 100;

/// Bound on post-error drains (see [`respond_and_close`]).
const CLOSE_DRAIN_BYTES: u64 = 256 << 10;

/// The poller: accept loop + parked-connection readiness loop.
pub(crate) struct Poller {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: WorkerPool,
    stop: Arc<AtomicBool>,
    cfg: PollerConfig,
}

impl Poller {
    pub fn new(
        listener: TcpListener,
        state: Arc<ServerState>,
        pool: WorkerPool,
        stop: Arc<AtomicBool>,
        cfg: PollerConfig,
    ) -> Poller {
        Poller { listener, state, pool, stop, cfg }
    }

    /// Runs until the stop flag is set. Transient poll/accept errors are
    /// tolerated (EMFILE under fd pressure, ECONNABORTED races); only a
    /// persistently failing poll is fatal.
    pub fn run(mut self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (wake_tx, mut wake_rx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        let returns = Arc::new(ReturnQueue { queue: Mutex::new(Vec::new()), wake: wake_tx });

        let mut conns: Vec<Conn> = Vec::new();
        let mut consecutive_failures = 0u32;
        loop {
            if self.stop.load(Ordering::Relaxed) {
                self.pool.detach();
                return Ok(());
            }

            let mut fds = Vec::with_capacity(conns.len() + 2);
            fds.push(sys::PollFd { fd: wake_rx.as_raw_fd(), events: sys::POLLIN, revents: 0 });
            fds.push(sys::PollFd {
                fd: self.listener.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
            for conn in &conns {
                fds.push(sys::PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events: sys::POLLIN,
                    revents: 0,
                });
            }
            match sys::poll_fds(&mut fds, POLL_TICK_MS) {
                Ok(_) => consecutive_failures = 0,
                Err(e) => {
                    consecutive_failures += 1;
                    if consecutive_failures > 100 {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            }

            // 1. Drain the self-pipe and adopt returned connections.
            //    Adoption runs the same advance path as a readable
            //    socket: pipelined bytes already buffered in the parser
            //    must dispatch without waiting for new socket data.
            if fds[0].revents != 0 {
                let mut sink = [0u8; 64];
                while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            }
            let returned: Vec<Conn> = std::mem::take(&mut *returns.queue.lock());
            for conn in returned {
                if let Some(conn) = self.advance(conn, &returns) {
                    conns.push(conn);
                }
            }

            // 2. Accept everything pending.
            if fds[1].revents != 0 {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            self.state.stats.connection();
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_nonblocking(true);
                            conns.push(Conn {
                                stream,
                                parser: RequestParser::new(),
                                last_activity: Instant::now(),
                                state: self.state.clone(),
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }

            // 3. Advance every readable connection. Rebuilding the vec
            //    keeps the fds↔conns index mapping intact while parked
            //    survivors and dispatched/closed ones part ways.
            let parked = std::mem::take(&mut conns);
            for (i, conn) in parked.into_iter().enumerate() {
                if fds.get(i + 2).is_some_and(|f| f.revents != 0) {
                    if let Some(conn) = self.advance(conn, &returns) {
                        conns.push(conn);
                    }
                } else {
                    conns.push(conn);
                }
            }

            // 4. Sweep timeouts: mid-request staleness is a slow client
            //    (408), parked staleness is just an idle peer (silent
            //    close).
            let now = Instant::now();
            let mut survivors = Vec::with_capacity(conns.len());
            for conn in conns.drain(..) {
                let idle = now.duration_since(conn.last_activity);
                if conn.parser.mid_request() && idle >= self.cfg.read_timeout {
                    self.state.stats.read_timeout();
                    self.state.stats.record(Endpoint::Other, 408, Duration::ZERO);
                    respond_and_close(
                        conn,
                        error_response(408, "request not completed in time"),
                        self.cfg.write_timeout,
                    );
                } else if !conn.parser.mid_request() && idle >= self.cfg.idle_timeout {
                    drop(conn);
                } else {
                    survivors.push(conn);
                }
            }
            conns = survivors;
            self.state.stats.set_parked(conns.len() as u64);
        }
    }

    /// Pumps one connection: drains buffered/readable bytes through the
    /// parser, dispatching at most one request (the connection moves to
    /// the worker with it). Returns the connection if it should stay
    /// parked, `None` if it was dispatched or closed.
    fn advance(&self, mut conn: Conn, returns: &Arc<ReturnQueue>) -> Option<Conn> {
        loop {
            match conn.parser.next_request() {
                Feed::Request(req) => {
                    self.dispatch(conn, req, returns);
                    return None;
                }
                Feed::Malformed(resp) => {
                    // Unparseable framing has no endpoint to attribute.
                    self.state.stats.record(Endpoint::Other, resp.status, Duration::ZERO);
                    respond_and_close(conn, resp, self.cfg.write_timeout);
                    return None;
                }
                Feed::NeedMore => {
                    let mut buf = [0u8; READ_CHUNK];
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            if let Some(resp) = conn.parser.on_eof() {
                                self.state.stats.record(
                                    Endpoint::Other,
                                    resp.status,
                                    Duration::ZERO,
                                );
                                respond_and_close(conn, resp, self.cfg.write_timeout);
                            }
                            return None;
                        }
                        Ok(n) => {
                            conn.parser.push(&buf[..n]);
                            conn.last_activity = Instant::now();
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Some(conn),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => return None, // peer reset
                    }
                }
            }
        }
    }

    /// Hands a parsed request (and its connection) to the worker pool.
    /// On saturation the request is reclaimed from the undelivered job
    /// and shed with 503, attributed to the endpoint it targeted with
    /// zero queue-wait — never a worker-latency histogram sample.
    fn dispatch(&self, conn: Conn, req: Request, returns: &Arc<ReturnQueue>) {
        let endpoint = Endpoint::of(&req.method, &req.path);
        let received_at = Instant::now();
        // try_submit drops the job closure on saturation, so the
        // connection rides in a shared slot the poller can take back.
        let slot = Arc::new(Mutex::new(Some((conn, req))));
        let job_slot = slot.clone();
        let state = self.state.clone();
        let job_returns = returns.clone();
        let write_timeout = self.cfg.write_timeout;
        let submitted = self.pool.try_submit(move || {
            let Some((conn, req)) = job_slot.lock().take() else { return };
            handle_request(conn, req, received_at, &state, &job_returns, write_timeout);
        });
        match submitted {
            Ok(()) => {}
            Err(SubmitError::Saturated) => {
                if let Some((conn, _)) = slot.lock().take() {
                    self.state.stats.record_shed(endpoint);
                    respond_and_close(
                        conn,
                        error_response(503, "server saturated; retry later"),
                        self.cfg.write_timeout,
                    );
                }
            }
            Err(SubmitError::Closed) => drop(slot.lock().take()),
        }
    }
}

/// Worker-side request lifecycle: route, record, write, then either
/// return the connection to the poller (keep-alive) or drop it.
fn handle_request(
    mut conn: Conn,
    req: Request,
    received_at: Instant,
    state: &Arc<ServerState>,
    returns: &Arc<ReturnQueue>,
    write_timeout: Duration,
) {
    let queue_wait = received_at.elapsed();
    let keep_alive = req.keep_alive();
    let started = Instant::now();
    let ctx = RequestContext { queue_wait_us: queue_wait.as_micros() as u64, received_at };
    let (endpoint, resp, event) = dispatch_recorded(&req, state, &ctx);
    let elapsed = started.elapsed();
    state.stats.record(endpoint, resp.status, elapsed);
    let slow = state.slow_ms().is_some_and(|ms| elapsed >= Duration::from_millis(ms));
    if state.access_log() || slow {
        crate::server::access_log_line(&req, &resp, elapsed, slow, event.as_ref());
    }

    let _ = conn.stream.set_nonblocking(false);
    let _ = conn.stream.set_write_timeout(Some(write_timeout));
    let write_result = resp.write_to(&mut conn.stream, keep_alive);
    // The ring write happens after the response bytes are on the wire —
    // recording stays off the latency-critical path.
    if let Some(event) = event {
        scorpion_obs::telemetry().record(event);
    }
    match write_result {
        Err(e) => {
            if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) {
                state.stats.write_timeout();
            }
        }
        Ok(()) if keep_alive => {
            let _ = conn.stream.set_nonblocking(true);
            conn.last_activity = Instant::now();
            returns.give(conn);
        }
        Ok(()) => {}
    }
}

/// Writes a final response and closes the connection, draining a
/// bounded amount of whatever the peer is still sending first —
/// discarding unread bytes triggers a TCP RST that can destroy the
/// error response before the client reads it. The drain is
/// non-blocking: this runs on the poller thread.
fn respond_and_close(mut conn: Conn, resp: Response, write_timeout: Duration) {
    let _ = conn.stream.set_nonblocking(false);
    let _ = conn.stream.set_write_timeout(Some(write_timeout));
    if resp.write_to(&mut conn.stream, false).is_err() {
        return;
    }
    let _ = conn.stream.set_nonblocking(true);
    let mut drained = 0u64;
    let mut buf = [0u8; READ_CHUNK];
    while drained < CLOSE_DRAIN_BYTES {
        match conn.stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n as u64,
        }
    }
}

//! A minimal, dependency-free JSON value type with an encoder and a
//! parser.
//!
//! Covers the subset of RFC 8259 the service (and the CLI's `--json`
//! output) needs: all value kinds, full string escaping (including
//! `\uXXXX` with surrogate pairs), and strict rejection of trailing
//! garbage. Numbers are `f64`; encoding a non-finite number is an
//! error — JSON has no representation for NaN or infinities, and
//! silently emitting `null` would corrupt influence scores downstream.

use std::fmt;

/// A JSON value. Object members keep their insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Encoding or parsing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// Tried to encode a NaN or infinite number.
    NonFiniteNumber(f64),
    /// The input text is not valid JSON.
    Parse {
        /// Byte offset of the failure.
        at: usize,
        /// What went wrong.
        msg: &'static str,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::NonFiniteNumber(v) => {
                write!(f, "cannot encode non-finite number {v} as JSON")
            }
            JsonError::Parse { at, msg } => write!(f, "JSON parse error at byte {at}: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON operations.
pub type Result<T> = std::result::Result<T, JsonError>;

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }

    /// An array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Member `key` of an object (first occurrence), if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text. Errors on non-finite numbers.
    pub fn encode(&self) -> Result<String> {
        let mut out = String::new();
        self.encode_into(&mut out)?;
        Ok(out)
    }

    fn encode_into(&self, out: &mut String) -> Result<()> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if !v.is_finite() {
                    return Err(JsonError::NonFiniteNumber(*v));
                }
                // Shortest round-trip form; integers lose the ".0" for
                // interoperability with integer-typed consumers.
                if *v == v.trunc() && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out)?;
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parses JSON text (one value, no trailing garbage).
    pub fn parse(text: &str) -> Result<Json> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(JsonError::Parse { at: p.pos, msg: "trailing characters after value" });
        }
        Ok(v)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth cap: malformed deeply nested input must not overflow
/// the stack of a worker thread.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &'static str) -> Result<T> {
        Err(JsonError::Parse { at: self.pos, msg })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(msg)
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return self.err("invalid \\u escape"),
            };
            v = (v << 4) | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return self.err("unpaired surrogate");
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                0x10000 + (((hi as u32 - 0xD800) << 10) | (lo as u32 - 0xDC00))
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return self.err("unpaired surrogate");
                            } else {
                                hi as u32
                            };
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid code point"),
                            }
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return self.err("control character in string"),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.err("invalid number"),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("digits required after decimal point");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("digits required in exponent");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            // Overflowing literals (e.g. 1e999) parse to infinity; JSON
            // values must stay finite.
            _ => Err(JsonError::Parse { at: start, msg: "number out of range" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_and_parses_scalars() {
        for (v, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::Num(3.0), "3"),
            (Json::Num(-0.5), "-0.5"),
            (Json::Str("hi".into()), "\"hi\""),
        ] {
            assert_eq!(v.encode().unwrap(), text);
            assert_eq!(Json::parse(text).unwrap(), v);
        }
    }

    #[test]
    fn rejects_non_finite_numbers() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(Json::Num(v).encode(), Err(JsonError::NonFiniteNumber(_))));
        }
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("Infinity").is_err());
        assert!(Json::parse("1e999").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quoted\" back\\slash tab\t bell\u{07} émoji 🦂";
        let encoded = Json::Str(s.into()).encode().unwrap();
        assert_eq!(Json::parse(&encoded).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        assert_eq!(Json::parse("\"\\ud83e\\udd82\"").unwrap(), Json::Str("🦂".into()));
        assert!(Json::parse("\"\\ud83e\"").is_err()); // unpaired high
        assert!(Json::parse("\"\\udd82\"").is_err()); // unpaired low
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::from("sensors")),
            ("rows", Json::from(42u64)),
            ("tags", Json::arr(["a", "b"])),
            ("nested", Json::obj([("x", Json::Null)])),
        ]);
        let text = v.encode().unwrap();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(v.get("rows").and_then(Json::as_f64), Some(42.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"unterminated",
            "[1] garbage",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }
}

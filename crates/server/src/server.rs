//! The service: accept loop, routing, and the `/explain` handler.

use crate::cache::{PlanCache, PlanEntry, PlanKey};
use crate::http::{error_response, read_request, ReadOutcome, Request, Response};
use crate::json::Json;
use crate::pool::{PoolGauges, SubmitError, WorkerPool};
use crate::registry::{TableEntry, TableRegistry};
use crate::render::{diagnostics_json, explanations_json, num_or_null};
use crate::stats::{Endpoint, ServerStats};
use scorpion_core::{
    Algorithm, ApproxConfig, DtConfig, InfluenceParams, McConfig, NaiveConfig, ScorpionSession,
};
use scorpion_obs::{CacheHit, PromText, TelemetryEvent};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The response header carrying the per-request trace id.
pub const TRACE_ID_HEADER: &str = "x-scorpion-trace-id";

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1` by default). Port `0` binds an
    /// ephemeral port — read the actual one from
    /// [`Server::local_addr`].
    pub host: String,
    /// TCP port.
    pub port: u16,
    /// Worker threads (`0` = available parallelism).
    pub workers: usize,
    /// Backpressure queue depth: connections accepted but not yet
    /// picked up by a worker before the server starts shedding with
    /// 503s.
    pub queue_depth: usize,
    /// Plan-cache bound in sessions (`0` = default).
    pub plan_cache_entries: usize,
    /// Per-plan influence-cache bound in predicates (`0` = default).
    pub influence_cache_entries: usize,
    /// Write one access-log line per request to stderr.
    pub access_log: bool,
    /// Requests at or above this many milliseconds get an access-log
    /// line with a `slow` marker and the top-3 phases inline — emitted
    /// even when the full access log is off.
    pub slow_ms: Option<u64>,
    /// Flight-recorder ring capacity in events (`0` leaves the recorder
    /// off). The first enable in the process fixes the capacity.
    pub telemetry_events: usize,
    /// When set, enable the span recorder and dump a Chrome-trace JSON
    /// file per `/explain` request into this directory.
    pub trace_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".into(),
            port: 7070,
            workers: 0,
            queue_depth: 64,
            plan_cache_entries: 0,
            influence_cache_entries: 0,
            access_log: false,
            slow_ms: None,
            telemetry_events: scorpion_obs::DEFAULT_TELEMETRY_EVENTS,
            trace_dir: None,
        }
    }
}

/// Shared, thread-safe service state: the tables, the warm plans, and
/// the counters. Cheap to clone behind the server's `Arc`.
pub struct ServerState {
    /// Named table snapshots.
    pub registry: TableRegistry,
    /// Warm sessions keyed by (generation, SQL, labels, algorithm).
    pub plans: PlanCache,
    /// Request/latency counters.
    pub stats: ServerStats,
    influence_cache_entries: usize,
    access_log: bool,
    slow_ms: Option<u64>,
    trace_dir: Option<PathBuf>,
    pool: std::sync::OnceLock<PoolGauges>,
}

impl ServerState {
    /// Fresh state with the given cache bounds.
    pub fn new(plan_cache_entries: usize, influence_cache_entries: usize) -> Self {
        ServerState {
            registry: TableRegistry::new(),
            plans: PlanCache::with_capacity(plan_cache_entries),
            stats: ServerStats::new(),
            influence_cache_entries,
            access_log: false,
            slow_ms: None,
            trace_dir: None,
            pool: std::sync::OnceLock::new(),
        }
    }

    /// Enables the access log and/or per-request trace dumps. Setting a
    /// trace directory also turns the global span recorder on.
    pub fn with_observability(mut self, access_log: bool, trace_dir: Option<PathBuf>) -> Self {
        self.access_log = access_log;
        if trace_dir.is_some() {
            scorpion_obs::recorder().enable();
        }
        self.trace_dir = trace_dir;
        self
    }

    /// Sets the slow-request threshold: requests at or above `slow_ms`
    /// milliseconds are logged (with their phase breakdown) even when
    /// the full access log is off.
    pub fn with_slow_ms(mut self, slow_ms: Option<u64>) -> Self {
        self.slow_ms = slow_ms;
        self
    }

    /// The per-plan influence-cache bound requests are built with.
    pub fn influence_cache_entries(&self) -> usize {
        self.influence_cache_entries
    }
}

/// Idle keep-alive connections are closed after this long.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// The bound, not-yet-running service.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: WorkerPool,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            cfg.workers
        };
        let pool = WorkerPool::new(workers, cfg.queue_depth);
        if let Some(dir) = &cfg.trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        if cfg.telemetry_events > 0 {
            scorpion_obs::telemetry().enable_with_capacity(cfg.telemetry_events);
        }
        let state = Arc::new(
            ServerState::new(cfg.plan_cache_entries, cfg.influence_cache_entries)
                .with_observability(cfg.access_log, cfg.trace_dir.clone())
                .with_slow_ms(cfg.slow_ms),
        );
        let _ = state.pool.set(pool.gauges());
        Ok(Server { listener, state, pool, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state — register tables here before (or while)
    /// serving.
    pub fn state(&self) -> Arc<ServerState> {
        self.state.clone()
    }

    /// Serves until [`ServerHandle::stop`] is called (when spawned) or
    /// the process exits. Each accepted connection is dispatched to the
    /// worker pool; when the pool is saturated the connection gets an
    /// immediate 503 and is closed (load shedding).
    ///
    /// A worker stays pinned to its connection for the connection's
    /// lifetime (keep-alive included), bounded by the 10s idle read
    /// timeout — so size `workers` for the expected number of
    /// *connections*, not in-flight requests. Parking idle keep-alive
    /// connections back to a poller (freeing workers between requests)
    /// is a noted follow-on in the ROADMAP.
    pub fn run(mut self) -> std::io::Result<()> {
        let mut consecutive_failures = 0u32;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => {
                    consecutive_failures = 0;
                    accepted
                }
                // Transient accept errors (EMFILE under connection
                // pressure, ECONNABORTED races) must not kill the
                // service — back off briefly and keep accepting. Only
                // a persistently failing listener is fatal.
                Err(e) => {
                    consecutive_failures += 1;
                    if consecutive_failures > 100 {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if self.stop.load(Ordering::Relaxed) {
                self.pool.detach();
                return Ok(());
            }
            self.state.stats.connection();
            let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
            let _ = stream.set_nodelay(true);
            let state = self.state.clone();
            let submitted = self.pool.try_submit({
                let stream = stream.try_clone();
                let queued_at = Instant::now();
                move || {
                    if let Ok(stream) = stream {
                        handle_connection(stream, &state, queued_at.elapsed());
                    }
                }
            });
            match submitted {
                Ok(()) => {}
                Err(SubmitError::Closed) => return Ok(()),
                Err(SubmitError::Saturated) => {
                    self.state.stats.shed_connection();
                    let mut stream = stream;
                    let resp = error_response(503, "server saturated; retry later");
                    let _ = resp.write_to(&mut stream, false);
                }
            }
        }
    }

    /// Runs the accept loop on a background thread, returning a handle
    /// for tests, benches, and embedding.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = self.state.clone();
        let stop = self.stop.clone();
        let thread =
            std::thread::Builder::new().name("scorpion-acceptor".into()).spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle { addr, state, stop, thread: Some(thread) })
    }
}

/// Handle to a spawned server.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (register tables, read stats).
    pub fn state(&self) -> Arc<ServerState> {
        self.state.clone()
    }

    /// Stops the accept loop and joins it (the `Drop` impl does the
    /// work; this method just makes the intent explicit at call sites).
    /// In-flight worker jobs finish in the background.
    pub fn stop(self) {}
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_connection(stream: TcpStream, state: &ServerState, queue_wait: Duration) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // The pool queue is waited in once per connection, before the first
    // request; keep-alive follow-ups run on the already-pinned worker.
    let mut queue_wait_us = queue_wait.as_micros() as u64;
    loop {
        let outcome = match read_request(&mut reader) {
            Ok(o) => o,
            // Idle timeout or peer reset: close quietly.
            Err(_) => return,
        };
        match outcome {
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(resp) => {
                state.stats.record(Endpoint::Other, resp.status, Duration::ZERO);
                let _ = resp.write_to(&mut writer, false);
                // Drain (a bounded amount of) whatever the peer is
                // still sending before closing: discarding unread bytes
                // triggers a TCP RST that can destroy the error
                // response before the client reads it.
                let mut sink = std::io::sink();
                let _ = std::io::copy(&mut (&mut reader).take(1 << 20), &mut sink);
                return;
            }
            ReadOutcome::Request(req) => {
                let keep_alive = req.keep_alive();
                let started = Instant::now();
                let (endpoint, resp, event) = dispatch_recorded(&req, state, queue_wait_us);
                queue_wait_us = 0;
                let elapsed = started.elapsed();
                state.stats.record(endpoint, resp.status, elapsed);
                let slow = state.slow_ms.is_some_and(|ms| elapsed >= Duration::from_millis(ms));
                if state.access_log || slow {
                    access_log_line(&req, &resp, elapsed, slow, event.as_ref());
                }
                let write_failed = resp.write_to(&mut writer, keep_alive).is_err();
                // The ring write happens after the response bytes are on
                // the wire — recording stays off the latency-critical
                // path.
                if let Some(event) = event {
                    scorpion_obs::telemetry().record(event);
                }
                if write_failed || !keep_alive {
                    return;
                }
            }
        }
    }
}

/// One stderr line per handled request: `method path status duration_ms
/// trace_id`. Requests over the `--slow-ms` threshold get a ` slow`
/// marker plus their top-3 phases by elapsed time inline, so a single
/// grep of the log explains *where* a slow request spent its time.
/// Write errors (e.g. a closed stderr pipe) are swallowed — logging
/// must never take the service down.
fn access_log_line(
    req: &Request,
    resp: &Response,
    elapsed: Duration,
    slow: bool,
    event: Option<&TelemetryEvent>,
) {
    let trace_id = resp
        .headers
        .iter()
        .find(|(n, _)| n == TRACE_ID_HEADER)
        .map(|(_, v)| v.as_str())
        .unwrap_or("-");
    let mut line = format!(
        "{} {} {} {:.1}ms trace={}",
        req.method,
        req.path,
        resp.status,
        elapsed.as_secs_f64() * 1000.0,
        trace_id,
    );
    if slow {
        line.push_str(" slow");
        if let Some(top) = event.map(|e| e.top_phases(3)).filter(|t| !t.is_empty()) {
            line.push_str(" phases=");
            for (i, (name, us)) in top.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{name}:{:.1}ms", *us as f64 / 1000.0));
            }
        }
    }
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

/// Routes one request. Public so embedders (and the bench's in-process
/// mode) can exercise handlers without sockets. Every response carries
/// an `x-scorpion-trace-id` header unique to this request. When the
/// flight recorder is on, the request's telemetry event is recorded
/// before returning ([`dispatch_recorded`] lets the socket path defer
/// that write until after the response is on the wire).
pub fn dispatch(req: &Request, state: &ServerState) -> (Endpoint, Response) {
    let (endpoint, resp, event) = dispatch_recorded(req, state, 0);
    if let Some(event) = event {
        scorpion_obs::telemetry().record(event);
    }
    (endpoint, resp)
}

/// Routes one request and assembles — but does not record — its
/// flight-recorder event. The event is `Some` when the recorder is
/// enabled or a slow-request threshold needs phase attribution; the
/// caller owns the ring write, so it can happen off the
/// response-latency critical path.
pub fn dispatch_recorded(
    req: &Request,
    state: &ServerState,
    queue_wait_us: u64,
) -> (Endpoint, Response, Option<TelemetryEvent>) {
    let trace_id = state.stats.next_trace_id();
    let want_event = scorpion_obs::telemetry().enabled() || state.slow_ms.is_some();
    let started = Instant::now();
    let mut explain_event = None;
    let (endpoint, mut resp) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (Endpoint::Healthz, handle_healthz(state)),
        ("GET", "/tables") => (Endpoint::Tables, handle_tables_get(state)),
        ("POST", "/tables") => (Endpoint::Tables, respond(handle_tables_post(req, state))),
        ("POST", "/explain") => {
            let resp = match handle_explain(req, state, trace_id) {
                Ok((resp, event)) => {
                    explain_event = event;
                    resp
                }
                Err(resp) => resp,
            };
            (Endpoint::Explain, resp)
        }
        ("GET", "/stats") => (Endpoint::Stats, handle_stats(state)),
        ("GET", "/metrics") => (Endpoint::Metrics, handle_metrics(state)),
        ("GET", "/debug/telemetry") => (Endpoint::Debug, crate::debug::handle_telemetry(req)),
        ("GET", "/debug/slow") => (Endpoint::Debug, crate::debug::handle_slow(req)),
        (
            _,
            "/healthz" | "/tables" | "/explain" | "/stats" | "/metrics" | "/debug/telemetry"
            | "/debug/slow",
        ) => (Endpoint::Other, error_response(405, "method not allowed")),
        _ => (Endpoint::Other, error_response(404, "no such endpoint")),
    };
    resp.headers.push((TRACE_ID_HEADER.to_owned(), trace_id.to_string()));
    let event = want_event.then(|| {
        let mut event =
            explain_event.unwrap_or_else(|| TelemetryEvent::blank(trace_id, endpoint.label()));
        event.trace_id = trace_id;
        event.status = resp.status;
        event.queue_wait_us = queue_wait_us;
        event.total_us = started.elapsed().as_micros() as u64;
        event
    });
    (endpoint, resp, event)
}

fn respond(r: Result<Response, Response>) -> Response {
    r.unwrap_or_else(|e| e)
}

fn ok_json(value: &Json) -> Response {
    match value.encode() {
        Ok(body) => Response::json(200, body),
        Err(e) => error_response(500, &format!("response encoding failed: {e}")),
    }
}

fn handle_healthz(state: &ServerState) -> Response {
    ok_json(&Json::obj([
        ("status", Json::from("ok")),
        ("uptime_secs", Json::from(state.stats.uptime().as_secs())),
        ("tables", Json::from(state.registry.len())),
    ]))
}

fn handle_tables_get(state: &ServerState) -> Response {
    let tables: Vec<Json> = state
        .registry
        .list()
        .into_iter()
        .map(|(name, e)| {
            Json::obj([
                ("name", Json::from(name)),
                ("generation", Json::from(e.generation)),
                ("rows", Json::from(e.table.len())),
                ("attributes", Json::from(e.table.schema().len())),
            ])
        })
        .collect();
    ok_json(&Json::obj([("tables", Json::Arr(tables))]))
}

fn handle_tables_post(req: &Request, state: &ServerState) -> Result<Response, Response> {
    let body = parse_body(req)?;
    let name = body
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(400, "missing string field `name`"))?;
    let csv = body
        .get("csv")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(400, "missing string field `csv`"))?;
    let table = scorpion_table::csv::parse_csv(csv)
        .map_err(|e| error_response(400, &format!("CSV rejected: {e}")))?;
    let rows = table.len();
    let generation = state.registry.insert(name, table);
    Ok(ok_json(&Json::obj([
        ("name", Json::from(name)),
        ("generation", Json::from(generation)),
        ("rows", Json::from(rows)),
    ])))
}

/// Crate version baked in at compile time.
const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");
/// Git revision stamped by `build.rs` ("unknown" outside a checkout).
const BUILD_GIT: &str = env!("SCORPION_GIT_SHA");

fn handle_stats(state: &ServerState) -> Response {
    let plans = state.plans.stats();
    let pool = state.pool.get().cloned().unwrap_or_default();
    ok_json(&Json::obj([
        (
            "build",
            Json::obj([("version", Json::from(BUILD_VERSION)), ("git", Json::from(BUILD_GIT))]),
        ),
        (
            "queue",
            Json::obj([
                ("workers", Json::from(pool.workers())),
                ("busy", Json::from(pool.busy_workers())),
                ("depth", Json::from(pool.queue_depth())),
                ("rejected", Json::from(pool.rejected())),
            ]),
        ),
        ("uptime_secs", Json::from(state.stats.uptime().as_secs())),
        ("connections", Json::from(state.stats.connections_total())),
        ("shed_connections", Json::from(state.stats.shed_total())),
        ("trace_ids_issued", Json::from(state.stats.trace_ids_issued())),
        (
            "plan_cache",
            Json::obj([
                ("hits", Json::from(plans.hits)),
                ("misses", Json::from(plans.misses)),
                ("evictions", Json::from(plans.evictions)),
                ("entries", Json::from(plans.entries)),
            ]),
        ),
        ("endpoints", state.stats.endpoints_json()),
    ]))
}

/// `GET /metrics`: Prometheus text exposition (format 0.0.4) of the
/// same counters `/stats` serves as JSON, plus per-endpoint latency
/// histograms in seconds.
fn handle_metrics(state: &ServerState) -> Response {
    let mut p = PromText::new();

    p.header("scorpion_requests_total", "counter", "Requests handled, by endpoint.");
    let endpoints = state.stats.endpoint_metrics();
    for e in &endpoints {
        p.sample("scorpion_requests_total", &[("endpoint", e.name)], e.latency_us.count() as f64);
    }
    p.header(
        "scorpion_request_errors_total",
        "counter",
        "Requests answered with status >= 400, by endpoint.",
    );
    for e in &endpoints {
        p.sample("scorpion_request_errors_total", &[("endpoint", e.name)], e.errors as f64);
    }
    p.header(
        "scorpion_request_duration_seconds",
        "histogram",
        "Request handling latency, by endpoint.",
    );
    for e in &endpoints {
        if e.latency_us.count() > 0 {
            // Recorded in µs; exported in seconds.
            p.histogram(
                "scorpion_request_duration_seconds",
                &[("endpoint", e.name)],
                &e.latency_us,
                1e-6,
            );
        }
    }

    p.header("scorpion_connections_total", "counter", "TCP connections accepted.");
    p.sample("scorpion_connections_total", &[], state.stats.connections_total() as f64);
    p.header(
        "scorpion_shed_connections_total",
        "counter",
        "Connections shed with 503 under backpressure.",
    );
    p.sample("scorpion_shed_connections_total", &[], state.stats.shed_total() as f64);

    let plans = state.plans.stats();
    p.header("scorpion_plan_cache_hits_total", "counter", "Plan-cache hits.");
    p.sample("scorpion_plan_cache_hits_total", &[], plans.hits as f64);
    p.header("scorpion_plan_cache_misses_total", "counter", "Plan-cache misses.");
    p.sample("scorpion_plan_cache_misses_total", &[], plans.misses as f64);
    p.header("scorpion_plan_cache_evictions_total", "counter", "Plan-cache evictions.");
    p.sample("scorpion_plan_cache_evictions_total", &[], plans.evictions as f64);
    p.header("scorpion_plan_cache_entries", "gauge", "Warm plans resident in the cache.");
    p.sample("scorpion_plan_cache_entries", &[], plans.entries as f64);

    p.header("scorpion_registered_tables", "gauge", "Tables in the registry.");
    p.sample("scorpion_registered_tables", &[], state.registry.len() as f64);
    p.header("scorpion_table_resident_rows", "gauge", "Rows resident, by registered table.");
    let tables = state.registry.list();
    for (name, entry) in &tables {
        p.sample("scorpion_table_resident_rows", &[("table", name)], entry.table.len() as f64);
    }
    p.header(
        "scorpion_table_resident_bytes",
        "gauge",
        "Approximate columnar bytes resident, by registered table.",
    );
    for (name, entry) in &tables {
        p.sample(
            "scorpion_table_resident_bytes",
            &[("table", name)],
            entry.table.approx_bytes() as f64,
        );
    }
    p.header("scorpion_uptime_seconds", "gauge", "Seconds since the service started.");
    p.sample("scorpion_uptime_seconds", &[], state.stats.uptime().as_secs_f64());
    p.header("scorpion_build_info", "gauge", "Build metadata; value is always 1.");
    p.sample("scorpion_build_info", &[("version", BUILD_VERSION), ("git", BUILD_GIT)], 1.0);

    Response {
        status: 200,
        headers: Vec::new(),
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: p.finish().into_bytes(),
    }
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| error_response(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| error_response(400, &format!("bad JSON body: {e}")))
}

fn parse_algorithm(name: &str) -> Result<Algorithm, Response> {
    Ok(match name {
        "auto" => Algorithm::Auto,
        "dt" => Algorithm::DecisionTree(DtConfig::default()),
        "mc" => Algorithm::BottomUp(McConfig::default()),
        "naive" => Algorithm::Naive(NaiveConfig::default()),
        other => {
            return Err(error_response(
                400,
                &format!("unknown algorithm `{other}` (expected auto|dt|mc|naive)"),
            ))
        }
    })
}

/// Reads the approximate-search knobs from an `/explain` body:
/// `approx: true` opts in with defaults; `approx_rate`,
/// `approx_confidence`, and `approx_seed` override fields (any of them
/// implies opting in). Out-of-range values are a 400 whose message
/// names the valid range.
fn parse_approx(body: &Json) -> Result<Option<ApproxConfig>, Response> {
    let rate = body.get("approx_rate").and_then(Json::as_f64);
    let confidence = body.get("approx_confidence").and_then(Json::as_f64);
    let seed = body.get("approx_seed").and_then(Json::as_f64);
    let opted_in = body.get("approx").and_then(Json::as_bool).unwrap_or(false)
        || rate.is_some()
        || confidence.is_some()
        || seed.is_some();
    if !opted_in {
        return Ok(None);
    }
    let mut cfg = ApproxConfig::default();
    if let Some(r) = rate {
        cfg.sample_rate = r;
    }
    if let Some(cf) = confidence {
        cfg.confidence = cf;
    }
    if let Some(s) = seed {
        cfg.seed = s as u64;
    }
    cfg.validate().map_err(|msg| error_response(400, &msg))?;
    Ok(Some(cfg))
}

/// `POST /explain`: runs (or re-scores) the plan and renders the
/// explanation. Also assembles the request's flight-recorder event —
/// the one handler whose event carries engine facts (algorithm, cache
/// observations, phase attribution) beyond the surface dimensions.
fn handle_explain(
    req: &Request,
    state: &ServerState,
    trace_id: u64,
) -> Result<(Response, Option<TelemetryEvent>), Response> {
    let body = parse_body(req)?;
    let sql = body
        .get("sql")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(400, "missing string field `sql`"))?;
    let table_name = match body.get("table").and_then(Json::as_str) {
        Some(n) => n.to_owned(),
        // With exactly one registered table the field is optional.
        None => match &state.registry.list()[..] {
            [(only, _)] => only.clone(),
            _ => return Err(error_response(400, "missing field `table`")),
        },
    };
    let entry = state
        .registry
        .get(&table_name)
        .ok_or_else(|| error_response(404, &format!("no table named `{table_name}`")))?;

    let lambda = body.get("lambda").and_then(Json::as_f64).unwrap_or(0.5);
    let c = body.get("c").and_then(Json::as_f64).unwrap_or(0.5);
    let top = body.get("top").and_then(Json::as_f64).unwrap_or(3.0).max(1.0) as usize;
    let algorithm_name = body.get("algorithm").and_then(Json::as_str).unwrap_or("auto");
    let algorithm = parse_algorithm(algorithm_name)?;
    let approx = parse_approx(&body)?;

    // Canonical label spec for the cache key: the re-encoded raw JSON
    // label fields (parse→encode normalizes formatting). The approx
    // knobs join the key because the sampler state lives in the plan.
    let enc = |field: &str| -> String {
        body.get(field).map(|v| v.encode().unwrap_or_default()).unwrap_or_default()
    };
    let approx_spec = match &approx {
        Some(a) => format!("{}:{}:{}:{}", a.sample_rate, a.confidence, a.min_rows, a.seed),
        None => String::new(),
    };
    let labels_spec = format!(
        "o:{}|h:{}|k:{}|a:{approx_spec}",
        enc("outliers"),
        enc("holdouts"),
        enc("auto_label")
    );
    let key = PlanKey::new(&entry, &table_name, sql, &labels_spec, algorithm_name);

    let build = || -> Result<PlanEntry, Response> {
        build_plan_entry(state, &entry, sql, &body, algorithm, lambda, c, approx)
    };
    let (plan, hit) = state.plans.get_or_create(&key, build)?;

    let mut explanation = plan
        .session
        .run(InfluenceParams { lambda, c })
        .map_err(|e| error_response(500, &format!("explanation failed: {e}")))?;
    // The body's diagnostics carry the same id as the response header
    // and the flight-recorder event.
    explanation.diagnostics.trace_id = trace_id;

    let table = plan.session.request().table();
    let outlier_idx: Vec<usize> =
        plan.session.request().outliers().iter().map(|&(i, _)| i).collect();
    let holdout_idx = plan.session.request().holdouts();
    let results: Vec<Json> = plan
        .display_keys
        .iter()
        .zip(&plan.results)
        .enumerate()
        .map(|(i, (k, &v))| {
            let label = if outlier_idx.contains(&i) {
                Json::from("outlier")
            } else if holdout_idx.contains(&i) {
                Json::from("holdout")
            } else {
                Json::Null
            };
            Json::obj([
                ("key", Json::from(k.as_str())),
                ("value", num_or_null(v)),
                ("label", label),
            ])
        })
        .collect();
    let explanations = explanations_json(table, &explanation.predicates, top);
    let d = &explanation.diagnostics;
    if let Some(dir) = &state.trace_dir {
        dump_trace(dir, trace_id);
    }
    let event = (scorpion_obs::telemetry().enabled() || state.slow_ms.is_some()).then(|| {
        let mut event = TelemetryEvent::blank(trace_id, "explain");
        event.table = table_name.clone();
        event.generation = entry.generation;
        event.aggregate = plan.session.request().aggregate().name().to_owned();
        event.plan_cache = CacheHit::from_flag(hit);
        event.rows_scanned = table.len() as u64;
        event.predicates = explanation.predicates.len() as u64;
        scorpion_core::apply_diagnostics(event, d)
    });
    let resp = ok_json(&Json::obj([
        ("table", Json::from(table_name)),
        ("generation", Json::from(entry.generation)),
        ("algorithm", Json::from(d.algorithm)),
        ("plan_cache", Json::from(if hit { "hit" } else { "miss" })),
        ("trace_id", Json::from(trace_id)),
        ("lambda", Json::from(lambda)),
        ("c", Json::from(c)),
        ("results", Json::Arr(results)),
        ("explanations", explanations),
        ("diagnostics", diagnostics_json(d)),
    ]));
    Ok((resp, event))
}

/// Drains the global span recorder and writes `explain-<id>.json` in
/// Chrome trace format. Under concurrent explains the drained spans may
/// include a neighbor request's — the dump is a debugging aid, not an
/// exact per-request attribution. Failures are swallowed: tracing must
/// never fail the request.
fn dump_trace(dir: &std::path::Path, trace_id: u64) {
    let spans = scorpion_obs::recorder().drain();
    if spans.is_empty() {
        return;
    }
    let path = dir.join(format!("explain-{trace_id}.json"));
    let _ = scorpion_obs::write_chrome_trace(&path, &spans);
}

/// Builds the session and result metadata for a plan-cache miss.
#[allow(clippy::too_many_arguments)]
fn build_plan_entry(
    state: &ServerState,
    entry: &TableEntry,
    sql: &str,
    body: &Json,
    algorithm: Algorithm,
    lambda: f64,
    c: f64,
    approx: Option<ApproxConfig>,
) -> Result<PlanEntry, Response> {
    let bad = |msg: String| error_response(400, &msg);
    let builder = scorpion_core::Scorpion::on(entry.table.clone())
        .sql(sql)
        .map_err(|e| bad(format!("query failed: {e}")))?;
    let display_keys: Vec<String> = (0..builder.len()).map(|i| builder.display_key(i)).collect();
    let results = builder.results().to_vec();

    // A label is a result index (number) or a display key (string);
    // outliers may also be `{"key"|"index":…, "error": ±w}` objects.
    let resolve = |v: &Json| -> Result<usize, Response> {
        match v {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            Json::Str(k) => {
                builder.index_of_key(k).ok_or_else(|| bad(format!("unknown result key `{k}`")))
            }
            _ => Err(bad(format!("bad label {v:?}: expected index or key"))),
        }
    };
    let builder = if let Some(k) = body.get("auto_label").and_then(Json::as_f64) {
        builder.auto_label((k.max(1.0)) as usize)
    } else {
        let mut outliers = Vec::new();
        for v in body.get("outliers").and_then(Json::as_array).unwrap_or(&[]) {
            let (target, error) = match v {
                Json::Obj(_) => {
                    let error = v.get("error").and_then(Json::as_f64).unwrap_or(1.0);
                    let target = v
                        .get("key")
                        .or_else(|| v.get("index"))
                        .ok_or_else(|| bad("outlier object needs `key` or `index`".into()))?;
                    (target.clone(), error)
                }
                other => (other.clone(), 1.0),
            };
            outliers.push((resolve(&target)?, error));
        }
        let mut holdouts = Vec::new();
        for v in body.get("holdouts").and_then(Json::as_array).unwrap_or(&[]) {
            holdouts.push(resolve(v)?);
        }
        builder.outliers(outliers).holdouts(holdouts)
    };
    let mut builder = builder
        .params(lambda, c)
        .algorithm(algorithm)
        .influence_cache_entries(state.influence_cache_entries);
    if let Some(a) = approx {
        builder = builder.approx(a);
    }
    let request = builder.build().map_err(|e| bad(format!("labeling failed: {e}")))?;
    let session = ScorpionSession::new(request)
        .map_err(|e| bad(format!("session construction failed: {e}")))?;
    Ok(PlanEntry { session, display_keys, results })
}

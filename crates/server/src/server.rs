//! The service: configuration, routing, and the `/explain` handler.
//! The transport layer — readiness poller, parked connections, worker
//! dispatch — lives in `crate::poller`.

use crate::cache::{PlanCache, PlanEntry, PlanKey};
use crate::http::{error_response, Request, Response};
use crate::json::Json;
use crate::poller::{Poller, PollerConfig};
use crate::pool::{PoolGauges, WorkerPool};
use crate::registry::{TableEntry, TableRegistry};
use crate::render::{diagnostics_json, explanations_json, num_or_null};
use crate::stats::{Endpoint, ServerStats};
use scorpion_core::{
    Algorithm, ApproxConfig, DtConfig, InfluenceParams, McConfig, NaiveConfig, ScorpionSession,
};
use scorpion_obs::{CacheHit, PromText, TelemetryEvent};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The response header carrying the per-request trace id.
pub const TRACE_ID_HEADER: &str = "x-scorpion-trace-id";

/// The request header carrying a per-request deadline in milliseconds
/// (from the moment the request was fully parsed). `0` disables the
/// server's default deadline for this request. Anytime engines (MC,
/// NAIVE) return their best-so-far answer at the deadline with HTTP 504
/// and `deadline_exceeded: true` in the body; DT runs to completion and
/// only the status reflects the overrun.
pub const DEADLINE_HEADER: &str = "x-scorpion-deadline-ms";

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1` by default). Port `0` binds an
    /// ephemeral port — read the actual one from
    /// [`Server::local_addr`].
    pub host: String,
    /// TCP port.
    pub port: u16,
    /// Worker threads (`0` = available parallelism).
    pub workers: usize,
    /// Backpressure queue depth: connections accepted but not yet
    /// picked up by a worker before the server starts shedding with
    /// 503s.
    pub queue_depth: usize,
    /// Plan-cache bound in sessions (`0` = default).
    pub plan_cache_entries: usize,
    /// Per-plan influence-cache bound in predicates (`0` = default).
    pub influence_cache_entries: usize,
    /// Write one access-log line per request to stderr.
    pub access_log: bool,
    /// Requests at or above this many milliseconds get an access-log
    /// line with a `slow` marker and the top-3 phases inline — emitted
    /// even when the full access log is off.
    pub slow_ms: Option<u64>,
    /// Flight-recorder ring capacity in events (`0` leaves the recorder
    /// off). The first enable in the process fixes the capacity.
    pub telemetry_events: usize,
    /// When set, enable the span recorder and dump a Chrome-trace JSON
    /// file per `/explain` request into this directory.
    pub trace_dir: Option<PathBuf>,
    /// Default per-request deadline in milliseconds (`0` = none). A
    /// request's [`DEADLINE_HEADER`] overrides it either way.
    pub deadline_ms: u64,
    /// How long a connection may sit mid-request (bytes buffered, no
    /// complete request) before it is closed with 408 — the slowloris
    /// bound.
    pub read_timeout_ms: u64,
    /// How long a parked keep-alive connection may idle between
    /// requests before it is silently closed.
    pub idle_timeout_ms: u64,
    /// Socket write timeout for responses: a peer that stops draining
    /// its receive window for this long gets dropped.
    pub write_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".into(),
            port: 7070,
            workers: 0,
            queue_depth: 64,
            plan_cache_entries: 0,
            influence_cache_entries: 0,
            access_log: false,
            slow_ms: None,
            telemetry_events: scorpion_obs::DEFAULT_TELEMETRY_EVENTS,
            trace_dir: None,
            deadline_ms: 0,
            read_timeout_ms: 10_000,
            idle_timeout_ms: 60_000,
            write_timeout_ms: 10_000,
        }
    }
}

/// Shared, thread-safe service state: the tables, the warm plans, and
/// the counters. Cheap to clone behind the server's `Arc`.
pub struct ServerState {
    /// Named table snapshots.
    pub registry: TableRegistry,
    /// Warm sessions keyed by (generation, SQL, labels, algorithm).
    pub plans: PlanCache,
    /// Request/latency counters.
    pub stats: ServerStats,
    influence_cache_entries: usize,
    access_log: bool,
    slow_ms: Option<u64>,
    deadline_ms: u64,
    trace_dir: Option<PathBuf>,
    pool: std::sync::OnceLock<PoolGauges>,
}

impl ServerState {
    /// Fresh state with the given cache bounds.
    pub fn new(plan_cache_entries: usize, influence_cache_entries: usize) -> Self {
        ServerState {
            registry: TableRegistry::new(),
            plans: PlanCache::with_capacity(plan_cache_entries),
            stats: ServerStats::new(),
            influence_cache_entries,
            access_log: false,
            slow_ms: None,
            deadline_ms: 0,
            trace_dir: None,
            pool: std::sync::OnceLock::new(),
        }
    }

    /// Enables the access log and/or per-request trace dumps. Setting a
    /// trace directory also turns the global span recorder on.
    pub fn with_observability(mut self, access_log: bool, trace_dir: Option<PathBuf>) -> Self {
        self.access_log = access_log;
        if trace_dir.is_some() {
            scorpion_obs::recorder().enable();
        }
        self.trace_dir = trace_dir;
        self
    }

    /// Sets the slow-request threshold: requests at or above `slow_ms`
    /// milliseconds are logged (with their phase breakdown) even when
    /// the full access log is off.
    pub fn with_slow_ms(mut self, slow_ms: Option<u64>) -> Self {
        self.slow_ms = slow_ms;
        self
    }

    /// Sets the default per-request deadline in milliseconds (`0` =
    /// none; per-request [`DEADLINE_HEADER`] overrides either way).
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }

    /// The per-plan influence-cache bound requests are built with.
    pub fn influence_cache_entries(&self) -> usize {
        self.influence_cache_entries
    }

    pub(crate) fn access_log(&self) -> bool {
        self.access_log
    }

    pub(crate) fn slow_ms(&self) -> Option<u64> {
        self.slow_ms
    }
}

/// The bound, not-yet-running service.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: WorkerPool,
    stop: Arc<AtomicBool>,
    poller_cfg: PollerConfig,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            cfg.workers
        };
        let pool = WorkerPool::new(workers, cfg.queue_depth);
        if let Some(dir) = &cfg.trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        if cfg.telemetry_events > 0 {
            scorpion_obs::telemetry().enable_with_capacity(cfg.telemetry_events);
        }
        let state = Arc::new(
            ServerState::new(cfg.plan_cache_entries, cfg.influence_cache_entries)
                .with_observability(cfg.access_log, cfg.trace_dir.clone())
                .with_slow_ms(cfg.slow_ms)
                .with_deadline_ms(cfg.deadline_ms),
        );
        let _ = state.pool.set(pool.gauges());
        // A zero timeout would close every connection on the first
        // sweep; treat it as "use the default".
        let ms = |v: u64, default: u64| Duration::from_millis(if v == 0 { default } else { v });
        let poller_cfg = PollerConfig {
            read_timeout: ms(cfg.read_timeout_ms, 10_000),
            idle_timeout: ms(cfg.idle_timeout_ms, 60_000),
            write_timeout: ms(cfg.write_timeout_ms, 10_000),
        };
        Ok(Server { listener, state, pool, stop: Arc::new(AtomicBool::new(false)), poller_cfg })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state — register tables here before (or while)
    /// serving.
    pub fn state(&self) -> Arc<ServerState> {
        self.state.clone()
    }

    /// Serves until [`ServerHandle::stop`] is called (when spawned) or
    /// the process exits.
    ///
    /// The serving core is request-grained: a readiness poller owns the
    /// listener and every idle keep-alive connection, and hands each
    /// *complete parsed request* to the worker pool — so size `workers`
    /// for expected concurrent requests, not open sockets; hundreds of
    /// parked dashboards cost file descriptors, never workers. When the
    /// pool is saturated the request is shed with an immediate 503
    /// (attributed to its endpoint in `/stats`), slow clients are
    /// bounded by the read/write timeouts (408/close), and idle parked
    /// connections are reaped after the idle timeout.
    pub fn run(self) -> std::io::Result<()> {
        Poller::new(self.listener, self.state, self.pool, self.stop, self.poller_cfg).run()
    }

    /// Runs the accept loop on a background thread, returning a handle
    /// for tests, benches, and embedding.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = self.state.clone();
        let stop = self.stop.clone();
        let thread =
            std::thread::Builder::new().name("scorpion-acceptor".into()).spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle { addr, state, stop, thread: Some(thread) })
    }
}

/// Handle to a spawned server.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (register tables, read stats).
    pub fn state(&self) -> Arc<ServerState> {
        self.state.clone()
    }

    /// Stops the accept loop and joins it (the `Drop` impl does the
    /// work; this method just makes the intent explicit at call sites).
    /// In-flight worker jobs finish in the background.
    pub fn stop(self) {}
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Per-request transport context the poller hands to the router.
pub struct RequestContext {
    /// Microseconds the parsed request waited for a worker.
    pub queue_wait_us: u64,
    /// When the request was fully parsed off the socket — deadlines
    /// count from here, so queue wait burns deadline budget.
    pub received_at: Instant,
}

impl RequestContext {
    /// A context for in-process dispatch (no socket, no queue wait).
    pub fn immediate() -> RequestContext {
        RequestContext { queue_wait_us: 0, received_at: Instant::now() }
    }
}

/// One stderr line per handled request: `method path status duration_ms
/// trace_id`. Requests over the `--slow-ms` threshold get a ` slow`
/// marker plus their top-3 phases by elapsed time inline, so a single
/// grep of the log explains *where* a slow request spent its time.
/// Write errors (e.g. a closed stderr pipe) are swallowed — logging
/// must never take the service down.
pub(crate) fn access_log_line(
    req: &Request,
    resp: &Response,
    elapsed: Duration,
    slow: bool,
    event: Option<&TelemetryEvent>,
) {
    let trace_id = resp
        .headers
        .iter()
        .find(|(n, _)| n == TRACE_ID_HEADER)
        .map(|(_, v)| v.as_str())
        .unwrap_or("-");
    let mut line = format!(
        "{} {} {} {:.1}ms trace={}",
        req.method,
        req.path,
        resp.status,
        elapsed.as_secs_f64() * 1000.0,
        trace_id,
    );
    if slow {
        line.push_str(" slow");
        if let Some(top) = event.map(|e| e.top_phases(3)).filter(|t| !t.is_empty()) {
            line.push_str(" phases=");
            for (i, (name, us)) in top.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{name}:{:.1}ms", *us as f64 / 1000.0));
            }
        }
    }
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

/// Routes one request. Public so embedders (and the bench's in-process
/// mode) can exercise handlers without sockets. Every response carries
/// an `x-scorpion-trace-id` header unique to this request. When the
/// flight recorder is on, the request's telemetry event is recorded
/// before returning ([`dispatch_recorded`] lets the socket path defer
/// that write until after the response is on the wire).
pub fn dispatch(req: &Request, state: &ServerState) -> (Endpoint, Response) {
    let (endpoint, resp, event) = dispatch_recorded(req, state, &RequestContext::immediate());
    if let Some(event) = event {
        scorpion_obs::telemetry().record(event);
    }
    (endpoint, resp)
}

/// Resolves the request's absolute deadline: [`DEADLINE_HEADER`]
/// (strictly parsed, `0` disables) overrides the server default, which
/// also treats `0` as "none". Errs with the 400 message for a
/// malformed header.
fn request_deadline(
    req: &Request,
    state: &ServerState,
    ctx: &RequestContext,
) -> Result<Option<Instant>, String> {
    let ms = match req.header(DEADLINE_HEADER) {
        Some(v) => v.parse::<u64>().map_err(|_| {
            format!("bad {DEADLINE_HEADER}: expected whole milliseconds, got `{v}`")
        })?,
        None => state.deadline_ms,
    };
    if ms == 0 {
        return Ok(None);
    }
    // Saturate absurd values (u64::MAX ms overflows Instant) to "none".
    Ok(ctx.received_at.checked_add(Duration::from_millis(ms)))
}

/// Routes one request and assembles — but does not record — its
/// flight-recorder event. The event is `Some` when the recorder is
/// enabled or a slow-request threshold needs phase attribution; the
/// caller owns the ring write, so it can happen off the
/// response-latency critical path.
pub fn dispatch_recorded(
    req: &Request,
    state: &ServerState,
    ctx: &RequestContext,
) -> (Endpoint, Response, Option<TelemetryEvent>) {
    let trace_id = state.stats.next_trace_id();
    let want_event = scorpion_obs::telemetry().enabled() || state.slow_ms.is_some();
    let started = Instant::now();
    let mut explain_event = None;
    let (endpoint, mut resp) = match request_deadline(req, state, ctx) {
        // A malformed deadline is the *request's* fault, attributed to
        // the endpoint it targeted.
        Err(msg) => (Endpoint::of(&req.method, &req.path), error_response(400, &msg)),
        Ok(deadline) => match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => (Endpoint::Healthz, handle_healthz(state)),
            ("GET", "/tables") => (Endpoint::Tables, handle_tables_get(state)),
            ("POST", "/tables") => (Endpoint::Tables, respond(handle_tables_post(req, state))),
            ("POST", "/explain") => {
                let resp = match handle_explain(req, state, trace_id, deadline) {
                    Ok((resp, event)) => {
                        explain_event = event;
                        resp
                    }
                    Err(resp) => resp,
                };
                (Endpoint::Explain, resp)
            }
            ("GET", "/stats") => (Endpoint::Stats, handle_stats(state)),
            ("GET", "/metrics") => (Endpoint::Metrics, handle_metrics(state)),
            ("GET", "/debug/telemetry") => (Endpoint::Debug, crate::debug::handle_telemetry(req)),
            ("GET", "/debug/slow") => (Endpoint::Debug, crate::debug::handle_slow(req)),
            (
                _,
                "/healthz" | "/tables" | "/explain" | "/stats" | "/metrics" | "/debug/telemetry"
                | "/debug/slow",
            ) => (Endpoint::Other, error_response(405, "method not allowed")),
            _ => (Endpoint::Other, error_response(404, "no such endpoint")),
        },
    };
    resp.headers.push((TRACE_ID_HEADER.to_owned(), trace_id.to_string()));
    let event = want_event.then(|| {
        let mut event =
            explain_event.unwrap_or_else(|| TelemetryEvent::blank(trace_id, endpoint.label()));
        event.trace_id = trace_id;
        event.status = resp.status;
        event.queue_wait_us = ctx.queue_wait_us;
        event.total_us = started.elapsed().as_micros() as u64;
        event
    });
    (endpoint, resp, event)
}

fn respond(r: Result<Response, Response>) -> Response {
    r.unwrap_or_else(|e| e)
}

fn ok_json(value: &Json) -> Response {
    json_response(200, value)
}

fn json_response(status: u16, value: &Json) -> Response {
    match value.encode() {
        Ok(body) => Response::json(status, body),
        Err(e) => error_response(500, &format!("response encoding failed: {e}")),
    }
}

fn handle_healthz(state: &ServerState) -> Response {
    ok_json(&Json::obj([
        ("status", Json::from("ok")),
        ("uptime_secs", Json::from(state.stats.uptime().as_secs())),
        ("tables", Json::from(state.registry.len())),
    ]))
}

fn handle_tables_get(state: &ServerState) -> Response {
    let tables: Vec<Json> = state
        .registry
        .list()
        .into_iter()
        .map(|(name, e)| {
            Json::obj([
                ("name", Json::from(name)),
                ("generation", Json::from(e.generation)),
                ("rows", Json::from(e.table.len())),
                ("attributes", Json::from(e.table.schema().len())),
            ])
        })
        .collect();
    ok_json(&Json::obj([("tables", Json::Arr(tables))]))
}

fn handle_tables_post(req: &Request, state: &ServerState) -> Result<Response, Response> {
    let body = parse_body(req)?;
    let name = body
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(400, "missing string field `name`"))?;
    let csv = body
        .get("csv")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(400, "missing string field `csv`"))?;
    let table = scorpion_table::csv::parse_csv(csv)
        .map_err(|e| error_response(400, &format!("CSV rejected: {e}")))?;
    let rows = table.len();
    let generation = state.registry.insert(name, table);
    Ok(ok_json(&Json::obj([
        ("name", Json::from(name)),
        ("generation", Json::from(generation)),
        ("rows", Json::from(rows)),
    ])))
}

/// Crate version baked in at compile time.
const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");
/// Git revision stamped by `build.rs` ("unknown" outside a checkout).
const BUILD_GIT: &str = env!("SCORPION_GIT_SHA");

fn handle_stats(state: &ServerState) -> Response {
    let plans = state.plans.stats();
    let pool = state.pool.get().cloned().unwrap_or_default();
    ok_json(&Json::obj([
        (
            "build",
            Json::obj([("version", Json::from(BUILD_VERSION)), ("git", Json::from(BUILD_GIT))]),
        ),
        (
            "queue",
            Json::obj([
                ("workers", Json::from(pool.workers())),
                ("busy", Json::from(pool.busy_workers())),
                ("depth", Json::from(pool.queue_depth())),
                ("rejected", Json::from(pool.rejected())),
            ]),
        ),
        ("uptime_secs", Json::from(state.stats.uptime().as_secs())),
        ("connections", Json::from(state.stats.connections_total())),
        ("open_connections", Json::from(state.stats.open_connections().max(0) as u64)),
        ("parked_connections", Json::from(state.stats.parked_connections())),
        ("shed_requests", Json::from(state.stats.shed_total())),
        ("read_timeouts", Json::from(state.stats.read_timeouts_total())),
        ("write_timeouts", Json::from(state.stats.write_timeouts_total())),
        ("deadline_exceeded", Json::from(state.stats.deadline_exceeded_total())),
        ("trace_ids_issued", Json::from(state.stats.trace_ids_issued())),
        (
            "plan_cache",
            Json::obj([
                ("hits", Json::from(plans.hits)),
                ("misses", Json::from(plans.misses)),
                ("evictions", Json::from(plans.evictions)),
                ("admission_denied", Json::from(plans.admission_denied)),
                ("entries", Json::from(plans.entries)),
            ]),
        ),
        ("endpoints", state.stats.endpoints_json()),
    ]))
}

/// `GET /metrics`: Prometheus text exposition (format 0.0.4) of the
/// same counters `/stats` serves as JSON, plus per-endpoint latency
/// histograms in seconds.
fn handle_metrics(state: &ServerState) -> Response {
    let mut p = PromText::new();

    p.header("scorpion_requests_total", "counter", "Requests handled, by endpoint.");
    let endpoints = state.stats.endpoint_metrics();
    for e in &endpoints {
        p.sample("scorpion_requests_total", &[("endpoint", e.name)], e.latency_us.count() as f64);
    }
    p.header(
        "scorpion_request_errors_total",
        "counter",
        "Requests answered with status >= 400, by endpoint.",
    );
    for e in &endpoints {
        p.sample("scorpion_request_errors_total", &[("endpoint", e.name)], e.errors as f64);
    }
    p.header(
        "scorpion_request_sheds_total",
        "counter",
        "Requests shed with 503 before dispatch, by targeted endpoint.",
    );
    for e in &endpoints {
        p.sample("scorpion_request_sheds_total", &[("endpoint", e.name)], e.sheds as f64);
    }
    p.header(
        "scorpion_request_duration_seconds",
        "histogram",
        "Request handling latency, by endpoint.",
    );
    for e in &endpoints {
        if e.latency_us.count() > 0 {
            // Recorded in µs; exported in seconds.
            p.histogram(
                "scorpion_request_duration_seconds",
                &[("endpoint", e.name)],
                &e.latency_us,
                1e-6,
            );
        }
    }

    p.header("scorpion_connections_total", "counter", "TCP connections accepted.");
    p.sample("scorpion_connections_total", &[], state.stats.connections_total() as f64);
    p.header("scorpion_open_connections", "gauge", "Connections currently open.");
    p.sample("scorpion_open_connections", &[], state.stats.open_connections().max(0) as f64);
    p.header(
        "scorpion_parked_connections",
        "gauge",
        "Idle keep-alive connections parked on the poller (zero worker cost).",
    );
    p.sample("scorpion_parked_connections", &[], state.stats.parked_connections() as f64);
    p.header(
        "scorpion_shed_requests_total",
        "counter",
        "Requests shed with 503 under backpressure.",
    );
    p.sample("scorpion_shed_requests_total", &[], state.stats.shed_total() as f64);
    p.header(
        "scorpion_read_timeouts_total",
        "counter",
        "Connections closed with 408: no complete request within the read timeout.",
    );
    p.sample("scorpion_read_timeouts_total", &[], state.stats.read_timeouts_total() as f64);
    p.header(
        "scorpion_write_timeouts_total",
        "counter",
        "Connections dropped because the peer stopped draining its response.",
    );
    p.sample("scorpion_write_timeouts_total", &[], state.stats.write_timeouts_total() as f64);
    p.header(
        "scorpion_deadline_exceeded_total",
        "counter",
        "Requests answered 504 because their deadline expired.",
    );
    p.sample("scorpion_deadline_exceeded_total", &[], state.stats.deadline_exceeded_total() as f64);

    let plans = state.plans.stats();
    p.header("scorpion_plan_cache_hits_total", "counter", "Plan-cache hits.");
    p.sample("scorpion_plan_cache_hits_total", &[], plans.hits as f64);
    p.header("scorpion_plan_cache_misses_total", "counter", "Plan-cache misses.");
    p.sample("scorpion_plan_cache_misses_total", &[], plans.misses as f64);
    p.header("scorpion_plan_cache_evictions_total", "counter", "Plan-cache evictions.");
    p.sample("scorpion_plan_cache_evictions_total", &[], plans.evictions as f64);
    p.header(
        "scorpion_plan_cache_admission_denied_total",
        "counter",
        "Plans built but not cached: admission would have evicted a far more expensive plan.",
    );
    p.sample("scorpion_plan_cache_admission_denied_total", &[], plans.admission_denied as f64);
    p.header("scorpion_plan_cache_entries", "gauge", "Warm plans resident in the cache.");
    p.sample("scorpion_plan_cache_entries", &[], plans.entries as f64);

    p.header("scorpion_registered_tables", "gauge", "Tables in the registry.");
    p.sample("scorpion_registered_tables", &[], state.registry.len() as f64);
    p.header("scorpion_table_resident_rows", "gauge", "Rows resident, by registered table.");
    let tables = state.registry.list();
    for (name, entry) in &tables {
        p.sample("scorpion_table_resident_rows", &[("table", name)], entry.table.len() as f64);
    }
    p.header(
        "scorpion_table_resident_bytes",
        "gauge",
        "Approximate columnar bytes resident, by registered table.",
    );
    for (name, entry) in &tables {
        p.sample(
            "scorpion_table_resident_bytes",
            &[("table", name)],
            entry.table.approx_bytes() as f64,
        );
    }
    p.header("scorpion_uptime_seconds", "gauge", "Seconds since the service started.");
    p.sample("scorpion_uptime_seconds", &[], state.stats.uptime().as_secs_f64());
    p.header("scorpion_build_info", "gauge", "Build metadata; value is always 1.");
    p.sample("scorpion_build_info", &[("version", BUILD_VERSION), ("git", BUILD_GIT)], 1.0);

    Response {
        status: 200,
        headers: Vec::new(),
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: p.finish().into_bytes(),
    }
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| error_response(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| error_response(400, &format!("bad JSON body: {e}")))
}

fn parse_algorithm(name: &str) -> Result<Algorithm, Response> {
    Ok(match name {
        "auto" => Algorithm::Auto,
        "dt" => Algorithm::DecisionTree(DtConfig::default()),
        "mc" => Algorithm::BottomUp(McConfig::default()),
        "naive" => Algorithm::Naive(NaiveConfig::default()),
        other => {
            return Err(error_response(
                400,
                &format!("unknown algorithm `{other}` (expected auto|dt|mc|naive)"),
            ))
        }
    })
}

/// Reads the approximate-search knobs from an `/explain` body:
/// `approx: true` opts in with defaults; `approx_rate`,
/// `approx_confidence`, and `approx_seed` override fields (any of them
/// implies opting in). Out-of-range values are a 400 whose message
/// names the valid range.
fn parse_approx(body: &Json) -> Result<Option<ApproxConfig>, Response> {
    let rate = body.get("approx_rate").and_then(Json::as_f64);
    let confidence = body.get("approx_confidence").and_then(Json::as_f64);
    let seed = body.get("approx_seed").and_then(Json::as_f64);
    let opted_in = body.get("approx").and_then(Json::as_bool).unwrap_or(false)
        || rate.is_some()
        || confidence.is_some()
        || seed.is_some();
    if !opted_in {
        return Ok(None);
    }
    let mut cfg = ApproxConfig::default();
    if let Some(r) = rate {
        cfg.sample_rate = r;
    }
    if let Some(cf) = confidence {
        cfg.confidence = cf;
    }
    if let Some(s) = seed {
        cfg.seed = s as u64;
    }
    cfg.validate().map_err(|msg| error_response(400, &msg))?;
    Ok(Some(cfg))
}

/// `POST /explain`: runs (or re-scores) the plan and renders the
/// explanation. Also assembles the request's flight-recorder event —
/// the one handler whose event carries engine facts (algorithm, cache
/// observations, phase attribution) beyond the surface dimensions.
///
/// When a deadline is set, the remaining time becomes the engine's
/// anytime budget: MC and NAIVE return their best-so-far answer when it
/// runs out (status 504, full diagnostics, `deadline_exceeded: true`);
/// DT is uninterruptible, so it finishes and only the status reflects
/// the overrun. A deadline that expired before execution starts is a
/// bodyless-diagnostics 504.
fn handle_explain(
    req: &Request,
    state: &ServerState,
    trace_id: u64,
    deadline: Option<Instant>,
) -> Result<(Response, Option<TelemetryEvent>), Response> {
    let body = parse_body(req)?;
    let sql = body
        .get("sql")
        .and_then(Json::as_str)
        .ok_or_else(|| error_response(400, "missing string field `sql`"))?;
    let table_name = match body.get("table").and_then(Json::as_str) {
        Some(n) => n.to_owned(),
        // With exactly one registered table the field is optional.
        None => match &state.registry.list()[..] {
            [(only, _)] => only.clone(),
            _ => return Err(error_response(400, "missing field `table`")),
        },
    };
    let entry = state
        .registry
        .get(&table_name)
        .ok_or_else(|| error_response(404, &format!("no table named `{table_name}`")))?;

    let lambda = body.get("lambda").and_then(Json::as_f64).unwrap_or(0.5);
    let c = body.get("c").and_then(Json::as_f64).unwrap_or(0.5);
    let top = body.get("top").and_then(Json::as_f64).unwrap_or(3.0).max(1.0) as usize;
    let algorithm_name = body.get("algorithm").and_then(Json::as_str).unwrap_or("auto");
    let algorithm = parse_algorithm(algorithm_name)?;
    let approx = parse_approx(&body)?;

    // Canonical label spec for the cache key: the re-encoded raw JSON
    // label fields (parse→encode normalizes formatting). The approx
    // knobs join the key because the sampler state lives in the plan.
    let enc = |field: &str| -> String {
        body.get(field).map(|v| v.encode().unwrap_or_default()).unwrap_or_default()
    };
    let approx_spec = match &approx {
        Some(a) => format!("{}:{}:{}:{}", a.sample_rate, a.confidence, a.min_rows, a.seed),
        None => String::new(),
    };
    let labels_spec = format!(
        "o:{}|h:{}|k:{}|a:{approx_spec}",
        enc("outliers"),
        enc("holdouts"),
        enc("auto_label")
    );
    let key = PlanKey::new(&entry, &table_name, sql, &labels_spec, algorithm_name);

    let build = || -> Result<PlanEntry, Response> {
        build_plan_entry(state, &entry, sql, &body, algorithm, lambda, c, approx)
    };
    let (plan, hit) = state.plans.get_or_create(&key, build)?;

    let budget = match deadline {
        None => None,
        Some(d) => match d.checked_duration_since(Instant::now()) {
            Some(remaining) => Some(remaining),
            None => {
                state.stats.deadline_exceeded();
                return Err(error_response(504, "deadline exceeded before execution"));
            }
        },
    };
    let mut explanation = plan
        .session
        .run_with_budget(InfluenceParams { lambda, c }, budget)
        .map_err(|e| error_response(500, &format!("explanation failed: {e}")))?;
    let deadline_hit = deadline.is_some_and(|d| Instant::now() >= d);
    if deadline_hit {
        state.stats.deadline_exceeded();
    }
    // The body's diagnostics carry the same id as the response header
    // and the flight-recorder event.
    explanation.diagnostics.trace_id = trace_id;

    let table = plan.session.request().table();
    let outlier_idx: Vec<usize> =
        plan.session.request().outliers().iter().map(|&(i, _)| i).collect();
    let holdout_idx = plan.session.request().holdouts();
    let results: Vec<Json> = plan
        .display_keys
        .iter()
        .zip(&plan.results)
        .enumerate()
        .map(|(i, (k, &v))| {
            let label = if outlier_idx.contains(&i) {
                Json::from("outlier")
            } else if holdout_idx.contains(&i) {
                Json::from("holdout")
            } else {
                Json::Null
            };
            Json::obj([
                ("key", Json::from(k.as_str())),
                ("value", num_or_null(v)),
                ("label", label),
            ])
        })
        .collect();
    let explanations = explanations_json(table, &explanation.predicates, top);
    let d = &explanation.diagnostics;
    if let Some(dir) = &state.trace_dir {
        dump_trace(dir, trace_id);
    }
    let event = (scorpion_obs::telemetry().enabled() || state.slow_ms.is_some()).then(|| {
        let mut event = TelemetryEvent::blank(trace_id, "explain");
        event.table = table_name.clone();
        event.generation = entry.generation;
        event.aggregate = plan.session.request().aggregate().name().to_owned();
        event.plan_cache = CacheHit::from_flag(hit);
        event.rows_scanned = table.len() as u64;
        event.predicates = explanation.predicates.len() as u64;
        scorpion_core::apply_diagnostics(event, d)
    });
    let body = Json::obj([
        ("table", Json::from(table_name)),
        ("generation", Json::from(entry.generation)),
        ("algorithm", Json::from(d.algorithm)),
        ("plan_cache", Json::from(if hit { "hit" } else { "miss" })),
        ("trace_id", Json::from(trace_id)),
        ("lambda", Json::from(lambda)),
        ("c", Json::from(c)),
        ("deadline_exceeded", Json::from(deadline_hit)),
        ("results", Json::Arr(results)),
        ("explanations", explanations),
        ("diagnostics", diagnostics_json(d)),
    ]);
    // A deadline overrun still carries the full (best-so-far) body —
    // the 504 status tells the caller the search was truncated.
    let resp = json_response(if deadline_hit { 504 } else { 200 }, &body);
    Ok((resp, event))
}

/// Drains the global span recorder and writes `explain-<id>.json` in
/// Chrome trace format. Under concurrent explains the drained spans may
/// include a neighbor request's — the dump is a debugging aid, not an
/// exact per-request attribution. Failures are swallowed: tracing must
/// never fail the request.
fn dump_trace(dir: &std::path::Path, trace_id: u64) {
    let spans = scorpion_obs::recorder().drain();
    if spans.is_empty() {
        return;
    }
    let path = dir.join(format!("explain-{trace_id}.json"));
    let _ = scorpion_obs::write_chrome_trace(&path, &spans);
}

/// Builds the session and result metadata for a plan-cache miss.
#[allow(clippy::too_many_arguments)]
fn build_plan_entry(
    state: &ServerState,
    entry: &TableEntry,
    sql: &str,
    body: &Json,
    algorithm: Algorithm,
    lambda: f64,
    c: f64,
    approx: Option<ApproxConfig>,
) -> Result<PlanEntry, Response> {
    let bad = |msg: String| error_response(400, &msg);
    let builder = scorpion_core::Scorpion::on(entry.table.clone())
        .sql(sql)
        .map_err(|e| bad(format!("query failed: {e}")))?;
    let display_keys: Vec<String> = (0..builder.len()).map(|i| builder.display_key(i)).collect();
    let results = builder.results().to_vec();

    // A label is a result index (number) or a display key (string);
    // outliers may also be `{"key"|"index":…, "error": ±w}` objects.
    let resolve = |v: &Json| -> Result<usize, Response> {
        match v {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            Json::Str(k) => {
                builder.index_of_key(k).ok_or_else(|| bad(format!("unknown result key `{k}`")))
            }
            _ => Err(bad(format!("bad label {v:?}: expected index or key"))),
        }
    };
    let builder = if let Some(k) = body.get("auto_label").and_then(Json::as_f64) {
        builder.auto_label((k.max(1.0)) as usize)
    } else {
        let mut outliers = Vec::new();
        for v in body.get("outliers").and_then(Json::as_array).unwrap_or(&[]) {
            let (target, error) = match v {
                Json::Obj(_) => {
                    let error = v.get("error").and_then(Json::as_f64).unwrap_or(1.0);
                    let target = v
                        .get("key")
                        .or_else(|| v.get("index"))
                        .ok_or_else(|| bad("outlier object needs `key` or `index`".into()))?;
                    (target.clone(), error)
                }
                other => (other.clone(), 1.0),
            };
            outliers.push((resolve(&target)?, error));
        }
        let mut holdouts = Vec::new();
        for v in body.get("holdouts").and_then(Json::as_array).unwrap_or(&[]) {
            holdouts.push(resolve(v)?);
        }
        builder.outliers(outliers).holdouts(holdouts)
    };
    let mut builder = builder
        .params(lambda, c)
        .algorithm(algorithm)
        .influence_cache_entries(state.influence_cache_entries);
    if let Some(a) = approx {
        builder = builder.approx(a);
    }
    let request = builder.build().map_err(|e| bad(format!("labeling failed: {e}")))?;
    let session = ScorpionSession::new(request)
        .map_err(|e| bad(format!("session construction failed: {e}")))?;
    // Prepare eagerly so the cache's measured build cost covers the
    // expensive phase (tree growth / unit construction), not just
    // labeling — cost-aware admission is meaningless otherwise.
    session.plan().map_err(|e| error_response(500, &format!("preparation failed: {e}")))?;
    Ok(PlanEntry { session, display_keys, results })
}

//! # scorpion-server
//!
//! A concurrent HTTP explanation service multiplexing Scorpion sessions
//! over shared tables — the paper's §2 premise ("put outlier
//! explanation in end-user hands") as a long-lived network service
//! rather than a one-shot CLI.
//!
//! The design leans on what the engine API already guarantees:
//! [`scorpion_core::ExplainRequest`] owns its data through `Arc`s and
//! every prepared plan is `Send + Sync`, so one warm
//! [`scorpion_core::ScorpionSession`] can serve many concurrent
//! requests bit-exactly. The server adds the serving substrate:
//!
//! * [`registry::TableRegistry`] — named, `Arc`-shared table snapshots
//!   with generation stamps (reloading a table invalidates dependent
//!   plans by key, not by scanning).
//! * [`cache::PlanCache`] — a sharded LRU of warm sessions keyed by
//!   `(table generation, normalized SQL, labels, algorithm)`. The
//!   influence parameters are *not* in the key: a repeated
//!   `POST /explain` at a new `c` re-scores through the plan's
//!   influence cache instead of re-preparing (§8.3.3, generalized).
//! * [`pool::WorkerPool`] — a bounded worker pool with a backpressure
//!   queue; saturation sheds *requests* with immediate 503s attributed
//!   to the endpoint they targeted.
//! * a readiness poller (`poll(2)` behind a dependency-free FFI
//!   wrapper) that parks idle keep-alive connections and hands
//!   complete parsed requests to the pool — worker occupancy tracks
//!   in-flight requests, not open sockets, so hundreds of idle
//!   dashboard connections cost file descriptors, never workers.
//!   Slow clients are bounded by read (408) and write timeouts, and
//!   per-request deadlines ([`server::DEADLINE_HEADER`] or
//!   `--deadline-ms`) become anytime budgets for the MC/NAIVE engines
//!   (best-so-far answer with HTTP 504).
//! * [`http`] / [`json`] — a dependency-free HTTP/1.1 framing layer
//!   ([`http::RequestParser`] is incremental and resumable, which is
//!   what lets connections park mid-stream) and JSON codec (no
//!   crates.io access in this build).
//!
//! Endpoints: `POST /explain`, `GET`/`POST /tables`, `GET /healthz`,
//! `GET /stats`, `GET /metrics` (Prometheus text exposition), and the
//! self-observation pair `GET /debug/telemetry` (the flight-recorder
//! ring as JSON or CSV) / `GET /debug/slow` (the engine explaining the
//! service's own latency outliers — see [`debug`]). Every response
//! carries an `x-scorpion-trace-id` header. Run it via the binary:
//!
//! ```text
//! scorpion serve --csv readings=readings.csv --port 7070 --workers 8
//! ```
//!
//! or embed it:
//!
//! ```no_run
//! use scorpion_server::{Server, ServerConfig};
//! let server = Server::bind(&ServerConfig::default()).unwrap();
//! // server.state().registry.insert("readings", table);
//! server.run().unwrap();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod debug;
pub mod http;
pub mod json;
pub(crate) mod poller;
pub mod pool;
pub mod registry;
pub mod render;
pub mod server;
pub mod stats;

pub use cache::{normalize_sql, PlanCache, PlanCacheStats, PlanEntry, PlanKey};
pub use debug::audit_json;
pub use json::{Json, JsonError};
pub use pool::{PoolGauges, SubmitError, WorkerPool};
pub use registry::{TableEntry, TableRegistry};
pub use render::{diagnostics_json, explanations_json, num_or_null};
pub use server::{
    dispatch, dispatch_recorded, RequestContext, Server, ServerConfig, ServerHandle, ServerState,
    DEADLINE_HEADER, TRACE_ID_HEADER,
};
pub use stats::{Endpoint, EndpointMetrics, ServerStats};

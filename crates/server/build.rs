//! Stamps the git revision into the build for `/stats` and
//! `scorpion_build_info` in `/metrics`. Falls back to "unknown" when
//! the build happens outside a git checkout (e.g. from a source
//! tarball) — git is optional, never an error.

fn main() {
    let sha = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=SCORPION_GIT_SHA={sha}");
    // Re-stamp when HEAD moves; harmless if the path doesn't exist.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}

//! Integration tests for the request-grained serving core: parked
//! keep-alive connections, per-request deadlines, slow-client
//! timeouts, malformed-request hygiene, and shed attribution.

use scorpion_server::{client, Json, Server, ServerConfig, ServerHandle, DEADLINE_HEADER};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn planted_csv(n: usize) -> String {
    let mut s = String::from("g,x,v\n");
    for i in 0..n {
        let x = (i as f64 * 7.3) % 100.0;
        let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
        s.push_str(&format!("o,{x},{v}\n"));
        s.push_str(&format!("h,{x},10\n"));
    }
    s
}

/// Like [`planted_csv`] but with extra continuous noise attributes:
/// NAIVE enumerates the cartesian product of per-attribute clauses, so
/// four continuous attributes make an exhaustive run take tens of
/// seconds — the deadline, not completion, ends it.
fn wide_csv(n: usize) -> String {
    let mut s = String::from("g,x,y,z,v\n");
    for i in 0..n {
        let x = (i as f64 * 7.3) % 100.0;
        let y = (i as f64 * 3.7) % 50.0;
        let z = (i as f64 * 1.3) % 10.0;
        let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
        s.push_str(&format!("o,{x},{y},{z},{v}\n"));
        s.push_str(&format!("h,{x},{y},{z},10\n"));
    }
    s
}

fn serve(cfg: ServerConfig) -> ServerHandle {
    Server::bind(&ServerConfig { port: 0, ..cfg }).expect("bind").spawn().expect("spawn")
}

fn table_body(name: &str, rows: usize) -> Json {
    Json::obj([("name", Json::from(name)), ("csv", Json::from(planted_csv(rows)))])
}

fn explain_body(table: &str, algorithm: &str, c: f64) -> Json {
    Json::obj([
        ("table", Json::from(table)),
        ("sql", Json::from("SELECT avg(v) FROM t GROUP BY g")),
        ("outliers", Json::arr(["o"])),
        ("holdouts", Json::arr(["h"])),
        ("lambda", Json::from(0.5)),
        ("c", Json::from(c)),
        ("algorithm", Json::from(algorithm)),
    ])
}

fn stat(stats: &Json, path: &[&str]) -> f64 {
    let mut v = stats;
    for p in path {
        v = v.get(p).unwrap_or_else(|| panic!("missing {path:?} in {stats:?}"));
    }
    v.as_f64().unwrap_or_else(|| panic!("non-numeric {path:?}"))
}

/// Reads everything until EOF (or the socket read timeout) as text.
fn read_to_eof(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

/// A malformed request gets exactly one 400 with `Connection: close`,
/// and nothing pipelined after it is ever processed — after a framing
/// error the byte stream is desynchronized and cannot be trusted.
#[test]
fn malformed_request_closes_the_connection() {
    let handle = serve(ServerConfig { workers: 2, ..ServerConfig::default() });
    for bad_then_good in [
        // Garbage request line, then a perfectly good request.
        "garbage\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n".to_owned(),
        // Conflicting Content-Length (smuggling-class), then a good one.
        "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 9\r\n\r\nbody\
         GET /healthz HTTP/1.1\r\n\r\n"
            .to_owned(),
        // Transfer-Encoding is never half-honored.
        "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
         GET /healthz HTTP/1.1\r\n\r\n"
            .to_owned(),
    ] {
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(bad_then_good.as_bytes()).unwrap();
        let text = read_to_eof(&mut s);
        assert_eq!(text.matches("HTTP/1.1").count(), 1, "one response only:\n{text}");
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        // read_to_eof returning proves the server closed the socket:
        // the pipelined /healthz was dropped, not answered.
        assert!(!text.contains("\"status\""), "healthz must not run:\n{text}");
    }
    handle.stop();
}

/// Hundreds of idle keep-alive connections park on the poller and
/// consume zero workers: concurrent explains still get all of a
/// 2-worker pool, and the parked connections stay usable afterwards.
#[test]
fn parked_connections_do_not_consume_workers() {
    let handle = serve(ServerConfig { workers: 2, ..ServerConfig::default() });
    let addr = handle.addr();

    // 32 keep-alive connections, each warmed with one request and then
    // left idle.
    let mut idle: Vec<client::Client> = (0..32)
        .map(|_| {
            let mut c = client::Client::connect(addr).unwrap();
            let (status, _) = c.get("/healthz").unwrap();
            assert_eq!(status, 200);
            c
        })
        .collect();

    // All 32 park (the poller publishes the gauge on its sweep tick).
    let mut checker = client::Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, stats) = checker.get("/stats").unwrap();
        if stat(&stats, &["parked_connections"]) >= 32.0 {
            break;
        }
        assert!(Instant::now() < deadline, "parked gauge never reached 32: {stats:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    checker.post("/tables", &table_body("t", 100)).unwrap();
    // Concurrent explains succeed while the 32 idle sockets sit parked
    // — with connection-pinned workers, 2 workers would be starved by
    // the first 2 idle connections and every explain would 503.
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..8)
            .map(|i| {
                s.spawn(move || {
                    let mut c = client::Client::connect(addr).unwrap();
                    let (status, resp) =
                        c.post("/explain", &explain_body("t", "mc", 0.1 * (i + 1) as f64)).unwrap();
                    assert_eq!(status, 200, "{resp:?}");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    });

    // The parked connections survived and still serve requests.
    for c in &mut idle {
        let (status, _) = c.get("/healthz").unwrap();
        assert_eq!(status, 200);
    }
    handle.stop();
}

/// A client that starts a request and stalls (slowloris) is closed with
/// 408 after the read timeout — it never holds a worker meanwhile.
#[test]
fn slow_reader_gets_408_after_read_timeout() {
    let handle =
        serve(ServerConfig { workers: 1, read_timeout_ms: 150, ..ServerConfig::default() });
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /he").unwrap(); // ...and never finishes.
    let text = read_to_eof(&mut s);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(text.contains("Connection: close"), "{text}");

    let (_, stats) = client::get(handle.addr(), "/stats").unwrap();
    assert_eq!(stat(&stats, &["read_timeouts"]), 1.0, "{stats:?}");
    handle.stop();
}

/// A client that stops draining its responses is dropped after the
/// write timeout instead of blocking a worker forever.
#[test]
fn slow_writer_is_dropped_after_write_timeout() {
    let handle =
        serve(ServerConfig { workers: 1, write_timeout_ms: 200, ..ServerConfig::default() });
    // Many tables with long names make each /tables response ~150 KB,
    // so a few pipelined responses overflow the socket buffers.
    let state = handle.state();
    let filler = "x".repeat(60);
    for i in 0..1500 {
        let t = scorpion_table::csv::parse_csv("g,v\no,1\n").unwrap();
        state.registry.insert(format!("table-{i}-{filler}"), t);
    }

    let mut s = TcpStream::connect(handle.addr()).unwrap();
    // Pipeline many requests and never read a byte of the responses.
    for _ in 0..60 {
        s.write_all(b"GET /tables HTTP/1.1\r\n\r\n").unwrap();
    }
    let mut checker = client::Client::connect(handle.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (_, stats) = checker.get("/stats").unwrap();
        if stat(&stats, &["write_timeouts"]) >= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "write timeout never fired: {stats:?}");
        std::thread::sleep(Duration::from_millis(100));
    }
    drop(s);
    handle.stop();
}

/// Deadlines: the server default applies, the per-request header
/// overrides it in both directions, and a malformed header is a 400.
#[test]
fn deadlines_bound_explain_and_are_overridable() {
    let handle = serve(ServerConfig { workers: 2, deadline_ms: 1, ..ServerConfig::default() });
    let mut c = client::Client::connect(handle.addr()).unwrap();
    c.post("/tables", &table_body("t", 150)).unwrap();

    // 1 ms default: parse + prepare alone exceed it — 504 either before
    // execution or after a budget-truncated run.
    let (status, resp) = c.post("/explain", &explain_body("t", "naive", 0.5)).unwrap();
    assert_eq!(status, 504, "{resp:?}");

    // A generous per-request header overrides the tight default.
    let resp = c
        .post_with_headers(
            "/explain",
            &[(DEADLINE_HEADER, "3600000")],
            &explain_body("t", "naive", 0.5),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let body = Json::parse(&resp.body).unwrap();
    assert_eq!(body.get("deadline_exceeded").and_then(Json::as_bool), Some(false));
    assert!(!body.get("explanations").and_then(Json::as_array).unwrap().is_empty());

    // Header `0` disables the default entirely.
    let resp = c
        .post_with_headers("/explain", &[(DEADLINE_HEADER, "0")], &explain_body("t", "naive", 0.2))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    // A malformed header is the request's fault.
    let resp = c
        .post_with_headers(
            "/explain",
            &[(DEADLINE_HEADER, "soon")],
            &explain_body("t", "naive", 0.5),
        )
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains(DEADLINE_HEADER), "{}", resp.body);

    let (_, stats) = c.get("/stats").unwrap();
    assert!(stat(&stats, &["deadline_exceeded"]) >= 1.0, "{stats:?}");
    handle.stop();
}

/// Under saturation, shed 503s are attributed to the endpoint the
/// request targeted — as sheds and errors, never as latency samples —
/// and a deadline bounds the long request that caused the pileup.
#[test]
fn sheds_are_attributed_without_latency_samples() {
    let handle = serve(ServerConfig { workers: 1, queue_depth: 1, ..ServerConfig::default() });
    let addr = handle.addr();
    let mut setup = client::Client::connect(addr).unwrap();
    let big = Json::obj([("name", Json::from("big")), ("csv", Json::from(wide_csv(2000)))]);
    setup.post("/tables", &big).unwrap();

    // Occupy the single worker with a slow naive explain, bounded by a
    // deadline so the test always terminates.
    let explainer = std::thread::spawn(move || {
        let mut c = client::Client::connect(addr).unwrap();
        c.post_with_headers(
            "/explain",
            &[(DEADLINE_HEADER, "1500")],
            &explain_body("big", "naive", 0.5),
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    // Volley healthz probes: 1 fits the queue slot, the rest shed.
    let statuses: Vec<u16> = std::thread::scope(|s| {
        (0..6)
            .map(|_| s.spawn(move || client::get(addr, "/healthz").unwrap().0))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let shed = statuses.iter().filter(|&&st| st == 503).count() as f64;
    let served = statuses.iter().filter(|&&st| st == 200).count() as f64;
    assert!(shed >= 1.0, "expected sheds under saturation: {statuses:?}");
    assert_eq!(shed + served, 6.0, "unexpected statuses: {statuses:?}");

    // The deadline-bounded explain came back truncated, with its full
    // best-so-far body.
    let explain = explainer.join().unwrap();
    assert_eq!(explain.status, 504, "{}", explain.body);
    let body = Json::parse(&explain.body).unwrap();
    assert_eq!(body.get("deadline_exceeded").and_then(Json::as_bool), Some(true));
    assert!(body.get("diagnostics").is_some(), "504 still carries diagnostics: {}", explain.body);

    let (_, stats) = client::get(addr, "/stats").unwrap();
    let healthz = stats.get("endpoints").and_then(|e| e.get("healthz")).unwrap();
    // Sheds count against the endpoint the client targeted...
    assert_eq!(stat(healthz, &["shed"]), shed, "{stats:?}");
    assert_eq!(stat(healthz, &["errors"]), shed, "{stats:?}");
    // ...but only served requests are latency samples, and queue wait
    // is not folded into the worker histogram.
    assert_eq!(stat(healthz, &["count"]), served, "{stats:?}");
    assert!(stat(healthz, &["max_ms"]) < 500.0, "queue wait leaked into latency: {stats:?}");
    assert_eq!(stat(&stats, &["shed_requests"]), shed, "{stats:?}");
    handle.stop();
}

//! End-to-end HTTP tests: a spawned server, real sockets, JSON bodies.
//!
//! The acceptance property of the service lives here: a warm repeat
//! `POST /explain` (same query and labels, new `c`) runs through the
//! cached session — plan-cache hit, influence-cache hits, strictly
//! fewer scorer calls than the cold first call.

use scorpion_server::{client, Json, Server, ServerConfig};

/// CSV of the planted workload: group "o" runs hot for x ∈ [20, 60),
/// group "h" is uniform.
fn planted_csv(n: usize) -> String {
    let mut s = String::from("g,x,v\n");
    for i in 0..n {
        let x = (i as f64 * 7.3) % 100.0;
        let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
        s.push_str(&format!("o,{x},{v}\n"));
        s.push_str(&format!("h,{x},10\n"));
    }
    s
}

fn serve() -> scorpion_server::ServerHandle {
    let server = Server::bind(&ServerConfig { port: 0, workers: 4, ..ServerConfig::default() })
        .expect("bind ephemeral port");
    server.spawn().expect("spawn server")
}

fn table_body(name: &str, rows: usize) -> Json {
    Json::obj([("name", Json::from(name)), ("csv", Json::from(planted_csv(rows)))])
}

fn explain_body(table: &str, algorithm: &str, c: f64) -> Json {
    Json::obj([
        ("table", Json::from(table)),
        ("sql", Json::from("SELECT avg(v) FROM t GROUP BY g")),
        ("outliers", Json::arr(["o"])),
        ("holdouts", Json::arr(["h"])),
        ("lambda", Json::from(0.5)),
        ("c", Json::from(c)),
        ("algorithm", Json::from(algorithm)),
    ])
}

fn diag(resp: &Json, field: &str) -> f64 {
    resp.get("diagnostics")
        .and_then(|d| d.get(field))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing diagnostics.{field} in {resp:?}"))
}

#[test]
fn healthz_tables_and_stats_round_trip() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();

    let (status, health) = c.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("tables").and_then(Json::as_f64), Some(0.0));

    let (status, loaded) = c.post("/tables", &table_body("planted", 50)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(loaded.get("rows").and_then(Json::as_f64), Some(100.0));

    let (status, tables) = c.get("/tables").unwrap();
    assert_eq!(status, 200);
    let list = tables.get("tables").and_then(Json::as_array).unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].get("name").and_then(Json::as_str), Some("planted"));
    assert_eq!(list[0].get("attributes").and_then(Json::as_f64), Some(3.0));

    let (status, stats) = c.get("/stats").unwrap();
    assert_eq!(status, 200);
    let queue = stats.get("queue").unwrap();
    assert!(queue.get("workers").and_then(Json::as_f64).unwrap() >= 1.0);
    handle.stop();
}

#[test]
fn warm_repeat_explain_hits_every_cache_layer() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();
    c.post("/tables", &table_body("planted", 300)).unwrap();

    let (status, cold) = c.post("/explain", &explain_body("planted", "dt", 0.5)).unwrap();
    assert_eq!(status, 200, "{cold:?}");
    assert_eq!(cold.get("plan_cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(cold.get("algorithm").and_then(Json::as_str), Some("dt"));
    let cold_calls = diag(&cold, "scorer_calls");
    assert!(cold_calls > 0.0);
    let best = &cold.get("explanations").and_then(Json::as_array).unwrap()[0];
    assert!(best.get("predicate").and_then(Json::as_str).unwrap().contains("x in"));

    // Same query + labels, new c: the warm path.
    let (status, warm) = c.post("/explain", &explain_body("planted", "dt", 0.2)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(warm.get("plan_cache").and_then(Json::as_str), Some("hit"));
    assert!(diag(&warm, "cache_hits") > 0.0, "warm run must hit the influence cache");
    assert!(
        diag(&warm, "scorer_calls") < cold_calls,
        "warm {} vs cold {} scorer calls",
        diag(&warm, "scorer_calls"),
        cold_calls
    );

    let (_, stats) = c.get("/stats").unwrap();
    let plans = stats.get("plan_cache").unwrap();
    assert_eq!(plans.get("hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(plans.get("misses").and_then(Json::as_f64), Some(1.0));
    let explain_stats = stats.get("endpoints").and_then(|e| e.get("explain")).unwrap();
    assert_eq!(explain_stats.get("count").and_then(Json::as_f64), Some(2.0));
    assert_eq!(explain_stats.get("errors").and_then(Json::as_f64), Some(0.0));
    handle.stop();
}

#[test]
fn reloading_a_table_invalidates_warm_plans() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();
    c.post("/tables", &table_body("t", 100)).unwrap();
    let (_, first) = c.post("/explain", &explain_body("t", "dt", 0.5)).unwrap();
    assert_eq!(first.get("plan_cache").and_then(Json::as_str), Some("miss"));
    // Reload the table: new generation, stale plans unreachable.
    c.post("/tables", &table_body("t", 100)).unwrap();
    let (_, second) = c.post("/explain", &explain_body("t", "dt", 0.5)).unwrap();
    assert_eq!(second.get("plan_cache").and_then(Json::as_str), Some("miss"));
    assert!(
        second.get("generation").and_then(Json::as_f64)
            > first.get("generation").and_then(Json::as_f64)
    );
    handle.stop();
}

#[test]
fn auto_label_and_single_table_default() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();
    c.post("/tables", &table_body("only", 100)).unwrap();
    // No `table` (one registered ⇒ default) and no explicit labels.
    let body = Json::obj([
        ("sql", Json::from("SELECT avg(v) FROM t GROUP BY g")),
        ("auto_label", Json::from(1.0)),
    ]);
    let (status, resp) = c.post("/explain", &body).unwrap();
    assert_eq!(status, 200, "{resp:?}");
    let results = resp.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 2);
    assert!(results.iter().any(|r| r.get("label").and_then(Json::as_str) == Some("outlier")));
    handle.stop();
}

#[test]
fn error_paths_are_clean_json() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();

    let (status, _) = c.get("/no-such-endpoint").unwrap();
    assert_eq!(status, 404);
    let (status, _) = c.get("/explain").unwrap();
    assert_eq!(status, 405);

    let (status, err) = c.post("/explain", &explain_body("unregistered", "dt", 0.5)).unwrap();
    assert_eq!(status, 404);
    assert!(err.get("error").and_then(Json::as_str).unwrap().contains("unregistered"));

    c.post("/tables", &table_body("t", 20)).unwrap();
    let (status, err) = c
        .post(
            "/explain",
            &Json::obj([
                ("table", Json::from("t")),
                ("sql", Json::from("SELECT avg(v) FROM t GROUP BY g")),
                ("outliers", Json::arr(["no-such-group"])),
            ]),
        )
        .unwrap();
    assert_eq!(status, 400);
    assert!(err.get("error").and_then(Json::as_str).unwrap().contains("no-such-group"));

    let (status, err) = c
        .post(
            "/explain",
            &Json::obj([("table", Json::from("t")), ("sql", Json::from("not sql at all"))]),
        )
        .unwrap();
    assert_eq!(status, 400);
    assert!(err.get("error").is_some());

    // An unknown aggregate is rejected with the registered vocabulary,
    // so the 4xx body tells the caller what *would* work.
    let (status, err) = c
        .post(
            "/explain",
            &Json::obj([
                ("table", Json::from("t")),
                ("sql", Json::from("SELECT geomean(v) FROM t GROUP BY g")),
                ("outliers", Json::arr(["o"])),
            ]),
        )
        .unwrap();
    assert_eq!(status, 400);
    let msg = err.get("error").and_then(Json::as_str).unwrap();
    assert!(msg.contains("geomean"), "names the offender: {msg}");
    for name in ["avg", "median", "count_distinct", "p99", "percentile"] {
        assert!(msg.contains(name), "lists {name}: {msg}");
    }

    // The connection survived every error (keep-alive).
    let (status, _) = c.get("/healthz").unwrap();
    assert_eq!(status, 200);
    handle.stop();
}

/// Out-of-range approximate-search knobs are a 400 whose body names the
/// valid range; a valid opt-in runs and reports `approx_error_bound`
/// and `candidates_pruned` in diagnostics.
#[test]
fn approx_knobs_validate_and_report() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();
    c.post("/tables", &table_body("t", 100)).unwrap();

    let with = |fields: &[(&str, Json)]| {
        let mut body = explain_body("t", "dt", 0.5);
        if let Json::Obj(pairs) = &mut body {
            pairs.extend(fields.iter().map(|(k, v)| ((*k).to_owned(), v.clone())));
        }
        body
    };
    for (field, value, range) in [
        ("approx_rate", 1.5, "(0.0, 1.0]"),
        ("approx_rate", 0.0, "(0.0, 1.0]"),
        ("approx_confidence", 0.4, "(0.5, 1.0]"),
        ("approx_confidence", 1.01, "(0.5, 1.0]"),
    ] {
        let (status, err) = c.post("/explain", &with(&[(field, Json::from(value))])).unwrap();
        assert_eq!(status, 400, "{field}={value}: {err:?}");
        let msg = err.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains(range), "{field}={value}: body must name {range}, got: {msg}");
    }

    let (status, resp) = c.post("/explain", &with(&[("approx", Json::from(true))])).unwrap();
    assert_eq!(status, 200, "{resp:?}");
    let bound = diag(&resp, "approx_error_bound");
    assert!(bound >= 0.0, "{bound}");
    assert!(diag(&resp, "candidates_pruned") >= 0.0);

    // Exact requests to the same table render null, not a stale bound:
    // the approx knobs are part of the plan key.
    let (status, exact) = c.post("/explain", &explain_body("t", "dt", 0.5)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        exact.get("diagnostics").and_then(|d| d.get("approx_error_bound")),
        Some(&Json::Null),
        "{exact:?}"
    );
    handle.stop();
}

/// Value of the first sample named `name` (exact match on the part
/// before `{` / whitespace) in a Prometheus exposition body.
fn prom_value(text: &str, name: &str) -> Option<f64> {
    prom_samples(text, name).first().map(|(_, v)| *v)
}

/// All `(labels, value)` samples whose metric name is exactly `name`.
fn prom_samples(text: &str, name: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((lhs, rhs)) = line.rsplit_once(' ') else { continue };
        let (metric, labels) = match lhs.split_once('{') {
            Some((m, rest)) => (m, rest.trim_end_matches('}')),
            None => (lhs, ""),
        };
        if metric == name {
            if let Ok(v) = rhs.trim().parse::<f64>() {
                out.push((labels.to_owned(), v));
            }
        }
    }
    out
}

#[test]
fn metrics_exposition_round_trip() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();

    let (status, before) = c.get_text("/metrics").unwrap();
    assert_eq!(status, 200);
    // Static series are present even with zero traffic.
    assert!(before.contains("# TYPE scorpion_requests_total counter"), "{before}");
    assert_eq!(prom_value(&before, "scorpion_registered_tables"), Some(0.0));
    let build = prom_samples(&before, "scorpion_build_info");
    assert_eq!(build.len(), 1);
    assert!(build[0].0.contains("version="), "build_info labels: {}", build[0].0);
    assert!(build[0].0.contains("git="), "build_info labels: {}", build[0].0);
    assert!(prom_value(&before, "scorpion_uptime_seconds").unwrap() >= 0.0);
    let total = |text: &str| -> f64 {
        prom_samples(text, "scorpion_requests_total").iter().map(|(_, v)| v).sum()
    };
    let reqs_before = total(&before);

    // Generate traffic: a table load and two explains.
    c.post("/tables", &table_body("m", 100)).unwrap();
    c.post("/explain", &explain_body("m", "dt", 0.5)).unwrap();
    c.post("/explain", &explain_body("m", "dt", 0.2)).unwrap();

    let (_, after) = c.get_text("/metrics").unwrap();
    // Counters are monotone and reflect the traffic above.
    let reqs_after = total(&after);
    assert!(reqs_after >= reqs_before + 4.0, "{reqs_before} -> {reqs_after}");
    assert_eq!(prom_value(&after, "scorpion_registered_tables"), Some(1.0));
    assert_eq!(prom_value(&after, "scorpion_plan_cache_hits_total"), Some(1.0));
    assert_eq!(prom_value(&after, "scorpion_plan_cache_misses_total"), Some(1.0));

    // Per-table residency gauges: 100 planted rows × 2 groups.
    let rows = prom_samples(&after, "scorpion_table_resident_rows");
    assert_eq!(rows.len(), 1);
    assert!(rows[0].0.contains("table=\"m\""), "labels: {}", rows[0].0);
    assert_eq!(rows[0].1, 200.0);
    let bytes = prom_samples(&after, "scorpion_table_resident_bytes");
    assert_eq!(bytes.len(), 1);
    assert!(bytes[0].1 > 0.0);

    // The explain latency histogram: cumulative buckets ending at +Inf,
    // with _count consistent with the traffic.
    let buckets: Vec<(String, f64)> =
        prom_samples(&after, "scorpion_request_duration_seconds_bucket")
            .into_iter()
            .filter(|(labels, _)| labels.contains("endpoint=\"explain\""))
            .collect();
    assert!(!buckets.is_empty(), "no explain buckets in:\n{after}");
    let mut last = f64::NEG_INFINITY;
    for (labels, v) in &buckets {
        assert!(*v >= last, "bucket counts must be cumulative: {labels} {v} after {last}");
        last = *v;
    }
    assert!(buckets.last().unwrap().0.contains("le=\"+Inf\""), "{:?}", buckets.last());
    let count = prom_samples(&after, "scorpion_request_duration_seconds_count")
        .into_iter()
        .find(|(l, _)| l.contains("endpoint=\"explain\""))
        .map(|(_, v)| v)
        .unwrap();
    assert_eq!(count, 2.0);
    assert_eq!(buckets.last().unwrap().1, count, "+Inf bucket must equal _count");
    let sum = prom_samples(&after, "scorpion_request_duration_seconds_sum")
        .into_iter()
        .find(|(l, _)| l.contains("endpoint=\"explain\""))
        .map(|(_, v)| v)
        .unwrap();
    assert!(sum > 0.0, "two explains must have positive total latency");
    handle.stop();
}

#[test]
fn responses_carry_trace_ids() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();
    c.post("/tables", &table_body("t", 100)).unwrap();

    let resp = c.post_raw("/explain", &explain_body("t", "dt", 0.5)).unwrap();
    assert_eq!(resp.status, 200);
    let header_id = resp
        .header(scorpion_server::TRACE_ID_HEADER)
        .unwrap_or_else(|| panic!("missing trace header in {:?}", resp.headers))
        .parse::<f64>()
        .unwrap();
    let body = Json::parse(&resp.body).unwrap();
    assert_eq!(
        body.get("trace_id").and_then(Json::as_f64),
        Some(header_id),
        "body trace_id must echo the response header"
    );
    assert_eq!(
        body.get("diagnostics").and_then(|d| d.get("trace_id")).and_then(Json::as_f64),
        Some(header_id),
        "engine diagnostics must carry the x-scorpion-trace-id for correlation"
    );

    // A second request gets a distinct id.
    let resp2 = c.post_raw("/explain", &explain_body("t", "dt", 0.2)).unwrap();
    let header_id2 =
        resp2.header(scorpion_server::TRACE_ID_HEADER).unwrap().parse::<f64>().unwrap();
    assert_ne!(header_id, header_id2);

    let (_, stats) = c.get("/stats").unwrap();
    assert!(stats.get("trace_ids_issued").and_then(Json::as_f64).unwrap() >= 3.0);
    let build = stats.get("build").expect("stats must carry build info");
    assert!(build.get("version").and_then(Json::as_str).is_some());
    assert!(build.get("git").and_then(Json::as_str).is_some());
    assert!(stats.get("uptime_secs").and_then(Json::as_f64).unwrap() >= 0.0);
    handle.stop();
}

#[test]
fn explain_diagnostics_attribute_phases_per_algorithm() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();
    c.post("/tables", &table_body("t", 150)).unwrap();

    for algo in ["dt", "mc", "naive"] {
        let (status, resp) = c.post("/explain", &explain_body("t", algo, 0.5)).unwrap();
        assert_eq!(status, 200, "{resp:?}");
        let phases = resp
            .get("diagnostics")
            .and_then(|d| d.get("phases"))
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{algo}: no diagnostics.phases in {resp:?}"));
        assert!(!phases.is_empty(), "{algo}: empty phases");
        let names: Vec<&str> =
            phases.iter().filter_map(|p| p.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"prepare"), "{algo}: first run must charge prepare: {names:?}");
        assert!(names.contains(&"run.score"), "{algo}: missing run.score: {names:?}");
        for p in phases {
            assert!(p.get("ms").and_then(Json::as_f64).unwrap() >= 0.0);
            assert!(p.get("count").and_then(Json::as_f64).unwrap() >= 1.0);
        }
    }
    handle.stop();
}

#[test]
fn debug_endpoints_expose_the_flight_recorder() {
    let handle = serve();
    let mut c = client::Client::connect(handle.addr()).unwrap();
    c.post("/tables", &table_body("t", 100)).unwrap();
    let resp = c.post_raw("/explain", &explain_body("t", "dt", 0.5)).unwrap();
    assert_eq!(resp.status, 200);
    let trace_id = resp.header(scorpion_server::TRACE_ID_HEADER).unwrap().to_owned();

    // The explain request's event is in the ring, correlatable by the
    // trace id the response header carried.
    let (status, telem) = c.get("/debug/telemetry").unwrap();
    assert_eq!(status, 200);
    assert_eq!(telem.get("enabled").and_then(Json::as_bool), Some(true));
    assert!(telem.get("capacity").and_then(Json::as_f64).unwrap() >= 1.0);
    let events = telem.get("events").and_then(Json::as_array).unwrap();
    let key = format!("t{trace_id}");
    let event = events
        .iter()
        .find(|e| e.get("req").and_then(Json::as_str) == Some(key.as_str()))
        .unwrap_or_else(|| panic!("no event for trace {trace_id}"));
    assert_eq!(event.get("endpoint").and_then(Json::as_str), Some("explain"));
    assert_eq!(event.get("table").and_then(Json::as_str), Some("t"));
    assert_eq!(event.get("algorithm").and_then(Json::as_str), Some("dt"));
    assert_eq!(event.get("aggregate").and_then(Json::as_str), Some("avg"));
    assert_eq!(event.get("plan_cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(event.get("status").and_then(Json::as_str), Some("200"));
    assert!(event.get("latency_ms").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(event.get("rows_scanned").and_then(Json::as_f64).unwrap() > 0.0);

    // The CSV rendering parses back into the same relation shape
    // (`scorpion audit --telemetry-csv` reads exactly this dump).
    let (status, csv) = c.get_text("/debug/telemetry?format=csv").unwrap();
    assert_eq!(status, 200);
    let table = scorpion_core::telemetry_table_from_csv(&csv).unwrap();
    assert!(!table.is_empty());
    assert!(table.attr("req").is_ok() && table.attr("latency_ms").is_ok());

    // /debug/slow always answers — on quiet telemetry with an honest
    // non-finding.
    let (status, slow) = c.get("/debug/slow").unwrap();
    assert_eq!(status, 200, "{slow:?}");
    let outcome = slow.get("outcome").and_then(Json::as_str).unwrap();
    assert!(
        ["too_few_events", "no_outliers", "explained"].contains(&outcome),
        "unexpected outcome {outcome}"
    );
    assert!(slow.get("events").and_then(Json::as_f64).unwrap() >= 1.0);

    // Bad parameters are clean 400s; bad methods on /debug paths 405.
    let (status, _) = c.get("/debug/slow?threshold=bogus").unwrap();
    assert_eq!(status, 400);
    let (status, _) = c.post("/debug/slow", &Json::obj([("x", Json::from(1.0))])).unwrap();
    assert_eq!(status, 405);
    handle.stop();
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let handle = serve();
    let mut setup = client::Client::connect(handle.addr()).unwrap();
    setup.post("/tables", &table_body("shared", 200)).unwrap();
    // Prime one plan so some threads hit and some miss concurrently.
    setup.post("/explain", &explain_body("shared", "mc", 0.5)).unwrap();

    let addr = handle.addr();
    let answers: Vec<Vec<(String, String)>> = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                s.spawn(move || {
                    let mut c = client::Client::connect(addr).unwrap();
                    let mut got = Vec::new();
                    for &(algo, cc) in &[("mc", 0.5), ("naive", 0.5), ("mc", 0.2), ("naive", 0.2)] {
                        let (status, resp) =
                            c.post("/explain", &explain_body("shared", algo, cc)).unwrap();
                        assert_eq!(status, 200, "{resp:?}");
                        let best = &resp.get("explanations").and_then(Json::as_array).unwrap()[0];
                        got.push((
                            format!("{algo}@{cc}"),
                            format!(
                                "{}|{}",
                                best.get("predicate").and_then(Json::as_str).unwrap(),
                                best.get("influence").and_then(Json::as_f64).unwrap()
                            ),
                        ));
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    // Every thread must have seen bit-identical explanations per (algo, c).
    for per_thread in &answers[1..] {
        assert_eq!(per_thread, &answers[0]);
    }
    let state = handle.state();
    let stats = state.plans.stats();
    assert!(stats.hits > 0, "concurrent repeats must share warm plans: {stats:?}");
    handle.stop();
}

//! Property tests for the JSON codec: encode→parse identity over
//! generated values (escapes, unicode, nesting), non-finite-float
//! rejection, and parser robustness on arbitrary input.

use proptest::prelude::*;
use scorpion_server::{Json, JsonError};

/// Strings salted with the characters that exercise every escape path:
/// quotes, backslashes, control characters, multi-byte unicode.
fn arb_string(r: &mut TestRunner) -> String {
    let n = (0usize..12).sample(r);
    (0..n)
        .map(|_| match (0usize..8).sample(r) {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => char::from_u32((0u32..0x20).sample(r)).unwrap(),
            4 => ['é', '🦂', '\u{FFFD}', '\u{2028}'][(0usize..4).sample(r)],
            _ => char::from_u32((0x20u32..0x7F).sample(r)).unwrap(),
        })
        .collect()
}

/// An arbitrary JSON value with bounded depth (scalars at the leaves).
fn arb_json(r: &mut TestRunner, depth: usize) -> Json {
    let kinds = if depth == 0 { 4 } else { 6 };
    match (0usize..kinds).sample(r) {
        0 => Json::Null,
        1 => Json::Bool(any::<bool>().sample(r)),
        // The shim's any::<f64>() is finite by construction.
        2 => Json::Num(any::<f64>().sample(r)),
        3 => Json::Str(arb_string(r)),
        4 => Json::Arr((0..(0usize..5).sample(r)).map(|_| arb_json(r, depth - 1)).collect()),
        _ => Json::Obj(
            (0..(0usize..5).sample(r)).map(|_| (arb_string(r), arb_json(r, depth - 1))).collect(),
        ),
    }
}

/// Strategy wrapper so `proptest!` can sample whole documents.
struct ArbJson;

impl Strategy for ArbJson {
    type Value = Json;
    fn sample(&self, r: &mut TestRunner) -> Json {
        arb_json(r, 3)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode → parse is the identity, for every generated document.
    #[test]
    fn encode_parse_round_trip(v in ArbJson) {
        let text = v.encode().unwrap();
        prop_assert_eq!(Json::parse(&text).unwrap(), v);
    }

    /// Encoding is deterministic and idempotent through a round trip.
    #[test]
    fn encode_is_canonical(v in ArbJson) {
        let once = v.encode().unwrap();
        let twice = Json::parse(&once).unwrap().encode().unwrap();
        prop_assert_eq!(once, twice);
    }

    /// A non-finite number anywhere in the document fails encoding.
    #[test]
    fn non_finite_numbers_rejected(v in ArbJson, pick in 0usize..3) {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][pick];
        let doc = Json::Obj(vec![
            ("ok".into(), v),
            ("bad".into(), Json::Num(bad)),
        ]);
        prop_assert!(matches!(doc.encode(), Err(JsonError::NonFiniteNumber(_))));
    }

    /// The parser never panics on arbitrary text; accepted inputs
    /// re-encode successfully (everything parsed is finite).
    #[test]
    fn parser_is_total(s in prop::collection::vec(0u32..0xFF, 0..64)) {
        let text: String =
            s.iter().filter_map(|&c| char::from_u32(c)).collect();
        if let Ok(v) = Json::parse(&text) {
            v.encode().unwrap();
        }
    }
}

//! Name-based aggregate lookup, mirroring how a query layer would resolve
//! `SELECT stddev(temp) ...` to an operator implementation.

use crate::arithmetic::{Avg, Count, Sum};
use crate::order::{Max, Median, Min};
use crate::spread::{StdDev, Variance};
use crate::traits::Aggregate;
use std::sync::Arc;

/// Resolves an aggregate operator by (case-insensitive) name.
///
/// Recognized names: `sum`, `count`, `avg` (alias `mean`), `stddev`
/// (alias `std`), `variance` (alias `var`), `min`, `max`, `median`.
pub fn aggregate_by_name(name: &str) -> Option<Arc<dyn Aggregate>> {
    let a: Arc<dyn Aggregate> = match name.to_ascii_lowercase().as_str() {
        "sum" => Arc::new(Sum),
        "count" => Arc::new(Count),
        "avg" | "mean" => Arc::new(Avg),
        "stddev" | "std" => Arc::new(StdDev),
        "variance" | "var" => Arc::new(Variance),
        "min" => Arc::new(Min),
        "max" => Arc::new(Max),
        "median" => Arc::new(Median),
        _ => return None,
    };
    Some(a)
}

/// All registered aggregate names (canonical spellings).
pub fn registered_names() -> &'static [&'static str] {
    &["sum", "count", "avg", "stddev", "variance", "min", "max", "median"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_names() {
        for name in registered_names() {
            let agg = aggregate_by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(&agg.name(), name);
        }
    }

    #[test]
    fn aliases_and_case() {
        assert_eq!(aggregate_by_name("AVG").unwrap().name(), "avg");
        assert_eq!(aggregate_by_name("mean").unwrap().name(), "avg");
        assert_eq!(aggregate_by_name("std").unwrap().name(), "stddev");
        assert_eq!(aggregate_by_name("var").unwrap().name(), "variance");
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(aggregate_by_name("geomean").is_none());
    }

    #[test]
    fn incremental_support_matches_paper_table() {
        // §5.1: COUNT- and SUM-based arithmetic expressions are
        // incrementally removable; MAX/MIN/MEDIAN are not.
        for name in ["sum", "count", "avg", "stddev", "variance"] {
            assert!(
                aggregate_by_name(name).unwrap().incremental().is_some(),
                "{name} should be incrementally removable"
            );
        }
        for name in ["min", "max", "median"] {
            assert!(
                aggregate_by_name(name).unwrap().incremental().is_none(),
                "{name} should not be incrementally removable"
            );
        }
    }
}

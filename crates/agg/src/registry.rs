//! Name-based aggregate lookup, mirroring how a query layer would resolve
//! `SELECT stddev(temp) ...` to an operator implementation.
//!
//! Recognized names (case-insensitive):
//!
//! * exact, incrementally removable: `sum`, `count`, `avg` (alias
//!   `mean`), `stddev` (alias `std`), `variance` (alias `var`);
//! * exact, mergeable-only: `min`, `max`;
//! * exact compute with a sketch tier: `median`, `count_distinct`
//!   (alias `distinct`), and the percentile family — the shorthands
//!   `p10`/`p25`/`p50`/`p75`/`p90`/`p95`/`p99`/`p999`/`p100`, any
//!   `p<digits>` spelling (1–2 digits read as hundredths, 3 as
//!   thousandths, e.g. `p87` = 0.87, `p995` = 0.995), and the explicit
//!   form `percentile:<fraction>` with a fraction in `(0, 1]` (the SQL
//!   layer lowers `percentile(col, p)` to this spelling).
//!
//! Misses return `None`; callers surface [`registered_names`] so users
//! see the vocabulary instead of a bare failure.

use crate::arithmetic::{Avg, Count, Sum};
use crate::order::{Max, Median, Min};
use crate::sketch::{CountDistinct, Percentile};
use crate::spread::{StdDev, Variance};
use crate::traits::Aggregate;
use std::sync::Arc;

/// Resolves an aggregate operator by (case-insensitive) name.
pub fn aggregate_by_name(name: &str) -> Option<Arc<dyn Aggregate>> {
    let lower = name.to_ascii_lowercase();
    let a: Arc<dyn Aggregate> = match lower.as_str() {
        "sum" => Arc::new(Sum),
        "count" => Arc::new(Count),
        "avg" | "mean" => Arc::new(Avg),
        "stddev" | "std" => Arc::new(StdDev),
        "variance" | "var" => Arc::new(Variance),
        "min" => Arc::new(Min),
        "max" => Arc::new(Max),
        "median" => Arc::new(Median),
        "count_distinct" | "distinct" => Arc::new(CountDistinct),
        other => Arc::new(Percentile::new(parse_percentile(other)?)?),
    };
    Some(a)
}

/// Parses the percentile spellings: `p<digits>` (1–2 digits →
/// hundredths, 3 → thousandths) and `percentile:<fraction>`.
fn parse_percentile(name: &str) -> Option<f64> {
    if let Some(frac) = name.strip_prefix("percentile:") {
        return frac.parse::<f64>().ok();
    }
    let digits = name.strip_prefix('p')?;
    if digits.is_empty() || digits.len() > 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let v: f64 = digits.parse().ok()?;
    Some(match digits.len() {
        3 => v / 1000.0,
        _ => v / 100.0,
    })
}

/// All registered aggregate names (canonical spellings; the open-ended
/// percentile family is represented by its common shorthands).
pub fn registered_names() -> &'static [&'static str] {
    &[
        "sum",
        "count",
        "avg",
        "stddev",
        "variance",
        "min",
        "max",
        "median",
        "count_distinct",
        "p50",
        "p90",
        "p99",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_names() {
        for name in registered_names() {
            let agg = aggregate_by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(&agg.name(), name);
        }
    }

    #[test]
    fn aliases_and_case() {
        assert_eq!(aggregate_by_name("AVG").unwrap().name(), "avg");
        assert_eq!(aggregate_by_name("mean").unwrap().name(), "avg");
        assert_eq!(aggregate_by_name("std").unwrap().name(), "stddev");
        assert_eq!(aggregate_by_name("var").unwrap().name(), "variance");
        assert_eq!(aggregate_by_name("distinct").unwrap().name(), "count_distinct");
        assert_eq!(aggregate_by_name("P99").unwrap().name(), "p99");
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(aggregate_by_name("geomean").is_none());
        assert!(aggregate_by_name("p").is_none());
        assert!(aggregate_by_name("p0").is_none());
        assert!(aggregate_by_name("p1000").is_none(), "four digits is not a percentile");
        assert!(aggregate_by_name("pxx").is_none());
        assert!(aggregate_by_name("percentile:0").is_none());
        assert!(aggregate_by_name("percentile:1.5").is_none());
        assert!(aggregate_by_name("percentile:abc").is_none());
    }

    #[test]
    fn percentile_spellings_resolve() {
        // 1-2 digits are hundredths, 3 digits are thousandths.
        assert_eq!(aggregate_by_name("p87").unwrap().name(), "percentile");
        assert_eq!(aggregate_by_name("p999").unwrap().name(), "p999");
        assert_eq!(aggregate_by_name("p5").unwrap().name(), "percentile");
        // Explicit fraction form, as lowered from SQL percentile(col, p).
        assert_eq!(aggregate_by_name("percentile:0.5").unwrap().name(), "p50");
        assert_eq!(aggregate_by_name("percentile:0.87").unwrap().name(), "percentile");
        // p50 and median agree on the lower-median convention.
        let vals = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(
            aggregate_by_name("p50").unwrap().compute(&vals),
            aggregate_by_name("median").unwrap().compute(&vals)
        );
    }

    #[test]
    fn incremental_support_matches_paper_table() {
        // §5.1: COUNT- and SUM-based arithmetic expressions are
        // incrementally removable; MAX/MIN/MEDIAN are not.
        for name in ["sum", "count", "avg", "stddev", "variance"] {
            assert!(
                aggregate_by_name(name).unwrap().incremental().is_some(),
                "{name} should be incrementally removable"
            );
        }
        for name in ["min", "max", "median", "p90", "count_distinct"] {
            assert!(
                aggregate_by_name(name).unwrap().incremental().is_none(),
                "{name} should not be incrementally removable"
            );
        }
    }

    #[test]
    fn sketch_support_split() {
        for name in ["median", "p50", "p90", "p99", "count_distinct"] {
            assert!(
                aggregate_by_name(name).unwrap().sketch().is_some(),
                "{name} should have a sketch tier"
            );
        }
        for name in ["sum", "count", "avg", "stddev", "variance", "min", "max"] {
            assert!(aggregate_by_name(name).unwrap().sketch().is_none(), "{name} is exact-only");
        }
    }
}

//! # scorpion-agg
//!
//! The aggregate-property framework of the Scorpion paper (§5): aggregate
//! operators annotated with the three properties that unlock efficient
//! influence search —
//!
//! * **incrementally removable** (§5.1): [`IncrementalAggregate`]'s
//!   `state` / `update` / `remove` / `recover` decomposition lets the
//!   Scorer evaluate a predicate's influence by reading only the deleted
//!   tuples;
//! * **independent** (§5.2): declared via
//!   [`AggProperties::independent`], enables the DT partitioner;
//! * **anti-monotonic Δ** (§5.3): declared via the data-dependent
//!   [`Aggregate::anti_monotonic_check`], enables MC's pruning.
//!
//! A fourth capability extends the framework to continuous ingestion:
//! **mergeable partials** ([`MergeableAggregate`], via
//! [`Aggregate::mergeable`]) — the TimescaleDB-toolkit-style two-phase
//! decomposition that lets `scorpion-stream` combine per-chunk partial
//! states instead of re-reading rows. SUM/COUNT/AVG/STDDEV/VARIANCE are
//! retractable-mergeable; MIN/MAX are mergeable only; MEDIAN is neither.
//!
//! A fifth, approximate capability covers the operators with no exact
//! partial: **sketch tiers** ([`SketchAggregate`], via
//! [`Aggregate::sketch`]) — MEDIAN and the [`Percentile`] family ride a
//! retractable quantile sketch, [`CountDistinct`] a merge-only HLL++,
//! each within a runtime-queryable error bound. Exact `compute` stays
//! the oracle; sketches engage only where a caller opts in.
//!
//! Shipped operators: [`Sum`], [`Count`], [`Avg`], [`StdDev`],
//! [`Variance`] (incrementally removable + independent), [`Min`],
//! [`Max`], [`Median`] (black-box), and the sketch-tier family
//! ([`Percentile`], [`CountDistinct`]).
//!
//! ```
//! use scorpion_agg::{Avg, Aggregate, IncrementalAggregate};
//!
//! let avg = Avg;
//! let m = avg.state_of(&[35.0, 35.0, 100.0]);
//! // Remove the 100° reading without re-reading the kept tuples:
//! let m2 = avg.remove(&m, &avg.state_one(100.0));
//! assert_eq!(avg.recover(&m2), 35.0);
//! ```

#![warn(missing_docs)]

mod arithmetic;
mod merge;
mod order;
mod registry;
mod sketch;
mod spread;
mod state;
mod traits;

pub use arithmetic::{Avg, Count, Sum};
pub use merge::MergeableAggregate;
pub use order::{Max, Median, Min};
pub use registry::{aggregate_by_name, registered_names};
pub use sketch::{CountDistinct, Percentile, SketchAggregate};
pub use spread::{StdDev, Variance};
pub use state::{AggState, MAX_STATE};
pub use traits::{AggProperties, Aggregate, IncrementalAggregate};

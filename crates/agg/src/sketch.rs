//! Sketch-backed aggregates — the approximate tier of the framework.
//!
//! §5 leaves MEDIAN as the canonical "neither removable nor mergeable"
//! operator: no constant-size *exact* summary exists. Sketches buy back
//! both capabilities by answering approximately with a documented,
//! runtime-queryable error bound (cf. Macke et al.'s
//! distribution-sensitive interval guarantees — approximate answers are
//! acceptable when the bound is explicit):
//!
//! * [`Percentile`] and MEDIAN ride a log-bucket [`QuantileSketch`]
//!   whose bucket counts form a group — merge **and exact retract**;
//! * [`CountDistinct`] rides HyperLogLog++ — merge-only (a window
//!   recovers eviction by re-merging surviving partials, the MIN/MAX
//!   path).
//!
//! The exact `compute` path remains the oracle everywhere: sketches are
//! only consulted when a streaming window is explicitly configured for
//! them, and every estimate can report its current [`ErrorBound`].

use crate::traits::Aggregate;
use scorpion_sketch::{ErrorBound, HyperLogLog, QuantileSketch, SketchPartial};

/// The sketch-partial decomposition of an aggregate: a third capability
/// alongside [`crate::IncrementalAggregate`] (exact removal) and
/// [`crate::MergeableAggregate`] (exact merge), reached through
/// [`Aggregate::sketch`].
///
/// Unlike `AggState` partials (a fixed four-float register file), a
/// [`SketchPartial`] owns heap state; inserting, merging, and
/// retracting go through the partial itself — the operator contributes
/// the empty partial, the finalizer, and the capability flags.
///
/// Laws (verified in `tests/` and the sketch crate's property tests):
///
/// 1. `sketch_finalize(p)` is within `sketch_error_bound(p)` of
///    `compute(D)` for the bag `D` inserted into `p`;
/// 2. partial merge ≡ single-stream insertion (bit-exact);
/// 3. when [`SketchAggregate::sketch_retractable`], retracting a merged
///    partial restores the pre-merge partial bit-exactly.
pub trait SketchAggregate: Aggregate {
    /// A fresh, empty sketch partial for this operator.
    fn sketch_empty(&self) -> SketchPartial;

    /// Recovers the (approximate) aggregate value from a partial.
    fn sketch_finalize(&self, partial: &SketchPartial) -> f64;

    /// The guarantee on [`SketchAggregate::sketch_finalize`] for this
    /// partial, *right now* (bounds can widen as sketches compact).
    fn sketch_error_bound(&self, partial: &SketchPartial) -> ErrorBound {
        partial.error_bound()
    }

    /// True when the partial algebra is a group: an expired chunk's
    /// partial can be subtracted instead of re-merging survivors.
    fn sketch_retractable(&self) -> bool;
}

/// `PERCENTILE(x, p)` — exact rank statistic with a sketch-backed
/// approximate tier.
///
/// Rank convention: `rank = clamp(ceil(p·n), 1, n)` over the ascending
/// sort, which makes `p = 0.5` coincide with [`crate::Median`]'s lower
/// median. `compute` is exact (black-box, like MEDIAN); the sketch path
/// answers within the quantile sketch's relative-value bound. Empty bag
/// → `0.0`.
///
/// The fraction is stored in basis points (`p50` ⇒ 5000), which keeps
/// the operator `Copy` and gives common percentiles stable names.
#[derive(Debug, Clone, Copy)]
pub struct Percentile {
    /// Percentile in basis points: `p = bp / 10_000`, in `(0, 10_000]`.
    bp: u32,
}

impl Percentile {
    /// Build from a fraction in `(0, 1]`. Returns `None` outside that
    /// range (a 0th percentile is `min`; use MIN).
    pub fn new(fraction: f64) -> Option<Self> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return None;
        }
        let bp = (fraction * 10_000.0).round() as u32;
        if bp == 0 || bp > 10_000 {
            None
        } else {
            Some(Self { bp })
        }
    }

    /// The percentile as a fraction in `(0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.bp as f64 / 10_000.0
    }
}

impl Aggregate for Percentile {
    /// Common percentiles get their canonical short name (`p50`, `p90`,
    /// …); anything else reports the generic `"percentile"`.
    fn name(&self) -> &'static str {
        match self.bp {
            1000 => "p10",
            2500 => "p25",
            5000 => "p50",
            7500 => "p75",
            9000 => "p90",
            9500 => "p95",
            9900 => "p99",
            9990 => "p999",
            10_000 => "p100",
            _ => "percentile",
        }
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        if vals.is_empty() {
            return 0.0;
        }
        let mut v = vals.to_vec();
        let n = v.len();
        let rank = ((self.fraction() * n as f64).ceil() as usize).clamp(1, n);
        let (_, m, _) = v.select_nth_unstable_by(rank - 1, |a, b| a.total_cmp(b));
        *m
    }

    fn sketch(&self) -> Option<&dyn SketchAggregate> {
        Some(self)
    }
}

impl SketchAggregate for Percentile {
    fn sketch_empty(&self) -> SketchPartial {
        SketchPartial::Quantile(QuantileSketch::default_sketch())
    }

    fn sketch_finalize(&self, partial: &SketchPartial) -> f64 {
        match partial {
            SketchPartial::Quantile(s) => s.quantile(self.fraction()),
            _ => 0.0,
        }
    }

    fn sketch_retractable(&self) -> bool {
        true
    }
}

impl SketchAggregate for crate::order::Median {
    fn sketch_empty(&self) -> SketchPartial {
        SketchPartial::Quantile(QuantileSketch::default_sketch())
    }

    fn sketch_finalize(&self, partial: &SketchPartial) -> f64 {
        match partial {
            SketchPartial::Quantile(s) => s.quantile(0.5),
            _ => 0.0,
        }
    }

    fn sketch_retractable(&self) -> bool {
        true
    }
}

/// `COUNT DISTINCT(x)` — exact distinct count with an HLL++-backed
/// approximate tier.
///
/// `compute` is exact via a hash set over canonicalized bit patterns
/// (`-0.0 ≡ 0.0`, NaNs collapse). Like MEDIAN it is black-box for the
/// influence framework: not incrementally removable (removing a value
/// needs to know whether a duplicate survives) and with no constant-size
/// exact partial. The sketch tier is merge-only. Empty bag → `0.0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountDistinct;

impl Aggregate for CountDistinct {
    fn name(&self) -> &'static str {
        "count_distinct"
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for &v in vals {
            seen.insert(canonical_bits(v));
        }
        seen.len() as f64
    }

    fn sketch(&self) -> Option<&dyn SketchAggregate> {
        Some(self)
    }
}

/// Canonical `f64` bits matching the sketch crate's hashing (kept here
/// so the exact oracle and the HLL agree on what "distinct" means).
fn canonical_bits(v: f64) -> u64 {
    if v == 0.0 {
        0
    } else if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

impl SketchAggregate for CountDistinct {
    fn sketch_empty(&self) -> SketchPartial {
        SketchPartial::Distinct(HyperLogLog::default_sketch())
    }

    fn sketch_finalize(&self, partial: &SketchPartial) -> f64 {
        match partial {
            SketchPartial::Distinct(s) => s.estimate(),
            _ => 0.0,
        }
    }

    fn sketch_retractable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::Median;

    #[test]
    fn percentile_construction_bounds() {
        assert!(Percentile::new(0.0).is_none());
        assert!(Percentile::new(-0.5).is_none());
        assert!(Percentile::new(1.5).is_none());
        assert!(Percentile::new(1.0).is_some());
        assert_eq!(Percentile::new(0.5).unwrap().name(), "p50");
        assert_eq!(Percentile::new(0.999).unwrap().name(), "p999");
        assert_eq!(Percentile::new(0.87).unwrap().name(), "percentile");
        assert!((Percentile::new(0.87).unwrap().fraction() - 0.87).abs() < 1e-12);
    }

    #[test]
    fn p50_matches_lower_median() {
        let p50 = Percentile::new(0.5).unwrap();
        for vals in [
            vec![5.0, 1.0, 3.0],
            vec![4.0, 1.0, 3.0, 2.0],
            vec![8.0],
            vec![2.0, 2.0, 9.0, -4.0, 0.0, 7.0],
        ] {
            assert_eq!(p50.compute(&vals), Median.compute(&vals), "{vals:?}");
        }
        assert_eq!(p50.compute(&[]), 0.0);
    }

    #[test]
    fn percentile_ranks_are_exact() {
        let vals: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(Percentile::new(0.90).unwrap().compute(&vals), 90.0);
        assert_eq!(Percentile::new(0.99).unwrap().compute(&vals), 99.0);
        assert_eq!(Percentile::new(1.0).unwrap().compute(&vals), 100.0);
        assert_eq!(Percentile::new(0.01).unwrap().compute(&vals), 1.0);
    }

    #[test]
    fn percentile_sketch_tier_is_retractable_and_accurate() {
        let p90 = Percentile::new(0.9).unwrap();
        let s = p90.sketch().expect("percentile has a sketch tier");
        assert!(s.sketch_retractable());
        let mut partial = s.sketch_empty();
        let vals: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        for &v in &vals {
            partial.insert(v);
        }
        let est = s.sketch_finalize(&partial);
        let exact = p90.compute(&vals);
        let bound = s.sketch_error_bound(&partial).magnitude();
        assert!((est - exact).abs() <= bound * exact + 1e-9, "est {est} exact {exact}");
    }

    #[test]
    fn median_sketch_tier_matches_its_convention() {
        let s = Median.sketch().expect("median has a sketch tier");
        let mut partial = s.sketch_empty();
        for i in 1..=101 {
            partial.insert(i as f64);
        }
        let est = s.sketch_finalize(&partial);
        let exact = Median.compute(&(1..=101).map(|i| i as f64).collect::<Vec<_>>());
        let bound = s.sketch_error_bound(&partial).magnitude();
        assert!((est - exact).abs() <= bound * exact + 1e-9);
    }

    #[test]
    fn count_distinct_exact_and_sketch() {
        let cd = CountDistinct;
        assert_eq!(cd.compute(&[]), 0.0);
        assert_eq!(cd.compute(&[1.0, 1.0, 2.0, 2.0, 3.0]), 3.0);
        assert_eq!(cd.compute(&[0.0, -0.0]), 1.0, "signed zeros are one value");
        let s = cd.sketch().expect("count_distinct has a sketch tier");
        assert!(!s.sketch_retractable());
        let mut partial = s.sketch_empty();
        for i in 0..500 {
            partial.insert(i as f64);
            partial.insert(i as f64);
        }
        let est = s.sketch_finalize(&partial);
        assert!((est - 500.0).abs() <= 3.0 * 0.0163 * 500.0 + 1.0, "est {est}");
    }

    #[test]
    fn sketch_capability_is_opt_in() {
        use crate::{Avg, Max, Min, Sum};
        assert!(Sum.sketch().is_none());
        assert!(Avg.sketch().is_none());
        assert!(Min.sketch().is_none());
        assert!(Max.sketch().is_none());
        assert!(Median.sketch().is_some());
    }
}

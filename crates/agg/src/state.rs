//! Constant-size aggregate states.
//!
//! §5.1 requires incrementally removable aggregates to summarize a dataset
//! in a *constant-sized tuple*. [`AggState`] is that tuple: an inline,
//! fixed-capacity vector of up to four `f64` components (enough for
//! COUNT `[n]`, SUM `[s]`, AVG `[s, n]`, and STDDEV/VARIANCE
//! `[s, s², n]`), copyable and allocation-free so Scorer hot loops never
//! touch the heap.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Maximum number of state components.
pub const MAX_STATE: usize = 4;

/// An inline, constant-size aggregate state vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggState {
    vals: [f64; MAX_STATE],
    len: u8,
}

impl AggState {
    /// Builds a state from components. Panics if more than
    /// [`MAX_STATE`] components are supplied.
    pub fn new(components: &[f64]) -> Self {
        assert!(components.len() <= MAX_STATE, "aggregate state limited to {MAX_STATE} components");
        let mut vals = [0.0; MAX_STATE];
        vals[..components.len()].copy_from_slice(components);
        AggState { vals, len: components.len() as u8 }
    }

    /// The all-zero state with `len` components — the identity for
    /// additive state algebras (`update(zero, m) == m`).
    pub fn zero(len: usize) -> Self {
        assert!(len <= MAX_STATE);
        AggState { vals: [0.0; MAX_STATE], len: len as u8 }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the state has no components.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the components.
    pub fn as_slice(&self) -> &[f64] {
        &self.vals[..self.len as usize]
    }

    /// Componentwise sum (the `update` of additive state algebras).
    #[inline]
    pub fn add(&self, other: &AggState) -> AggState {
        debug_assert_eq!(self.len, other.len);
        let mut out = *self;
        for i in 0..self.len as usize {
            out.vals[i] += other.vals[i];
        }
        out
    }

    /// Componentwise difference (the `remove` of additive state algebras).
    #[inline]
    pub fn sub(&self, other: &AggState) -> AggState {
        debug_assert_eq!(self.len, other.len);
        let mut out = *self;
        for i in 0..self.len as usize {
            out.vals[i] -= other.vals[i];
        }
        out
    }

    /// Componentwise scaling: the state of `n` copies of the summarized
    /// tuples, for additive algebras. This is the fast path behind the
    /// Merger's cached-tuple approximation (§6.3), where the paper writes
    /// `update(m_t, ..., m_t)` with `N` copies.
    #[inline]
    pub fn scale(&self, n: f64) -> AggState {
        let mut out = *self;
        for i in 0..self.len as usize {
            out.vals[i] *= n;
        }
        out
    }

    /// In-place accumulate (`self += other`), avoiding a copy in hot loops.
    #[inline]
    pub fn accumulate(&mut self, other: &AggState) {
        debug_assert_eq!(self.len, other.len);
        for i in 0..self.len as usize {
            self.vals[i] += other.vals[i];
        }
    }
}

impl Index<usize> for AggState {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        debug_assert!(i < self.len as usize);
        &self.vals[i]
    }
}

impl IndexMut<usize> for AggState {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        debug_assert!(i < self.len as usize);
        &mut self.vals[i]
    }
}

impl fmt::Display for AggState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = AggState::new(&[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(s[1], 2.0);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn too_many_components_panics() {
        AggState::new(&[0.0; 5]);
    }

    #[test]
    fn zero_is_additive_identity() {
        let s = AggState::new(&[4.0, 5.0]);
        let z = AggState::zero(2);
        assert_eq!(z.add(&s), s);
        assert_eq!(s.add(&z), s);
        assert_eq!(s.sub(&z), s);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = AggState::new(&[10.0, 3.0]);
        let b = AggState::new(&[4.0, 1.0]);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&b).as_slice(), &[6.0, 2.0]);
    }

    #[test]
    fn scale_matches_repeated_add() {
        let a = AggState::new(&[2.0, 1.0]);
        let mut acc = AggState::zero(2);
        for _ in 0..5 {
            acc.accumulate(&a);
        }
        assert_eq!(a.scale(5.0), acc);
    }

    #[test]
    fn display() {
        assert_eq!(AggState::new(&[1.0, 2.5]).to_string(), "[1, 2.5]");
        assert_eq!(AggState::zero(0).to_string(), "[]");
    }
}

//! MIN, MAX, and MEDIAN — aggregates that are **not** incrementally
//! removable (§5.1: "it is not in general possible to re-compute MAX after
//! removing an arbitrary subset of inputs without knowledge of the full
//! dataset"). They exercise Scorpion's black-box code paths.

use crate::traits::{AggProperties, Aggregate};

/// `MAX(x)`. Black-box; anti-monotonic (`MAX.check(D) = True`, §5.3):
/// removing tuples can never increase the maximum, so Δ of a contained
/// predicate never exceeds Δ of its container. Empty bag → `0.0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Max;

impl Aggregate for Max {
    fn name(&self) -> &'static str {
        "max"
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        vals.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(if vals.is_empty() {
            0.0
        } else {
            f64::NEG_INFINITY
        })
    }

    fn anti_monotonic_check(&self, _vals: &[f64]) -> bool {
        true
    }

    fn properties(&self) -> AggProperties {
        AggProperties { independent: false }
    }

    fn mergeable(&self) -> Option<&dyn crate::MergeableAggregate> {
        Some(self)
    }
}

/// `MIN(x)`. Black-box. Empty bag → `0.0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Min;

impl Aggregate for Min {
    fn name(&self) -> &'static str {
        "min"
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    fn mergeable(&self) -> Option<&dyn crate::MergeableAggregate> {
        Some(self)
    }
}

/// `MEDIAN(x)` (lower median for even cardinalities). Black-box; the
/// classic example of a non-incrementally-removable, non-independent
/// aggregate. Empty bag → `0.0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Median;

impl Aggregate for Median {
    fn name(&self) -> &'static str {
        "median"
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        if vals.is_empty() {
            return 0.0;
        }
        let mut v = vals.to_vec();
        let mid = (v.len() - 1) / 2;
        let (_, m, _) = v.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
        *m
    }

    fn sketch(&self) -> Option<&dyn crate::SketchAggregate> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_and_min() {
        assert_eq!(Max.compute(&[1.0, 9.0, -4.0]), 9.0);
        assert_eq!(Min.compute(&[1.0, 9.0, -4.0]), -4.0);
        assert_eq!(Max.compute(&[]), 0.0);
        assert_eq!(Min.compute(&[]), 0.0);
        assert_eq!(Max.compute(&[-7.0]), -7.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(Median.compute(&[5.0, 1.0, 3.0]), 3.0);
        // Lower median of 4 elements.
        assert_eq!(Median.compute(&[4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(Median.compute(&[]), 0.0);
        assert_eq!(Median.compute(&[8.0]), 8.0);
    }

    #[test]
    fn none_are_incrementally_removable() {
        assert!(Max.incremental().is_none());
        assert!(Min.incremental().is_none());
        assert!(Median.incremental().is_none());
    }

    #[test]
    fn max_is_anti_monotonic_min_median_are_not() {
        assert!(Max.anti_monotonic_check(&[-1.0, 2.0]));
        assert!(!Min.anti_monotonic_check(&[1.0]));
        assert!(!Median.anti_monotonic_check(&[1.0]));
    }

    #[test]
    fn none_are_independent() {
        assert!(!Max.properties().independent);
        assert!(!Min.properties().independent);
        assert!(!Median.properties().independent);
    }
}

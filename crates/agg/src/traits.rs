//! The aggregate-property framework (§5 of the paper).
//!
//! Scorpion works with arbitrary user-defined aggregates, but three
//! declared properties unlock its efficient algorithms:
//!
//! 1. **Incrementally removable** (§5.1) — the aggregate decomposes into
//!    `state` / `update` / `remove` / `recover`, so the result of deleting
//!    a subset can be computed reading only the deleted tuples. Modeled by
//!    [`IncrementalAggregate`].
//! 2. **Independent** (§5.2) — input tuples influence the result
//!    independently of one another, enabling the DT partitioner's
//!    per-tuple-influence regression trees. Declared via
//!    [`AggProperties::independent`].
//! 3. **Anti-monotonic Δ** (§5.3) — a predicate's Δ bounds the Δ of every
//!    contained predicate, enabling MC's pruning. Because the property may
//!    be data-dependent (SUM requires non-negative inputs), it is declared
//!    by the `check` function [`Aggregate::anti_monotonic_check`], exactly
//!    as the paper prescribes.

use crate::state::AggState;

/// Statically declared properties of an aggregate operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggProperties {
    /// §5.2: tuples influence the result independently. Set for
    /// COUNT/SUM-based arithmetic aggregates (SUM, COUNT, AVG, STDDEV,
    /// VARIANCE).
    pub independent: bool,
}

/// A (possibly black-box) aggregate function over a bag of `f64` values.
///
/// `compute(&[])` must return the aggregate's *empty value*: `0` for
/// SUM/COUNT-style aggregates and `NaN`-free neutral values elsewhere (we
/// standardize on `0.0`, documented per implementation). The Scorer relies
/// on this totalization when a predicate deletes an entire input group.
pub trait Aggregate: Send + Sync {
    /// Operator name (lower case, e.g. `"avg"`).
    fn name(&self) -> &'static str;

    /// Evaluates the aggregate over `vals`.
    fn compute(&self, vals: &[f64]) -> f64;

    /// Declared properties.
    fn properties(&self) -> AggProperties {
        AggProperties::default()
    }

    /// §5.3 `check(D)`: returns `true` when Δ is anti-monotonic over this
    /// data (e.g. SUM over non-negative values). The default declares the
    /// property absent.
    fn anti_monotonic_check(&self, _vals: &[f64]) -> bool {
        false
    }

    /// The incrementally removable decomposition, when the operator has
    /// one. `None` forces black-box evaluation.
    fn incremental(&self) -> Option<&dyn IncrementalAggregate> {
        None
    }

    /// The two-phase mergeable-partial decomposition, when the operator
    /// has one (see [`crate::MergeableAggregate`]). Distinct from
    /// [`Aggregate::incremental`]: MIN/MAX are mergeable but not
    /// removable; MEDIAN is neither. `None` forces a streaming window to
    /// recompute from raw rows.
    fn mergeable(&self) -> Option<&dyn crate::MergeableAggregate> {
        None
    }

    /// The sketch-partial decomposition, when the operator has an
    /// approximate tier (see [`crate::SketchAggregate`]). Orthogonal to
    /// the exact capabilities: MEDIAN/PERCENTILE have no exact partial
    /// but a retractable quantile sketch; COUNT DISTINCT has a
    /// merge-only HLL++. `None` means exact-only. Sketch answers carry
    /// a runtime-queryable error bound and are only used where a caller
    /// explicitly opts in — `compute` stays the oracle.
    fn sketch(&self) -> Option<&dyn crate::SketchAggregate> {
        None
    }
}

/// §5.1: the `state`/`update`/`remove`/`recover` decomposition.
///
/// All aggregates shipped with this crate have *additive* state algebras,
/// so `update`, `remove`, and the `scale` extension have canonical
/// componentwise default implementations; implementors only provide
/// [`IncrementalAggregate::state_one`], the state arity, and
/// [`IncrementalAggregate::recover`].
pub trait IncrementalAggregate: Aggregate {
    /// Number of components in this operator's state tuple.
    fn state_len(&self) -> usize;

    /// `state({v})`: the state of a single tuple.
    fn state_one(&self, v: f64) -> AggState;

    /// `state(D)`: the state summarizing `vals`.
    fn state_of(&self, vals: &[f64]) -> AggState {
        let mut acc = AggState::zero(self.state_len());
        for &v in vals {
            acc.accumulate(&self.state_one(v));
        }
        acc
    }

    /// `update(m₁, ..., mₙ)`: combines disjoint sub-states.
    fn update(&self, states: &[AggState]) -> AggState {
        let mut acc = AggState::zero(self.state_len());
        for s in states {
            acc.accumulate(s);
        }
        acc
    }

    /// `remove(m_D, m_S)`: the state of `D − S`.
    fn remove(&self, d: &AggState, s: &AggState) -> AggState {
        d.sub(s)
    }

    /// The state of `n` copies of the tuples `m` summarizes. Semantically
    /// `update(m, ..., m)` with `n` operands (used by the Merger's
    /// cached-tuple approximation, §6.3); `n` may be fractional because the
    /// approximation estimates partial overlap contributions.
    fn scale(&self, m: &AggState, n: f64) -> AggState {
        m.scale(n)
    }

    /// `recover(m)`: the aggregate value summarized by `m`.
    fn recover(&self, m: &AggState) -> f64;

    /// The state of `n` removed tuples whose value-sum is `sum`, when
    /// that pair fully determines the state (SUM → `[sum]`, COUNT →
    /// `[n]`, AVG → `[sum, n]`).
    ///
    /// This is the hook the approximate influence search's closed-form
    /// interval bounds rest on: if the removed subset's value-sum is
    /// only known to lie in `[lo, hi]`, evaluating
    /// `recover(remove(m_D, state_from_count_sum(n, ·)))` at both
    /// endpoints brackets the true Δ, *provided* `recover` is monotone
    /// in the sum component for fixed count — true for every aggregate
    /// that implements this. Aggregates whose state needs more than
    /// `(count, sum)` (e.g. STDDEV's sum of squares) return `None` and
    /// fall back to exact scoring under approximate mode.
    fn state_from_count_sum(&self, _n: f64, _sum: f64) -> Option<AggState> {
        None
    }

    /// `Δ = recover(m_D) − recover(remove(m_D, state_from_count_sum(n, sum)))`
    /// in one call, where `full_value` must equal `recover(full)`.
    ///
    /// Semantically identical to composing the three hooks, but the
    /// approximate search's interval pass evaluates it three times per
    /// candidate per group, so the arithmetic operators override the
    /// default (which materializes two intermediate states on the heap)
    /// with allocation-free closed forms. Returns `None` exactly when
    /// [`IncrementalAggregate::state_from_count_sum`] does.
    fn delta_from_count_sum(
        &self,
        full: &AggState,
        full_value: f64,
        n: f64,
        sum: f64,
    ) -> Option<f64> {
        let sub = self.state_from_count_sum(n, sum)?;
        Some(full_value - self.recover(&self.remove(full, &sub)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately black-box aggregate for exercising defaults.
    struct Opaque;
    impl Aggregate for Opaque {
        fn name(&self) -> &'static str {
            "opaque"
        }
        fn compute(&self, vals: &[f64]) -> f64 {
            vals.iter().copied().fold(0.0, f64::max)
        }
    }

    #[test]
    fn default_properties_are_conservative() {
        let a = Opaque;
        assert!(!a.properties().independent);
        assert!(!a.anti_monotonic_check(&[1.0]));
        assert!(a.incremental().is_none());
    }

    #[test]
    fn default_state_of_accumulates_state_one() {
        struct Summish;
        impl Aggregate for Summish {
            fn name(&self) -> &'static str {
                "summish"
            }
            fn compute(&self, vals: &[f64]) -> f64 {
                vals.iter().sum()
            }
        }
        impl IncrementalAggregate for Summish {
            fn state_len(&self) -> usize {
                1
            }
            fn state_one(&self, v: f64) -> AggState {
                AggState::new(&[v])
            }
            fn recover(&self, m: &AggState) -> f64 {
                m[0]
            }
        }
        let s = Summish;
        let st = s.state_of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.recover(&st), 6.0);
        let merged = s.update(&[s.state_of(&[1.0]), s.state_of(&[2.0, 3.0])]);
        assert_eq!(merged, st);
        let removed = s.remove(&st, &s.state_of(&[2.0]));
        assert_eq!(s.recover(&removed), 4.0);
        assert_eq!(s.recover(&s.scale(&s.state_one(2.0), 3.0)), 6.0);
    }
}

//! SUM, COUNT, and AVG — incrementally removable, independent aggregates.

use crate::state::AggState;
use crate::traits::{AggProperties, Aggregate, IncrementalAggregate};

/// `SUM(x)`. Incrementally removable with state `[sum]`; independent;
/// anti-monotonic over non-negative data (§5.3's `SUM.check`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sum;

impl Aggregate for Sum {
    fn name(&self) -> &'static str {
        "sum"
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        vals.iter().sum()
    }

    fn properties(&self) -> AggProperties {
        AggProperties { independent: true }
    }

    /// `SUM.check(D) = |{d ∈ D | d < 0}| == 0`.
    fn anti_monotonic_check(&self, vals: &[f64]) -> bool {
        vals.iter().all(|&v| v >= 0.0)
    }

    fn incremental(&self) -> Option<&dyn IncrementalAggregate> {
        Some(self)
    }

    fn mergeable(&self) -> Option<&dyn crate::MergeableAggregate> {
        Some(self)
    }
}

impl IncrementalAggregate for Sum {
    fn state_len(&self) -> usize {
        1
    }
    fn state_one(&self, v: f64) -> AggState {
        AggState::new(&[v])
    }
    fn recover(&self, m: &AggState) -> f64 {
        m[0]
    }
    fn state_from_count_sum(&self, _n: f64, sum: f64) -> Option<AggState> {
        Some(AggState::new(&[sum]))
    }
    fn delta_from_count_sum(
        &self,
        full: &AggState,
        full_value: f64,
        _n: f64,
        sum: f64,
    ) -> Option<f64> {
        // Bit-identical to the default composition, minus the two heap
        // states: removed state is `[full[0] − sum]`.
        Some(full_value - (full[0] - sum))
    }
}

/// `COUNT(*)`. Incrementally removable with state `[n]`; independent;
/// always anti-monotonic (`COUNT.check(D) = True`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Count;

impl Aggregate for Count {
    fn name(&self) -> &'static str {
        "count"
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        vals.len() as f64
    }

    fn properties(&self) -> AggProperties {
        AggProperties { independent: true }
    }

    fn anti_monotonic_check(&self, _vals: &[f64]) -> bool {
        true
    }

    fn incremental(&self) -> Option<&dyn IncrementalAggregate> {
        Some(self)
    }

    fn mergeable(&self) -> Option<&dyn crate::MergeableAggregate> {
        Some(self)
    }
}

impl IncrementalAggregate for Count {
    fn state_len(&self) -> usize {
        1
    }
    fn state_one(&self, _v: f64) -> AggState {
        AggState::new(&[1.0])
    }
    fn recover(&self, m: &AggState) -> f64 {
        m[0]
    }
    fn state_from_count_sum(&self, n: f64, _sum: f64) -> Option<AggState> {
        // COUNT ignores values entirely, so the interval collapses to a
        // point: Δ is exact whenever `n` is.
        Some(AggState::new(&[n]))
    }
    fn delta_from_count_sum(
        &self,
        full: &AggState,
        full_value: f64,
        n: f64,
        _sum: f64,
    ) -> Option<f64> {
        Some(full_value - (full[0] - n))
    }
}

/// `AVG(x)`. Incrementally removable with state `[sum, n]` (§5.1's worked
/// example); independent. `AVG` of the empty bag is defined as `0.0` so the
/// Scorer's Δ stays total when a predicate deletes an entire group.
#[derive(Debug, Clone, Copy, Default)]
pub struct Avg;

impl Aggregate for Avg {
    fn name(&self) -> &'static str {
        "avg"
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    fn properties(&self) -> AggProperties {
        AggProperties { independent: true }
    }

    fn incremental(&self) -> Option<&dyn IncrementalAggregate> {
        Some(self)
    }

    fn mergeable(&self) -> Option<&dyn crate::MergeableAggregate> {
        Some(self)
    }
}

impl IncrementalAggregate for Avg {
    fn state_len(&self) -> usize {
        2
    }
    fn state_one(&self, v: f64) -> AggState {
        AggState::new(&[v, 1.0])
    }
    fn recover(&self, m: &AggState) -> f64 {
        // Empty (or numerically vanished) population recovers the empty
        // value 0.0 rather than NaN.
        if m[1].abs() < 0.5 {
            0.0
        } else {
            m[0] / m[1]
        }
    }
    fn state_from_count_sum(&self, n: f64, sum: f64) -> Option<AggState> {
        Some(AggState::new(&[sum, n]))
    }
    fn delta_from_count_sum(
        &self,
        full: &AggState,
        full_value: f64,
        n: f64,
        sum: f64,
    ) -> Option<f64> {
        // Mirrors `recover` on the removed state `[full[0]−sum, full[1]−n]`,
        // including its empty-population convention.
        let (rs, rn) = (full[0] - sum, full[1] - n);
        Some(full_value - if rn.abs() < 0.5 { 0.0 } else { rs / rn })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_basics() {
        assert_eq!(Sum.compute(&[1.0, 2.0, 3.5]), 6.5);
        assert_eq!(Sum.compute(&[]), 0.0);
        assert!(Sum.properties().independent);
        assert!(Sum.anti_monotonic_check(&[0.0, 1.0]));
        assert!(!Sum.anti_monotonic_check(&[1.0, -0.1]));
    }

    #[test]
    fn count_basics() {
        assert_eq!(Count.compute(&[7.0, 8.0]), 2.0);
        assert_eq!(Count.compute(&[]), 0.0);
        assert!(Count.anti_monotonic_check(&[-5.0]));
    }

    #[test]
    fn avg_basics() {
        assert_eq!(Avg.compute(&[2.0, 4.0]), 3.0);
        assert_eq!(Avg.compute(&[]), 0.0);
        assert!(!Avg.anti_monotonic_check(&[1.0]));
    }

    #[test]
    fn avg_incremental_matches_paper_example() {
        // §3.2: g_α2 = {35, 35, 100}; removing T4 (35) leaves avg 67.5.
        let avg = Avg;
        let d = avg.state_of(&[35.0, 35.0, 100.0]);
        assert!((avg.recover(&d) - 56.666).abs() < 1e-2);
        let removed = avg.remove(&d, &avg.state_one(35.0));
        assert!((avg.recover(&removed) - 67.5).abs() < 1e-9);
        // Removing T6 (100) leaves avg 35.
        let removed = avg.remove(&d, &avg.state_one(100.0));
        assert!((avg.recover(&removed) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_equals_blackbox_for_all_three() {
        let data = [3.0, -1.0, 7.5, 0.0, 2.25];
        let removed = [1usize, 3];
        let kept: Vec<f64> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed.contains(i))
            .map(|(_, &v)| v)
            .collect();
        let rm: Vec<f64> = removed.iter().map(|&i| data[i]).collect();
        for agg in [&Sum as &dyn Aggregate, &Count, &Avg] {
            let inc = agg.incremental().unwrap();
            let d = inc.state_of(&data);
            let s = inc.state_of(&rm);
            let got = inc.recover(&inc.remove(&d, &s));
            let want = agg.compute(&kept);
            assert!(
                (got - want).abs() < 1e-9,
                "{}: incremental {got} != blackbox {want}",
                agg.name()
            );
        }
    }

    #[test]
    fn avg_remove_everything_recovers_empty_value() {
        let avg = Avg;
        let d = avg.state_of(&[5.0, 6.0]);
        let empty = avg.remove(&d, &d);
        assert_eq!(avg.recover(&empty), 0.0);
    }

    #[test]
    fn update_combines_disjoint_subsets() {
        let avg = Avg;
        let m = avg.update(&[avg.state_of(&[1.0, 2.0]), avg.state_of(&[3.0])]);
        assert_eq!(avg.recover(&m), 2.0);
    }
}

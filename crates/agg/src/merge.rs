//! Mergeable partial aggregates — the two-phase (partial, combine,
//! finalize) decomposition that extends §5.1's `state`/`update`/`remove`
//! from one-shot deletion to continuous ingestion.
//!
//! TimescaleDB-toolkit-style partial states let a streaming system
//! summarize each *chunk* of arriving rows once, then answer any window
//! query by merging the per-chunk partials — no chunk is ever re-read.
//! The trait splits from [`IncrementalAggregate`] because mergeability
//! and removability are different capabilities:
//!
//! * SUM/COUNT/AVG/STDDEV/VARIANCE have *additive* partials: `merge` is
//!   componentwise `+`, and [`MergeableAggregate::unmerge`] (the exact
//!   inverse) makes window retraction O(1) per expired chunk.
//! * MIN/MAX are **not** incrementally removable, but they *are*
//!   mergeable (`min`/`max` is associative and commutative), so a
//!   sliding window can still be maintained by re-merging the surviving
//!   chunks' constant-size partials instead of re-reading rows.
//! * MEDIAN is neither: no constant-size mergeable summary exists, so it
//!   stays a black-box aggregate and a streaming window must recompute.

use crate::state::AggState;
use crate::traits::Aggregate;

/// The two-phase (mergeable partial) decomposition of an aggregate.
///
/// Laws (verified by the property tests in `tests/prop.rs`):
///
/// 1. `finalize(partial_of(D)) == compute(D)`;
/// 2. `merge` is associative and commutative with identity
///    [`MergeableAggregate::empty_partial`];
/// 3. `finalize(merge(partial_of(A), partial_of(B))) == compute(A ∪ B)`
///    for disjoint bags `A`, `B`;
/// 4. when [`MergeableAggregate::retractable`] is true,
///    `unmerge(merge(a, b), b) == a` up to float round-off.
pub trait MergeableAggregate: Aggregate {
    /// Number of components in this operator's partial state.
    fn partial_len(&self) -> usize;

    /// The identity partial: the summary of the empty bag.
    fn empty_partial(&self) -> AggState;

    /// The partial summarizing a single value.
    fn partial_one(&self, v: f64) -> AggState;

    /// The partial summarizing a bag of values.
    fn partial_of(&self, vals: &[f64]) -> AggState {
        let mut acc = self.empty_partial();
        for &v in vals {
            self.merge(&mut acc, &self.partial_one(v));
        }
        acc
    }

    /// Combines another partial into `into` (timescale `combine`).
    fn merge(&self, into: &mut AggState, other: &AggState);

    /// Recovers the aggregate value from a partial (timescale `final`).
    fn finalize(&self, m: &AggState) -> f64;

    /// True when [`MergeableAggregate::unmerge`] is an exact inverse of
    /// `merge` — i.e. the partial algebra is a group, not just a monoid.
    /// Additive partials (SUM/COUNT/AVG/STDDEV/VARIANCE) are retractable;
    /// MIN/MAX are not (removing the extremum needs the runner-up).
    fn retractable(&self) -> bool {
        false
    }

    /// Removes a previously merged partial from `into`. Returns `false`
    /// (leaving `into` untouched) when the operator is not retractable.
    fn unmerge(&self, _into: &mut AggState, _other: &AggState) -> bool {
        false
    }
}

/// Blanket plumbing for the additive operators: partial == §5.1 state,
/// merge == `update`, unmerge == `remove`.
macro_rules! additive_mergeable {
    ($($t:ty),*) => {$(
        impl MergeableAggregate for $t {
            fn partial_len(&self) -> usize {
                crate::traits::IncrementalAggregate::state_len(self)
            }
            fn empty_partial(&self) -> AggState {
                AggState::zero(self.partial_len())
            }
            fn partial_one(&self, v: f64) -> AggState {
                crate::traits::IncrementalAggregate::state_one(self, v)
            }
            fn partial_of(&self, vals: &[f64]) -> AggState {
                crate::traits::IncrementalAggregate::state_of(self, vals)
            }
            fn merge(&self, into: &mut AggState, other: &AggState) {
                into.accumulate(other);
            }
            fn finalize(&self, m: &AggState) -> f64 {
                crate::traits::IncrementalAggregate::recover(self, m)
            }
            fn retractable(&self) -> bool {
                true
            }
            fn unmerge(&self, into: &mut AggState, other: &AggState) -> bool {
                *into = into.sub(other);
                true
            }
        }
    )*};
}

additive_mergeable!(
    crate::arithmetic::Sum,
    crate::arithmetic::Count,
    crate::arithmetic::Avg,
    crate::spread::StdDev,
    crate::spread::Variance
);

/// Order-statistic partials: `[extremum, n]`. The count component
/// distinguishes the empty partial (which must finalize to the operator's
/// documented empty value `0.0`) from a genuine extremum of `±∞`-free
/// data.
macro_rules! order_mergeable {
    ($t:ty, $empty:expr, $pick:expr) => {
        impl MergeableAggregate for $t {
            fn partial_len(&self) -> usize {
                2
            }
            fn empty_partial(&self) -> AggState {
                AggState::new(&[$empty, 0.0])
            }
            fn partial_one(&self, v: f64) -> AggState {
                AggState::new(&[v, 1.0])
            }
            fn merge(&self, into: &mut AggState, other: &AggState) {
                if other[1] > 0.0 {
                    let pick: fn(f64, f64) -> f64 = $pick;
                    into[0] = if into[1] > 0.0 { pick(into[0], other[0]) } else { other[0] };
                    into[1] += other[1];
                }
            }
            fn finalize(&self, m: &AggState) -> f64 {
                if m[1] < 0.5 {
                    0.0
                } else {
                    m[0]
                }
            }
        }
    };
}

order_mergeable!(crate::order::Min, f64::INFINITY, f64::min);
order_mergeable!(crate::order::Max, f64::NEG_INFINITY, f64::max);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{aggregate_by_name, Avg, Max, Min, Sum};

    /// Every mergeable operator by canonical name.
    pub const MERGEABLE: &[&str] = &["sum", "count", "avg", "stddev", "variance", "min", "max"];

    #[test]
    fn registry_exposes_mergeable_capability() {
        for name in MERGEABLE {
            let agg = aggregate_by_name(name).unwrap();
            assert!(agg.mergeable().is_some(), "{name} should be mergeable");
        }
        assert!(aggregate_by_name("median").unwrap().mergeable().is_none());
    }

    #[test]
    fn merge_of_disjoint_chunks_matches_blackbox() {
        let a = [3.0, -1.0, 8.0];
        let b = [2.5, 2.5];
        let all = [3.0, -1.0, 8.0, 2.5, 2.5];
        for name in MERGEABLE {
            let agg = aggregate_by_name(name).unwrap();
            let m = agg.mergeable().unwrap();
            let mut acc = m.partial_of(&a);
            m.merge(&mut acc, &m.partial_of(&b));
            let got = m.finalize(&acc);
            let want = agg.compute(&all);
            assert!((got - want).abs() < 1e-9, "{name}: {got} != {want}");
        }
    }

    #[test]
    fn empty_partial_is_identity_and_finalizes_to_empty_value() {
        for name in MERGEABLE {
            let agg = aggregate_by_name(name).unwrap();
            let m = agg.mergeable().unwrap();
            assert_eq!(m.finalize(&m.empty_partial()), agg.compute(&[]), "{name}");
            let mut acc = m.partial_of(&[4.0, 7.0]);
            let before = m.finalize(&acc);
            m.merge(&mut acc, &m.empty_partial());
            assert_eq!(m.finalize(&acc), before, "{name}: identity law");
        }
    }

    #[test]
    fn retractability_split() {
        for name in ["sum", "count", "avg", "stddev", "variance"] {
            let agg = aggregate_by_name(name).unwrap();
            assert!(agg.mergeable().unwrap().retractable(), "{name}");
        }
        for name in ["min", "max"] {
            let agg = aggregate_by_name(name).unwrap();
            let m = agg.mergeable().unwrap();
            assert!(!m.retractable(), "{name}");
            let mut acc = m.partial_of(&[1.0, 2.0]);
            let copy = acc;
            assert!(!m.unmerge(&mut acc, &m.partial_one(2.0)));
            assert_eq!(acc, copy, "failed unmerge must not corrupt the partial");
        }
    }

    #[test]
    fn unmerge_inverts_merge_for_additive_partials() {
        let m = Sum.mergeable().unwrap();
        let mut acc = m.partial_of(&[5.0, 6.0]);
        let b = m.partial_of(&[7.0]);
        m.merge(&mut acc, &b);
        assert!(m.unmerge(&mut acc, &b));
        assert_eq!(m.finalize(&acc), 11.0);

        let m = Avg.mergeable().unwrap();
        let mut acc = m.partial_of(&[1.0, 3.0]);
        let b = m.partial_of(&[100.0]);
        m.merge(&mut acc, &b);
        assert!(m.unmerge(&mut acc, &b));
        assert_eq!(m.finalize(&acc), 2.0);
    }

    #[test]
    fn min_max_track_extrema_across_merge_order() {
        let chunks: [&[f64]; 3] = [&[5.0, 9.0], &[-2.0], &[7.0, 7.0]];
        for (agg, want) in [(&Min as &dyn Aggregate, -2.0), (&Max, 9.0)] {
            let m = agg.mergeable().unwrap();
            // Forward order.
            let mut fwd = m.empty_partial();
            for c in chunks {
                m.merge(&mut fwd, &m.partial_of(c));
            }
            // Reverse order.
            let mut rev = m.empty_partial();
            for c in chunks.iter().rev() {
                m.merge(&mut rev, &m.partial_of(c));
            }
            assert_eq!(m.finalize(&fwd), want, "{}", agg.name());
            assert_eq!(m.finalize(&fwd), m.finalize(&rev), "{}", agg.name());
        }
    }

    #[test]
    fn min_max_empty_chunks_do_not_poison() {
        let m = Max.mergeable().unwrap();
        let mut acc = m.empty_partial();
        m.merge(&mut acc, &m.empty_partial());
        m.merge(&mut acc, &m.partial_of(&[-3.0]));
        m.merge(&mut acc, &m.empty_partial());
        assert_eq!(m.finalize(&acc), -3.0);
    }
}

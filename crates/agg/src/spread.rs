//! STDDEV and VARIANCE — incrementally removable, independent aggregates
//! over `[sum, sum-of-squares, n]` states.

use crate::state::AggState;
use crate::traits::{AggProperties, Aggregate, IncrementalAggregate};

fn variance_of(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
}

fn recover_variance(m: &AggState) -> f64 {
    // m = [sum, sumsq, n]
    if m[2].abs() < 0.5 {
        return 0.0;
    }
    let n = m[2];
    let mean = m[0] / n;
    // Cancellation can push the moment formula fractionally negative.
    (m[1] / n - mean * mean).max(0.0)
}

/// Population `STDDEV(x)`: incrementally removable (state
/// `[sum, sumsq, n]`), independent. Empty bag → `0.0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdDev;

impl Aggregate for StdDev {
    fn name(&self) -> &'static str {
        "stddev"
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        variance_of(vals).sqrt()
    }

    fn properties(&self) -> AggProperties {
        AggProperties { independent: true }
    }

    fn incremental(&self) -> Option<&dyn IncrementalAggregate> {
        Some(self)
    }

    fn mergeable(&self) -> Option<&dyn crate::MergeableAggregate> {
        Some(self)
    }
}

impl IncrementalAggregate for StdDev {
    fn state_len(&self) -> usize {
        3
    }
    fn state_one(&self, v: f64) -> AggState {
        AggState::new(&[v, v * v, 1.0])
    }
    fn recover(&self, m: &AggState) -> f64 {
        recover_variance(m).sqrt()
    }
}

/// Population `VARIANCE(x)`: incrementally removable (state
/// `[sum, sumsq, n]`), independent. Empty bag → `0.0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Variance;

impl Aggregate for Variance {
    fn name(&self) -> &'static str {
        "variance"
    }

    fn compute(&self, vals: &[f64]) -> f64 {
        variance_of(vals)
    }

    fn properties(&self) -> AggProperties {
        AggProperties { independent: true }
    }

    fn incremental(&self) -> Option<&dyn IncrementalAggregate> {
        Some(self)
    }

    fn mergeable(&self) -> Option<&dyn crate::MergeableAggregate> {
        Some(self)
    }
}

impl IncrementalAggregate for Variance {
    fn state_len(&self) -> usize {
        3
    }
    fn state_one(&self, v: f64) -> AggState {
        AggState::new(&[v, v * v, 1.0])
    }
    fn recover(&self, m: &AggState) -> f64 {
        recover_variance(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stddev_known_values() {
        // Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((StdDev.compute(&data) - 2.0).abs() < 1e-12);
        assert!((Variance.compute(&data) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(StdDev.compute(&[]), 0.0);
        assert_eq!(Variance.compute(&[]), 0.0);
        assert_eq!(StdDev.compute(&[42.0]), 0.0);
        assert_eq!(Variance.compute(&[42.0]), 0.0);
    }

    #[test]
    fn incremental_matches_blackbox() {
        let data = [1.0, 5.0, -3.0, 8.0, 2.0, 2.0];
        let rm = [5.0, 2.0];
        let kept = [1.0, -3.0, 8.0, 2.0];
        for (agg, inc) in [
            (&StdDev as &dyn Aggregate, &StdDev as &dyn IncrementalAggregate),
            (&Variance, &Variance),
        ] {
            let d = inc.state_of(&data);
            let got = inc.recover(&inc.remove(&d, &inc.state_of(&rm)));
            let want = agg.compute(&kept);
            assert!((got - want).abs() < 1e-9, "{}", agg.name());
        }
    }

    #[test]
    fn remove_everything_is_zero() {
        let d = StdDev.state_of(&[3.0, 4.0]);
        assert_eq!(<StdDev as IncrementalAggregate>::recover(&StdDev, &StdDev.remove(&d, &d)), 0.0);
    }

    #[test]
    fn recover_never_returns_nan_on_cancellation() {
        // Identical large values: sumsq/n - mean^2 can dip below zero.
        let d = StdDev.state_of(&[1e8 + 0.1; 5]);
        let r = <StdDev as IncrementalAggregate>::recover(&StdDev, &d);
        assert!(r.is_finite());
        assert!(r >= 0.0);
    }

    #[test]
    fn properties() {
        assert!(StdDev.properties().independent);
        assert!(Variance.properties().independent);
        assert!(!StdDev.anti_monotonic_check(&[1.0]));
    }
}

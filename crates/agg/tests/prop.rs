//! Property tests for the aggregate state algebra (§5.1 laws).

use proptest::prelude::*;
use scorpion_agg::{aggregate_by_name, Aggregate, Sum};

const INCREMENTAL: &[&str] = &["sum", "count", "avg", "stddev", "variance"];

/// Absolute tolerance for comparing two evaluations of `name` over data
/// whose magnitude is bounded by `scale`. STDDEV needs a wider band: the
/// square root amplifies cancellation error without bound as the true
/// deviation approaches zero (err_std ≈ sqrt(err_var)).
fn tol(name: &str, scale: f64) -> f64 {
    let scale = scale.max(1.0);
    match name {
        "stddev" => 1e-4 * scale,
        _ => 1e-7 * scale,
    }
}

proptest! {
    /// `recover(remove(state(D), state(S))) == compute(D − S)` for every
    /// incrementally removable aggregate and every subset S.
    #[test]
    fn incremental_remove_equals_blackbox(
        data in prop::collection::vec(-1e6f64..1e6, 1..200),
        mask in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let removed: Vec<f64> = data
            .iter()
            .zip(mask.iter().cycle())
            .filter(|(_, &m)| m)
            .map(|(&v, _)| v)
            .collect();
        let kept: Vec<f64> = data
            .iter()
            .zip(mask.iter().cycle())
            .filter(|(_, &m)| !m)
            .map(|(&v, _)| v)
            .collect();
        for name in INCREMENTAL {
            let agg = aggregate_by_name(name).unwrap();
            let inc = agg.incremental().unwrap();
            let got = inc.recover(&inc.remove(&inc.state_of(&data), &inc.state_of(&removed)));
            let want = agg.compute(&kept);
            let scale = want.abs().max(data.iter().fold(0.0f64, |a, &b| a.max(b.abs())));
            prop_assert!(
                (got - want).abs() <= tol(name, scale),
                "{name}: {got} != {want}"
            );
        }
    }

    /// `update` over any partition of D equals `state(D)` up to recover.
    #[test]
    fn update_is_partition_invariant(
        data in prop::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let cut = split % data.len();
        let (a, b) = data.split_at(cut);
        for name in INCREMENTAL {
            let agg = aggregate_by_name(name).unwrap();
            let inc = agg.incremental().unwrap();
            let merged = inc.update(&[inc.state_of(a), inc.state_of(b)]);
            let direct = inc.state_of(&data);
            let (got, want) = (inc.recover(&merged), inc.recover(&direct));
            prop_assert!((got - want).abs() <= tol(name, 1e3), "{name}");
        }
    }

    /// `scale(state_one(v), n)` recovers the same value as a bag of n
    /// copies of v.
    #[test]
    fn scale_equals_replication(v in -1e3f64..1e3, n in 1usize..50) {
        for name in INCREMENTAL {
            let agg = aggregate_by_name(name).unwrap();
            let inc = agg.incremental().unwrap();
            let scaled = inc.scale(&inc.state_one(v), n as f64);
            let copies = vec![v; n];
            let got = inc.recover(&scaled);
            let want = agg.compute(&copies);
            prop_assert!((got - want).abs() <= tol(name, v.abs()), "{name}");
        }
    }

    /// Δ-anti-monotonicity for SUM over non-negative data: removing a
    /// *larger* subset produces a Δ at least as large (§5.3).
    #[test]
    fn sum_delta_anti_monotone_on_nonnegative(
        data in prop::collection::vec(0.0f64..1e4, 1..100),
        k in 0usize..100,
    ) {
        let k = k % data.len();
        let total = Sum.compute(&data);
        // Nested subsets: first k+1 elements contain first k elements.
        let small: f64 = data[..k].iter().sum();
        let large: f64 = data[..k + 1].iter().sum();
        let delta_small = total - (total - small);
        let delta_large = total - (total - large);
        prop_assert!(delta_large + 1e-9 >= delta_small);
    }

    /// Black-box aggregates stay total on arbitrary inputs.
    #[test]
    fn order_aggregates_total(data in prop::collection::vec(-1e6f64..1e6, 0..50)) {
        for name in ["min", "max", "median"] {
            let agg = aggregate_by_name(name).unwrap();
            let v = agg.compute(&data);
            prop_assert!(v.is_finite());
        }
    }

    /// Median is always an element of a non-empty input bag.
    #[test]
    fn median_is_witness(data in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let agg = aggregate_by_name("median").unwrap();
        let m = agg.compute(&data);
        prop_assert!(data.contains(&m));
    }
}

//! Shared fixtures for the Criterion benches that regenerate the
//! runtime figures (14–16) and the ablation studies.
//!
//! Benchmarks run at a documented scale factor (1,000 tuples per group vs
//! the paper's 2,000) so `cargo bench --workspace` completes in minutes;
//! the `figures` binary reproduces the paper-scale sweeps.

use scorpion_agg::Sum;
use scorpion_core::{
    Algorithm, ExplainRequest, GroupSpec, InfluenceParams, LabeledQuery, Scorer, Scorpion,
};
use scorpion_data::synth::{self, SynthConfig, SynthDataset};
use scorpion_table::{domains_of, group_by, AttrDomain, Grouping};
use std::sync::Arc;

/// Default tuples per group for benches (scale factor 0.5 of the paper).
pub const BENCH_TUPLES_PER_GROUP: usize = 1000;

/// An owned SYNTH workload fixture.
pub struct BenchSynth {
    /// The generated dataset.
    pub ds: SynthDataset,
    /// Grouping by `Ad`.
    pub grouping: Grouping,
    /// Attribute domains.
    pub domains: Vec<AttrDomain>,
}

impl BenchSynth {
    /// Builds an Easy SYNTH fixture.
    pub fn easy(dims: usize, tuples_per_group: usize) -> Self {
        Self::from_config(SynthConfig::easy(dims).with_tuples_per_group(tuples_per_group))
    }

    /// Builds a Hard SYNTH fixture.
    pub fn hard(dims: usize, tuples_per_group: usize) -> Self {
        Self::from_config(SynthConfig::hard(dims).with_tuples_per_group(tuples_per_group))
    }

    /// Builds a fixture from an explicit [`SynthConfig`] (custom noise,
    /// cube placement, or seed — e.g. the low-noise §8.3.2 variant the
    /// approximate-mode benches use).
    pub fn from_config(cfg: SynthConfig) -> Self {
        let ds = synth::generate(cfg);
        let grouping = group_by(&ds.table, &[ds.group_attr()]).expect("group by Ad");
        let domains = domains_of(&ds.table).expect("domains");
        BenchSynth { ds, grouping, domains }
    }

    /// The labeled query over this fixture.
    pub fn query(&self) -> LabeledQuery<'_> {
        LabeledQuery {
            table: &self.ds.table,
            grouping: &self.grouping,
            agg: &Sum,
            agg_attr: self.ds.agg_attr(),
            outliers: self.ds.outlier_groups.iter().map(|&g| (g, 1.0)).collect(),
            holdouts: self.ds.holdout_groups.clone(),
        }
    }

    /// An owned request over this fixture running `algorithm` at `c`
    /// (λ = 0.5). Clones the table into an `Arc` per call; build once
    /// outside the measured loop.
    pub fn request(&self, algorithm: Algorithm, c: f64) -> ExplainRequest {
        Scorpion::on(self.ds.table.clone())
            .query(self.grouping.clone(), Arc::new(Sum), self.ds.agg_attr())
            .expect("bench query")
            .outliers(self.ds.outlier_groups.iter().map(|&g| (g, 1.0)))
            .holdouts(self.ds.holdout_groups.iter().copied())
            .params(0.5, c)
            .algorithm(algorithm)
            .build()
            .expect("bench request")
    }

    /// A scorer at the given `c` (λ = 0.5). `force_blackbox` disables the
    /// §5.1 fast path for the Scorer ablation.
    pub fn scorer(&self, c: f64, force_blackbox: bool) -> Scorer<'_> {
        self.query().scorer(InfluenceParams { lambda: 0.5, c }, force_blackbox).expect("scorer")
    }

    /// Level-of-detail hint: total rows.
    pub fn rows(&self) -> usize {
        self.ds.table.len()
    }

    /// Builds GroupSpecs for the outlier groups (for direct Scorer use).
    pub fn outlier_specs(&self) -> Vec<GroupSpec> {
        self.ds
            .outlier_groups
            .iter()
            .map(|&g| GroupSpec { rows: self.grouping.rows(g).to_vec(), error: 1.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_scores() {
        let fx = BenchSynth::easy(2, 100);
        assert_eq!(fx.rows(), 1000);
        let s = fx.scorer(0.5, false);
        assert!(s.is_incremental());
        let p = scorpion_table::Predicate::all();
        assert!(s.influence(&p).unwrap().is_finite());
        assert_eq!(fx.outlier_specs().len(), 5);
    }
}

//! `promcheck` — validates a Prometheus text exposition read from
//! stdin, for CI smoke tests of the server's `/metrics` endpoint:
//!
//! ```text
//! curl -fsS http://$ADDR/metrics | promcheck
//! ```
//!
//! Checks performed:
//!
//! * every sample line parses as `name{labels} value` with a legal
//!   metric name and a finite-or-`+Inf`/`NaN` float value;
//! * every `# TYPE` line names a known type and precedes the family's
//!   samples;
//! * every family with samples has a non-empty `# HELP` line;
//! * counters (`*_total` or `TYPE counter`) are non-negative;
//! * histograms: per label set, `_bucket` counts are cumulative in
//!   `le` order, end with `le="+Inf"`, the `+Inf` bucket equals
//!   `_count`, and `_sum`/`_count` are present.
//!
//! Exits 0 with a one-line summary on success, 1 with a diagnostic on
//! the first violation.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Read;
use std::process::exit;

fn fail(line_no: usize, msg: &str) -> ! {
    eprintln!("promcheck: line {line_no}: {msg}");
    exit(1)
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `name{labels} value` into `(name, labels, value)`; labels may
/// contain escaped quotes.
fn parse_sample(line: &str) -> Option<(&str, &str, f64)> {
    let (lhs, labels) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}')?;
            (&line[..open], &line[open + 1..close])
        }
        None => {
            let sp = line.find(|c: char| c.is_ascii_whitespace())?;
            (&line[..sp], "")
        }
    };
    let value_text = line.rsplit(|c: char| c.is_ascii_whitespace()).next()?;
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse().ok()?,
    };
    Some((lhs.trim(), labels, value))
}

/// The `le` label's value, and the label set with `le` removed (the
/// bucket's series identity).
fn split_le(labels: &str) -> (Option<String>, String) {
    let mut le = None;
    let mut rest = Vec::new();
    // Label values in our exposition contain no escaped quotes or
    // commas, so a split on `",` boundaries is exact.
    for pair in labels.split("\",") {
        let pair = pair.trim_end_matches('"');
        match pair.split_once("=\"") {
            Some(("le", v)) => le = Some(v.to_owned()),
            Some(_) | None if pair.is_empty() => {}
            _ => rest.push(pair.to_owned()),
        }
    }
    (le, rest.join(","))
}

fn main() {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("promcheck: failed to read stdin: {e}");
        exit(1);
    }
    if text.trim().is_empty() {
        eprintln!("promcheck: empty exposition");
        exit(1);
    }

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    // histogram family -> series labels -> (le, count) in document order.
    let mut buckets: BTreeMap<(String, String), Vec<(String, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut sums: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut samples = 0usize;

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some(name) = rest.split_ascii_whitespace().next() else {
                fail(line_no, "malformed HELP line");
            };
            if !valid_metric_name(name) {
                fail(line_no, &format!("bad metric name in HELP: `{name}`"));
            }
            if rest[name.len()..].trim().is_empty() {
                fail(line_no, &format!("HELP for `{name}` has no text"));
            }
            if !helps.insert(name.to_owned()) {
                fail(line_no, &format!("duplicate HELP for `{name}`"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_ascii_whitespace();
            let (Some(name), Some(ty)) = (parts.next(), parts.next()) else {
                fail(line_no, "malformed TYPE line");
            };
            if !valid_metric_name(name) {
                fail(line_no, &format!("bad metric name in TYPE: `{name}`"));
            }
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                fail(line_no, &format!("unknown metric type `{ty}`"));
            }
            if types.insert(name.to_owned(), ty.to_owned()).is_some() {
                fail(line_no, &format!("duplicate TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and free comments.
        }

        let Some((name, labels, value)) = parse_sample(line) else {
            fail(line_no, &format!("unparseable sample: `{line}`"));
        };
        if !valid_metric_name(name) {
            fail(line_no, &format!("bad metric name `{name}`"));
        }
        samples += 1;

        // The family a suffixed series belongs to, if its base is typed.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s).filter(|b| types.contains_key(*b)))
            .unwrap_or(name);
        let declared = types.get(family).map(String::as_str);
        if declared.is_none() {
            fail(line_no, &format!("sample for `{name}` precedes its TYPE line"));
        }
        emitted.insert(family.to_owned());
        if declared == Some("counter") && value < 0.0 {
            fail(line_no, &format!("counter `{name}` is negative: {value}"));
        }
        if declared == Some("histogram") {
            let (le, series) = split_le(labels);
            let key = (family.to_owned(), series);
            if let Some(stripped) = name.strip_suffix("_bucket") {
                let Some(le) = le else {
                    fail(line_no, &format!("`{name}` bucket without an le label"));
                };
                if value < 0.0 {
                    fail(line_no, &format!("negative bucket count in `{stripped}`"));
                }
                buckets.entry(key).or_default().push((le, value));
            } else if name.ends_with("_count") {
                counts.insert(key, value);
            } else if name.ends_with("_sum") {
                sums.insert(key, value);
            }
        }
    }

    for ((family, series), series_buckets) in &buckets {
        let at = |msg: &str| -> ! {
            eprintln!("promcheck: histogram `{family}{{{series}}}`: {msg}");
            exit(1)
        };
        let mut last = f64::NEG_INFINITY;
        let mut last_le = f64::NEG_INFINITY;
        for (le, count) in series_buckets {
            let bound = match le.as_str() {
                "+Inf" => f64::INFINITY,
                v => v.parse().unwrap_or_else(|_| at(&format!("bad le `{v}`"))),
            };
            if bound <= last_le {
                at(&format!("le bounds not increasing at `{le}`"));
            }
            if *count < last {
                at(&format!("bucket counts not cumulative at le=\"{le}\": {count} < {last}"));
            }
            (last, last_le) = (*count, bound);
        }
        let Some((le, inf_count)) = series_buckets.last().filter(|(le, _)| le == "+Inf") else {
            at("missing le=\"+Inf\" bucket");
        };
        let _ = le;
        let Some(count) = counts.get(&(family.clone(), series.clone())) else {
            at("missing _count series");
        };
        if inf_count != count {
            at(&format!("+Inf bucket {inf_count} != _count {count}"));
        }
        if !sums.contains_key(&(family.clone(), series.clone())) {
            at("missing _sum series");
        }
    }

    for family in &emitted {
        if !helps.contains(family) {
            eprintln!("promcheck: family `{family}` has samples but no # HELP line");
            exit(1);
        }
    }

    println!(
        "promcheck: ok ({samples} samples, {} families, {} histogram series)",
        types.len(),
        buckets.len()
    );
}

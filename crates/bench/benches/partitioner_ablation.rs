//! Ablation: DT's §6.1.2 influence-weighted sampling (on/off, large
//! groups) and MC's §6.2 pruning (on/off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scorpion_bench::BenchSynth;
use scorpion_core::dt::DtPartitioner;
use scorpion_core::mc::mc_search;
use scorpion_core::{DtConfig, McConfig, SamplingConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioner_ablation");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));

    // DT sampling: use large groups so sampling engages.
    let fx = BenchSynth::easy(2, 8000);
    let scorer = fx.scorer(0.2, false);
    for (name, sampling) in [
        ("dt/sampled", Some(SamplingConfig { min_rows_to_sample: 2000, ..Default::default() })),
        ("dt/unsampled", None),
    ] {
        let cfg = DtConfig { sampling, ..DtConfig::default() };
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let dt =
                    DtPartitioner::new(&scorer, fx.ds.dim_attrs(), fx.domains.clone(), cfg.clone());
                dt.run().expect("dt")
            });
        });
    }

    // MC pruning on a 3-D workload where the candidate space matters.
    let fx3 = BenchSynth::easy(3, 1000);
    let scorer3 = fx3.scorer(0.5, false);
    for (name, disable_pruning) in [("mc/pruned", false), ("mc/unpruned", true)] {
        let cfg = McConfig { disable_pruning, ..McConfig::default() };
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| mc_search(&scorer3, &fx3.ds.dim_attrs(), &fx3.domains, cfg).expect("mc"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 14 bench: DT / MC / budgeted-NAIVE cost as dimensionality
//! grows (SYNTH-Easy). Reproduces the figure's runtime series; the
//! expected shape is DT and MC one-to-two orders of magnitude below
//! NAIVE, with MC's cost growing as `c` grows (weaker pruning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scorpion_bench::{BenchSynth, BENCH_TUPLES_PER_GROUP};
use scorpion_core::dt::DtPartitioner;
use scorpion_core::mc::mc_search;
use scorpion_core::naive::naive_search;
use scorpion_core::{DtConfig, McConfig, NaiveConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_dimensionality");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for dims in [2usize, 3, 4] {
        let fx = BenchSynth::easy(dims, BENCH_TUPLES_PER_GROUP);
        for c_param in [0.1f64, 0.4] {
            let scorer = fx.scorer(c_param, false);
            g.bench_with_input(BenchmarkId::new(format!("dt/c={c_param}"), dims), &dims, |b, _| {
                b.iter(|| {
                    let dt = DtPartitioner::new(
                        &scorer,
                        fx.ds.dim_attrs(),
                        fx.domains.clone(),
                        DtConfig::default(),
                    );
                    dt.run().expect("dt")
                });
            });
            g.bench_with_input(BenchmarkId::new(format!("mc/c={c_param}"), dims), &dims, |b, _| {
                b.iter(|| {
                    mc_search(&scorer, &fx.ds.dim_attrs(), &fx.domains, &McConfig::default())
                        .expect("mc")
                });
            });
        }
        // NAIVE with a short anytime budget (its full cost is the point of
        // the figure; we cap it so the bench terminates).
        let scorer = fx.scorer(0.1, false);
        let cfg =
            NaiveConfig { time_budget: Some(Duration::from_millis(250)), ..NaiveConfig::default() };
        g.bench_with_input(BenchmarkId::new("naive/budget=250ms/c=0.1", dims), &dims, |b, _| {
            b.iter(|| naive_search(&scorer, &fx.ds.dim_attrs(), &fx.domains, &cfg).expect("naive"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

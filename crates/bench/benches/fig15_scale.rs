//! Figure 15 bench: cost as the dataset grows (tuples per group 500 →
//! 5,000; Easy; c = 0.1). The expected shape is near-linear scaling for
//! both DT and MC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scorpion_bench::BenchSynth;
use scorpion_core::dt::DtPartitioner;
use scorpion_core::mc::mc_search;
use scorpion_core::{DtConfig, McConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_scale");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for n in [500usize, 1000, 2500, 5000] {
        let fx = BenchSynth::easy(2, n);
        let scorer = fx.scorer(0.1, false);
        g.throughput(Throughput::Elements(fx.rows() as u64));
        g.bench_with_input(BenchmarkId::new("dt", n), &n, |b, _| {
            b.iter(|| {
                let dt = DtPartitioner::new(
                    &scorer,
                    fx.ds.dim_attrs(),
                    fx.domains.clone(),
                    DtConfig::default(),
                );
                dt.run().expect("dt")
            });
        });
        g.bench_with_input(BenchmarkId::new("mc", n), &n, |b, _| {
            b.iter(|| {
                mc_search(&scorer, &fx.ds.dim_attrs(), &fx.domains, &McConfig::default())
                    .expect("mc")
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

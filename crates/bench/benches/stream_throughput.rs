//! Streaming benchmarks: (1) ingest throughput of the sliding window's
//! partial-state maintenance across aggregate classes, (2) warm vs
//! cold re-explanation after a window slide — the cached DT partitions
//! (chunk-signature reuse) against a from-scratch rebuild, and (3) the
//! compaction tier's ingest cost and resident-row bound on a long quiet
//! feed.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use scorpion_agg::aggregate_by_name;
use scorpion_data::stream::{feed_schema, FeedConfig, SensorFeed, FEED_AGG_ATTR, FEED_GROUP_ATTR};
use scorpion_stream::{
    ContinuousConfig, ContinuousSession, DetectorConfig, SlidingWindow, StreamConfig,
};
use scorpion_table::Value;
use std::time::Duration;

const WINDOW_CHUNKS: usize = 24;

fn pregenerate(n_chunks: usize) -> Vec<Vec<Vec<Value>>> {
    let mut feed = SensorFeed::new(FeedConfig::demo());
    (0..n_chunks).map(|_| feed.next_chunk().rows).collect()
}

/// Rows/second through `push_chunk` + a final `series()` read, per
/// aggregate class: retractable (avg/stddev), merge-only (max), and the
/// black-box fallback (median).
fn ingest(c: &mut Criterion) {
    let chunks = pregenerate(48);
    let total_rows: u64 = chunks.iter().map(|c| c.len() as u64).sum();
    let mut g = c.benchmark_group("stream_ingest");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(total_rows));
    for agg in ["avg", "stddev", "max", "median"] {
        g.bench_with_input(BenchmarkId::new("push", agg), &agg, |b, &agg| {
            // Chunk clones happen in the untimed setup phase, so the
            // sample measures partial-state maintenance, not allocation.
            b.iter_batched(
                || chunks.clone(),
                |owned| {
                    let cfg = StreamConfig::new(
                        feed_schema(),
                        FEED_GROUP_ATTR,
                        FEED_AGG_ATTR,
                        WINDOW_CHUNKS,
                    )
                    .expect("config");
                    let mut w = SlidingWindow::new(cfg, aggregate_by_name(agg).unwrap());
                    for chunk in owned {
                        w.push_chunk(chunk).expect("ingest");
                    }
                    w.series()
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn monitor_config() -> ContinuousConfig {
    ContinuousConfig {
        detector: DetectorConfig { min_groups: 12, min_scale: 0.05, ..Default::default() },
        ..Default::default()
    }
}

/// Builds the window state after `ticks` feed ticks.
fn window_after(ticks: usize) -> SlidingWindow {
    let mut feed = SensorFeed::new(FeedConfig::demo());
    let cfg = StreamConfig::new(feed_schema(), FEED_GROUP_ATTR, FEED_AGG_ATTR, WINDOW_CHUNKS)
        .expect("config");
    let mut w = SlidingWindow::new(cfg, aggregate_by_name("stddev").unwrap());
    for _ in 0..ticks {
        w.push_chunk(feed.next_chunk().rows).expect("ingest");
    }
    w
}

/// Warm vs cold re-explanation of the post-slide window state: the demo
/// episode (ticks 30–35) is fully inside the window, and tick 36 slid a
/// quiet chunk in — so the outlier groups' chunks are untouched and a
/// primed session reuses its DT partitions.
fn re_explain(c: &mut Criterion) {
    let pre_slide = window_after(36);
    let post_slide = window_after(37);

    let warm_session = ContinuousSession::new(monitor_config());
    warm_session.explain(&pre_slide).expect("explain").expect("episode must be flagged");
    assert!(warm_session.is_warm());

    let mut g = c.benchmark_group("stream_re_explain");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    g.bench_with_input(BenchmarkId::new("warm", "slide"), &(), |b, _| {
        b.iter(|| {
            let ex =
                warm_session.explain(&post_slide).expect("explain").expect("episode still flagged");
            assert!(ex.warm, "primed session must reuse partitions");
            ex
        });
    });
    g.bench_with_input(BenchmarkId::new("cold", "slide"), &(), |b, _| {
        b.iter(|| {
            let cold = ContinuousSession::new(monitor_config());
            cold.explain(&post_slide).expect("explain").expect("episode still flagged")
        });
    });
    g.finish();
}

/// Ingest throughput with the compaction tier on vs off, plus the
/// sketch-tier percentile window. The asserts pin the acceptance
/// property: with compaction, resident raw rows are O(keep_recent ·
/// chunk-rows) — a constant — while the uncompacted window buffers
/// every row it holds.
fn compaction(c: &mut Criterion) {
    const KEEP_RECENT: usize = 4;
    let chunks = pregenerate(96);
    let total_rows: u64 = chunks.iter().map(|c| c.len() as u64).sum();
    let max_chunk_rows = chunks.iter().map(Vec::len).max().unwrap_or(0);
    let mut g = c.benchmark_group("stream_compaction");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(total_rows));
    for (mode, agg, compact, sketches) in [
        ("raw", "avg", false, false),
        ("compacted", "avg", true, false),
        ("sketch_compacted", "p50", true, true),
    ] {
        g.bench_with_input(BenchmarkId::new("push", mode), &(), |b, _| {
            b.iter_batched(
                || chunks.clone(),
                |owned| {
                    let n_chunks = owned.len();
                    let mut cfg =
                        StreamConfig::new(feed_schema(), FEED_GROUP_ATTR, FEED_AGG_ATTR, n_chunks)
                            .expect("config")
                            .with_sketches(sketches);
                    if compact {
                        cfg = cfg.with_compaction(KEEP_RECENT).expect("keep_recent");
                    }
                    let mut w = SlidingWindow::new(cfg, aggregate_by_name(agg).unwrap());
                    for chunk in owned {
                        w.push_chunk(chunk).expect("ingest");
                    }
                    if compact {
                        // O(chunks) resident, not O(rows).
                        assert!(w.resident_rows() <= (KEEP_RECENT + 1) * max_chunk_rows);
                        assert_eq!(w.n_compacted_chunks(), n_chunks - KEEP_RECENT);
                    } else {
                        assert_eq!(w.resident_rows() as u64, total_rows);
                    }
                    w.series()
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, ingest, re_explain, compaction);
criterion_main!(benches);

//! Load generator for the explanation service: cold vs warm RPS of
//! `POST /explain` over real sockets.
//!
//! * **cold** — every request lands on a fresh table generation, so the
//!   plan cache misses and the full parse → prepare → score pipeline
//!   runs per request.
//! * **warm** — the same query and labels at a rotating `c`: the plan
//!   cache hits and the request re-scores through the prepared plan's
//!   influence cache (the §8.3.3 path a resident server keeps hot).
//! * **warm_parked256** — the warm path again, but with 256 idle
//!   keep-alive connections parked on the readiness poller. With
//!   request-grained workers the parked crowd costs file descriptors,
//!   not workers, so warm p99 must stay within 2× of the
//!   single-connection group (asserted below).
//!
//! The gap between the first two lines is the value of running resident
//! instead of one-shot; the third line is the cost of being popular.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scorpion_server::{client::Client, Json, Server, ServerConfig};
use scorpion_table::{Field, Schema, Table, TableBuilder, Value};
use std::sync::Arc;
use std::time::Duration;

/// The planted workload: group "o" runs hot for x ∈ [20, 60); group "h"
/// is uniform.
fn planted(n: usize) -> Table {
    let schema = Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
    let mut b = TableBuilder::new(schema);
    for i in 0..n {
        let x = (i as f64 * 7.3) % 100.0;
        let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
        b.push_row(vec!["o".into(), Value::from(x), v.into()]).unwrap();
        b.push_row(vec!["h".into(), Value::from(x), Value::from(10.0)]).unwrap();
    }
    b.build()
}

fn explain_body(c: f64) -> Json {
    Json::obj([
        ("table", Json::from("planted")),
        ("sql", Json::from("SELECT avg(v) FROM planted GROUP BY g")),
        ("outliers", Json::arr(["o"])),
        ("holdouts", Json::arr(["h"])),
        ("lambda", Json::from(0.5)),
        ("c", Json::from(c)),
        ("algorithm", Json::from("dt")),
    ])
}

fn explain_rps(criterion: &mut Criterion) {
    // Default config enables the flight recorder (4096-event ring), so
    // every measured request pays the full telemetry path: event
    // assembly plus a ring write after the response bytes are flushed.
    let server = Server::bind(&ServerConfig { port: 0, workers: 4, ..ServerConfig::default() })
        .expect("bind");
    assert!(scorpion_obs::telemetry().enabled(), "bench must measure the recorder-on path");
    let state = server.state();
    let table = Arc::new(planted(300));
    state.registry.insert("planted", table.clone());
    let handle = server.spawn().expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let mut g = criterion.benchmark_group("server_explain");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(1));

    // Cold: bump the generation before each request — every key is new.
    g.bench_function("cold", |b| {
        b.iter(|| {
            state.registry.insert("planted", table.clone());
            let (status, resp) = client.post("/explain", &explain_body(0.5)).expect("cold post");
            assert_eq!(status, 200);
            assert_eq!(resp.get("plan_cache").and_then(Json::as_str), Some("miss"));
            resp
        });
    });

    // Warm: one generation, rotating c — after the first lap every
    // request is a plan-cache hit re-scored from cached (n, Δ) pairs.
    state.registry.insert("planted", table.clone());
    let cs = [0.5, 0.3, 0.7, 0.2];
    let mut lap = 0usize;
    // Prime each c once so the measured laps are pure warm path.
    for &c in &cs {
        client.post("/explain", &explain_body(c)).expect("prime");
    }
    g.bench_function("warm", |b| {
        b.iter(|| {
            let c = cs[lap % cs.len()];
            lap += 1;
            let (status, resp) = client.post("/explain", &explain_body(c)).expect("warm post");
            assert_eq!(status, 200);
            assert_eq!(resp.get("plan_cache").and_then(Json::as_str), Some("hit"));
            resp
        });
    });

    // Baseline warm p99 at one connection, sampled outside criterion so
    // the parked comparison below is apples-to-apples.
    let p99_low = sample_warm_p99(&mut client, &cs, &mut lap);

    // Park 256 idle keep-alive connections: each sends one request to
    // establish itself, then sits. They must cost workers nothing.
    let idle: Vec<Client> = (0..256)
        .map(|_| {
            let mut c = Client::connect(handle.addr()).expect("idle connect");
            let (status, _) = c.get("/healthz").expect("idle healthz");
            assert_eq!(status, 200);
            c
        })
        .collect();
    let parked_deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, stats) = client.get("/stats").expect("stats");
        let parked = stats.get("parked_connections").and_then(Json::as_f64).unwrap_or(0.0);
        if parked >= 256.0 {
            break;
        }
        assert!(std::time::Instant::now() < parked_deadline, "only {parked} parked");
        std::thread::sleep(Duration::from_millis(50));
    }

    g.bench_function("warm_parked256", |b| {
        b.iter(|| {
            let c = cs[lap % cs.len()];
            lap += 1;
            let (status, resp) = client.post("/explain", &explain_body(c)).expect("parked post");
            assert_eq!(status, 200);
            assert_eq!(resp.get("plan_cache").and_then(Json::as_str), Some("hit"));
            resp
        });
    });
    g.finish();

    let p99_parked = sample_warm_p99(&mut client, &cs, &mut lap);
    println!(
        "server_explain warm p99: {:.2}ms at 1 connection, {:.2}ms with 256 parked ({:.2}x)",
        p99_low.as_secs_f64() * 1000.0,
        p99_parked.as_secs_f64() * 1000.0,
        p99_parked.as_secs_f64() / p99_low.as_secs_f64().max(1e-9),
    );
    assert!(
        p99_parked <= p99_low * 2,
        "256 parked connections must not double warm p99: {p99_low:?} -> {p99_parked:?}"
    );
    drop(idle);

    let stats = state.plans.stats();
    println!(
        "server_explain summary: plan cache {} hits / {} misses / {} evictions",
        stats.hits, stats.misses, stats.evictions
    );
    handle.stop();
}

/// p99 of 200 warm `/explain` round-trips, measured outside criterion
/// so the parked/unparked comparison shares one methodology.
fn sample_warm_p99(client: &mut Client, cs: &[f64], lap: &mut usize) -> Duration {
    let mut samples: Vec<Duration> = (0..200)
        .map(|_| {
            let c = cs[*lap % cs.len()];
            *lap += 1;
            let start = std::time::Instant::now();
            let (status, _) = client.post("/explain", &explain_body(c)).expect("p99 post");
            assert_eq!(status, 200);
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() * 99 / 100]
}

criterion_group!(benches, explain_rps);
criterion_main!(benches);

//! Load generator for the explanation service: cold vs warm RPS of
//! `POST /explain` over real sockets.
//!
//! * **cold** — every request lands on a fresh table generation, so the
//!   plan cache misses and the full parse → prepare → score pipeline
//!   runs per request.
//! * **warm** — the same query and labels at a rotating `c`: the plan
//!   cache hits and the request re-scores through the prepared plan's
//!   influence cache (the §8.3.3 path a resident server keeps hot).
//!
//! The gap between the two lines is the value of running resident
//! instead of one-shot.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scorpion_server::{client::Client, Json, Server, ServerConfig};
use scorpion_table::{Field, Schema, Table, TableBuilder, Value};
use std::sync::Arc;
use std::time::Duration;

/// The planted workload: group "o" runs hot for x ∈ [20, 60); group "h"
/// is uniform.
fn planted(n: usize) -> Table {
    let schema = Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
    let mut b = TableBuilder::new(schema);
    for i in 0..n {
        let x = (i as f64 * 7.3) % 100.0;
        let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
        b.push_row(vec!["o".into(), Value::from(x), v.into()]).unwrap();
        b.push_row(vec!["h".into(), Value::from(x), Value::from(10.0)]).unwrap();
    }
    b.build()
}

fn explain_body(c: f64) -> Json {
    Json::obj([
        ("table", Json::from("planted")),
        ("sql", Json::from("SELECT avg(v) FROM planted GROUP BY g")),
        ("outliers", Json::arr(["o"])),
        ("holdouts", Json::arr(["h"])),
        ("lambda", Json::from(0.5)),
        ("c", Json::from(c)),
        ("algorithm", Json::from("dt")),
    ])
}

fn explain_rps(criterion: &mut Criterion) {
    // Default config enables the flight recorder (4096-event ring), so
    // every measured request pays the full telemetry path: event
    // assembly plus a ring write after the response bytes are flushed.
    let server = Server::bind(&ServerConfig { port: 0, workers: 4, ..ServerConfig::default() })
        .expect("bind");
    assert!(scorpion_obs::telemetry().enabled(), "bench must measure the recorder-on path");
    let state = server.state();
    let table = Arc::new(planted(300));
    state.registry.insert("planted", table.clone());
    let handle = server.spawn().expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let mut g = criterion.benchmark_group("server_explain");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(1));

    // Cold: bump the generation before each request — every key is new.
    g.bench_function("cold", |b| {
        b.iter(|| {
            state.registry.insert("planted", table.clone());
            let (status, resp) = client.post("/explain", &explain_body(0.5)).expect("cold post");
            assert_eq!(status, 200);
            assert_eq!(resp.get("plan_cache").and_then(Json::as_str), Some("miss"));
            resp
        });
    });

    // Warm: one generation, rotating c — after the first lap every
    // request is a plan-cache hit re-scored from cached (n, Δ) pairs.
    state.registry.insert("planted", table.clone());
    let cs = [0.5, 0.3, 0.7, 0.2];
    let mut lap = 0usize;
    // Prime each c once so the measured laps are pure warm path.
    for &c in &cs {
        client.post("/explain", &explain_body(c)).expect("prime");
    }
    g.bench_function("warm", |b| {
        b.iter(|| {
            let c = cs[lap % cs.len()];
            lap += 1;
            let (status, resp) = client.post("/explain", &explain_body(c)).expect("warm post");
            assert_eq!(status, 200);
            assert_eq!(resp.get("plan_cache").and_then(Json::as_str), Some("hit"));
            resp
        });
    });
    g.finish();

    let stats = state.plans.stats();
    println!(
        "server_explain summary: plan cache {} hits / {} misses / {} evictions",
        stats.hits, stats.misses, stats.evictions
    );
    handle.stop();
}

criterion_group!(benches, explain_rps);
criterion_main!(benches);

//! Ablation: the §5.1 incrementally removable fast path vs black-box
//! re-aggregation in the Scorer. The expected shape: the incremental
//! path wins by a widening margin as predicates match fewer tuples (it
//! reads only deleted tuples; the black-box path re-reads everything).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scorpion_bench::{BenchSynth, BENCH_TUPLES_PER_GROUP};
use scorpion_table::{Clause, Predicate};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scorer_ablation");
    g.sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let fx = BenchSynth::easy(2, BENCH_TUPLES_PER_GROUP);
    // Three selectivities: wide (half the domain), medium, narrow.
    let preds: Vec<(&str, Predicate)> = vec![
        ("wide", Predicate::conjunction([Clause::range(2, 0.0, 50.0)]).unwrap()),
        ("medium", Predicate::conjunction([Clause::range(2, 40.0, 60.0)]).unwrap()),
        (
            "narrow",
            Predicate::conjunction([Clause::range(2, 48.0, 52.0), Clause::range(3, 48.0, 52.0)])
                .unwrap(),
        ),
    ];
    for force_blackbox in [false, true] {
        let scorer = fx.scorer(0.5, force_blackbox);
        let label = if force_blackbox { "blackbox" } else { "incremental" };
        for (sel, pred) in &preds {
            g.bench_with_input(BenchmarkId::new(label, sel), pred, |b, p| {
                b.iter(|| scorer.influence(p).expect("influence"));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation: the §6.3 Merger optimizations — cached-tuple influence
//! approximation (no Scorer calls during expansion) and top-quartile seed
//! selection — against the basic exact merger.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scorpion_bench::{BenchSynth, BENCH_TUPLES_PER_GROUP};
use scorpion_core::dt::DtPartitioner;
use scorpion_core::merger::Merger;
use scorpion_core::{DtConfig, MergerConfig, ScoredPredicate};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("merger_ablation");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    let fx = BenchSynth::easy(2, BENCH_TUPLES_PER_GROUP);
    let scorer = fx.scorer(0.3, false);
    // Produce the partitions once; every merger variant consumes clones.
    let dt =
        DtPartitioner::new(&scorer, fx.ds.dim_attrs(), fx.domains.clone(), DtConfig::default());
    let (partitions, _) = dt.partition().expect("partitions");
    let variants: [(&str, MergerConfig); 4] = [
        (
            "exact/all-seeds",
            MergerConfig {
                use_cached_tuples: false,
                top_quartile_only: false,
                ..MergerConfig::default()
            },
        ),
        (
            "exact/top-quartile",
            MergerConfig {
                use_cached_tuples: false,
                top_quartile_only: true,
                ..MergerConfig::default()
            },
        ),
        (
            "approx/all-seeds",
            MergerConfig {
                use_cached_tuples: true,
                top_quartile_only: false,
                ..MergerConfig::default()
            },
        ),
        (
            "approx/top-quartile",
            MergerConfig {
                use_cached_tuples: true,
                top_quartile_only: true,
                ..MergerConfig::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let input: Vec<ScoredPredicate> = partitions.clone();
        g.bench_with_input(BenchmarkId::from_parameter(name), &input, |b, inp| {
            let merger = Merger::new(&scorer, &fx.domains, cfg.clone());
            b.iter(|| merger.merge(inp.clone()).expect("merge"));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 16 bench: DT cost per `c` with and without the §8.3.3 caches.
//! The cached variant reuses the partitioning and warm-starts the Merger
//! from a higher-`c` run; the uncached variant rebuilds everything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scorpion_bench::{BenchSynth, BENCH_TUPLES_PER_GROUP};
use scorpion_core::session::ScorpionSession;
use scorpion_core::{Algorithm, DtConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_caching");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    let fx = BenchSynth::easy(3, BENCH_TUPLES_PER_GROUP);
    let algo = || Algorithm::DecisionTree(DtConfig::default());
    for c_param in [0.4f64, 0.2, 0.0] {
        // Warm session: preparation cached, Merger warm-started from a
        // higher-c run.
        let req = fx.request(algo(), 0.5);
        let session = ScorpionSession::new(req.clone()).expect("session");
        session.run_with_c(0.5).expect("warm-up run");
        g.bench_with_input(BenchmarkId::new("cached", c_param), &c_param, |b, &cp| {
            b.iter(|| session.run_with_c(cp).expect("cached run"));
        });
        g.bench_with_input(BenchmarkId::new("uncached", c_param), &c_param, |b, &cp| {
            b.iter(|| {
                let cold = ScorpionSession::new(req.clone()).expect("session");
                cold.run_with_c(cp).expect("uncached run")
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

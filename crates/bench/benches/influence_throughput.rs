//! Influence hot-path throughput: row-at-a-time baseline vs the bitmap
//! kernel path, cold and clause-cache-warm.
//!
//! The workload mirrors one DT/MC re-score level: a grid of 64
//! two-clause candidates over a 100k-row SYNTH table, where the 64
//! candidates share 16 distinct clauses — exactly the shape the
//! [`scorpion_table::ClauseMaskCache`] exploits. Three variants:
//!
//! * `rowwise` — the pre-vectorization reference: every candidate walks
//!   every labeled row through the `PredicateMatcher`
//!   ([`Scorer::influence_rowwise`]).
//! * `mask_cold` — the mask path with an empty clause cache per batch
//!   (kernel passes included).
//! * `mask_warm` — the mask path with the clause cache warm: per
//!   candidate, `(n, Δ)` is a word-zip of cached bitmaps.
//!
//! Plus the two-stage approximate mode on a low-noise variant of the
//! same workload (identical row/group/candidate geometry, so the exact
//! cost matches `mask_warm` — selectivity is driven by the uniform
//! dimension columns, not the values):
//!
//! * `exact_lownoise` — `mask_warm` on the low-noise fixture: the
//!   denominator of the approximate-mode speedup claim.
//! * `approx_warm` — interval-prune then exact survivors, clause cache
//!   and sampler state warm: the steady state of a DT `best_split`
//!   re-score level (`top_k = 1`).
//! * `approx_cold` — the same batch with a cold clause cache; the
//!   sampler state is shared (engines share it across rebinds the same
//!   way, §6.4), so this isolates first-touch mask evaluation.
//!
//! No `InfluenceCache` is attached, so every variant recomputes `(n, Δ)`
//! per call — this isolates predicate evaluation, not result caching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scorpion_bench::BenchSynth;
use scorpion_core::{ApproxConfig, Scorer};
use scorpion_data::synth::SynthConfig;
use scorpion_table::{Clause, Predicate};
use std::time::Duration;

/// Tuples per group; 10 groups → 100k rows total.
const TUPLES_PER_GROUP: usize = 10_000;

/// Grid side: SIDE × SIDE candidates from 2 × SIDE distinct clauses.
const SIDE: usize = 8;

/// `top_k` for the approximate groups: the DT `best_split` scenario —
/// only the best candidate of the level is kept.
const APPROX_TOP_K: usize = 1;

fn level_candidates(fx: &BenchSynth) -> Vec<Predicate> {
    let attrs = fx.ds.dim_attrs();
    let (ax, ay) = (attrs[0], attrs[1]);
    let step = 100.0 / SIDE as f64;
    let clause =
        |attr: usize, i: usize| Clause::range(attr, i as f64 * step, (i + 1) as f64 * step + 20.0);
    let mut out = Vec::with_capacity(SIDE * SIDE);
    for i in 0..SIDE {
        for j in 0..SIDE {
            out.push(Predicate::conjunction([clause(ax, i), clause(ay, j)]).unwrap());
        }
    }
    out
}

fn score_batch(s: &Scorer<'_>, preds: &[Predicate]) -> f64 {
    let mut acc = 0.0;
    for r in s.influence_batch(preds, 1) {
        acc += r.expect("scoring succeeds");
    }
    acc
}

fn bench_influence(c: &mut Criterion) {
    // The flight recorder is on for the whole run: the acceptance bar is
    // that the hot path stays within noise of a recorder-less build
    // (scoring never touches the ring; there is nothing on this path to
    // slow down, and this keeps the bench honest about it).
    scorpion_obs::telemetry().enable();
    let fx = BenchSynth::easy(2, TUPLES_PER_GROUP);
    let preds = level_candidates(&fx);
    let mut g = c.benchmark_group("influence_throughput");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
        .throughput(Throughput::Elements(preds.len() as u64));

    // Pre-refactor baseline: row-at-a-time matcher per candidate.
    let s = fx.scorer(0.5, false);
    g.bench_with_input(BenchmarkId::new("rowwise", fx.rows()), &preds, |b, preds| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in preds {
                acc += s.influence_rowwise(p).expect("scoring succeeds");
            }
            acc
        });
    });

    // Mask path, clause cache cold per batch: fresh scorer each round
    // (its construction is excluded from the timed region).
    g.bench_with_input(BenchmarkId::new("mask_cold", fx.rows()), &preds, |b, preds| {
        b.iter_batched(
            || fx.scorer(0.5, false),
            |s| score_batch(&s, preds),
            criterion::BatchSize::LargeInput,
        );
    });

    // Mask path, clause cache warm: the steady state of a DT/MC level.
    let warm = fx.scorer(0.5, false);
    score_batch(&warm, &preds);
    g.bench_with_input(BenchmarkId::new("mask_warm", fx.rows()), &preds, |b, preds| {
        b.iter(|| score_batch(&warm, preds));
    });

    assert_eq!(warm.mask_cache_entries() as usize, 2 * SIDE, "distinct clauses cached once");

    // ---- Approximate mode, low-noise fixture ----
    //
    // Interval pruning needs the deviant value mass to fit inside the
    // sampler's deviation stratum and the background noise to be small
    // against the signal; §8.3.2 of the paper re-runs SYNTH with zero
    // value noise for the same reason. Background σ = 1 (cube rows keep
    // the generator's fixed σ = 10) and explicit nested cubes at 4% / 1%
    // mass; everything else — rows, groups, candidate grid, shared
    // clauses — matches the exact-path fixture above.
    let mut lcfg = SynthConfig::easy(2).with_tuples_per_group(TUPLES_PER_GROUP);
    lcfg.normal_std = 1.0;
    lcfg.cubes = Some((vec![(30.0, 50.0); 2], vec![(35.0, 45.0); 2]));
    let lfx = BenchSynth::from_config(lcfg);
    let lpreds = level_candidates(&lfx);

    // The denominator of the speedup claim: mask_warm on this fixture.
    let lexact = lfx.scorer(0.5, false);
    score_batch(&lexact, &lpreds);
    g.bench_with_input(BenchmarkId::new("exact_lownoise", lfx.rows()), &lpreds, |b, preds| {
        b.iter(|| score_batch(&lexact, preds));
    });

    let approx = lfx
        .scorer(0.5, false)
        .with_approx(ApproxConfig::default())
        .expect("SUM admits the closed-form interval");
    approx.influence_batch_pruned(&lpreds, 1, APPROX_TOP_K);
    g.bench_with_input(BenchmarkId::new("approx_warm", lfx.rows()), &lpreds, |b, preds| {
        b.iter(|| {
            let batch = approx.influence_batch_pruned(preds, 1, APPROX_TOP_K);
            let mut acc = 0.0;
            for r in batch.scores {
                acc += r.expect("scoring succeeds");
            }
            acc
        });
    });

    let state = approx.approx_state().expect("approx attached").clone();
    g.bench_with_input(BenchmarkId::new("approx_cold", lfx.rows()), &lpreds, |b, preds| {
        b.iter_batched(
            || lfx.scorer(0.5, false).with_approx_state(state.clone()),
            |s| {
                let batch = s.influence_batch_pruned(preds, 1, APPROX_TOP_K);
                let mut acc = 0.0;
                for r in batch.scores {
                    acc += r.expect("scoring succeeds");
                }
                acc
            },
            criterion::BatchSize::LargeInput,
        );
    });

    // Deterministic acceptance checks, outside the timed loops: the
    // interval pass prunes most of the level, reports a finite bound,
    // and agrees with the exact scorer on the best candidate.
    let check = approx.influence_batch_pruned(&lpreds, 1, APPROX_TOP_K);
    assert!(
        check.pruned as usize >= lpreds.len() / 2,
        "interval pass should prune most of the level, pruned {}/{}",
        check.pruned,
        lpreds.len()
    );
    assert!(check.error_bound.is_finite() && check.error_bound >= 0.0, "honest bound");
    let argmax = |scores: &[f64]| {
        scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap()
    };
    let exact_scores: Vec<f64> =
        lexact.influence_batch(&lpreds, 1).into_iter().map(|r| r.unwrap()).collect();
    let approx_scores: Vec<f64> = check.scores.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(argmax(&exact_scores), argmax(&approx_scores), "top-1 parity under pruning");

    g.finish();
}

criterion_group!(benches, bench_influence);
criterion_main!(benches);

//! Influence hot-path throughput: row-at-a-time baseline vs the bitmap
//! kernel path, cold and clause-cache-warm.
//!
//! The workload mirrors one DT/MC re-score level: a grid of 64
//! two-clause candidates over a 100k-row SYNTH table, where the 64
//! candidates share 16 distinct clauses — exactly the shape the
//! [`scorpion_table::ClauseMaskCache`] exploits. Three variants:
//!
//! * `rowwise` — the pre-vectorization reference: every candidate walks
//!   every labeled row through the `PredicateMatcher`
//!   ([`Scorer::influence_rowwise`]).
//! * `mask_cold` — the mask path with an empty clause cache per batch
//!   (kernel passes included).
//! * `mask_warm` — the mask path with the clause cache warm: per
//!   candidate, `(n, Δ)` is a word-zip of cached bitmaps.
//!
//! No `InfluenceCache` is attached, so every variant recomputes `(n, Δ)`
//! per call — this isolates predicate evaluation, not result caching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scorpion_bench::BenchSynth;
use scorpion_core::Scorer;
use scorpion_table::{Clause, Predicate};
use std::time::Duration;

/// Tuples per group; 10 groups → 100k rows total.
const TUPLES_PER_GROUP: usize = 10_000;

/// Grid side: SIDE × SIDE candidates from 2 × SIDE distinct clauses.
const SIDE: usize = 8;

fn level_candidates(fx: &BenchSynth) -> Vec<Predicate> {
    let attrs = fx.ds.dim_attrs();
    let (ax, ay) = (attrs[0], attrs[1]);
    let step = 100.0 / SIDE as f64;
    let clause =
        |attr: usize, i: usize| Clause::range(attr, i as f64 * step, (i + 1) as f64 * step + 20.0);
    let mut out = Vec::with_capacity(SIDE * SIDE);
    for i in 0..SIDE {
        for j in 0..SIDE {
            out.push(Predicate::conjunction([clause(ax, i), clause(ay, j)]).unwrap());
        }
    }
    out
}

fn score_batch(s: &Scorer<'_>, preds: &[Predicate]) -> f64 {
    let mut acc = 0.0;
    for r in s.influence_batch(preds, 1) {
        acc += r.expect("scoring succeeds");
    }
    acc
}

fn bench_influence(c: &mut Criterion) {
    // The flight recorder is on for the whole run: the acceptance bar is
    // that the hot path stays within noise of a recorder-less build
    // (scoring never touches the ring; there is nothing on this path to
    // slow down, and this keeps the bench honest about it).
    scorpion_obs::telemetry().enable();
    let fx = BenchSynth::easy(2, TUPLES_PER_GROUP);
    let preds = level_candidates(&fx);
    let mut g = c.benchmark_group("influence_throughput");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
        .throughput(Throughput::Elements(preds.len() as u64));

    // Pre-refactor baseline: row-at-a-time matcher per candidate.
    let s = fx.scorer(0.5, false);
    g.bench_with_input(BenchmarkId::new("rowwise", fx.rows()), &preds, |b, preds| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in preds {
                acc += s.influence_rowwise(p).expect("scoring succeeds");
            }
            acc
        });
    });

    // Mask path, clause cache cold per batch: fresh scorer each round
    // (its construction is excluded from the timed region).
    g.bench_with_input(BenchmarkId::new("mask_cold", fx.rows()), &preds, |b, preds| {
        b.iter_batched(
            || fx.scorer(0.5, false),
            |s| score_batch(&s, preds),
            criterion::BatchSize::LargeInput,
        );
    });

    // Mask path, clause cache warm: the steady state of a DT/MC level.
    let warm = fx.scorer(0.5, false);
    score_batch(&warm, &preds);
    g.bench_with_input(BenchmarkId::new("mask_warm", fx.rows()), &preds, |b, preds| {
        b.iter(|| score_batch(&warm, preds));
    });

    assert_eq!(warm.mask_cache_entries() as usize, 2 * SIDE, "distinct clauses cached once");
    g.finish();
}

criterion_group!(benches, bench_influence);
criterion_main!(benches);

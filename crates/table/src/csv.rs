//! CSV ingestion: load external datasets into a [`Table`].
//!
//! A pragmatic, dependency-free reader for the kind of data Scorpion's
//! use cases start from (sensor dumps, expense ledgers): header row,
//! comma separator, optional quoting with `""` escapes. Attribute types
//! can be given explicitly or inferred from the first data row (a cell
//! that parses as a number ⇒ continuous).

use crate::error::{Result, TableError};
use crate::schema::{AttrType, Field, Schema};
use crate::table::{Table, TableBuilder};
use crate::value::Value;

/// Splits one CSV record, honoring double-quoted fields with `""`
/// escapes. Returns an error only for unterminated quotes.
fn split_record(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(TableError::UnknownAttribute("CSV: unterminated quote".into()));
    }
    fields.push(cur);
    Ok(fields)
}

/// Parses CSV text into a table with an explicit schema. The header row
/// must match the schema's attribute names (in order).
pub fn parse_csv_with_schema(text: &str, schema: Schema) -> Result<Table> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(TableError::Empty("CSV input"))?;
    let names = split_record(header)?;
    if names.len() != schema.len() {
        return Err(TableError::ArityMismatch { expected: schema.len(), got: names.len() });
    }
    for (i, name) in names.iter().enumerate() {
        if schema.field(i)?.name() != name.trim() {
            return Err(TableError::UnknownAttribute(format!(
                "CSV header `{}` does not match schema attribute `{}`",
                name.trim(),
                schema.field(i)?.name()
            )));
        }
    }
    let types: Vec<AttrType> =
        (0..schema.len()).map(|i| schema.field(i).map(|f| f.ty())).collect::<Result<_>>()?;
    let mut b = TableBuilder::new(schema);
    for line in lines {
        let cells = split_record(line)?;
        if cells.len() != names.len() {
            return Err(TableError::ArityMismatch { expected: names.len(), got: cells.len() });
        }
        let mut row: Vec<Value> = Vec::with_capacity(cells.len());
        for (i, cell) in cells.iter().enumerate() {
            let cell = cell.trim();
            row.push(match types[i] {
                AttrType::Continuous => {
                    let v: f64 = cell.parse().map_err(|_| TableError::TypeMismatch {
                        attr: names[i].trim().to_owned(),
                        expected: "continuous",
                    })?;
                    Value::Num(v)
                }
                AttrType::Discrete => Value::Str(cell.to_owned()),
            });
        }
        b.push_row(row)?;
    }
    Ok(b.build())
}

/// Parses CSV text, inferring each attribute's type from the first data
/// row (numeric cell ⇒ continuous, else discrete).
pub fn parse_csv(text: &str) -> Result<Table> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(TableError::Empty("CSV input"))?;
    let names = split_record(header)?;
    let first = lines.next().ok_or(TableError::Empty("CSV data rows"))?;
    let first_cells = split_record(first)?;
    if first_cells.len() != names.len() {
        return Err(TableError::ArityMismatch { expected: names.len(), got: first_cells.len() });
    }
    let fields: Vec<Field> = names
        .iter()
        .zip(&first_cells)
        .map(|(n, c)| {
            if c.trim().parse::<f64>().is_ok() {
                Field::cont(n.trim())
            } else {
                Field::disc(n.trim())
            }
        })
        .collect();
    let schema = Schema::new(fields)?;
    // Re-run with the inferred schema over the full text.
    parse_csv_with_schema(text, schema)
}

/// Loads a CSV file from disk with inferred types.
pub fn load_csv(path: &std::path::Path) -> Result<Table> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TableError::UnknownAttribute(format!("CSV read {path:?}: {e}")))?;
    parse_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
time,sensorid,temp
11AM,1,34.0
11AM,2,35.0
12PM,3,100.0
";

    #[test]
    fn infers_types_from_first_row() {
        let t = parse_csv(SAMPLE).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().field(0).unwrap().ty(), AttrType::Discrete);
        // `sensorid` is numeric in the file → inferred continuous.
        assert_eq!(t.schema().field(1).unwrap().ty(), AttrType::Continuous);
        assert_eq!(t.num(2).unwrap(), &[34.0, 35.0, 100.0]);
    }

    #[test]
    fn explicit_schema_overrides_inference() {
        let schema = Schema::new(vec![
            Field::disc("time"),
            Field::disc("sensorid"), // keep ids discrete
            Field::cont("temp"),
        ])
        .unwrap();
        let t = parse_csv_with_schema(SAMPLE, schema).unwrap();
        assert_eq!(t.cat(1).unwrap().cardinality(), 3);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let text = "name,amt\n\"GMMB, INC.\",5\n\"say \"\"hi\"\"\",6\n";
        let t = parse_csv(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, 0).unwrap().as_str(), Some("GMMB, INC."));
        assert_eq!(t.value(1, 0).unwrap().as_str(), Some("say \"hi\""));
    }

    #[test]
    fn header_mismatch_rejected() {
        let schema = Schema::new(vec![Field::disc("wrong"), Field::cont("temp")]).unwrap();
        let text = "time,temp\nx,1\n";
        assert!(parse_csv_with_schema(text, schema).is_err());
    }

    #[test]
    fn ragged_rows_rejected() {
        let text = "a,b\n1,2\n3\n";
        assert!(parse_csv(text).is_err());
    }

    #[test]
    fn bad_number_rejected() {
        let schema = Schema::new(vec![Field::cont("x")]).unwrap();
        let text = "x\nnot_a_number\n";
        assert!(matches!(
            parse_csv_with_schema(text, schema),
            Err(TableError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("a,b\n").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join("scorpion_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        let t = load_csv(&path).unwrap();
        assert_eq!(t.len(), 3);
        std::fs::remove_file(&path).ok();
    }
}

//! Bitmap row sets: the columnar execution substrate predicate
//! evaluation compiles to.
//!
//! A [`RowMask`] is a fixed-width bitmap over a table's row ids — one
//! bit per row, packed into 64-bit words. Predicate evaluation builds
//! one mask per *clause* with a tight columnar kernel
//! ([`crate::Clause::eval_mask`]) and combines clauses with word-wise
//! `AND`; consumers then read the result with `popcount` (counts), a
//! selection-vector iterator (row ids), or word-at-a-time zips against
//! other masks (masked aggregate folds). The [`ClauseMaskCache`] memoizes
//! per-clause masks so sibling candidate predicates that share clauses —
//! a DT re-score level, an MC level, a NAIVE enumeration round — pay for
//! each distinct clause once per table instead of once per candidate.

use crate::error::Result;
use crate::predicate::Clause;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A bitmap over the row ids `0..len` of one table.
///
/// Bits at positions `>= len` are always zero, so word-wise operations
/// (`AND`, popcount) need no edge handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    words: Vec<u64>,
    len: usize,
}

impl RowMask {
    /// The empty mask over `len` rows.
    pub fn empty(len: usize) -> Self {
        RowMask { words: vec![0; len.div_ceil(64)], len }
    }

    /// The full mask over `len` rows (every row set).
    pub fn full(len: usize) -> Self {
        let mut words = vec![!0u64; len.div_ceil(64)];
        Self::trim(&mut words, len);
        RowMask { words, len }
    }

    /// Builds a mask over `len` rows with exactly `rows` set.
    pub fn from_rows(len: usize, rows: &[u32]) -> Self {
        let mut m = RowMask::empty(len);
        for &r in rows {
            m.insert(r);
        }
        m
    }

    /// Wraps raw words (used by the per-clause kernels). Bits past `len`
    /// must already be clear.
    pub(crate) fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        Self::trim(&mut words, len);
        RowMask { words, len }
    }

    fn trim(words: &mut [u64], len: usize) {
        let rem = len % 64;
        if rem != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of rows in the mask's domain (not the number of set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the domain holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets row `r`. Panics when `r` is outside the domain (a set bit
    /// past `len` would silently break the word-wise invariants).
    pub fn insert(&mut self, r: u32) {
        assert!((r as usize) < self.len, "row {r} out of mask domain {}", self.len);
        self.words[(r >> 6) as usize] |= 1u64 << (r & 63);
    }

    /// True when row `r` is set. Panics when `r` is outside the domain.
    #[inline]
    pub fn contains(&self, r: u32) -> bool {
        (self.words[(r >> 6) as usize] >> (r & 63)) & 1 == 1
    }

    /// Number of set rows (popcount).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when at least one row is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// The packed 64-bit words, low rows first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The smallest word range containing every set bit (empty range for
    /// an all-zero mask). Consumers zip only this span.
    pub fn nonzero_word_span(&self) -> Range<usize> {
        let first = self.words.iter().position(|&w| w != 0);
        match first {
            Some(f) => {
                let l = self.words.iter().rposition(|&w| w != 0).expect("some word is nonzero");
                f..l + 1
            }
            None => 0..0,
        }
    }

    /// `self ∧ other` as a new mask. Both masks must share a domain.
    pub fn and(&self, other: &RowMask) -> RowMask {
        debug_assert_eq!(self.len, other.len);
        RowMask {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
            len: self.len,
        }
    }

    /// In-place `self ∧= other`.
    pub fn and_assign(&mut self, other: &RowMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self ∧ ¬other` as a new mask.
    pub fn and_not(&self, other: &RowMask) -> RowMask {
        debug_assert_eq!(self.len, other.len);
        RowMask {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & !b).collect(),
            len: self.len,
        }
    }

    /// `|self ∧ other|` without materializing the intersection.
    ///
    /// The word zip is unrolled 8-wide with independent accumulators so
    /// the popcounts pipeline instead of serializing on one running sum
    /// — the autovectorizer turns each lane into SIMD popcount sequences
    /// where the target supports them.
    pub fn intersect_count(&self, other: &RowMask) -> usize {
        debug_assert_eq!(self.len, other.len);
        intersect_count_words(&self.words, &other.words)
    }

    /// Iterates the set rows in ascending order (a selection vector).
    pub fn iter(&self) -> RowMaskIter<'_> {
        RowMaskIter { words: &self.words, wi: 0, cur: self.words.first().copied().unwrap_or(0) }
    }

    /// The set rows as a materialized selection vector.
    pub fn to_rows(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        out.extend(self.iter());
        out
    }
}

/// 8-way unrolled `popcount(a & b)` over two word slices (the kernel
/// behind [`RowMask::intersect_count`], shared so span-limited consumers
/// can run it over sub-slices).
pub fn intersect_count_words(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0usize; 8];
    let (ca, ra) = a.split_at(a.len() - a.len() % 8);
    let (cb, rb) = b.split_at(ca.len());
    for (wa, wb) in ca.chunks_exact(8).zip(cb.chunks_exact(8)) {
        for lane in 0..8 {
            acc[lane] += (wa[lane] & wb[lane]).count_ones() as usize;
        }
    }
    let mut n: usize = acc.iter().sum();
    for (wa, wb) in ra.iter().zip(rb) {
        n += (wa & wb).count_ones() as usize;
    }
    n
}

/// 8-way unrolled `popcount(a & b & c)` over three word slices — the
/// three-operand sibling of [`intersect_count_words`], for counting a
/// two-clause conjunction against a group mask in one pass without
/// materializing the conjunction bitmap.
pub fn intersect3_count_words(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let mut acc = [0usize; 8];
    let head = a.len() - a.len() % 8;
    let (ca, ra) = a.split_at(head);
    let (cb, rb) = b.split_at(head);
    let (cc, rc) = c.split_at(head);
    for ((wa, wb), wc) in ca.chunks_exact(8).zip(cb.chunks_exact(8)).zip(cc.chunks_exact(8)) {
        for lane in 0..8 {
            acc[lane] += (wa[lane] & wb[lane] & wc[lane]).count_ones() as usize;
        }
    }
    let mut n: usize = acc.iter().sum();
    for ((wa, wb), wc) in ra.iter().zip(rb).zip(rc) {
        n += (wa & wb & wc).count_ones() as usize;
    }
    n
}

impl<'a> IntoIterator for &'a RowMask {
    type Item = u32;
    type IntoIter = RowMaskIter<'a>;
    fn into_iter(self) -> RowMaskIter<'a> {
        self.iter()
    }
}

/// Ascending iterator over a [`RowMask`]'s set rows.
pub struct RowMaskIter<'a> {
    words: &'a [u64],
    wi: usize,
    cur: u64,
}

impl Iterator for RowMaskIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.cur == 0 {
            self.wi += 1;
            if self.wi >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.wi];
        }
        let bit = self.cur.trailing_zeros();
        self.cur &= self.cur - 1;
        Some((self.wi as u32) << 6 | bit)
    }
}

/// Either a cached (shared) or a freshly combined predicate mask.
///
/// Single-clause predicates borrow their clause's cached mask with a
/// refcount bump; multi-clause predicates own the `AND` of their
/// clauses' masks. Dereferences to [`RowMask`] either way.
pub enum PredicateMask {
    /// A cache-shared clause mask (single-clause predicates).
    Shared(Arc<RowMask>),
    /// An owned conjunction of clause masks.
    Owned(RowMask),
}

impl std::ops::Deref for PredicateMask {
    type Target = RowMask;
    fn deref(&self) -> &RowMask {
        match self {
            PredicateMask::Shared(m) => m,
            PredicateMask::Owned(m) => m,
        }
    }
}

/// Default bound on distinct cached clause masks.
///
/// Masks cost `table_len / 8` bytes each; the bound keeps a long-lived
/// plan (e.g. one kept warm in a server's plan cache) from accumulating
/// unbounded bitmaps as NAIVE/MC searches mint new clauses run after
/// run.
const DEFAULT_MASK_CACHE_CAP: usize = 1024;

/// Recency-stamped cache entries behind the lock.
#[derive(Default)]
struct MaskEntries {
    map: HashMap<Clause, (Arc<RowMask>, u64)>,
    tick: u64,
}

/// A memo of per-clause masks for one table.
///
/// Keyed by [`Clause`] (bit-exact equality), so any candidate predicate
/// sharing a clause with an earlier one reuses its mask. The cache is
/// table-specific by construction — attach one cache per table snapshot
/// and drop it when the table changes. Thread-safe: scoring workers
/// share one cache behind a mutex (the held section is a hash probe;
/// kernels run outside the lock). Bounded: past the capacity, inserting
/// a new clause evicts the least-recently-used one, so long-lived plans
/// hold at most `capacity × table_len / 8` bytes of masks.
pub struct ClauseMaskCache {
    entries: Mutex<MaskEntries>,
    hits: AtomicU64,
    cap: usize,
}

impl Default for ClauseMaskCache {
    fn default() -> Self {
        ClauseMaskCache::with_capacity(0)
    }
}

impl ClauseMaskCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        ClauseMaskCache::default()
    }

    /// An empty cache holding at most `cap` clause masks, evicting the
    /// least recently used past that (`0` = the default bound).
    pub fn with_capacity(cap: usize) -> Self {
        ClauseMaskCache {
            entries: Mutex::new(MaskEntries::default()),
            hits: AtomicU64::new(0),
            cap: if cap == 0 { DEFAULT_MASK_CACHE_CAP } else { cap },
        }
    }

    /// The enforced capacity bound in clauses.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of distinct clauses cached.
    pub fn len(&self) -> usize {
        self.entries.lock().map.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().map.is_empty()
    }

    /// Number of lookups answered from the cache since construction or
    /// the last [`ClauseMaskCache::clear`] (per-consumer attribution is
    /// the caller's job, via the hit flag of
    /// [`ClauseMaskCache::get_or_eval_flagged`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Drops every cached mask *and* resets the hit counter. A clear is
    /// how a plan rebind recycles a cache for a new table snapshot, so
    /// both entries and hits must restart from zero — carrying the old
    /// count over made warm-slide diagnostics overcount hits that
    /// belonged to the previous generation.
    pub fn clear(&self) {
        self.entries.lock().map.clear();
        self.hits.store(0, Ordering::Relaxed);
    }

    /// The cached mask of `clause`, computing and caching it with
    /// `build` on a miss; the flag reports whether this lookup hit.
    /// Concurrent misses may both run `build`; one result wins, keeping
    /// every reader on the same `Arc`.
    pub fn get_or_eval_flagged(
        &self,
        clause: &Clause,
        build: impl FnOnce() -> Result<RowMask>,
    ) -> Result<(Arc<RowMask>, bool)> {
        {
            let mut e = self.entries.lock();
            e.tick += 1;
            let tick = e.tick;
            if let Some((m, stamp)) = e.map.get_mut(clause) {
                *stamp = tick;
                let m = m.clone();
                drop(e);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((m, true));
            }
        }
        let built = Arc::new(build()?);
        let mut e = self.entries.lock();
        e.tick += 1;
        let tick = e.tick;
        if !e.map.contains_key(clause) && e.map.len() >= self.cap {
            // Lazy LRU: evict the stalest entry. The O(len) scan is
            // noise next to the full-column kernel pass that got us
            // here, and it only runs at capacity.
            if let Some(lru) = e.map.iter().min_by_key(|(_, (_, s))| *s).map(|(k, _)| k.clone()) {
                e.map.remove(&lru);
            }
        }
        let m = e.map.entry(clause.clone()).or_insert((built, tick)).0.clone();
        Ok((m, false))
    }

    /// [`ClauseMaskCache::get_or_eval_flagged`] without the hit flag.
    pub fn get_or_eval(
        &self,
        clause: &Clause,
        build: impl FnOnce() -> Result<RowMask>,
    ) -> Result<Arc<RowMask>> {
        self.get_or_eval_flagged(clause, build).map(|(m, _)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = RowMask::empty(70);
        assert_eq!(e.len(), 70);
        assert_eq!(e.count_ones(), 0);
        assert!(!e.any());
        let f = RowMask::full(70);
        assert_eq!(f.count_ones(), 70);
        assert!(f.contains(0) && f.contains(69));
        // Bits past the domain stay clear.
        assert_eq!(f.words()[1] >> 6, 0);
        assert!(RowMask::empty(0).words().is_empty());
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = [1u32, 63, 64, 127, 128];
        let m = RowMask::from_rows(130, &rows);
        assert_eq!(m.count_ones(), rows.len());
        assert_eq!(m.to_rows(), rows);
        for &r in &rows {
            assert!(m.contains(r));
        }
        assert!(!m.contains(0) && !m.contains(65));
    }

    #[test]
    fn boolean_algebra() {
        let a = RowMask::from_rows(200, &[1, 5, 100, 150]);
        let b = RowMask::from_rows(200, &[5, 150, 199]);
        assert_eq!(a.and(&b).to_rows(), vec![5, 150]);
        assert_eq!(a.and_not(&b).to_rows(), vec![1, 100]);
        assert_eq!(a.intersect_count(&b), 2);
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c.to_rows(), vec![5, 150]);
    }

    #[test]
    fn word_span_brackets_set_bits() {
        assert_eq!(RowMask::empty(300).nonzero_word_span(), 0..0);
        let m = RowMask::from_rows(300, &[70, 71, 190]);
        assert_eq!(m.nonzero_word_span(), 1..3);
        let full = RowMask::full(300);
        assert_eq!(full.nonzero_word_span(), 0..5);
    }

    #[test]
    fn iterator_is_ascending_and_complete() {
        let mut rows: Vec<u32> = (0..=256).step_by(3).collect();
        let m = RowMask::from_rows(257, &rows);
        rows.sort_unstable();
        assert_eq!(m.iter().collect::<Vec<_>>(), rows);
    }

    #[test]
    fn cache_hits_and_reuse() {
        let cache = ClauseMaskCache::new();
        assert_eq!(cache.capacity(), 1024);
        let c = Clause::range(0, 0.0, 1.0);
        let (m1, hit) = cache.get_or_eval_flagged(&c, || Ok(RowMask::from_rows(10, &[3]))).unwrap();
        assert!(!hit);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 1);
        let (m2, hit) = cache.get_or_eval_flagged(&c, || panic!("must hit")).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(cache.hits(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0, "clear starts a new counting generation");
    }

    #[test]
    fn intersect_count_unrolled_matches_scalar_on_all_lengths() {
        // Cover every remainder class of the 8-word unroll, including
        // lengths shorter than one chunk.
        for words in 0..20usize {
            let len = words * 64 + 17;
            let rows_a: Vec<u32> = (0..len as u32).filter(|r| r % 3 == 0).collect();
            let rows_b: Vec<u32> = (0..len as u32).filter(|r| r % 5 == 0).collect();
            let a = RowMask::from_rows(len, &rows_a);
            let b = RowMask::from_rows(len, &rows_b);
            let scalar: usize =
                a.words().iter().zip(b.words()).map(|(x, y)| (x & y).count_ones() as usize).sum();
            assert_eq!(a.intersect_count(&b), scalar, "len {len}");
            assert_eq!(a.intersect_count(&b), (0..len as u32).filter(|r| r % 15 == 0).count());
        }
    }

    #[test]
    fn intersect3_unrolled_matches_scalar_on_all_lengths() {
        for words in 0..20usize {
            let len = words * 64 + 17;
            let rows_a: Vec<u32> = (0..len as u32).filter(|r| r % 2 == 0).collect();
            let rows_b: Vec<u32> = (0..len as u32).filter(|r| r % 3 == 0).collect();
            let rows_c: Vec<u32> = (0..len as u32).filter(|r| r % 5 == 0).collect();
            let a = RowMask::from_rows(len, &rows_a);
            let b = RowMask::from_rows(len, &rows_b);
            let c = RowMask::from_rows(len, &rows_c);
            assert_eq!(
                intersect3_count_words(a.words(), b.words(), c.words()),
                (0..len as u32).filter(|r| r % 30 == 0).count(),
                "len {len}"
            );
        }
    }

    #[test]
    fn cache_evicts_lru_past_capacity() {
        let cache = ClauseMaskCache::with_capacity(4);
        let clause = |i: usize| Clause::range(0, i as f64, i as f64 + 1.0);
        for i in 0..4 {
            cache.get_or_eval(&clause(i), || Ok(RowMask::empty(8))).unwrap();
        }
        // Touch clause 0 so clause 1 is the LRU when 4 arrives.
        cache.get_or_eval(&clause(0), || panic!("resident")).unwrap();
        cache.get_or_eval(&clause(4), || Ok(RowMask::empty(8))).unwrap();
        assert_eq!(cache.len(), 4, "bound enforced");
        let (_, hit) = cache.get_or_eval_flagged(&clause(0), || Ok(RowMask::empty(8))).unwrap();
        assert!(hit, "recently touched entry survives");
        let (_, hit) = cache.get_or_eval_flagged(&clause(1), || Ok(RowMask::empty(8))).unwrap();
        assert!(!hit, "LRU entry was evicted");
    }
}

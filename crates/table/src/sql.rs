//! A minimal SQL front-end for the paper's query class (§3.1):
//! select-project-group-by queries with a single aggregate —
//!
//! ```sql
//! SELECT avg(temp), time FROM sensors GROUP BY time
//! SELECT stddev(temp) FROM readings WHERE 10 <= time GROUP BY hour
//! SELECT sum(disb_amt) FROM expenses WHERE candidate = 'Obama' GROUP BY date
//! ```
//!
//! The WHERE clause supports conjunctions of simple comparisons
//! (`attr = 'str'`, `attr (<|<=|>|>=) number`, `attr IN ('a', 'b')`).
//! Selections are *materialized* before explanation, exactly as §3.1
//! models them ("We model join queries by materializing the join result
//! and assigning it as D"). The parser is hand-rolled recursive descent —
//! no dependencies.

use crate::error::{Result, TableError};
use std::fmt;

/// One WHERE comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `attr = 'value'` (discrete equality).
    EqStr(String, String),
    /// `attr IN ('a', 'b', ...)`.
    InStr(String, Vec<String>),
    /// `attr < x`.
    Lt(String, f64),
    /// `attr <= x`.
    Le(String, f64),
    /// `attr > x`.
    Gt(String, f64),
    /// `attr >= x`.
    Ge(String, f64),
}

/// A parsed select-project-group-by query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// Aggregate function name (lower case).
    pub agg_name: String,
    /// The aggregated attribute (`A_agg`).
    pub agg_attr: String,
    /// Source relation name (informational; execution binds to a table).
    pub from: String,
    /// WHERE conjunction (possibly empty).
    pub selection: Vec<Condition>,
    /// GROUP BY attributes (`A_gb`).
    pub group_by: Vec<String>,
}

impl fmt::Display for ParsedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {}({}) FROM {}", self.agg_name, self.agg_attr, self.from)?;
        if !self.selection.is_empty() {
            write!(f, " WHERE ...")?;
        }
        write!(f, " GROUP BY {}", self.group_by.join(", "))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    LParen,
    RParen,
    Comma,
    Op(&'static str),
}

fn lex(sql: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    let err = |msg: String| TableError::UnknownAttribute(format!("SQL syntax: {msg}"));
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(err("unterminated string literal".into()));
                }
                i += 1; // closing quote
                toks.push(Tok::Str(s));
            }
            '<' | '>' | '=' => {
                if c == '<' && chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Op("<="));
                    i += 2;
                } else if c == '>' && chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Op(">="));
                    i += 2;
                } else {
                    toks.push(Tok::Op(match c {
                        '<' => "<",
                        '>' => ">",
                        _ => "=",
                    }));
                    i += 1;
                }
            }
            _ if c.is_ascii_digit() || c == '-' || c == '.' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || chars[i] == '-'
                        || chars[i] == '+')
                {
                    // Only allow sign right after an exponent marker.
                    if (chars[i] == '-' || chars[i] == '+') && !matches!(chars[i - 1], 'e' | 'E') {
                        break;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let v: f64 = text.parse().map_err(|_| err(format!("bad number `{text}`")))?;
                toks.push(Tok::Num(v));
            }
            _ if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            _ => return Err(err(format!("unexpected character `{c}`"))),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> TableError {
        TableError::UnknownAttribute(format!("SQL syntax: {}", msg.into()))
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn kw_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn parse(&mut self) -> Result<ParsedQuery> {
        self.expect_kw("SELECT")?;
        // agg(attr) [, extra projections up to FROM are tolerated]
        let mut agg_name = self.ident()?.to_ascii_lowercase();
        if self.next() != Some(Tok::LParen) {
            return Err(self.err("expected `(` after aggregate name"));
        }
        let agg_attr = self.ident()?;
        // Optional numeric parameter: `percentile(col, p)`, lowered to
        // the registry spelling `percentile:<fraction>`. A parameter
        // above 1 is read as a percent (`percentile(col, 90)` ≡ 0.9).
        if self.peek() == Some(&Tok::Comma) {
            self.next();
            let p = match self.next() {
                Some(Tok::Num(v)) => v,
                other => {
                    return Err(self.err(format!("expected numeric parameter, found {other:?}")))
                }
            };
            if agg_name != "percentile" {
                return Err(self.err(format!("`{agg_name}` does not take a parameter")));
            }
            let frac = if p > 1.0 { p / 100.0 } else { p };
            agg_name = format!("percentile:{frac}");
        }
        if self.next() != Some(Tok::RParen) {
            return Err(self.err("expected `)` after aggregate attribute"));
        }
        // Skip optional extra projection list (`, time`), which the
        // GROUP BY restates.
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            self.ident()?;
        }
        self.expect_kw("FROM")?;
        let from = self.ident()?;

        let mut selection = Vec::new();
        if self.kw_is("WHERE") {
            self.next();
            loop {
                selection.push(self.condition()?);
                if self.kw_is("AND") {
                    self.next();
                } else {
                    break;
                }
            }
        }

        self.expect_kw("GROUP")?;
        self.expect_kw("BY")?;
        let mut group_by = vec![self.ident()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            group_by.push(self.ident()?);
        }
        if self.pos != self.toks.len() {
            return Err(self.err("trailing tokens after GROUP BY"));
        }
        Ok(ParsedQuery { agg_name, agg_attr, from, selection, group_by })
    }

    fn condition(&mut self) -> Result<Condition> {
        let attr = self.ident()?;
        if self.kw_is("IN") {
            self.next();
            if self.next() != Some(Tok::LParen) {
                return Err(self.err("expected `(` after IN"));
            }
            let mut vals = Vec::new();
            loop {
                match self.next() {
                    Some(Tok::Str(s)) => vals.push(s),
                    other => return Err(self.err(format!("expected string, found {other:?}"))),
                }
                match self.next() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    other => return Err(self.err(format!("expected `,` or `)`, found {other:?}"))),
                }
            }
            return Ok(Condition::InStr(attr, vals));
        }
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        match (op, self.next()) {
            ("=", Some(Tok::Str(s))) => Ok(Condition::EqStr(attr, s)),
            ("<", Some(Tok::Num(v))) => Ok(Condition::Lt(attr, v)),
            ("<=", Some(Tok::Num(v))) => Ok(Condition::Le(attr, v)),
            (">", Some(Tok::Num(v))) => Ok(Condition::Gt(attr, v)),
            (">=", Some(Tok::Num(v))) => Ok(Condition::Ge(attr, v)),
            (op, other) => Err(self.err(format!("unsupported comparison `{op}` {other:?}"))),
        }
    }
}

/// Parses a select-project-group-by query.
pub fn parse_query(sql: &str) -> Result<ParsedQuery> {
    let toks = lex(sql)?;
    Parser { toks, pos: 0 }.parse()
}

/// Evaluates a WHERE conjunction against a table, returning matching rows.
pub fn apply_selection(table: &crate::table::Table, conditions: &[Condition]) -> Result<Vec<u32>> {
    let mut keep: Vec<bool> = vec![true; table.len()];
    for cond in conditions {
        match cond {
            Condition::EqStr(attr, val) => {
                let cat = table.cat(table.attr(attr)?)?;
                let code = cat.code_of(val);
                for (r, k) in keep.iter_mut().enumerate() {
                    *k = *k && Some(cat.codes()[r]) == code;
                }
            }
            Condition::InStr(attr, vals) => {
                let cat = table.cat(table.attr(attr)?)?;
                let codes: Vec<Option<u32>> = vals.iter().map(|v| cat.code_of(v)).collect();
                for (r, k) in keep.iter_mut().enumerate() {
                    *k = *k && codes.contains(&Some(cat.codes()[r]));
                }
            }
            Condition::Lt(attr, x)
            | Condition::Le(attr, x)
            | Condition::Gt(attr, x)
            | Condition::Ge(attr, x) => {
                let col = table.num(table.attr(attr)?)?;
                for (r, k) in keep.iter_mut().enumerate() {
                    let v = col[r];
                    *k = *k
                        && match cond {
                            Condition::Lt(..) => v < *x,
                            Condition::Le(..) => v <= *x,
                            Condition::Gt(..) => v > *x,
                            Condition::Ge(..) => v >= *x,
                            _ => unreachable!(),
                        };
                }
            }
        }
    }
    Ok((0..table.len() as u32).filter(|&r| keep[r as usize]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    #[test]
    fn parses_paper_q1() {
        let q = parse_query("SELECT avg(temp), time FROM sensors GROUP BY time").unwrap();
        assert_eq!(q.agg_name, "avg");
        assert_eq!(q.agg_attr, "temp");
        assert_eq!(q.from, "sensors");
        assert!(q.selection.is_empty());
        assert_eq!(q.group_by, vec!["time"]);
    }

    #[test]
    fn parses_where_equality_and_ranges() {
        let q = parse_query(
            "SELECT sum(disb_amt) FROM expenses WHERE candidate = 'Obama' GROUP BY date",
        )
        .unwrap();
        assert_eq!(q.selection, vec![Condition::EqStr("candidate".into(), "Obama".into())]);

        let q = parse_query(
            "SELECT stddev(temp) FROM readings WHERE time >= 10 AND time < 20 GROUP BY hour",
        )
        .unwrap();
        assert_eq!(
            q.selection,
            vec![Condition::Ge("time".into(), 10.0), Condition::Lt("time".into(), 20.0)]
        );
    }

    #[test]
    fn parses_in_list_and_multi_group_by() {
        let q =
            parse_query("SELECT count(x) FROM t WHERE st IN ('DC', 'NY') GROUP BY a, b").unwrap();
        assert_eq!(
            q.selection,
            vec![Condition::InStr("st".into(), vec!["DC".into(), "NY".into()])]
        );
        assert_eq!(q.group_by, vec!["a", "b"]);
    }

    #[test]
    fn parses_percentile_parameter() {
        let q = parse_query("SELECT percentile(lat, 0.9) FROM t GROUP BY day").unwrap();
        assert_eq!(q.agg_name, "percentile:0.9");
        assert_eq!(q.agg_attr, "lat");
        // A parameter above 1 reads as a percent.
        let q = parse_query("SELECT percentile(lat, 90) FROM t GROUP BY day").unwrap();
        assert_eq!(q.agg_name, "percentile:0.9");
        // Shorthand names need no parameter and pass through untouched.
        let q = parse_query("SELECT p99(lat) FROM t GROUP BY day").unwrap();
        assert_eq!(q.agg_name, "p99");
        // Only percentile takes a parameter.
        assert!(parse_query("SELECT avg(lat, 0.5) FROM t GROUP BY day").is_err());
        assert!(parse_query("SELECT percentile(lat, x) FROM t GROUP BY day").is_err());
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_query("select AVG(temp) from s group by time").unwrap();
        assert_eq!(q.agg_name, "avg");
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_query("SELECT avg temp FROM s GROUP BY t").is_err());
        assert!(parse_query("SELECT avg(temp) FROM s").is_err());
        assert!(parse_query("avg(temp) FROM s GROUP BY t").is_err());
        assert!(parse_query("SELECT avg(temp) FROM s GROUP BY t extra").is_err());
        assert!(parse_query("SELECT avg(temp) FROM s WHERE x ~ 3 GROUP BY t").is_err());
        assert!(parse_query("SELECT avg(temp) FROM s WHERE x = 'unterminated GROUP BY t").is_err());
    }

    fn sample() -> crate::table::Table {
        let schema = Schema::new(vec![Field::disc("candidate"), Field::cont("amt")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for (c, a) in [("Obama", 10.0), ("Romney", 20.0), ("Obama", 30.0)] {
            b.push_row(vec![Value::from(c), Value::from(a)]).unwrap();
        }
        b.build()
    }

    #[test]
    fn selection_equality() {
        let t = sample();
        let rows =
            apply_selection(&t, &[Condition::EqStr("candidate".into(), "Obama".into())]).unwrap();
        assert_eq!(rows, vec![0, 2]);
    }

    #[test]
    fn selection_numeric_and_conjunction() {
        let t = sample();
        let rows = apply_selection(
            &t,
            &[Condition::Ge("amt".into(), 10.0), Condition::Lt("amt".into(), 30.0)],
        )
        .unwrap();
        assert_eq!(rows, vec![0, 1]);
    }

    #[test]
    fn selection_unknown_value_matches_nothing() {
        let t = sample();
        let rows =
            apply_selection(&t, &[Condition::EqStr("candidate".into(), "Nobody".into())]).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn selection_in_list() {
        let t = sample();
        let rows = apply_selection(
            &t,
            &[Condition::InStr("candidate".into(), vec!["Romney".into(), "Nobody".into()])],
        )
        .unwrap();
        assert_eq!(rows, vec![1]);
    }

    #[test]
    fn display_round_trip_info() {
        let q = parse_query("SELECT avg(temp) FROM s GROUP BY time").unwrap();
        let s = q.to_string();
        assert!(s.contains("avg(temp)"));
        assert!(s.contains("GROUP BY time"));
    }
}

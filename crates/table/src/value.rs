//! Scalar values and a totally-ordered `f64` wrapper.
//!
//! Scorpion distinguishes two attribute kinds (§3.1 of the paper):
//! *continuous* attributes, which predicates constrain with range clauses,
//! and *discrete* attributes, constrained with set-containment clauses.
//! [`Value`] is the dynamically-typed scalar used at the table-builder
//! boundary; the columnar storage keeps values unboxed.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically typed scalar cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A continuous (floating point) value.
    Num(f64),
    /// A discrete (categorical) value.
    Str(String),
}

impl Value {
    /// Returns the numeric payload, if this is a [`Value::Num`].
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Num(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Num(v as f64)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Num(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// An `f64` wrapper with total order, equality, and hashing based on the
/// IEEE-754 bit pattern (after canonicalizing NaN and `-0.0`).
///
/// Used as a group-by key component and as a map key for caching per-`c`
/// results. NaN compares greater than every other value (matching
/// [`f64::total_cmp`]).
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    fn canonical_bits(self) -> u64 {
        if self.0.is_nan() {
            f64::NAN.to_bits()
        } else if self.0 == 0.0 {
            0.0f64.to_bits()
        } else {
            self.0.to_bits()
        }
    }
}

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_bits() == other.canonical_bits()
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for OrdF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical_bits().hash(state);
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(1.5).as_num(), Some(1.5));
        assert_eq!(Value::from(3i64).as_num(), Some(3.0));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from("abc".to_string()).as_str(), Some("abc"));
        assert_eq!(Value::Num(1.0).as_str(), None);
        assert_eq!(Value::Str("x".into()).as_num(), None);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Num(2.5).to_string(), "2.5");
        assert_eq!(Value::Str("DC".into()).to_string(), "DC");
    }

    #[test]
    fn ordf64_total_order() {
        let mut v = [OrdF64(3.0), OrdF64(-1.0), OrdF64(f64::NAN), OrdF64(0.0)];
        v.sort();
        assert_eq!(v[0], OrdF64(-1.0));
        assert_eq!(v[1], OrdF64(0.0));
        assert_eq!(v[2], OrdF64(3.0));
        assert!(v[3].0.is_nan());
    }

    #[test]
    fn ordf64_negative_zero_equals_zero() {
        assert_eq!(OrdF64(0.0), OrdF64(-0.0));
        let mut m = HashMap::new();
        m.insert(OrdF64(-0.0), 1);
        assert_eq!(m.get(&OrdF64(0.0)), Some(&1));
    }

    #[test]
    fn ordf64_nan_hash_consistent() {
        let a = OrdF64(f64::NAN);
        let b = OrdF64(-f64::NAN);
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(a, 7);
        assert_eq!(m.get(&b), Some(&7));
    }
}

//! Single-attribute clauses: ranges over continuous attributes and value
//! sets over discrete attributes (§3.1).

use crate::column::Column;
use crate::domain::AttrDomain;
use crate::rowmask::RowMask;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// One clause of a conjunctive predicate. Each attribute appears in at most
/// one clause of a predicate, per the paper's predicate language.
#[derive(Debug, Clone)]
pub enum Clause {
    /// `lo <= attr < hi` over a continuous attribute.
    Range {
        /// Attribute index.
        attr: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// `attr IN (codes...)` over a discrete attribute (dictionary codes).
    In {
        /// Attribute index.
        attr: usize,
        /// The admitted dictionary codes.
        codes: BTreeSet<u32>,
    },
}

impl Clause {
    /// Builds a range clause.
    pub fn range(attr: usize, lo: f64, hi: f64) -> Self {
        Clause::Range { attr, lo, hi }
    }

    /// Builds a set-containment clause.
    pub fn in_set(attr: usize, codes: impl IntoIterator<Item = u32>) -> Self {
        Clause::In { attr, codes: codes.into_iter().collect() }
    }

    /// The attribute this clause constrains.
    pub fn attr(&self) -> usize {
        match self {
            Clause::Range { attr, .. } | Clause::In { attr, .. } => *attr,
        }
    }

    /// True when no value can satisfy the clause.
    pub fn is_empty(&self) -> bool {
        match self {
            Clause::Range { lo, hi, .. } => lo >= hi,
            Clause::In { codes, .. } => codes.is_empty(),
        }
    }

    /// Does a continuous value satisfy this clause? (Range clauses only.)
    #[inline]
    pub fn matches_num(&self, v: f64) -> bool {
        match self {
            Clause::Range { lo, hi, .. } => *lo <= v && v < *hi,
            Clause::In { .. } => false,
        }
    }

    /// Does a dictionary code satisfy this clause? (In clauses only.)
    #[inline]
    pub fn matches_code(&self, c: u32) -> bool {
        match self {
            Clause::Range { .. } => false,
            Clause::In { codes, .. } => codes.contains(&c),
        }
    }

    /// Evaluates the clause against a whole column as a bitmap kernel:
    /// bit `r` of the result is set iff row `r` satisfies the clause.
    /// Returns `None` when the clause kind does not match the column
    /// kind (range over discrete, set over continuous) — the columnar
    /// equivalent of the matcher's type-mismatch error.
    ///
    /// The loops are branch-light and enum-dispatch-free: one pass over
    /// the raw `&[f64]` / `&[u32]` storage packing 64 rows per word.
    pub fn eval_mask(&self, col: &Column) -> Option<RowMask> {
        match (self, col) {
            (Clause::Range { lo, hi, .. }, Column::Num(data)) => {
                Some(eval_range_mask(data, *lo, *hi))
            }
            (Clause::In { codes, .. }, Column::Cat(cat)) => Some(eval_in_mask(codes, cat.codes())),
            _ => None,
        }
    }

    /// True when every value satisfying `other` also satisfies `self`
    /// (`other ⊆ self`). Both clauses must constrain the same attribute.
    pub fn contains(&self, other: &Clause) -> bool {
        debug_assert_eq!(self.attr(), other.attr());
        match (self, other) {
            (Clause::Range { lo: a, hi: b, .. }, Clause::Range { lo: c, hi: d, .. }) => {
                a <= c && d <= b
            }
            (Clause::In { codes: a, .. }, Clause::In { codes: b, .. }) => b.is_subset(a),
            _ => false,
        }
    }

    /// The conjunction of two clauses on the same attribute, or `None` when
    /// it is unsatisfiable.
    pub fn intersect(&self, other: &Clause) -> Option<Clause> {
        debug_assert_eq!(self.attr(), other.attr());
        match (self, other) {
            (Clause::Range { attr, lo: a, hi: b }, Clause::Range { lo: c, hi: d, .. }) => {
                let (lo, hi) = (a.max(*c), b.min(*d));
                (lo < hi).then_some(Clause::Range { attr: *attr, lo, hi })
            }
            (Clause::In { attr, codes: a }, Clause::In { codes: b, .. }) => {
                let codes: BTreeSet<u32> = a.intersection(b).copied().collect();
                (!codes.is_empty()).then_some(Clause::In { attr: *attr, codes })
            }
            _ => None,
        }
    }

    /// The smallest clause containing both inputs: interval hull for ranges,
    /// set union for discrete clauses (§4.3's minimum bounding box merge).
    pub fn hull(&self, other: &Clause) -> Clause {
        debug_assert_eq!(self.attr(), other.attr());
        match (self, other) {
            (Clause::Range { attr, lo: a, hi: b }, Clause::Range { lo: c, hi: d, .. }) => {
                Clause::Range { attr: *attr, lo: a.min(*c), hi: b.max(*d) }
            }
            (Clause::In { attr, codes: a }, Clause::In { codes: b, .. }) => {
                Clause::In { attr: *attr, codes: a.union(b).copied().collect() }
            }
            // Mixed kinds never occur for a well-typed schema; fall back to
            // self to keep the operation total.
            _ => self.clone(),
        }
    }

    /// The fraction of the attribute's domain this clause admits, in
    /// `[0, 1]`. Used by the Merger's volume estimates (§6.3).
    pub fn fraction(&self, domain: &AttrDomain) -> f64 {
        match (self, domain) {
            (Clause::Range { lo, hi, .. }, AttrDomain::Continuous { lo: dl, hi: dh }) => {
                let span = dh - dl;
                if span <= 0.0 {
                    if self.is_empty() {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    ((hi.min(*dh) - lo.max(*dl)) / span).clamp(0.0, 1.0)
                }
            }
            (Clause::In { codes, .. }, AttrDomain::Discrete { cardinality }) => {
                if *cardinality == 0 {
                    0.0
                } else {
                    (codes.len() as f64 / *cardinality as f64).clamp(0.0, 1.0)
                }
            }
            // Mismatched clause/domain kinds: treat as unconstrained.
            _ => 1.0,
        }
    }

    /// Whether two clauses on the same attribute touch or overlap, so that
    /// their hull introduces no gap. Range clauses may be separated by at
    /// most `eps` (an absolute tolerance); discrete clauses are always
    /// adjacent because value sets carry no geometry.
    pub fn touches(&self, other: &Clause, eps: f64) -> bool {
        debug_assert_eq!(self.attr(), other.attr());
        match (self, other) {
            (Clause::Range { lo: a, hi: b, .. }, Clause::Range { lo: c, hi: d, .. }) => {
                a.max(*c) <= b.min(*d) + eps
            }
            (Clause::In { .. }, Clause::In { .. }) => true,
            _ => false,
        }
    }
}

/// `lo <= v < hi` over a raw continuous column, 64 rows per word.
fn eval_range_mask(data: &[f64], lo: f64, hi: f64) -> RowMask {
    let mut words = vec![0u64; data.len().div_ceil(64)];
    for (word, chunk) in words.iter_mut().zip(data.chunks(64)) {
        let mut bits = 0u64;
        for (j, &v) in chunk.iter().enumerate() {
            bits |= ((lo <= v && v < hi) as u64) << j;
        }
        *word = bits;
    }
    RowMask::from_words(words, data.len())
}

/// `code ∈ set` over a raw dictionary-code column. The admitted codes
/// are expanded into a small bitmap first so the row loop is a pair of
/// shifts instead of a `BTreeSet` probe.
fn eval_in_mask(set: &BTreeSet<u32>, codes: &[u32]) -> RowMask {
    let max = set.iter().next_back().copied().unwrap_or(0);
    let mut lut = vec![0u64; (max as usize >> 6) + 1];
    for &c in set {
        lut[(c >> 6) as usize] |= 1u64 << (c & 63);
    }
    let mut words = vec![0u64; codes.len().div_ceil(64)];
    for (word, chunk) in words.iter_mut().zip(codes.chunks(64)) {
        let mut bits = 0u64;
        for (j, &c) in chunk.iter().enumerate() {
            let hit = if c <= max { (lut[(c >> 6) as usize] >> (c & 63)) & 1 } else { 0 };
            bits |= hit << j;
        }
        *word = bits;
    }
    RowMask::from_words(words, codes.len())
}

impl PartialEq for Clause {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Clause::Range { attr: a1, lo: l1, hi: h1 },
                Clause::Range { attr: a2, lo: l2, hi: h2 },
            ) => a1 == a2 && l1.to_bits() == l2.to_bits() && h1.to_bits() == h2.to_bits(),
            (Clause::In { attr: a1, codes: c1 }, Clause::In { attr: a2, codes: c2 }) => {
                a1 == a2 && c1 == c2
            }
            _ => false,
        }
    }
}

impl Eq for Clause {}

impl Hash for Clause {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Clause::Range { attr, lo, hi } => {
                0u8.hash(state);
                attr.hash(state);
                lo.to_bits().hash(state);
                hi.to_bits().hash(state);
            }
            Clause::In { attr, codes } => {
                1u8.hash(state);
                attr.hash(state);
                codes.hash(state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_matching_is_half_open() {
        let c = Clause::range(0, 10.0, 20.0);
        assert!(c.matches_num(10.0));
        assert!(c.matches_num(19.999));
        assert!(!c.matches_num(20.0));
        assert!(!c.matches_num(9.999));
        assert!(!c.matches_code(3));
    }

    #[test]
    fn in_set_matching() {
        let c = Clause::in_set(1, [2, 5]);
        assert!(c.matches_code(2));
        assert!(c.matches_code(5));
        assert!(!c.matches_code(3));
        assert!(!c.matches_num(2.0));
    }

    #[test]
    fn emptiness() {
        assert!(Clause::range(0, 5.0, 5.0).is_empty());
        assert!(Clause::range(0, 6.0, 5.0).is_empty());
        assert!(!Clause::range(0, 5.0, 6.0).is_empty());
        assert!(Clause::in_set(0, []).is_empty());
        assert!(!Clause::in_set(0, [1]).is_empty());
    }

    #[test]
    fn containment() {
        let big = Clause::range(0, 0.0, 100.0);
        let small = Clause::range(0, 10.0, 20.0);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));

        let all = Clause::in_set(1, [1, 2, 3]);
        let some = Clause::in_set(1, [2]);
        assert!(all.contains(&some));
        assert!(!some.contains(&all));
    }

    #[test]
    fn intersection() {
        let a = Clause::range(0, 0.0, 15.0);
        let b = Clause::range(0, 10.0, 30.0);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Clause::range(0, 10.0, 15.0));
        assert!(a.intersect(&Clause::range(0, 20.0, 30.0)).is_none());

        let x = Clause::in_set(1, [1, 2]);
        let y = Clause::in_set(1, [2, 3]);
        assert_eq!(x.intersect(&y).unwrap(), Clause::in_set(1, [2]));
        assert!(x.intersect(&Clause::in_set(1, [9])).is_none());
    }

    #[test]
    fn hull_contains_both() {
        let a = Clause::range(0, 0.0, 10.0);
        let b = Clause::range(0, 20.0, 30.0);
        let h = a.hull(&b);
        assert!(h.contains(&a) && h.contains(&b));
        assert_eq!(h, Clause::range(0, 0.0, 30.0));

        let x = Clause::in_set(1, [1]);
        let y = Clause::in_set(1, [4]);
        assert_eq!(x.hull(&y), Clause::in_set(1, [1, 4]));
    }

    #[test]
    fn fraction_of_domain() {
        let d = AttrDomain::Continuous { lo: 0.0, hi: 100.0 };
        assert!((Clause::range(0, 25.0, 75.0).fraction(&d) - 0.5).abs() < 1e-12);
        // Clauses wider than the domain clamp to 1.
        assert_eq!(Clause::range(0, -100.0, 500.0).fraction(&d), 1.0);
        let dd = AttrDomain::Discrete { cardinality: 4 };
        assert_eq!(Clause::in_set(0, [1, 2]).fraction(&dd), 0.5);
        assert_eq!(Clause::in_set(0, []).fraction(&dd), 0.0);
    }

    #[test]
    fn touches_with_tolerance() {
        let a = Clause::range(0, 0.0, 10.0);
        let b = Clause::range(0, 10.0, 20.0);
        let c = Clause::range(0, 10.5, 20.0);
        assert!(a.touches(&b, 0.0));
        assert!(!a.touches(&c, 0.1));
        assert!(a.touches(&c, 1.0));
        assert!(Clause::in_set(1, [1]).touches(&Clause::in_set(1, [9]), 0.0));
    }

    #[test]
    fn eval_mask_matches_scalar_semantics() {
        // 70 rows so the kernels cross a word boundary.
        let data: Vec<f64> = (0..70).map(|i| i as f64).collect();
        let col = Column::Num(data.clone());
        let c = Clause::range(0, 10.0, 20.0);
        let m = c.eval_mask(&col).unwrap();
        for (r, &v) in data.iter().enumerate() {
            assert_eq!(m.contains(r as u32), c.matches_num(v), "row {r}");
        }
        assert!(c.eval_mask(&Column::Cat(crate::column::CatColumn::new())).is_none());

        let mut cat = crate::column::CatColumn::new();
        for i in 0..70 {
            cat.push(["a", "b", "c"][i % 3]);
        }
        let codes = cat.codes().to_vec();
        let col = Column::Cat(cat);
        let c = Clause::in_set(0, [0, 2]);
        let m = c.eval_mask(&col).unwrap();
        for (r, &code) in codes.iter().enumerate() {
            assert_eq!(m.contains(r as u32), c.matches_code(code), "row {r}");
        }
        // Codes above the set's maximum never match (guarded LUT probe).
        let narrow = Clause::in_set(0, [0]);
        let m = narrow.eval_mask(&col).unwrap();
        for (r, &code) in codes.iter().enumerate() {
            assert_eq!(m.contains(r as u32), code == 0, "row {r}");
        }
        assert!(narrow.eval_mask(&Column::Num(vec![1.0])).is_none());
    }

    #[test]
    fn eq_and_hash_use_bit_patterns() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Clause::range(0, 1.0, 2.0));
        assert!(s.contains(&Clause::range(0, 1.0, 2.0)));
        assert!(!s.contains(&Clause::range(0, 1.0, 2.0000001)));
        assert!(!s.contains(&Clause::range(1, 1.0, 2.0)));
    }
}

//! Predicate language: conjunctive range / set-containment predicates,
//! their algebra (containment, intersection, bounding-box union,
//! adjacency, carving), and fast compiled matching.

mod clause;
#[allow(clippy::module_inception)]
mod predicate;

pub use clause::Clause;
pub use predicate::{Predicate, PredicateMatcher};

//! Conjunctive predicates: the paper's explanation language.

use crate::column::Column;
use crate::domain::AttrDomain;
use crate::error::Result;
use crate::predicate::clause::Clause;
use crate::rowmask::{ClauseMaskCache, PredicateMask, RowMask};
use crate::table::Table;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;

/// A conjunction of per-attribute clauses; each attribute appears in at
/// most one clause. The empty conjunction matches every tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Predicate {
    clauses: BTreeMap<usize, Clause>,
}

impl Predicate {
    /// The always-true predicate (no clauses).
    pub fn all() -> Self {
        Predicate::default()
    }

    /// Builds a predicate from clauses; later clauses on the same attribute
    /// are intersected with earlier ones (conjunction semantics). Returns
    /// `None` when the conjunction is unsatisfiable.
    pub fn conjunction(clauses: impl IntoIterator<Item = Clause>) -> Option<Self> {
        let mut p = Predicate::all();
        for c in clauses {
            p = p.and_clause(c)?;
        }
        Some(p)
    }

    /// Adds one clause conjunctively; `None` when unsatisfiable.
    #[must_use]
    pub fn and_clause(&self, clause: Clause) -> Option<Self> {
        if clause.is_empty() {
            return None;
        }
        let mut out = self.clone();
        match out.clauses.get(&clause.attr()) {
            Some(existing) => {
                let merged = existing.intersect(&clause)?;
                out.clauses.insert(clause.attr(), merged);
            }
            None => {
                out.clauses.insert(clause.attr(), clause);
            }
        }
        Some(out)
    }

    /// Replaces (or inserts) the clause on `clause.attr()` unconditionally.
    #[must_use]
    pub fn with_clause(&self, clause: Clause) -> Self {
        let mut out = self.clone();
        out.clauses.insert(clause.attr(), clause);
        out
    }

    /// Removes the clause on `attr`, widening the predicate.
    #[must_use]
    pub fn without_attr(&self, attr: usize) -> Self {
        let mut out = self.clone();
        out.clauses.remove(&attr);
        out
    }

    /// The clause on `attr`, if any.
    pub fn clause(&self, attr: usize) -> Option<&Clause> {
        self.clauses.get(&attr)
    }

    /// Iterates clauses in attribute order.
    pub fn clauses(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.values()
    }

    /// The set of constrained attributes.
    pub fn attrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.clauses.keys().copied()
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// True for the always-true predicate.
    pub fn is_all(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The type-mismatch error for a clause bound against the wrong
    /// column kind, named after the table's schema.
    fn type_mismatch(table: &Table, clause: &Clause) -> crate::error::TableError {
        let attr = clause.attr();
        let name = table
            .schema()
            .field(attr)
            .map(|f| f.name().to_owned())
            .unwrap_or_else(|_| format!("attr{attr}"));
        crate::error::TableError::TypeMismatch {
            attr: name,
            expected: match clause {
                Clause::Range { .. } => "continuous",
                Clause::In { .. } => "discrete",
            },
        }
    }

    /// One clause's mask against `table`, served from (and recorded in)
    /// `cache`; the flag reports a cache hit.
    fn clause_mask(
        table: &Table,
        cache: &ClauseMaskCache,
        clause: &Clause,
    ) -> Result<(Arc<RowMask>, bool)> {
        cache.get_or_eval_flagged(clause, || {
            let col = table.column(clause.attr())?;
            clause.eval_mask(col).ok_or_else(|| Predicate::type_mismatch(table, clause))
        })
    }

    /// Evaluates the predicate against `table` as a bitmap: the `AND` of
    /// its clauses' cached masks. Single-clause predicates share the
    /// cached clause mask (refcount bump, no copy); the empty conjunction
    /// is the full mask.
    ///
    /// This is the primary evaluation path — sibling candidates that
    /// share clauses (a DT re-score level, an MC level, a NAIVE round)
    /// pay each distinct clause's column pass once per `cache` lifetime.
    /// Bit `r` is set iff [`PredicateMatcher::matches`] returns true for
    /// row `r`; the row-at-a-time matcher survives as the reference
    /// oracle for exactly that property.
    pub fn mask(&self, table: &Table, cache: &ClauseMaskCache) -> Result<PredicateMask> {
        self.mask_with_hits(table, cache).map(|(m, _)| m)
    }

    /// [`Predicate::mask`] plus the number of clause lookups this call
    /// answered from `cache` — lets a consumer sharing the cache with
    /// others attribute hits to itself.
    pub fn mask_with_hits(
        &self,
        table: &Table,
        cache: &ClauseMaskCache,
    ) -> Result<(PredicateMask, u64)> {
        let mut hits = 0u64;
        let mut first: Option<Arc<RowMask>> = None;
        let mut acc: Option<RowMask> = None;
        for clause in self.clauses.values() {
            let (m, hit) = Predicate::clause_mask(table, cache, clause)?;
            hits += hit as u64;
            match (&mut acc, &first) {
                (Some(a), _) => a.and_assign(&m),
                (None, Some(f)) => acc = Some(f.and(&m)),
                (None, None) => first = Some(m),
            }
        }
        let mask = match (acc, first) {
            (Some(owned), _) => PredicateMask::Owned(owned),
            (None, Some(shared)) => PredicateMask::Shared(shared),
            (None, None) => PredicateMask::Owned(RowMask::full(table.len())),
        };
        Ok((mask, hits))
    }

    /// Ensures each of the predicate's clause masks is resident in
    /// `cache` without doing any conjunction work — batch scorers call
    /// this once per candidate list before fanning out across workers,
    /// so shared clauses are built exactly once instead of raced on.
    /// Returns how many clause lookups were already cached.
    pub fn warm_masks(&self, table: &Table, cache: &ClauseMaskCache) -> Result<u64> {
        let mut hits = 0u64;
        for clause in self.clauses.values() {
            hits += Predicate::clause_mask(table, cache, clause)?.1 as u64;
        }
        Ok(hits)
    }

    /// Evaluates the predicate as a bitmap without a clause cache — for
    /// one-shot consumers (CLI previews, selection helpers) where
    /// memoization has nothing to amortize.
    pub fn mask_uncached(&self, table: &Table) -> Result<RowMask> {
        let mut acc: Option<RowMask> = None;
        for clause in self.clauses.values() {
            let col = table.column(clause.attr())?;
            let m = clause.eval_mask(col).ok_or_else(|| Predicate::type_mismatch(table, clause))?;
            match &mut acc {
                Some(a) => a.and_assign(&m),
                None => acc = Some(m),
            }
        }
        Ok(acc.unwrap_or_else(|| RowMask::full(table.len())))
    }

    /// Compiles the predicate against a table for row-at-a-time
    /// matching. Kept as the reference oracle for the mask kernels
    /// (parity-tested) and as the small-probe fallback of
    /// [`Predicate::select`] / [`Predicate::count`]; scoring hot paths
    /// evaluate [`Predicate::mask`] instead.
    pub fn matcher<'t>(&self, table: &'t Table) -> Result<PredicateMatcher<'t>> {
        let mut bound = Vec::with_capacity(self.clauses.len());
        for clause in self.clauses.values() {
            let attr = clause.attr();
            let col = table.column(attr)?;
            let b = match (clause, col) {
                (Clause::Range { lo, hi, .. }, Column::Num(v)) => {
                    BoundClause::Range { data: v, lo: *lo, hi: *hi }
                }
                (Clause::In { codes, .. }, Column::Cat(c)) => {
                    BoundClause::In { codes: c.codes(), set: codes.clone() }
                }
                _ => return Err(Predicate::type_mismatch(table, clause)),
            };
            bound.push(b);
        }
        Ok(PredicateMatcher { bound })
    }

    /// True when probing `n_rows` of `table` should match row-at-a-time
    /// rather than pay a full-column kernel pass per clause: the mask
    /// kernels touch every table row, so tiny probes of large tables
    /// are cheaper through the matcher.
    fn small_probe(table: &Table, n_rows: usize) -> bool {
        n_rows < table.len() / 64
    }

    /// Selects, from `rows`, the ids whose tuples satisfy the predicate
    /// (bitmap-evaluated: one columnar pass per clause, then bit tests;
    /// small probes of large tables fall back to row-at-a-time
    /// matching).
    pub fn select(&self, table: &Table, rows: &[u32]) -> Result<Vec<u32>> {
        if Predicate::small_probe(table, rows.len()) {
            let m = self.matcher(table)?;
            return Ok(rows.iter().copied().filter(|&r| m.matches(r)).collect());
        }
        let m = self.mask_uncached(table)?;
        Ok(rows.iter().copied().filter(|&r| m.contains(r)).collect())
    }

    /// Counts the rows of `rows` satisfying the predicate.
    pub fn count(&self, table: &Table, rows: &[u32]) -> Result<usize> {
        if Predicate::small_probe(table, rows.len()) {
            let m = self.matcher(table)?;
            return Ok(rows.iter().filter(|&&r| m.matches(r)).count());
        }
        let m = self.mask_uncached(table)?;
        Ok(rows.iter().filter(|&&r| m.contains(r)).count())
    }

    /// Syntactic containment: every tuple matching `self` also matches
    /// `other` (`self ≺ other` in the paper's notation, modulo strictness).
    pub fn implies(&self, other: &Predicate) -> bool {
        other.clauses.iter().all(|(attr, oc)| match self.clauses.get(attr) {
            Some(sc) => oc.contains(sc),
            // `other` constrains an attribute `self` leaves free.
            None => false,
        })
    }

    /// Conjunction of two predicates; `None` when unsatisfiable.
    pub fn intersect(&self, other: &Predicate) -> Option<Predicate> {
        let mut out = self.clone();
        for c in other.clauses.values() {
            out = out.and_clause(c.clone())?;
        }
        Some(out)
    }

    /// Minimum-bounding-box union (§4.3): per-attribute hulls where both
    /// predicates have clauses; attributes constrained by only one side
    /// become unconstrained (the box must contain both operands).
    pub fn hull(&self, other: &Predicate) -> Predicate {
        let mut clauses = BTreeMap::new();
        for (attr, sc) in &self.clauses {
            if let Some(oc) = other.clauses.get(attr) {
                clauses.insert(*attr, sc.hull(oc));
            }
        }
        Predicate { clauses }
    }

    /// The fraction of the full attribute-space volume this predicate's
    /// bounding box occupies (product of per-clause fractions).
    pub fn volume_fraction(&self, domains: &[AttrDomain]) -> f64 {
        self.clauses.values().map(|c| c.fraction(&domains[c.attr()])).product()
    }

    /// Whether two boxes touch or overlap in every constrained dimension,
    /// so their hull introduces no gap. `eps_frac` is the allowed gap as a
    /// fraction of each attribute's domain span.
    pub fn is_adjacent(&self, other: &Predicate, domains: &[AttrDomain], eps_frac: f64) -> bool {
        for (attr, sc) in &self.clauses {
            if let Some(oc) = other.clauses.get(attr) {
                let eps = domains[*attr].span() * eps_frac;
                if !sc.touches(oc, eps) {
                    return false;
                }
            }
            // Unconstrained on the other side: overlaps trivially.
        }
        true
    }

    /// The effective clause on `attr`: the stored clause, or the full-domain
    /// clause when unconstrained.
    fn effective_clause(&self, attr: usize, domains: &[AttrDomain]) -> Clause {
        if let Some(c) = self.clauses.get(&attr) {
            return c.clone();
        }
        match &domains[attr] {
            AttrDomain::Continuous { lo, hi } => {
                // Padded so the half-open range covers the observed maximum.
                let span = hi - lo;
                let pad = if span == 0.0 { 1e-9 } else { span * 1e-9 };
                Clause::range(attr, *lo, hi + pad)
            }
            AttrDomain::Discrete { cardinality } => Clause::in_set(attr, 0..*cardinality as u32),
        }
    }

    /// Carves `self` along `other`'s boundaries (§6.1.4): returns the
    /// intersection box (if non-empty) and a set of disjoint remainder
    /// boxes that together cover `self − other`.
    pub fn carve(
        &self,
        other: &Predicate,
        domains: &[AttrDomain],
    ) -> (Option<Predicate>, Vec<Predicate>) {
        let mut remainders = Vec::new();
        let mut current = self.clone();
        for (attr, oc) in &other.clauses {
            let sc = current.effective_clause(*attr, domains);
            match (&sc, oc) {
                (Clause::Range { lo: sl, hi: sh, .. }, Clause::Range { lo: ol, hi: oh, .. }) => {
                    // Left remainder: [sl, min(sh, ol))
                    let left_hi = sh.min(*ol);
                    if *sl < left_hi {
                        remainders.push(current.with_clause(Clause::range(*attr, *sl, left_hi)));
                    }
                    // Right remainder: [max(sl, oh), sh)
                    let right_lo = sl.max(*oh);
                    if right_lo < *sh {
                        remainders.push(current.with_clause(Clause::range(*attr, right_lo, *sh)));
                    }
                    // Middle: overlap.
                    let (ml, mh) = (sl.max(*ol), sh.min(*oh));
                    if ml < mh {
                        current = current.with_clause(Clause::range(*attr, ml, mh));
                    } else {
                        return (None, remainders);
                    }
                }
                (Clause::In { codes: scod, .. }, Clause::In { codes: ocod, .. }) => {
                    let outside: BTreeSet<u32> = scod.difference(ocod).copied().collect();
                    if !outside.is_empty() {
                        remainders.push(current.with_clause(Clause::in_set(*attr, outside)));
                    }
                    let inside: BTreeSet<u32> = scod.intersection(ocod).copied().collect();
                    if inside.is_empty() {
                        return (None, remainders);
                    }
                    current = current.with_clause(Clause::in_set(*attr, inside));
                }
                // Mixed kinds cannot arise on a well-typed schema.
                _ => return (None, remainders),
            }
        }
        (Some(current), remainders)
    }

    /// Drops clauses that admit an attribute's entire observed domain
    /// (range covering `[lo, hi]`, or a value set containing every code),
    /// which arise when tree partitions or merges span a full dimension.
    /// The simplified predicate selects exactly the same rows.
    #[must_use]
    pub fn simplify(&self, domains: &[AttrDomain]) -> Predicate {
        let mut out = BTreeMap::new();
        for (attr, c) in &self.clauses {
            let full = match (c, &domains[*attr]) {
                (Clause::Range { lo, hi, .. }, AttrDomain::Continuous { lo: dl, hi: dh }) => {
                    *lo <= *dl && *dh < *hi
                }
                (Clause::In { codes, .. }, AttrDomain::Discrete { cardinality }) => {
                    codes.len() >= *cardinality
                }
                _ => false,
            };
            if !full {
                out.insert(*attr, c.clone());
            }
        }
        Predicate { clauses: out }
    }

    /// Renders the predicate as a SQL-like string, resolving dictionary
    /// codes against `table`.
    pub fn display(&self, table: &Table) -> String {
        if self.is_all() {
            return "TRUE".to_owned();
        }
        let mut parts = Vec::with_capacity(self.clauses.len());
        for clause in self.clauses.values() {
            let attr = clause.attr();
            let name = table
                .schema()
                .field(attr)
                .map(|f| f.name().to_owned())
                .unwrap_or_else(|_| format!("attr{attr}"));
            let mut s = String::new();
            match clause {
                Clause::Range { lo, hi, .. } => {
                    // Use more digits when rounding would collapse the
                    // bounds (epsilon-padded ranges).
                    let (a, b) = (format!("{lo:.4}"), format!("{hi:.4}"));
                    if a == b {
                        let _ = write!(s, "{name} in [{lo}, {hi})");
                    } else {
                        let _ = write!(s, "{name} in [{a}, {b})");
                    }
                }
                Clause::In { codes, .. } => {
                    let vals: Vec<String> = match table.cat(attr) {
                        Ok(cat) => {
                            codes.iter().map(|&c| format!("'{}'", cat.value_of(c))).collect()
                        }
                        Err(_) => codes.iter().map(|c| c.to_string()).collect(),
                    };
                    let _ = write!(s, "{name} in ({})", vals.join(", "));
                }
            }
            parts.push(s);
        }
        parts.join(" AND ")
    }
}

/// A single clause bound to its column for fast evaluation.
enum BoundClause<'t> {
    Range { data: &'t [f64], lo: f64, hi: f64 },
    In { codes: &'t [u32], set: BTreeSet<u32> },
}

/// A predicate compiled against a specific table.
pub struct PredicateMatcher<'t> {
    bound: Vec<BoundClause<'t>>,
}

impl PredicateMatcher<'_> {
    /// Does row `r` satisfy every clause?
    #[inline]
    pub fn matches(&self, r: u32) -> bool {
        let r = r as usize;
        self.bound.iter().all(|b| match b {
            BoundClause::Range { data, lo, hi } => {
                let v = data[r];
                *lo <= v && v < *hi
            }
            BoundClause::In { codes, set } => set.contains(&codes[r]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn table() -> Table {
        let schema =
            Schema::new(vec![Field::cont("x"), Field::cont("y"), Field::disc("s")]).unwrap();
        let mut b = TableBuilder::new(schema);
        let rows = [(1.0, 10.0, "a"), (5.0, 20.0, "b"), (9.0, 30.0, "a"), (5.0, 35.0, "c")];
        for (x, y, s) in rows {
            b.push_row(vec![Value::from(x), Value::from(y), Value::from(s)]).unwrap();
        }
        b.build()
    }

    fn domains(t: &Table) -> Vec<AttrDomain> {
        crate::domain::domains_of(t).unwrap()
    }

    #[test]
    fn all_matches_everything() {
        let t = table();
        let p = Predicate::all();
        assert!(p.is_all());
        assert_eq!(p.select(&t, &[0, 1, 2, 3]).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(p.display(&t), "TRUE");
    }

    #[test]
    fn conjunction_selects_rows() {
        let t = table();
        let p = Predicate::conjunction([
            Clause::range(0, 2.0, 10.0),
            Clause::in_set(2, [t.cat(2).unwrap().code_of("b").unwrap()]),
        ])
        .unwrap();
        assert_eq!(p.select(&t, &[0, 1, 2, 3]).unwrap(), vec![1]);
        assert_eq!(p.count(&t, &[0, 1, 2, 3]).unwrap(), 1);
    }

    #[test]
    fn and_clause_intersects_same_attr() {
        let p = Predicate::all()
            .and_clause(Clause::range(0, 0.0, 10.0))
            .unwrap()
            .and_clause(Clause::range(0, 5.0, 20.0))
            .unwrap();
        assert_eq!(p.clause(0), Some(&Clause::range(0, 5.0, 10.0)));
        assert!(Predicate::all()
            .and_clause(Clause::range(0, 0.0, 1.0))
            .unwrap()
            .and_clause(Clause::range(0, 2.0, 3.0))
            .is_none());
    }

    #[test]
    fn implication() {
        let narrow =
            Predicate::conjunction([Clause::range(0, 4.0, 6.0), Clause::range(1, 15.0, 25.0)])
                .unwrap();
        let wide = Predicate::conjunction([Clause::range(0, 0.0, 10.0)]).unwrap();
        assert!(narrow.implies(&wide));
        assert!(!wide.implies(&narrow));
        assert!(narrow.implies(&Predicate::all()));
        assert!(!Predicate::all().implies(&wide));
    }

    #[test]
    fn hull_drops_one_sided_attrs() {
        let a = Predicate::conjunction([Clause::range(0, 0.0, 2.0), Clause::range(1, 10.0, 20.0)])
            .unwrap();
        let b = Predicate::conjunction([Clause::range(0, 5.0, 9.0)]).unwrap();
        let h = a.hull(&b);
        assert_eq!(h.clause(0), Some(&Clause::range(0, 0.0, 9.0)));
        // y constrained only by `a`, so the hull must free it.
        assert_eq!(h.clause(1), None);
        assert!(a.implies(&h) && b.implies(&h));
    }

    #[test]
    fn volume_fraction_multiplies() {
        let t = table();
        let d = domains(&t); // x: [1,9], y: [10,35], s card 3
        let p = Predicate::conjunction([
            Clause::range(0, 1.0, 5.0),   // 4/8
            Clause::range(1, 10.0, 20.0), // 10/25
        ])
        .unwrap();
        assert!((p.volume_fraction(&d) - 0.5 * 0.4).abs() < 1e-12);
        assert_eq!(Predicate::all().volume_fraction(&d), 1.0);
    }

    #[test]
    fn adjacency() {
        let t = table();
        let d = domains(&t);
        let a = Predicate::conjunction([Clause::range(0, 1.0, 5.0)]).unwrap();
        let b = Predicate::conjunction([Clause::range(0, 5.0, 9.0)]).unwrap();
        let c = Predicate::conjunction([Clause::range(0, 7.0, 9.0)]).unwrap();
        assert!(a.is_adjacent(&b, &d, 0.0));
        assert!(!a.is_adjacent(&c, &d, 0.01));
        // Everything is adjacent to the unconstrained predicate.
        assert!(a.is_adjacent(&Predicate::all(), &d, 0.0));
    }

    #[test]
    fn carve_range() {
        let t = table();
        let d = domains(&t);
        let outer = Predicate::conjunction([Clause::range(0, 1.0, 9.0)]).unwrap();
        let inner = Predicate::conjunction([Clause::range(0, 3.0, 5.0)]).unwrap();
        let (mid, rem) = outer.carve(&inner, &d);
        assert_eq!(mid.unwrap().clause(0), Some(&Clause::range(0, 3.0, 5.0)));
        assert_eq!(rem.len(), 2);
        assert_eq!(rem[0].clause(0), Some(&Clause::range(0, 1.0, 3.0)));
        assert_eq!(rem[1].clause(0), Some(&Clause::range(0, 5.0, 9.0)));
    }

    #[test]
    fn carve_disjoint_returns_no_intersection() {
        let t = table();
        let d = domains(&t);
        let a = Predicate::conjunction([Clause::range(0, 1.0, 3.0)]).unwrap();
        let b = Predicate::conjunction([Clause::range(0, 5.0, 7.0)]).unwrap();
        let (mid, rem) = a.carve(&b, &d);
        assert!(mid.is_none());
        assert_eq!(rem.len(), 1);
        assert_eq!(rem[0], a);
    }

    #[test]
    fn carve_discrete_and_unconstrained_dims() {
        let t = table();
        let d = domains(&t);
        // `self` unconstrained on s; carve by a discrete clause.
        let outer = Predicate::conjunction([Clause::range(0, 1.0, 9.0)]).unwrap();
        let code_a = t.cat(2).unwrap().code_of("a").unwrap();
        let by = Predicate::conjunction([Clause::in_set(2, [code_a])]).unwrap();
        let (mid, rem) = outer.carve(&by, &d);
        let mid = mid.unwrap();
        assert_eq!(mid.clause(2), Some(&Clause::in_set(2, [code_a])));
        assert_eq!(rem.len(), 1);
        // Remainder admits the other codes.
        let rem_clause = rem[0].clause(2).unwrap();
        assert!(!rem_clause.matches_code(code_a));
        // Together mid+remainder cover exactly outer's rows.
        let all_rows: Vec<u32> = (0..t.len() as u32).collect();
        let mut covered: Vec<u32> = mid.select(&t, &all_rows).unwrap();
        covered.extend(rem[0].select(&t, &all_rows).unwrap());
        covered.sort_unstable();
        assert_eq!(covered, outer.select(&t, &all_rows).unwrap());
    }

    #[test]
    fn display_renders_names_and_values() {
        let t = table();
        let code_a = t.cat(2).unwrap().code_of("a").unwrap();
        let p = Predicate::conjunction([Clause::range(0, 1.0, 5.0), Clause::in_set(2, [code_a])])
            .unwrap();
        let s = p.display(&t);
        assert!(s.contains("x in [1.0000, 5.0000)"), "{s}");
        assert!(s.contains("s in ('a')"), "{s}");
        assert!(s.contains(" AND "), "{s}");
    }

    #[test]
    fn simplify_drops_full_domain_clauses() {
        let t = table();
        let d = domains(&t); // x: [1,9], s card 3
        let p = Predicate::conjunction([
            Clause::range(0, 0.0, 100.0), // covers all of x
            Clause::range(1, 15.0, 25.0), // partial on y
            Clause::in_set(2, [0, 1, 2]), // all codes
        ])
        .unwrap();
        let s = p.simplify(&d);
        assert!(s.clause(0).is_none());
        assert!(s.clause(1).is_some());
        assert!(s.clause(2).is_none());
        // Same selection.
        let rows: Vec<u32> = (0..t.len() as u32).collect();
        assert_eq!(p.select(&t, &rows).unwrap(), s.select(&t, &rows).unwrap());
        // Partial clauses survive.
        let q = Predicate::conjunction([Clause::range(0, 1.0, 5.0)]).unwrap();
        assert_eq!(q.simplify(&d), q);
    }

    #[test]
    fn mask_agrees_with_matcher_and_shares_clause_masks() {
        let t = table();
        let cache = ClauseMaskCache::new();
        let code_b = t.cat(2).unwrap().code_of("b").unwrap();
        let preds = [
            Predicate::all(),
            Predicate::conjunction([Clause::range(0, 2.0, 10.0)]).unwrap(),
            Predicate::conjunction([Clause::range(0, 2.0, 10.0), Clause::in_set(2, [code_b])])
                .unwrap(),
        ];
        for p in &preds {
            let mask = p.mask(&t, &cache).unwrap();
            let m = p.matcher(&t).unwrap();
            for r in 0..t.len() as u32 {
                assert_eq!(mask.contains(r), m.matches(r), "{} row {r}", p.display(&t));
            }
            assert_eq!(
                mask.count_ones(),
                p.count(&t, &(0..t.len() as u32).collect::<Vec<_>>()).unwrap()
            );
            assert_eq!(
                mask.to_rows(),
                p.select(&t, &(0..t.len() as u32).collect::<Vec<_>>()).unwrap()
            );
        }
        // The range clause appears in two predicates: second evaluation
        // is a cache hit, and the single-clause predicate shares the Arc.
        assert!(cache.hits() >= 1);
        assert_eq!(cache.len(), 2);
        if let PredicateMask::Shared(m) = preds[1].mask(&t, &cache).unwrap() {
            let (again, hit) =
                Predicate::clause_mask(&t, &cache, preds[1].clause(0).unwrap()).unwrap();
            assert!(hit);
            assert!(Arc::ptr_eq(&m, &again));
        } else {
            panic!("single-clause predicate must share its clause mask");
        }
    }

    #[test]
    fn mask_reports_type_mismatch_like_matcher() {
        let t = table();
        // Range clause over the discrete attribute `s`.
        let bad = Predicate::conjunction([Clause::range(2, 0.0, 1.0)]).unwrap();
        let cache = ClauseMaskCache::new();
        assert!(matches!(
            bad.mask(&t, &cache),
            Err(crate::error::TableError::TypeMismatch { ref attr, expected: "continuous" })
                if attr == "s"
        ));
        assert!(bad.mask_uncached(&t).is_err());
        assert!(bad.matcher(&t).is_err());
    }

    #[test]
    fn without_attr_widens() {
        let p = Predicate::conjunction([Clause::range(0, 1.0, 2.0), Clause::range(1, 3.0, 4.0)])
            .unwrap();
        let q = p.without_attr(0);
        assert!(q.clause(0).is_none());
        assert!(p.implies(&q));
    }
}

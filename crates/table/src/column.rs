//! Columnar storage: unboxed `f64` columns and dictionary-encoded
//! categorical columns.

use crate::error::{Result, TableError};
use crate::value::Value;
use std::collections::HashMap;

/// A dictionary-encoded categorical column.
///
/// Every distinct string is interned once and rows store compact `u32`
/// codes. Codes are assigned in first-appearance order and are stable for
/// the lifetime of the column, which lets predicates hold code sets rather
/// than strings.
#[derive(Debug, Clone, Default)]
pub struct CatColumn {
    codes: Vec<u32>,
    dict: Vec<String>,
    index: HashMap<String, u32>,
}

impl CatColumn {
    /// Creates an empty categorical column.
    pub fn new() -> Self {
        CatColumn::default()
    }

    /// Interns `value` (if new) and returns its code without appending a row.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&c) = self.index.get(value) {
            return c;
        }
        let code = self.dict.len() as u32;
        self.dict.push(value.to_owned());
        self.index.insert(value.to_owned(), code);
        code
    }

    /// Appends a row with the given string value.
    pub fn push(&mut self, value: &str) {
        let code = self.intern(value);
        self.codes.push(code);
    }

    /// The code of `value`, if it has been seen.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// The string for `code`. Panics if the code was never assigned.
    pub fn value_of(&self, code: u32) -> &str {
        &self.dict[code as usize]
    }

    /// Per-row codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of distinct values interned so far.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Gathers the given rows into a fresh, self-contained column.
    ///
    /// Codes are remapped through a dense old→new table instead of
    /// re-hashing each row's string; the new dictionary is assigned in
    /// first-appearance order of `rows`, exactly as pushing the string
    /// values one row at a time would.
    pub fn gather(&self, rows: &[u32]) -> CatColumn {
        const UNMAPPED: u32 = u32::MAX;
        let mut map = vec![UNMAPPED; self.dict.len()];
        let mut out = CatColumn::new();
        out.codes.reserve(rows.len());
        for &r in rows {
            let old = self.codes[r as usize];
            let new = &mut map[old as usize];
            if *new == UNMAPPED {
                *new = out.intern(&self.dict[old as usize]);
            }
            out.codes.push(*new);
        }
        out
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// A typed column of values.
#[derive(Debug, Clone)]
pub enum Column {
    /// Continuous storage.
    Num(Vec<f64>),
    /// Discrete (dictionary-encoded) storage.
    Cat(CatColumn),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Num(v) => v.len(),
            Column::Cat(c) => c.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the numeric data, or errors for categorical columns.
    pub fn as_num(&self, attr_name: &str) -> Result<&[f64]> {
        match self {
            Column::Num(v) => Ok(v),
            Column::Cat(_) => {
                Err(TableError::TypeMismatch { attr: attr_name.to_owned(), expected: "continuous" })
            }
        }
    }

    /// Borrows the categorical data, or errors for numeric columns.
    pub fn as_cat(&self, attr_name: &str) -> Result<&CatColumn> {
        match self {
            Column::Cat(c) => Ok(c),
            Column::Num(_) => {
                Err(TableError::TypeMismatch { attr: attr_name.to_owned(), expected: "discrete" })
            }
        }
    }

    /// The cell at `row` as a dynamically typed [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Num(v) => Value::Num(v[row]),
            Column::Cat(c) => Value::Str(c.value_of(c.codes()[row]).to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_column_interning_is_stable() {
        let mut c = CatColumn::new();
        c.push("DC");
        c.push("NY");
        c.push("DC");
        assert_eq!(c.len(), 3);
        assert_eq!(c.cardinality(), 2);
        assert_eq!(c.codes(), &[0, 1, 0]);
        assert_eq!(c.code_of("DC"), Some(0));
        assert_eq!(c.code_of("NY"), Some(1));
        assert_eq!(c.code_of("CA"), None);
        assert_eq!(c.value_of(1), "NY");
    }

    #[test]
    fn intern_without_push_does_not_add_rows() {
        let mut c = CatColumn::new();
        let code = c.intern("x");
        assert_eq!(code, 0);
        assert!(c.is_empty());
        assert_eq!(c.cardinality(), 1);
        // Re-interning returns the same code.
        assert_eq!(c.intern("x"), 0);
    }

    #[test]
    fn gather_reinterns_in_first_appearance_order() {
        let mut c = CatColumn::new();
        for v in ["DC", "NY", "CA", "NY", "DC"] {
            c.push(v);
        }
        // Select rows so "NY" appears first: its new code must be 0.
        let g = c.gather(&[3, 4, 1]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.cardinality(), 2);
        assert_eq!(g.codes(), &[0, 1, 0]);
        assert_eq!(g.value_of(0), "NY");
        assert_eq!(g.value_of(1), "DC");
        assert_eq!(g.code_of("CA"), None);
        // Empty gathers produce empty, usable columns.
        let e = c.gather(&[]);
        assert!(e.is_empty());
        assert_eq!(e.cardinality(), 0);
    }

    #[test]
    fn column_type_guards() {
        let num = Column::Num(vec![1.0, 2.0]);
        assert!(num.as_num("a").is_ok());
        assert!(matches!(num.as_cat("a"), Err(TableError::TypeMismatch { .. })));
        let mut cc = CatColumn::new();
        cc.push("v");
        let cat = Column::Cat(cc);
        assert!(cat.as_cat("b").is_ok());
        assert!(matches!(cat.as_num("b"), Err(TableError::TypeMismatch { .. })));
    }

    #[test]
    fn column_value_round_trip() {
        let num = Column::Num(vec![4.5]);
        assert_eq!(num.value(0), Value::Num(4.5));
        let mut cc = CatColumn::new();
        cc.push("hello");
        let cat = Column::Cat(cc);
        assert_eq!(cat.value(0), Value::Str("hello".into()));
        assert_eq!(num.len(), 1);
        assert_eq!(cat.len(), 1);
    }
}

//! # scorpion-table
//!
//! The relational substrate underlying the Scorpion reproduction: an
//! in-memory columnar table, a typed schema, the predicate language the
//! paper's explanations are expressed in, group-by query execution, and
//! backwards provenance from aggregate results to their input groups.
//!
//! The paper (Wu & Madden, *Scorpion: Explaining Away Outliers in Aggregate
//! Queries*, VLDB 2013) assumes a database plus a provenance component
//! (§4.1). This crate is that substrate, built from scratch:
//!
//! * [`Table`] / [`TableBuilder`] — columnar storage with continuous
//!   (`f64`) and discrete (dictionary-encoded) columns.
//! * [`Predicate`] / [`Clause`] — conjunctions of range and set-containment
//!   clauses, with the geometric algebra every Scorpion algorithm relies
//!   on: containment (`≺`), intersection, minimum-bounding-box union,
//!   adjacency, and box carving.
//! * [`query::group_by`] — group-by execution whose [`query::Grouping`]
//!   doubles as the provenance mapping `αᵢ → g_αᵢ`.
//! * [`RowMask`] / [`ClauseMaskCache`] — the bitmap execution layer:
//!   per-clause columnar kernels, word-wise conjunction, popcount and
//!   selection-vector iteration, with per-table clause-mask memoization.
//!
//! ```
//! use scorpion_table::{Field, Schema, TableBuilder, Value};
//! use scorpion_table::query::{group_by, aggregate_groups};
//!
//! let schema = Schema::new(vec![Field::disc("time"), Field::cont("temp")]).unwrap();
//! let mut b = TableBuilder::new(schema);
//! b.push_row(vec![Value::from("11AM"), Value::from(34.0)]).unwrap();
//! b.push_row(vec![Value::from("12PM"), Value::from(100.0)]).unwrap();
//! let table = b.build();
//! let grouping = group_by(&table, &[0]).unwrap();
//! let means = aggregate_groups(&table, &grouping, 1, |v| {
//!     v.iter().sum::<f64>() / v.len() as f64
//! }).unwrap();
//! assert_eq!(means, vec![34.0, 100.0]);
//! ```

#![warn(missing_docs)]

mod column;
pub mod csv;
pub mod domain;
mod error;
pub mod predicate;
pub mod query;
pub mod rowmask;
mod schema;
pub mod sql;
mod table;
mod value;

pub use column::{CatColumn, Column};
pub use domain::{bin_edges, domains_of, AttrDomain};
pub use error::{Result, TableError};
pub use predicate::{Clause, Predicate, PredicateMatcher};
pub use query::{aggregate_groups, group_by, group_values, GroupKey, Grouping, KeyPart};
pub use rowmask::{
    intersect3_count_words, intersect_count_words, ClauseMaskCache, PredicateMask, RowMask,
};
pub use schema::{AttrType, Field, Schema};
pub use sql::{apply_selection, parse_query, Condition, ParsedQuery};
pub use table::{Table, TableBuilder};
pub use value::{OrdF64, Value};

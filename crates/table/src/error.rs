//! Error type for the relational substrate.

use std::fmt;

/// Errors produced by table construction, access, and query execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row was pushed whose arity does not match the schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Row arity.
        got: usize,
    },
    /// A value's type does not match the attribute's declared type.
    TypeMismatch {
        /// Offending attribute name.
        attr: String,
        /// The type the schema declares.
        expected: &'static str,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// An attribute index is out of bounds.
    AttributeOutOfBounds {
        /// Requested index.
        index: usize,
        /// Schema length.
        len: usize,
    },
    /// A row index is out of bounds.
    RowOutOfBounds {
        /// Requested row.
        index: usize,
        /// Table length.
        len: usize,
    },
    /// The operation requires a non-empty table or group.
    Empty(&'static str),
    /// A schema declared two attributes with the same name.
    DuplicateAttribute(String),
    /// Query referenced overlapping attribute roles (e.g. aggregating a
    /// group-by attribute), which the problem statement forbids
    /// (`A_agg ∩ A_gb = ∅`).
    ConflictingRoles {
        /// The attribute claimed by two roles.
        attr: String,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: schema has {expected} attributes, row has {got}")
            }
            TableError::TypeMismatch { attr, expected } => {
                write!(f, "type mismatch for attribute `{attr}`: expected {expected}")
            }
            TableError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            TableError::AttributeOutOfBounds { index, len } => {
                write!(f, "attribute index {index} out of bounds for schema of length {len}")
            }
            TableError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for table of length {len}")
            }
            TableError::Empty(what) => write!(f, "operation requires non-empty {what}"),
            TableError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute `{name}` in schema")
            }
            TableError::ConflictingRoles { attr } => {
                write!(f, "attribute `{attr}` used in conflicting query roles")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TableError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TableError::ArityMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("2"));
        let e = TableError::UnknownAttribute("voltage".into());
        assert!(e.to_string().contains("voltage"));
        let e = TableError::TypeMismatch { attr: "temp".into(), expected: "continuous" };
        assert!(e.to_string().contains("temp"));
        assert!(e.to_string().contains("continuous"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TableError::Empty("table"));
    }
}

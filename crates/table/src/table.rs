//! The in-memory columnar table and its row-oriented builder.

use crate::column::{CatColumn, Column};
use crate::error::{Result, TableError};
use crate::schema::{AttrType, Schema};
use crate::value::Value;

/// An immutable, in-memory columnar relation.
///
/// This is the `D` of the paper's problem statement (§3.1): a single
/// relational table over which the group-by query runs and against which
/// explanation predicates are evaluated. Join queries are modeled by
/// materializing the join result into one `Table`, exactly as the paper
/// prescribes.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resolves an attribute name to its index.
    pub fn attr(&self, name: &str) -> Result<usize> {
        self.schema.index_of(name)
    }

    /// Approximate resident bytes of the columnar payload: 8 per `f64`
    /// cell, 4 per dictionary code, plus the interned dictionary
    /// strings. A monitoring gauge, not an allocator-exact measure.
    pub fn approx_bytes(&self) -> u64 {
        self.columns
            .iter()
            .map(|c| match c {
                Column::Num(v) => 8 * v.len() as u64,
                Column::Cat(c) => {
                    let dict: u64 =
                        (0..c.cardinality() as u32).map(|i| c.value_of(i).len() as u64 + 24).sum();
                    4 * c.codes().len() as u64 + dict
                }
            })
            .sum()
    }

    /// The column at attribute index `i`.
    pub fn column(&self, i: usize) -> Result<&Column> {
        self.columns
            .get(i)
            .ok_or(TableError::AttributeOutOfBounds { index: i, len: self.columns.len() })
    }

    /// Borrows the continuous column at index `i`. The type-mismatch
    /// error string is only built on the failure path — this accessor is
    /// on several hot paths and must not allocate on success.
    pub fn num(&self, i: usize) -> Result<&[f64]> {
        match self.column(i)? {
            Column::Num(v) => Ok(v),
            Column::Cat(_) => Err(TableError::TypeMismatch {
                attr: self.schema.field(i)?.name().to_owned(),
                expected: "continuous",
            }),
        }
    }

    /// Borrows the discrete column at index `i` (allocation-free on
    /// success, like [`Table::num`]).
    pub fn cat(&self, i: usize) -> Result<&CatColumn> {
        match self.column(i)? {
            Column::Cat(c) => Ok(c),
            Column::Num(_) => Err(TableError::TypeMismatch {
                attr: self.schema.field(i)?.name().to_owned(),
                expected: "discrete",
            }),
        }
    }

    /// The cell at (`row`, `attr`) as a dynamically typed value.
    pub fn value(&self, row: usize, attr: usize) -> Result<Value> {
        if row >= self.len {
            return Err(TableError::RowOutOfBounds { index: row, len: self.len });
        }
        Ok(self.column(attr)?.value(row))
    }

    /// Materializes the sub-table containing exactly `rows` (in order)
    /// as a columnar gather: `f64` cells are copied slice-to-slice and
    /// dictionary codes are remapped in bulk — no per-cell [`Value`]
    /// boxing, no per-cell string hashing. Dictionary codes are
    /// re-interned in first-appearance order of the selected rows, so
    /// the result is self-contained and identical to a row-by-row
    /// rebuild.
    pub fn select_rows(&self, rows: &[u32]) -> Result<Table> {
        for &r in rows {
            if r as usize >= self.len {
                return Err(TableError::RowOutOfBounds { index: r as usize, len: self.len });
            }
        }
        let columns = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Num(v) => Column::Num(rows.iter().map(|&r| v[r as usize]).collect()),
                Column::Cat(c) => Column::Cat(c.gather(rows)),
            })
            .collect();
        Ok(Table { schema: self.schema.clone(), columns, len: rows.len() })
    }
}

/// Row-oriented builder producing a [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    len: usize,
}

impl TableBuilder {
    /// Creates a builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .iter()
            .map(|f| match f.ty() {
                AttrType::Continuous => Column::Num(Vec::new()),
                AttrType::Discrete => Column::Cat(CatColumn::new()),
            })
            .collect();
        TableBuilder { schema, columns, len: 0 }
    }

    /// Reserves capacity for `additional` more rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.columns {
            match c {
                Column::Num(v) => v.reserve(additional),
                Column::Cat(_) => {}
            }
        }
    }

    /// Appends one row; values must match the schema's arity and types.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = Value>) -> Result<()> {
        let row: Vec<Value> = row.into_iter().collect();
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch { expected: self.schema.len(), got: row.len() });
        }
        // Validate all cells before mutating any column so a failed push
        // leaves the builder unchanged.
        for (i, v) in row.iter().enumerate() {
            let field = self.schema.field(i)?;
            let ok = matches!(
                (field.ty(), v),
                (AttrType::Continuous, Value::Num(_)) | (AttrType::Discrete, Value::Str(_))
            );
            if !ok {
                return Err(TableError::TypeMismatch {
                    attr: field.name().to_owned(),
                    expected: match field.ty() {
                        AttrType::Continuous => "continuous",
                        AttrType::Discrete => "discrete",
                    },
                });
            }
        }
        for (i, v) in row.into_iter().enumerate() {
            match (&mut self.columns[i], v) {
                (Column::Num(col), Value::Num(x)) => col.push(x),
                (Column::Cat(col), Value::Str(s)) => col.push(&s),
                _ => unreachable!("validated above"),
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finalizes the table.
    pub fn build(self) -> Table {
        Table { schema: self.schema, columns: self.columns, len: self.len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![Field::disc("sensor"), Field::cont("temp")]).unwrap()
    }

    fn sample() -> Table {
        let mut b = TableBuilder::new(schema());
        b.push_row(vec![Value::from("s1"), Value::from(34.0)]).unwrap();
        b.push_row(vec![Value::from("s2"), Value::from(35.0)]).unwrap();
        b.push_row(vec![Value::from("s1"), Value::from(100.0)]).unwrap();
        b.build()
    }

    #[test]
    fn build_and_access() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.num(1).unwrap(), &[34.0, 35.0, 100.0]);
        assert_eq!(t.cat(0).unwrap().codes(), &[0, 1, 0]);
        assert_eq!(t.value(2, 0).unwrap(), Value::Str("s1".into()));
        assert_eq!(t.value(2, 1).unwrap(), Value::Num(100.0));
        assert_eq!(t.attr("temp").unwrap(), 1);
    }

    #[test]
    fn arity_mismatch_rejected_atomically() {
        let mut b = TableBuilder::new(schema());
        assert!(matches!(
            b.push_row(vec![Value::from("s1")]),
            Err(TableError::ArityMismatch { expected: 2, got: 1 })
        ));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn type_mismatch_rejected_atomically() {
        let mut b = TableBuilder::new(schema());
        let res = b.push_row(vec![Value::from(1.0), Value::from(2.0)]);
        assert!(matches!(res, Err(TableError::TypeMismatch { .. })));
        assert!(b.is_empty());
        // A valid push still works afterwards.
        b.push_row(vec![Value::from("ok"), Value::from(2.0)]).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn select_rows_preserves_values() {
        let t = sample();
        let s = t.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.num(1).unwrap(), &[100.0, 34.0]);
        assert_eq!(s.value(0, 0).unwrap(), Value::Str("s1".into()));
        assert_eq!(s.value(1, 0).unwrap(), Value::Str("s1".into()));
    }

    #[test]
    fn select_rows_out_of_bounds() {
        let t = sample();
        assert!(matches!(t.select_rows(&[5]), Err(TableError::RowOutOfBounds { .. })));
    }

    #[test]
    fn out_of_bounds_cell_access() {
        let t = sample();
        assert!(t.value(99, 0).is_err());
        assert!(t.value(0, 99).is_err());
        assert!(t.column(99).is_err());
    }
}

//! Group-by query execution with provenance.
//!
//! Scorpion's input is a select-project-group-by query with a single
//! aggregate (§3.1). This module materializes the grouping — which is also
//! exactly the provenance the paper's Provenance component must supply:
//! the input group `g_αᵢ` of every result tuple `αᵢ`.

use crate::error::{Result, TableError};
use crate::rowmask::RowMask;
use crate::table::Table;
use crate::value::OrdF64;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// One component of a group key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyPart {
    /// Dictionary code of a discrete attribute.
    Code(u32),
    /// Bit-canonical continuous value.
    Num(OrdF64),
}

/// A composite group-by key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupKey(pub Vec<KeyPart>);

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "|")?;
            }
            match part {
                KeyPart::Code(c) => write!(f, "#{c}")?,
                KeyPart::Num(v) => write!(f, "{v}")?,
            }
        }
        Ok(())
    }
}

/// One group's shared view: its row ids as an `Arc` slice and as a row
/// bitmap over the owning table.
type SharedGroup = (Arc<[u32]>, Arc<RowMask>);

/// The result of grouping a table: keys in first-appearance order and, for
/// each key, the row ids of its input group.
#[derive(Debug, Clone)]
pub struct Grouping {
    group_attrs: Vec<usize>,
    keys: Vec<GroupKey>,
    groups: Vec<Vec<u32>>,
    /// Lazily shared views of `groups`: `Arc` row slices and row bitmaps
    /// handed to every Scorer built over this grouping, so repeated plan
    /// runs, session re-scores, and streaming rebinds stop copying each
    /// group's row ids into fresh `Vec<u32>`s.
    shared: OnceLock<Vec<SharedGroup>>,
}

impl Grouping {
    /// The attributes grouped on.
    pub fn group_attrs(&self) -> &[usize] {
        &self.group_attrs
    }

    /// Number of groups (result tuples).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the grouping has no groups.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key of group `i`.
    pub fn key(&self, i: usize) -> &GroupKey {
        &self.keys[i]
    }

    /// The input group (row ids) of result `i` — backwards provenance.
    pub fn rows(&self, i: usize) -> &[u32] {
        &self.groups[i]
    }

    /// All input groups.
    pub fn all_rows(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// The input group of result `i` as a shared slice plus its bitmap
    /// over `0..n_rows` (the owning table's length). Built once per
    /// grouping on first use and shared by `Arc` afterwards — the
    /// zero-copy provenance handle the execution layer consumes.
    pub fn shared_group(&self, i: usize, n_rows: usize) -> (Arc<[u32]>, Arc<RowMask>) {
        let shared = self.shared.get_or_init(|| {
            self.groups
                .iter()
                .map(|rows| {
                    (Arc::from(rows.as_slice()), Arc::new(RowMask::from_rows(n_rows, rows)))
                })
                .collect()
        });
        debug_assert_eq!(shared[i].1.len(), n_rows, "grouping bound to a different table length");
        (shared[i].0.clone(), shared[i].1.clone())
    }

    /// Finds the index of the group whose key equals `key`.
    pub fn index_of(&self, key: &GroupKey) -> Option<usize> {
        self.keys.iter().position(|k| k == key)
    }

    /// Renders group `i`'s key using `table`'s dictionaries.
    pub fn display_key(&self, table: &Table, i: usize) -> String {
        let parts: Vec<String> = self.keys[i]
            .0
            .iter()
            .zip(&self.group_attrs)
            .map(|(part, &attr)| match part {
                KeyPart::Num(v) => v.to_string(),
                KeyPart::Code(c) => table
                    .cat(attr)
                    .map(|cat| cat.value_of(*c).to_owned())
                    .unwrap_or_else(|_| c.to_string()),
            })
            .collect();
        parts.join("|")
    }
}

/// Groups `table` by the given attributes, preserving first-appearance
/// order of keys (so results are deterministic).
pub fn group_by(table: &Table, attrs: &[usize]) -> Result<Grouping> {
    if attrs.is_empty() {
        return Err(TableError::Empty("group-by attribute list"));
    }
    for &a in attrs {
        table.column(a)?;
    }
    let mut index: HashMap<GroupKey, usize> = HashMap::new();
    let mut keys: Vec<GroupKey> = Vec::new();
    let mut groups: Vec<Vec<u32>> = Vec::new();
    for row in 0..table.len() {
        let mut parts = Vec::with_capacity(attrs.len());
        for &a in attrs {
            let part = match table.column(a)? {
                crate::column::Column::Num(v) => KeyPart::Num(OrdF64(v[row])),
                crate::column::Column::Cat(c) => KeyPart::Code(c.codes()[row]),
            };
            parts.push(part);
        }
        let key = GroupKey(parts);
        let idx = *index.entry(key.clone()).or_insert_with(|| {
            keys.push(key);
            groups.push(Vec::new());
            keys.len() - 1
        });
        groups[idx].push(row as u32);
    }
    Ok(Grouping { group_attrs: attrs.to_vec(), keys, groups, shared: OnceLock::new() })
}

/// Runs an aggregate function over each group's `agg_attr` values.
///
/// The aggregate is passed as a plain closure so this crate stays
/// independent of the aggregate-property framework layered on top.
pub fn aggregate_groups(
    table: &Table,
    grouping: &Grouping,
    agg_attr: usize,
    agg: impl Fn(&[f64]) -> f64,
) -> Result<Vec<f64>> {
    if grouping.group_attrs().contains(&agg_attr) {
        let name = table.schema().field(agg_attr)?.name().to_owned();
        return Err(TableError::ConflictingRoles { attr: name });
    }
    let vals = table.num(agg_attr)?;
    let mut out = Vec::with_capacity(grouping.len());
    let mut scratch: Vec<f64> = Vec::new();
    for rows in grouping.all_rows() {
        scratch.clear();
        scratch.extend(rows.iter().map(|&r| vals[r as usize]));
        out.push(agg(&scratch));
    }
    Ok(out)
}

/// Extracts the `agg_attr` values of one input group.
pub fn group_values(table: &Table, rows: &[u32], agg_attr: usize) -> Result<Vec<f64>> {
    let vals = table.num(agg_attr)?;
    Ok(rows.iter().map(|&r| vals[r as usize]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;

    fn sensors() -> Table {
        // Table 1 of the paper.
        let schema = Schema::new(vec![
            Field::disc("time"),
            Field::disc("sensorid"),
            Field::cont("voltage"),
            Field::cont("humidity"),
            Field::cont("temp"),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        let rows: [(&str, &str, f64, f64, f64); 9] = [
            ("11AM", "1", 2.64, 0.4, 34.0),
            ("11AM", "2", 2.65, 0.5, 35.0),
            ("11AM", "3", 2.63, 0.4, 35.0),
            ("12PM", "1", 2.7, 0.3, 35.0),
            ("12PM", "2", 2.7, 0.5, 35.0),
            ("12PM", "3", 2.3, 0.4, 100.0),
            ("1PM", "1", 2.7, 0.3, 35.0),
            ("1PM", "2", 2.7, 0.5, 35.0),
            ("1PM", "3", 2.3, 0.5, 80.0),
        ];
        for (t, s, v, h, temp) in rows {
            b.push_row(vec![t.into(), s.into(), v.into(), h.into(), temp.into()]).unwrap();
        }
        b.build()
    }

    #[test]
    fn group_by_time_matches_paper_table2() {
        let t = sensors();
        let g = group_by(&t, &[0]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.rows(0), &[0, 1, 2]);
        assert_eq!(g.rows(1), &[3, 4, 5]);
        assert_eq!(g.rows(2), &[6, 7, 8]);
        assert_eq!(g.display_key(&t, 0), "11AM");
        assert_eq!(g.display_key(&t, 1), "12PM");
        assert_eq!(g.display_key(&t, 2), "1PM");

        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let res = aggregate_groups(&t, &g, 4, avg).unwrap();
        // α1 = 34.67 (paper rounds to 34.6), α2 = 56.67, α3 = 50.
        assert!((res[0] - 34.666).abs() < 0.01);
        assert!((res[1] - 56.666).abs() < 0.01);
        assert!((res[2] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn shared_groups_are_cached_and_consistent() {
        let t = sensors();
        let g = group_by(&t, &[0]).unwrap();
        let (rows, mask) = g.shared_group(1, t.len());
        assert_eq!(&*rows, g.rows(1));
        assert_eq!(mask.to_rows(), g.rows(1));
        // Second call returns the same shared allocations.
        let (rows2, mask2) = g.shared_group(1, t.len());
        assert!(Arc::ptr_eq(&rows, &rows2));
        assert!(Arc::ptr_eq(&mask, &mask2));
    }

    #[test]
    fn group_by_multiple_attrs() {
        let t = sensors();
        let g = group_by(&t, &[0, 1]).unwrap();
        assert_eq!(g.len(), 9);
        for i in 0..9 {
            assert_eq!(g.rows(i).len(), 1);
        }
    }

    #[test]
    fn group_by_continuous_attr_keys_on_exact_values() {
        let t = sensors();
        let g = group_by(&t, &[2]).unwrap(); // voltage
                                             // Distinct voltages: 2.64, 2.65, 2.63, 2.7, 2.3 -> 5 groups.
        assert_eq!(g.len(), 5);
        let key = g.key(0).clone();
        assert_eq!(g.index_of(&key), Some(0));
    }

    #[test]
    fn aggregate_on_group_attr_rejected() {
        let t = sensors();
        let g = group_by(&t, &[4]).unwrap();
        let res = aggregate_groups(&t, &g, 4, |v| v.len() as f64);
        assert!(matches!(res, Err(TableError::ConflictingRoles { .. })));
    }

    #[test]
    fn empty_attr_list_rejected() {
        let t = sensors();
        assert!(matches!(group_by(&t, &[]), Err(TableError::Empty(_))));
    }

    #[test]
    fn group_values_extracts_projection() {
        let t = sensors();
        let g = group_by(&t, &[0]).unwrap();
        let v = group_values(&t, g.rows(1), 4).unwrap();
        assert_eq!(v, vec![35.0, 35.0, 100.0]);
    }
}

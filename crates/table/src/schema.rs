//! Schemas: named, typed attribute lists.

use crate::error::{Result, TableError};
use std::collections::HashMap;
use std::fmt;

/// The two attribute kinds Scorpion's predicate language distinguishes
/// (§3.1): range clauses constrain continuous attributes, set-containment
/// clauses constrain discrete attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Real-valued; stored as `f64`, constrained by `[lo, hi)` ranges.
    Continuous,
    /// Categorical; dictionary-encoded, constrained by value sets.
    Discrete,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Continuous => write!(f, "continuous"),
            AttrType::Discrete => write!(f, "discrete"),
        }
    }
}

/// A single named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    ty: AttrType,
}

impl Field {
    /// Creates a field with an explicit type.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Field { name: name.into(), ty }
    }

    /// Shorthand for a continuous field.
    pub fn cont(name: impl Into<String>) -> Self {
        Field::new(name, AttrType::Continuous)
    }

    /// Shorthand for a discrete field.
    pub fn disc(name: impl Into<String>) -> Self {
        Field::new(name, AttrType::Discrete)
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute type.
    pub fn ty(&self) -> AttrType {
        self.ty
    }
}

/// An ordered list of uniquely named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(TableError::DuplicateAttribute(f.name.clone()));
            }
        }
        Ok(Schema { fields, by_name })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at position `i`.
    pub fn field(&self, i: usize) -> Result<&Field> {
        self.fields
            .get(i)
            .ok_or(TableError::AttributeOutOfBounds { index: i, len: self.fields.len() })
    }

    /// The index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name.get(name).copied().ok_or_else(|| TableError::UnknownAttribute(name.to_owned()))
    }

    /// Iterates over the fields in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Field> {
        self.fields.iter()
    }

    /// Returns the indices of all attributes of the given type.
    pub fn indices_of_type(&self, ty: AttrType) -> Vec<usize> {
        self.fields.iter().enumerate().filter(|(_, f)| f.ty == ty).map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensors_schema() -> Schema {
        Schema::new(vec![
            Field::disc("time"),
            Field::disc("sensorid"),
            Field::cont("voltage"),
            Field::cont("humidity"),
            Field::cont("temp"),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = sensors_schema();
        assert_eq!(s.len(), 5);
        assert_eq!(s.index_of("voltage").unwrap(), 2);
        assert_eq!(s.field(4).unwrap().name(), "temp");
        assert_eq!(s.field(4).unwrap().ty(), AttrType::Continuous);
        assert!(matches!(s.index_of("nope"), Err(TableError::UnknownAttribute(_))));
        assert!(matches!(s.field(9), Err(TableError::AttributeOutOfBounds { index: 9, len: 5 })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![Field::cont("a"), Field::disc("a")]);
        assert!(matches!(r, Err(TableError::DuplicateAttribute(_))));
    }

    #[test]
    fn indices_of_type_filters() {
        let s = sensors_schema();
        assert_eq!(s.indices_of_type(AttrType::Discrete), vec![0, 1]);
        assert_eq!(s.indices_of_type(AttrType::Continuous), vec![2, 3, 4]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn attr_type_display() {
        assert_eq!(AttrType::Continuous.to_string(), "continuous");
        assert_eq!(AttrType::Discrete.to_string(), "discrete");
    }
}

//! Attribute domains: the observed extent of each attribute.
//!
//! Domains anchor three operations: binning continuous attributes into the
//! fixed-width units NAIVE and MC enumerate (§4.2, §6.2), computing the
//! volume fractions the Merger's cached-tuple approximation needs (§6.3),
//! and expanding "unconstrained" predicate dimensions when boxes are
//! subtracted from one another (§6.1.4).

use crate::error::Result;
use crate::table::Table;

/// The observed domain of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrDomain {
    /// Continuous attribute extent, as a closed interval `[lo, hi]`.
    Continuous {
        /// Smallest observed value.
        lo: f64,
        /// Largest observed value.
        hi: f64,
    },
    /// Discrete attribute: the number of distinct values.
    Discrete {
        /// Dictionary cardinality.
        cardinality: usize,
    },
}

impl AttrDomain {
    /// The width of a continuous domain (0 for discrete).
    pub fn span(&self) -> f64 {
        match self {
            AttrDomain::Continuous { lo, hi } => hi - lo,
            AttrDomain::Discrete { .. } => 0.0,
        }
    }
}

/// Computes the per-attribute domains of a table.
///
/// An empty continuous column yields the degenerate domain `[0, 0]`.
pub fn domains_of(table: &Table) -> Result<Vec<AttrDomain>> {
    let mut out = Vec::with_capacity(table.schema().len());
    for i in 0..table.schema().len() {
        let d = match table.column(i)? {
            crate::column::Column::Num(v) => {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &x in v {
                    if x < lo {
                        lo = x;
                    }
                    if x > hi {
                        hi = x;
                    }
                }
                if v.is_empty() {
                    AttrDomain::Continuous { lo: 0.0, hi: 0.0 }
                } else {
                    AttrDomain::Continuous { lo, hi }
                }
            }
            crate::column::Column::Cat(c) => AttrDomain::Discrete { cardinality: c.cardinality() },
        };
        out.push(d);
    }
    Ok(out)
}

/// Splits `[lo, hi]` into `k` equal-width bins, returning the `k + 1` edges.
///
/// Bins are interpreted half-open `[e_i, e_{i+1})`, so the final edge is
/// nudged up by a relative epsilon to make the top bin include the maximum
/// observed value. Degenerate domains (`lo == hi`) still produce a usable
/// single-point cover.
pub fn bin_edges(lo: f64, hi: f64, k: usize) -> Vec<f64> {
    assert!(k >= 1, "at least one bin required");
    let span = hi - lo;
    let pad = if span == 0.0 { 1e-9_f64.max(lo.abs() * 1e-12) } else { span * 1e-9 };
    let hi = hi + pad;
    let width = (hi - lo) / k as f64;
    let mut edges = Vec::with_capacity(k + 1);
    for i in 0..=k {
        edges.push(lo + width * i as f64);
    }
    // Guard against floating-point accumulation leaving the final edge
    // fractionally below the padded maximum.
    *edges.last_mut().expect("non-empty") = hi;
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    #[test]
    fn domains_cover_observed_values() {
        let schema = Schema::new(vec![Field::cont("x"), Field::disc("s")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for (x, s) in [(3.0, "a"), (-1.0, "b"), (7.5, "a")] {
            b.push_row(vec![Value::from(x), Value::from(s)]).unwrap();
        }
        let t = b.build();
        let d = domains_of(&t).unwrap();
        assert_eq!(d[0], AttrDomain::Continuous { lo: -1.0, hi: 7.5 });
        assert_eq!(d[1], AttrDomain::Discrete { cardinality: 2 });
        assert!((d[0].span() - 8.5).abs() < 1e-12);
        assert_eq!(d[1].span(), 0.0);
    }

    #[test]
    fn empty_table_domains_are_degenerate() {
        let schema = Schema::new(vec![Field::cont("x")]).unwrap();
        let t = TableBuilder::new(schema).build();
        let d = domains_of(&t).unwrap();
        assert_eq!(d[0], AttrDomain::Continuous { lo: 0.0, hi: 0.0 });
    }

    #[test]
    fn bin_edges_have_correct_count_and_cover_max() {
        let e = bin_edges(0.0, 100.0, 15);
        assert_eq!(e.len(), 16);
        assert_eq!(e[0], 0.0);
        // Half-open bins must still cover the maximum.
        assert!(*e.last().unwrap() > 100.0);
        // Widths are (near) equal.
        for w in e.windows(2) {
            assert!((w[1] - w[0] - (e[15] - e[0]) / 15.0).abs() < 1e-6);
        }
    }

    #[test]
    fn bin_edges_monotone() {
        let e = bin_edges(-5.0, 5.0, 7);
        for w in e.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn bin_edges_degenerate_domain() {
        let e = bin_edges(2.0, 2.0, 3);
        assert_eq!(e.len(), 4);
        assert!(*e.last().unwrap() > 2.0);
        assert_eq!(e[0], 2.0);
    }
}

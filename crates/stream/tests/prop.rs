//! Stream/batch equivalence: a sliding window maintained with partial
//! merges and incremental retraction must agree with recomputing every
//! window state from scratch, for every aggregate and every
//! (chunk-stream, capacity) combination.

use proptest::prelude::*;
use scorpion_agg::aggregate_by_name;
use scorpion_stream::{SlidingWindow, StreamConfig};
use scorpion_table::{Field, Schema, Value};
use std::collections::{BTreeMap, VecDeque};

/// All registry aggregates: mergeable-retractable, mergeable-only
/// (min/max), and the black-box fallback (median).
const AGGS: &[&str] = &["sum", "count", "avg", "stddev", "variance", "min", "max", "median"];

/// Absolute tolerance for FP-reordered evaluation, where `scale` is the
/// largest input magnitude that fed the group (not a fixed floor — the
/// tolerance must stay tight for small-valued groups, or it stops
/// guarding against real retraction drift). STDDEV is looser: the
/// moment formula cancels at ~`scale²` and the square root halves the
/// surviving precision, giving worst-case error ≈ `sqrt(n·ε)·scale`
/// (~2e-2 at scale 1e5); 1e-6·scale keeps an order of magnitude over
/// observed error while still catching drifts far below the value
/// itself.
fn tol(name: &str, scale: f64) -> f64 {
    let scale = scale.max(1.0);
    match name {
        "stddev" => 1e-6 * scale.max(1e3),
        _ => 1e-7 * scale,
    }
}

fn schema() -> Schema {
    Schema::new(vec![Field::disc("g"), Field::cont("v")]).unwrap()
}

type RawChunk = Vec<(usize, f64)>;

fn to_rows(chunk: &RawChunk) -> Vec<Vec<Value>> {
    chunk.iter().map(|&(g, v)| vec![Value::Str(format!("g{g}")), Value::Num(v)]).collect()
}

/// From-scratch reference: group the live chunks' rows and run the
/// black-box aggregate per group. Returns `(value, max |input|)` per
/// group — the latter sets the comparison tolerance.
fn batch_series(live: &VecDeque<&RawChunk>, agg_name: &str) -> BTreeMap<String, (f64, f64)> {
    let agg = aggregate_by_name(agg_name).unwrap();
    let mut groups: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for chunk in live {
        for &(g, v) in chunk.iter() {
            groups.entry(format!("g{g}")).or_default().push(v);
        }
    }
    groups
        .into_iter()
        .map(|(k, vals)| {
            let max_abs = vals.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            (k, (agg.compute(&vals), max_abs))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After every push, the incrementally maintained series is ε-equal
    /// to a from-scratch recomputation of the same window.
    #[test]
    fn sliding_window_matches_batch_recompute(
        chunks in prop::collection::vec(
            prop::collection::vec((0usize..4, -1e5f64..1e5), 0..12),
            1..14,
        ),
        capacity in 1usize..6,
    ) {
        for name in AGGS {
            let cfg = StreamConfig::new(schema(), 0, 1, capacity).unwrap();
            let mut w = SlidingWindow::new(cfg, aggregate_by_name(name).unwrap());
            let mut live: VecDeque<&RawChunk> = VecDeque::new();
            for chunk in &chunks {
                w.push_chunk(to_rows(chunk)).unwrap();
                live.push_back(chunk);
                if live.len() > capacity {
                    live.pop_front();
                }
                let want = batch_series(&live, name);
                let got = w.series();
                let got_keys: Vec<&String> = got.iter().map(|g| &g.key).collect();
                let want_keys: Vec<&String> = want.keys().collect();
                prop_assert_eq!(&got_keys, &want_keys, "{}: group sets differ", name);
                for ga in &got {
                    let (want_v, max_abs) = want[&ga.key];
                    prop_assert!(
                        (ga.value - want_v).abs() <= tol(name, max_abs),
                        "{}[{}]: stream {} != batch {}",
                        name, ga.key, ga.value, want_v
                    );
                }
            }
        }
    }

    /// Row counts per group always match the live chunk contents.
    #[test]
    fn window_row_accounting_matches(
        chunks in prop::collection::vec(
            prop::collection::vec((0usize..3, 0.0f64..10.0), 0..8),
            1..10,
        ),
        capacity in 1usize..4,
    ) {
        let cfg = StreamConfig::new(schema(), 0, 1, capacity).unwrap();
        let mut w = SlidingWindow::new(cfg, aggregate_by_name("sum").unwrap());
        let mut live: VecDeque<&RawChunk> = VecDeque::new();
        for chunk in &chunks {
            w.push_chunk(to_rows(chunk)).unwrap();
            live.push_back(chunk);
            if live.len() > capacity {
                live.pop_front();
            }
            let mut want: BTreeMap<String, usize> = BTreeMap::new();
            for c in &live {
                for &(g, _) in c.iter() {
                    *want.entry(format!("g{g}")).or_default() += 1;
                }
            }
            let total: usize = want.values().sum();
            prop_assert_eq!(w.n_rows(), total);
            for ga in w.series() {
                prop_assert_eq!(ga.rows, want[&ga.key]);
            }
        }
    }
}

//! Error type for the streaming layer.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StreamError>;

/// Errors produced by the streaming layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// Propagated from the relational substrate.
    Table(scorpion_table::TableError),
    /// Propagated from the explanation engine.
    Engine(scorpion_core::ScorpionError),
    /// Propagated from the sketch tier (corrupt or incompatible
    /// partials).
    Sketch(scorpion_sketch::SketchError),
    /// A configuration value is out of range or inconsistent.
    BadConfig(&'static str),
    /// An ingested row does not conform to the stream schema.
    BadRow(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Table(e) => write!(f, "table error: {e}"),
            StreamError::Engine(e) => write!(f, "engine error: {e}"),
            StreamError::Sketch(e) => write!(f, "sketch error: {e}"),
            StreamError::BadConfig(msg) => write!(f, "bad stream configuration: {msg}"),
            StreamError::BadRow(msg) => write!(f, "bad row: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<scorpion_table::TableError> for StreamError {
    fn from(e: scorpion_table::TableError) -> Self {
        StreamError::Table(e)
    }
}

impl From<scorpion_core::ScorpionError> for StreamError {
    fn from(e: scorpion_core::ScorpionError) -> Self {
        StreamError::Engine(e)
    }
}

impl From<scorpion_sketch::SketchError> for StreamError {
    fn from(e: scorpion_sketch::SketchError) -> Self {
        StreamError::Sketch(e)
    }
}

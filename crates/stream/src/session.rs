//! Warm-started continuous explanation.
//!
//! The offline engine splits every algorithm into an expensive,
//! `c`-agnostic `prepare` and a cheap `run`
//! ([`scorpion_core::engine::Explainer`] / [`PreparedPlan`], §8.3.3
//! generalized). The prepared artifacts are *time*-agnostic too, as
//! long as the window slide does not touch the rows they were grown
//! from: the DT trees are built from the outlier groups' tuples (plus
//! hold-out carving), so a slide that only adds/drops chunks of *other*
//! groups leaves the partition geometry valid. [`ContinuousSession`]
//! exploits this by keying a cache of **prepared plans** on a **chunk
//! signature** — the set of live chunk ids contributing rows to each
//! flagged outlier group. While the signature is stable, re-explanation
//! skips tree growth entirely: the cached plan is
//! [`PreparedPlan::rebind`]-ed onto the new window state (geometry and
//! merge seeds survive; the influence cache, whose entries the new data
//! invalidated, is dropped) and re-run — cached partitions are
//! re-scored against the current window (hold-out penalties included,
//! so scores stay exact) and re-merged. When the signature changes —
//! the anomaly grew, shrank, or slid out — the session prepares cold,
//! which is itself warm-started by absorbing the previous plan's merge
//! seeds.
//!
//! The signature also covers the discrete explain attributes'
//! *dictionaries*: set clauses store dictionary codes, and codes are
//! assigned by first appearance per materialization, so a slide that
//! drops or reorders values silently renumbers them — any dictionary
//! drift forces a cold rebuild and discards merge seeds.
//!
//! Each window state hands its labeled groups to the engine as shared
//! row *masks*: the materialized [`Grouping`] caches one `Arc` row
//! slice and one `Arc` bitmap per group
//! ([`Grouping::shared_group`]), so the prepare scorer, every
//! `plan.run`, and every rebound plan over that window state read the
//! same bitmaps instead of copying fresh `Vec<u32>` row lists per
//! scorer build. Clause masks (the per-table
//! [`scorpion_table::ClauseMaskCache`]) live on the prepared plan and
//! are dropped by `rebind`, since the new materialization renumbers
//! rows.
//!
//! One approximation is inherited deliberately: a stale *hold-out* set
//! changes which boundaries §6.1.4 would carve, so warm partitions can
//! be coarser around new hold-out structure than a cold rebuild's.
//! Influence scores are always exact; only candidate geometry ages.
//! Warm merges always run exact (`rebind` drops the cached
//! per-partition stats): the §6.3 cached-tuple approximation is steered
//! by statistics frozen at build time, and on re-explanation workloads
//! it proved both slower and less precise than exact re-scoring — it
//! remains active only inside cold builds.

use crate::detector::{Detection, DetectorConfig, OutlierDetector};
use crate::error::{Result, StreamError};
use crate::window::SlidingWindow;
use parking_lot::Mutex;
use scorpion_core::engine::{DtEngine, Explainer, PreparedPlan};
use scorpion_core::{DtConfig, ExplainRequest, Explanation, InfluenceParams};
use scorpion_table::{Grouping, Table};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Knobs of the continuous explanation pipeline.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Hold-out importance trade-off λ (§3.2).
    pub lambda: f64,
    /// Selectivity exponent `c` (§7).
    pub c: f64,
    /// DT partitioner + merger settings.
    pub dt: DtConfig,
    /// Outlier auto-labeling settings.
    pub detector: DetectorConfig,
    /// Attributes explanations are built over; `None` selects `A_rest`
    /// (everything but the group-by and aggregate attributes).
    pub explain_attrs: Option<Vec<usize>>,
}

impl Default for ContinuousConfig {
    fn default() -> Self {
        ContinuousConfig {
            lambda: 0.5,
            c: 0.5,
            dt: DtConfig::default(),
            detector: DetectorConfig::default(),
            explain_attrs: None,
        }
    }
}

/// A self-contained explanation of one flagged window state.
pub struct StreamExplanation {
    /// The materialized window relation.
    pub table: Arc<Table>,
    /// Its group-by provenance.
    pub grouping: Arc<Grouping>,
    /// What the detector flagged.
    pub detection: Detection,
    /// Outlier result indices into [`StreamExplanation::grouping`].
    pub outliers: Vec<usize>,
    /// Hold-out result indices.
    pub holdouts: Vec<usize>,
    /// The ranked predicates plus diagnostics.
    pub explanation: Explanation,
    /// True when the cached plan was reused (no tree growth).
    pub warm: bool,
}

impl StreamExplanation {
    /// Renders the top-`k` predicates against the window relation.
    pub fn render(&self, k: usize) -> String {
        self.explanation.render(&self.table, k)
    }
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Explanations served from a rebound cached plan.
    pub warm_runs: u64,
    /// Explanations that prepared (grew trees) from scratch.
    pub cold_runs: u64,
}

struct SessionCache {
    /// Chunk signature of the outlier groups the cached plan was
    /// prepared from.
    outlier_sig: Option<u64>,
    /// Signature of the explain attributes' dictionaries at cache time.
    /// Discrete clauses store dictionary *codes*, and codes are assigned
    /// by first appearance in each materialization — a slide that drops
    /// a value (or reorders first appearances) renumbers them, silently
    /// changing what a cached predicate means. Any mismatch forces a
    /// cold rebuild and discards merge seeds.
    dict_sig: Option<u64>,
    /// The prepared plan of the last explained window state.
    plan: Option<Arc<dyn PreparedPlan>>,
    stats: SessionStats,
}

/// A long-lived explanation session over a stream of window states.
pub struct ContinuousSession {
    cfg: ContinuousConfig,
    detector: OutlierDetector,
    engine: DtEngine,
    cache: Mutex<SessionCache>,
}

impl ContinuousSession {
    /// Creates a session.
    pub fn new(cfg: ContinuousConfig) -> Self {
        let detector = OutlierDetector::new(cfg.detector.clone());
        let engine = DtEngine::new(cfg.dt.clone());
        ContinuousSession {
            cfg,
            detector,
            engine,
            cache: Mutex::new(SessionCache {
                outlier_sig: None,
                dict_sig: None,
                plan: None,
                stats: SessionStats::default(),
            }),
        }
    }

    /// True when a subsequent [`ContinuousSession::explain`] against an
    /// unchanged outlier signature would reuse the cached plan.
    pub fn is_warm(&self) -> bool {
        self.cache.lock().plan.is_some()
    }

    /// Cache hit/miss counters so far.
    pub fn stats(&self) -> SessionStats {
        self.cache.lock().stats
    }

    /// Drops all cached state.
    pub fn invalidate(&self) {
        let mut c = self.cache.lock();
        c.outlier_sig = None;
        c.dict_sig = None;
        c.plan = None;
    }

    /// Detects outliers in the window's live series and, when something
    /// is flagged, explains them. Returns `Ok(None)` on a quiet window.
    pub fn explain(&self, window: &SlidingWindow) -> Result<Option<StreamExplanation>> {
        let series = window.series();
        let Some(detection) = self.detector.detect(&series) else {
            return Ok(None);
        };
        let start = Instant::now();
        let (table, grouping) = window.materialize()?;
        let (table, grouping) = (Arc::new(table), Arc::new(grouping));

        // Map detected keys to result indices of the materialized
        // grouping.
        let index_of: HashMap<String, usize> =
            (0..grouping.len()).map(|i| (grouping.display_key(&table, i), i)).collect();
        let mut outliers: Vec<(usize, f64)> = Vec::new();
        for (key, dir) in &detection.outliers {
            let &i = index_of
                .get(key)
                .ok_or_else(|| StreamError::BadRow(format!("flagged group {key} vanished")))?;
            outliers.push((i, *dir));
        }
        let mut holdouts: Vec<usize> = Vec::new();
        for key in &detection.holdouts {
            if let Some(&i) = index_of.get(key) {
                holdouts.push(i);
            }
        }

        let params = InfluenceParams { lambda: self.cfg.lambda, c: self.cfg.c };
        let req = ExplainRequest::from_parts(
            table.clone(),
            grouping.clone(),
            window.aggregate().clone(),
            window.config().agg_attr,
            outliers.clone(),
            holdouts.clone(),
        )?
        .with_params(params)
        .with_explain_attrs(self.cfg.explain_attrs.clone());
        let attrs = req.resolved_attrs()?;

        let outlier_sig = self.outlier_signature(window, &detection, &attrs);
        let dict_sig = dictionary_signature(&table, &attrs);

        // Reuse the cached plan while the outlier groups' chunks (and
        // the discrete dictionaries cached predicates are encoded
        // against) are untouched; otherwise prepare cold, seeded with
        // the previous plan's merged predicates when the dictionaries
        // still agree.
        let (cached_plan, dict_ok, warm) = {
            let cache = self.cache.lock();
            let dict_ok = cache.dict_sig == Some(dict_sig);
            let warm = dict_ok && cache.outlier_sig == Some(outlier_sig) && cache.plan.is_some();
            (cache.plan.clone(), dict_ok, warm)
        };
        let plan: Arc<dyn PreparedPlan> = if warm {
            let prev = cached_plan.as_ref().expect("warm implies a cached plan");
            Arc::from(prev.rebind(&req)?)
        } else {
            let fresh: Arc<dyn PreparedPlan> = Arc::from(self.engine.prepare(&req)?);
            if dict_ok {
                if let Some(prev) = &cached_plan {
                    fresh.absorb_seeds(prev.seeds());
                }
            }
            fresh
        };

        let mut explanation = plan.run(&params)?;
        explanation.diagnostics.algorithm = "dt-stream";
        explanation.diagnostics.runtime = start.elapsed();
        // Every slide draws from the same process-wide id sequence the
        // server stamps into `x-scorpion-trace-id`, so a slide's flight
        // recorder event is correlatable with HTTP-side telemetry.
        explanation.diagnostics.trace_id = scorpion_obs::next_trace_id();
        // Window-maintenance attribution and residency gauges: drain the
        // window's accumulated `window.compact` time into this
        // explanation's phase table and report what the window holds.
        scorpion_obs::merge_phases(&mut explanation.diagnostics.phases, window.phases().take());
        explanation.diagnostics.resident_rows = window.resident_rows() as u64;
        explanation.diagnostics.resident_bytes = window.resident_bytes();

        if scorpion_obs::telemetry().enabled() {
            let mut event = scorpion_obs::TelemetryEvent::blank(
                explanation.diagnostics.trace_id,
                "stream.slide",
            );
            event.table = "window".to_owned();
            event.generation = window.n_chunks() as u64;
            event.aggregate = window.aggregate().name().to_owned();
            // Plan-cache semantics on the stream path: was the prepared
            // plan rebound (warm) or grown from scratch (cold)?
            event.plan_cache = scorpion_obs::CacheHit::from_flag(warm);
            event.rows_scanned = table.len() as u64;
            event.predicates = explanation.predicates.len() as u64;
            event.status = 200;
            event.total_us = explanation.diagnostics.runtime.as_micros() as u64;
            scorpion_obs::telemetry()
                .record(scorpion_core::apply_diagnostics(event, &explanation.diagnostics));
        }

        {
            let mut cache = self.cache.lock();
            cache.plan = Some(plan);
            cache.outlier_sig = Some(outlier_sig);
            cache.dict_sig = Some(dict_sig);
            if warm {
                cache.stats.warm_runs += 1;
            } else {
                cache.stats.cold_runs += 1;
            }
        }

        Ok(Some(StreamExplanation {
            table,
            grouping,
            detection,
            outliers: outliers.into_iter().map(|(i, _)| i).collect(),
            holdouts,
            explanation,
            warm,
        }))
    }

    /// Hash of everything the cached plan's geometry depends on (apart
    /// from discrete dictionaries, tracked by [`dictionary_signature`]):
    /// the flagged groups, the live chunks backing each of them, the
    /// explanation attributes, the aggregate, and λ. Deliberately
    /// excludes `c` (single-tuple influence is `c`-agnostic, §8.3.3) and
    /// the hold-out set (a stale hold-out set only ages candidate
    /// geometry; scores stay exact).
    fn outlier_signature(
        &self,
        window: &SlidingWindow,
        detection: &Detection,
        attrs: &[usize],
    ) -> u64 {
        let mut h = DefaultHasher::new();
        window.aggregate().name().hash(&mut h);
        attrs.hash(&mut h);
        self.cfg.lambda.to_bits().hash(&mut h);
        let mut keys: Vec<&String> = detection.outliers.iter().map(|(k, _)| k).collect();
        keys.sort();
        for key in keys {
            key.hash(&mut h);
            window.chunks_of(key).hash(&mut h);
        }
        h.finish()
    }
}

/// Hash of the discrete explain attributes' dictionaries (values in code
/// order). Cached predicates encode set clauses as dictionary *codes*,
/// and each materialization assigns codes by first appearance — so two
/// windows agree on what a cached clause means iff this hash matches.
fn dictionary_signature(table: &Table, attrs: &[usize]) -> u64 {
    let mut h = DefaultHasher::new();
    for &a in attrs {
        if let Ok(cat) = table.cat(a) {
            a.hash(&mut h);
            let n = cat.cardinality();
            n.hash(&mut h);
            for code in 0..n as u32 {
                cat.value_of(code).hash(&mut h);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{SlidingWindow, StreamConfig};
    use scorpion_agg::aggregate_by_name;
    use scorpion_table::{Field, Schema, Value};

    /// Schema: hour (group), sensor (explain), temp (agg).
    fn feed_schema() -> Schema {
        Schema::new(vec![Field::disc("hour"), Field::disc("sensor"), Field::cont("temp")]).unwrap()
    }

    /// One chunk = one hour of readings; sensor "bad" goes hot during
    /// `hot_hours`.
    fn build_window(hours: usize, hot_hours: std::ops::Range<usize>) -> SlidingWindow {
        let cfg = StreamConfig::new(feed_schema(), 0, 2, hours.max(1)).unwrap();
        let mut w = SlidingWindow::new(cfg, aggregate_by_name("avg").unwrap());
        for hour in 0..hours {
            w.push_chunk(hour_chunk(hour, hot_hours.contains(&hour))).unwrap();
        }
        w
    }

    fn hour_chunk(hour: usize, hot: bool) -> Vec<Vec<Value>> {
        let key = format!("h{hour:03}");
        let mut rows = Vec::new();
        for s in 0..6 {
            let sid = format!("s{s}");
            // Deterministic small jitter keeps the MAD non-degenerate.
            let jitter = ((hour * 7 + s * 13) % 10) as f64 * 0.05;
            let temp = if hot && s == 3 { 120.0 + jitter } else { 20.0 + jitter };
            for _ in 0..3 {
                rows.push(vec![Value::Str(key.clone()), Value::Str(sid.clone()), Value::Num(temp)]);
            }
        }
        rows
    }

    fn session() -> ContinuousSession {
        ContinuousSession::new(ContinuousConfig {
            detector: DetectorConfig { min_groups: 6, ..Default::default() },
            ..Default::default()
        })
    }

    #[test]
    fn quiet_window_yields_none() {
        let w = build_window(10, 0..0);
        let s = session();
        assert!(s.explain(&w).unwrap().is_none());
        assert!(!s.is_warm());
    }

    #[test]
    fn flags_and_explains_the_planted_sensor() {
        let w = build_window(12, 8..10);
        let s = session();
        let ex = s.explain(&w).unwrap().expect("detection");
        assert!(!ex.warm);
        assert_eq!(ex.outliers.len(), 2);
        // The flagged hours are the hot ones.
        for &o in &ex.outliers {
            let key = ex.grouping.display_key(&ex.table, o);
            assert!(key == "h008" || key == "h009", "{key}");
        }
        // The predicate must single out sensor s3.
        let best = ex.explanation.best();
        let rendered = best.predicate.display(&ex.table);
        assert!(rendered.contains("s3"), "predicate was: {rendered}");
    }

    #[test]
    fn unchanged_signature_reuses_plan() {
        let mut w = build_window(12, 8..10);
        let s = session();
        let first = s.explain(&w).unwrap().expect("detection");
        assert!(!first.warm);
        assert!(s.is_warm());
        // Slide: a fresh quiet hour arrives, the oldest quiet hour
        // leaves. The hot groups' chunks are untouched.
        w.push_chunk(hour_chunk(12, false)).unwrap();
        let second = s.explain(&w).unwrap().expect("detection");
        assert!(second.warm, "outlier chunks unchanged → warm re-explanation");
        let rendered = second.explanation.best().predicate.display(&second.table);
        assert!(rendered.contains("s3"), "predicate was: {rendered}");
        assert_eq!(s.stats(), SessionStats { warm_runs: 1, cold_runs: 1 });
    }

    #[test]
    fn outlier_chunk_change_invalidates() {
        let mut w = build_window(12, 8..10);
        let s = session();
        let _ = s.explain(&w).unwrap().expect("detection");
        // A new hot hour arrives: the outlier set changes → cold rebuild.
        w.push_chunk(hour_chunk(12, true)).unwrap();
        // Make hour 12 hot by pushing its chunk with the hot sensor; the
        // detector should now flag three hours.
        let ex = s.explain(&w).unwrap().expect("detection");
        assert!(!ex.warm, "outlier set changed → cold rebuild");
        assert_eq!(ex.outliers.len(), 3);
        assert_eq!(s.stats().cold_runs, 2);
    }

    #[test]
    fn dictionary_drift_forces_cold_rebuild() {
        // Hour 0 carries a sensor ("zz") that appears first in the
        // window and nowhere else. Evicting it renumbers every other
        // sensor's dictionary code in the next materialization, so
        // cached plans (which store codes) must not be reused even
        // though the outlier hours' chunks are untouched.
        let cfg = StreamConfig::new(feed_schema(), 0, 2, 12).unwrap();
        let mut w = SlidingWindow::new(cfg, aggregate_by_name("avg").unwrap());
        for hour in 0..12 {
            let mut rows = hour_chunk(hour, (8..10).contains(&hour));
            if hour == 0 {
                rows.insert(
                    0,
                    vec![
                        Value::Str("h000".to_string()),
                        Value::Str("zz".to_string()),
                        Value::Num(20.0),
                    ],
                );
            }
            w.push_chunk(rows).unwrap();
        }
        let s = session();
        let first = s.explain(&w).unwrap().expect("detection");
        assert!(!first.warm);
        // Slide: quiet hour 12 in, hour 0 (and "zz") out.
        w.push_chunk(hour_chunk(12, false)).unwrap();
        let second = s.explain(&w).unwrap().expect("detection");
        assert!(!second.warm, "dictionary changed → cached codes are stale → cold");
        assert_eq!(s.stats(), SessionStats { warm_runs: 0, cold_runs: 2 });
        // And the rebuilt explanation still names the right sensor.
        let rendered = second.explanation.best().predicate.display(&second.table);
        assert!(rendered.contains("s3"), "predicate was: {rendered}");
    }

    #[test]
    fn invalidate_clears_cache() {
        let w = build_window(12, 8..10);
        let s = session();
        let _ = s.explain(&w).unwrap().expect("detection");
        assert!(s.is_warm());
        s.invalidate();
        assert!(!s.is_warm());
        let again = s.explain(&w).unwrap().expect("detection");
        assert!(!again.warm);
    }

    #[test]
    fn warm_run_reuses_partition_geometry() {
        // Warm runs skip tree growth: the rebound plan re-scores the
        // *same* partitions (exactly, against the new window) instead of
        // growing new ones, so the candidate geometry is identical.
        let mut w = build_window(12, 8..10);
        let s = session();
        let cold = s.explain(&w).unwrap().expect("detection");
        w.push_chunk(hour_chunk(12, false)).unwrap();
        let warm = s.explain(&w).unwrap().expect("detection");
        assert!(warm.warm);
        assert_eq!(
            warm.explanation.diagnostics.partitions, cold.explanation.diagnostics.partitions,
            "rebinding must carry the partition set over unchanged"
        );
    }

    #[test]
    fn compacted_window_explains_identically() {
        // Satellite: an explanation over a compacted window must match
        // the uncompacted oracle exactly, as long as the flagged groups'
        // chunks were marked before compaction reached them. The driver
        // loop below mimics production: explain after every push and
        // feed the detection's labels back via `mark_flagged`.
        let plain_cfg = StreamConfig::new(feed_schema(), 0, 2, 12).unwrap();
        let mut plain = SlidingWindow::new(plain_cfg, aggregate_by_name("avg").unwrap());
        let cfg = StreamConfig::new(feed_schema(), 0, 2, 12).unwrap().with_compaction(3).unwrap();
        let mut compacted = SlidingWindow::new(cfg, aggregate_by_name("avg").unwrap());
        let s_plain = session();
        let s_comp = session();
        let mut last: Option<(StreamExplanation, StreamExplanation)> = None;
        let mut saw_compact_phase = false;
        for hour in 0..12 {
            let hot = (8..10).contains(&hour);
            plain.push_chunk(hour_chunk(hour, hot)).unwrap();
            compacted.push_chunk(hour_chunk(hour, hot)).unwrap();
            let a = s_plain.explain(&plain).unwrap();
            let b = s_comp.explain(&compacted).unwrap();
            if let Some(b) = &b {
                saw_compact_phase |=
                    b.explanation.diagnostics.phases.iter().any(|p| p.name == "window.compact");
                // Keep every labeled group's evidence rows resident.
                let keys: Vec<&str> = b
                    .detection
                    .outliers
                    .iter()
                    .map(|(k, _)| k.as_str())
                    .chain(b.detection.holdouts.iter().map(|k| k.as_str()))
                    .collect();
                compacted.mark_flagged(keys);
            }
            if let (Some(a), Some(b)) = (a, b) {
                last = Some((a, b));
            }
        }
        let (a, b) = last.expect("the hot hours must be detected");
        assert!(compacted.n_compacted_chunks() > 0, "compaction must have fired");
        assert!(compacted.resident_rows() < plain.resident_rows());
        // Identical labels, predicate, and influence.
        assert_eq!(a.detection.outliers, b.detection.outliers);
        let pa = a.explanation.best();
        let pb = b.explanation.best();
        assert_eq!(pa.predicate.display(&a.table), pb.predicate.display(&b.table));
        assert!(
            (pa.influence - pb.influence).abs() <= 1e-9 * pa.influence.abs().max(1.0),
            "influence {} vs {}",
            pa.influence,
            pb.influence
        );
        // Maintenance attribution and gauges surfaced in diagnostics.
        // Each explanation drains the window's phase accumulator, so the
        // compact phase appears in whichever explanation followed the
        // compaction work.
        assert!(saw_compact_phase, "window.compact must be attributed");
        let d = &b.explanation.diagnostics;
        assert_eq!(d.resident_rows, compacted.resident_rows() as u64);
        assert!(d.resident_bytes > 0);
    }

    #[test]
    fn compaction_soak_bounds_resident_rows() {
        // A long quiet stream with a huge window: resident raw rows
        // must stay bounded by the keep-recent horizon, not grow with
        // the window.
        let cfg = StreamConfig::new(feed_schema(), 0, 2, 500).unwrap().with_compaction(4).unwrap();
        let mut w = SlidingWindow::new(cfg, aggregate_by_name("avg").unwrap());
        let rows_per_chunk = hour_chunk(0, false).len();
        let mut peak = 0usize;
        for hour in 0..300 {
            w.push_chunk(hour_chunk(hour, false)).unwrap();
            peak = peak.max(w.resident_rows());
        }
        assert_eq!(w.n_chunks(), 300);
        assert!(
            peak <= rows_per_chunk * 5,
            "resident rows must be O(keep_recent), got peak {peak}"
        );
        // Logical series still spans every live chunk.
        let s = w.series();
        assert_eq!(s.iter().map(|g| g.rows).sum::<usize>(), 300 * rows_per_chunk);
    }

    #[test]
    fn slides_carry_correlatable_trace_ids_and_record_telemetry() {
        // The stream binary's only user of the process-global flight
        // recorder; the audit tests build tables from literal events.
        scorpion_obs::telemetry().enable();
        let mut w = build_window(12, 8..10);
        let s = session();
        let cold = s.explain(&w).unwrap().expect("detection");
        w.push_chunk(hour_chunk(12, false)).unwrap();
        let warm = s.explain(&w).unwrap().expect("detection");
        scorpion_obs::telemetry().disable();

        let (id_cold, id_warm) =
            (cold.explanation.diagnostics.trace_id, warm.explanation.diagnostics.trace_id);
        assert!(id_cold > 0 && id_warm > id_cold, "ids are issued, distinct, and ordered");

        let events = scorpion_obs::telemetry().snapshot();
        let slide = |id| events.iter().find(|e| e.trace_id == id).expect("slide event recorded");
        let (ev_cold, ev_warm) = (slide(id_cold), slide(id_warm));
        assert_eq!(ev_cold.endpoint, "stream.slide");
        assert_eq!(ev_cold.algorithm, "dt-stream");
        assert_eq!(ev_cold.aggregate, "avg");
        assert_eq!(ev_cold.plan_cache, scorpion_obs::CacheHit::Miss);
        assert_eq!(ev_warm.plan_cache, scorpion_obs::CacheHit::Hit);
        assert!(ev_cold.rows_scanned > 0 && ev_cold.predicates > 0);
        assert!(ev_cold.resident_bytes > 0, "window residency flows into the event");
    }

    #[test]
    fn render_shows_ranked_predicates() {
        let w = build_window(12, 8..10);
        let ex = session().explain(&w).unwrap().expect("detection");
        let text = ex.render(3);
        assert!(text.contains("inf="), "{text}");
    }
}

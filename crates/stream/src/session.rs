//! Warm-started continuous explanation.
//!
//! The offline engine caches DT partitions across the `c` knob
//! (§8.3.3) because single-tuple influence is `c`-agnostic. The same
//! partitions are *time*-agnostic too, as long as the window slide does
//! not touch the rows they were grown from: the DT trees are built from
//! the outlier groups' tuples (plus hold-out carving), so a slide that
//! only adds/drops chunks of *other* groups leaves the partition
//! geometry valid. [`ContinuousSession`] exploits this by keying the
//! partition cache on a **chunk signature** — the set of live chunk ids
//! contributing rows to each flagged outlier group. While the signature
//! is stable, re-explanation skips tree growth entirely: cached
//! partitions are re-scored against the current window (hold-out
//! penalties included, so scores stay exact) and re-merged. When the
//! signature changes — the anomaly grew, shrank, or slid out — the cache
//! is invalidated for a cold rebuild, which is itself warm-started by
//! seeding the Merger with the previous window's merged predicates.
//!
//! The signature also covers the discrete explain attributes'
//! *dictionaries*: set clauses store dictionary codes, and codes are
//! assigned by first appearance per materialization, so a slide that
//! drops or reorders values silently renumbers them — any dictionary
//! drift forces a cold rebuild and discards merge seeds.
//!
//! One approximation is inherited deliberately: a stale *hold-out* set
//! changes which boundaries §6.1.4 would carve, so warm partitions can
//! be coarser around new hold-out structure than a cold rebuild's.
//! Influence scores are always exact; only candidate geometry ages.
//! Warm merges always run exact (cached per-partition stats are
//! dropped): the §6.3 cached-tuple approximation is steered by
//! statistics frozen at build time, and on re-explanation workloads it
//! proved both slower and less precise than exact re-scoring — it
//! remains active only inside cold builds.

use crate::detector::{Detection, DetectorConfig, OutlierDetector};
use crate::error::{Result, StreamError};
use crate::window::SlidingWindow;
use parking_lot::Mutex;
use scorpion_core::dt::DtPartitioner;
use scorpion_core::merger::Merger;
use scorpion_core::{
    Diagnostics, DtConfig, Explanation, InfluenceParams, LabeledQuery, ScoredPredicate,
};
use scorpion_table::{domains_of, Grouping, Predicate, Table};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Knobs of the continuous explanation pipeline.
#[derive(Debug, Clone)]
pub struct ContinuousConfig {
    /// Hold-out importance trade-off λ (§3.2).
    pub lambda: f64,
    /// Selectivity exponent `c` (§7).
    pub c: f64,
    /// DT partitioner + merger settings.
    pub dt: DtConfig,
    /// Outlier auto-labeling settings.
    pub detector: DetectorConfig,
    /// Attributes explanations are built over; `None` selects `A_rest`
    /// (everything but the group-by and aggregate attributes).
    pub explain_attrs: Option<Vec<usize>>,
}

impl Default for ContinuousConfig {
    fn default() -> Self {
        ContinuousConfig {
            lambda: 0.5,
            c: 0.5,
            dt: DtConfig::default(),
            detector: DetectorConfig::default(),
            explain_attrs: None,
        }
    }
}

/// A self-contained explanation of one flagged window state.
pub struct StreamExplanation {
    /// The materialized window relation.
    pub table: Table,
    /// Its group-by provenance.
    pub grouping: Grouping,
    /// What the detector flagged.
    pub detection: Detection,
    /// Outlier result indices into [`StreamExplanation::grouping`].
    pub outliers: Vec<usize>,
    /// Hold-out result indices.
    pub holdouts: Vec<usize>,
    /// The ranked predicates plus diagnostics.
    pub explanation: Explanation,
    /// True when the partition cache was reused (no tree growth).
    pub warm: bool,
}

impl StreamExplanation {
    /// Renders the top-`k` predicates against the window relation.
    pub fn render(&self, k: usize) -> String {
        self.explanation.render(&self.table, k)
    }
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Explanations served from cached partitions.
    pub warm_runs: u64,
    /// Explanations that grew trees from scratch.
    pub cold_runs: u64,
}

struct SessionCache {
    /// Chunk signature of the outlier groups the partitions were grown
    /// from.
    outlier_sig: Option<u64>,
    /// Signature of the explain attributes' dictionaries at cache time.
    /// Discrete clauses store dictionary *codes*, and codes are assigned
    /// by first appearance in each materialization — a slide that drops
    /// a value (or reorders first appearances) renumbers them, silently
    /// changing what a cached predicate means. Any mismatch forces a
    /// cold rebuild and discards merge seeds.
    dict_sig: Option<u64>,
    partitions: Vec<ScoredPredicate>,
    /// Previous merged output; seeds the next merge (monotone warm
    /// start, as in the offline session's cross-`c` cache).
    last_merged: Vec<Predicate>,
    stats: SessionStats,
}

/// A long-lived explanation session over a stream of window states.
pub struct ContinuousSession {
    cfg: ContinuousConfig,
    detector: OutlierDetector,
    cache: Mutex<SessionCache>,
}

impl ContinuousSession {
    /// Creates a session.
    pub fn new(cfg: ContinuousConfig) -> Self {
        let detector = OutlierDetector::new(cfg.detector.clone());
        ContinuousSession {
            cfg,
            detector,
            cache: Mutex::new(SessionCache {
                outlier_sig: None,
                dict_sig: None,
                partitions: Vec::new(),
                last_merged: Vec::new(),
                stats: SessionStats::default(),
            }),
        }
    }

    /// True when a subsequent [`ContinuousSession::explain`] against an
    /// unchanged outlier signature would reuse cached partitions.
    pub fn is_warm(&self) -> bool {
        self.cache.lock().outlier_sig.is_some()
    }

    /// Cache hit/miss counters so far.
    pub fn stats(&self) -> SessionStats {
        self.cache.lock().stats
    }

    /// Drops all cached state.
    pub fn invalidate(&self) {
        let mut c = self.cache.lock();
        c.outlier_sig = None;
        c.dict_sig = None;
        c.partitions.clear();
        c.last_merged.clear();
    }

    /// Detects outliers in the window's live series and, when something
    /// is flagged, explains them. Returns `Ok(None)` on a quiet window.
    pub fn explain(&self, window: &SlidingWindow) -> Result<Option<StreamExplanation>> {
        let series = window.series();
        let Some(detection) = self.detector.detect(&series) else {
            return Ok(None);
        };
        let start = Instant::now();
        let (table, grouping) = window.materialize()?;

        // Map detected keys to result indices of the materialized
        // grouping.
        let index_of: HashMap<String, usize> =
            (0..grouping.len()).map(|i| (grouping.display_key(&table, i), i)).collect();
        let mut outliers: Vec<(usize, f64)> = Vec::new();
        for (key, dir) in &detection.outliers {
            let &i = index_of
                .get(key)
                .ok_or_else(|| StreamError::BadRow(format!("flagged group {key} vanished")))?;
            outliers.push((i, *dir));
        }
        let mut holdouts: Vec<usize> = Vec::new();
        for key in &detection.holdouts {
            if let Some(&i) = index_of.get(key) {
                holdouts.push(i);
            }
        }

        let agg = window.aggregate().clone();
        let query = LabeledQuery {
            table: &table,
            grouping: &grouping,
            agg: agg.as_ref(),
            agg_attr: window.config().agg_attr,
            outliers: outliers.clone(),
            holdouts: holdouts.clone(),
        };
        let attrs = match &self.cfg.explain_attrs {
            Some(a) => a.clone(),
            None => query.default_explain_attrs(),
        };
        if attrs.is_empty() {
            return Err(StreamError::Engine(scorpion_core::ScorpionError::NoExplainAttributes));
        }

        let outlier_sig = self.outlier_signature(window, &detection, &attrs);
        let dict_sig = dictionary_signature(&table, &attrs);

        let (explanation, warm) = {
            let scorer =
                query.scorer(InfluenceParams { lambda: self.cfg.lambda, c: self.cfg.c }, false)?;
            let domains = domains_of(&table)?;

            // Partitions: reuse while the outlier groups' chunks (and
            // the discrete dictionaries cached predicates are encoded
            // against) are untouched; otherwise grow cold.
            let (mut input, warm, seeds) = {
                let cache = self.cache.lock();
                let dict_ok = cache.dict_sig == Some(dict_sig);
                let warm = dict_ok
                    && cache.outlier_sig == Some(outlier_sig)
                    && !cache.partitions.is_empty();
                let input = if warm { cache.partitions.clone() } else { Vec::new() };
                // Seed the merge with the previous window's merged
                // output (re-scored exactly below) — but never across a
                // dictionary change, where the cached codes would mean
                // different values.
                let seeds: Vec<Predicate> =
                    if dict_ok { cache.last_merged.clone() } else { Vec::new() };
                (input, warm, seeds)
            };
            if warm {
                for sp in &mut input {
                    sp.influence = scorer.influence(&sp.predicate)?;
                    // Warm merges run exact: the cached per-partition
                    // stats describe the window the partitions were
                    // built from, and the §6.3 cached-tuple
                    // approximation steered by aging stats proved both
                    // slower and less precise than exact re-scoring on
                    // re-explanation workloads (see stream_throughput).
                    sp.stats = None;
                }
                input.sort_by(|a, b| b.influence.total_cmp(&a.influence));
            } else {
                let dt = DtPartitioner::new(
                    &scorer,
                    attrs.clone(),
                    domains.clone(),
                    self.cfg.dt.clone(),
                );
                let (parts, _) = dt.partition()?;
                let mut cache = self.cache.lock();
                cache.partitions = parts.clone();
                cache.outlier_sig = Some(outlier_sig);
                cache.dict_sig = Some(dict_sig);
                input = parts;
            }
            let n_partitions = input.len();

            for pred in seeds {
                let influence = scorer.influence(&pred)?;
                input.push(ScoredPredicate::new(pred, influence));
            }

            let merger = Merger::new(&scorer, &domains, self.cfg.dt.merger.clone());
            let (mut merged, _) = merger.merge(input)?;
            if merged.is_empty() {
                merged.push(ScoredPredicate::new(Predicate::all(), 0.0));
            }
            {
                let mut cache = self.cache.lock();
                cache.last_merged = merged.iter().take(8).map(|sp| sp.predicate.clone()).collect();
                if warm {
                    cache.stats.warm_runs += 1;
                } else {
                    cache.stats.cold_runs += 1;
                }
            }

            let explanation = Explanation {
                predicates: merged,
                diagnostics: Diagnostics {
                    algorithm: "dt-stream",
                    runtime: start.elapsed(),
                    scorer_calls: scorer.scorer_calls(),
                    candidates: n_partitions as u64,
                    partitions: n_partitions,
                    budget_exhausted: false,
                },
            };
            (explanation, warm)
        };

        Ok(Some(StreamExplanation {
            table,
            grouping,
            detection,
            outliers: outliers.into_iter().map(|(i, _)| i).collect(),
            holdouts,
            explanation,
            warm,
        }))
    }

    /// Hash of everything the cached partition geometry depends on
    /// (apart from discrete dictionaries, tracked by
    /// [`dictionary_signature`]): the
    /// flagged groups, the live chunks backing each of them, the
    /// explanation attributes, the aggregate, and λ. Deliberately
    /// excludes `c` (single-tuple influence is `c`-agnostic, §8.3.3) and
    /// the hold-out set (a stale hold-out set only ages candidate
    /// geometry; scores stay exact).
    fn outlier_signature(
        &self,
        window: &SlidingWindow,
        detection: &Detection,
        attrs: &[usize],
    ) -> u64 {
        let mut h = DefaultHasher::new();
        window.aggregate().name().hash(&mut h);
        attrs.hash(&mut h);
        self.cfg.lambda.to_bits().hash(&mut h);
        let mut keys: Vec<&String> = detection.outliers.iter().map(|(k, _)| k).collect();
        keys.sort();
        for key in keys {
            key.hash(&mut h);
            window.chunks_of(key).hash(&mut h);
        }
        h.finish()
    }
}

/// Hash of the discrete explain attributes' dictionaries (values in code
/// order). Cached predicates encode set clauses as dictionary *codes*,
/// and each materialization assigns codes by first appearance — so two
/// windows agree on what a cached clause means iff this hash matches.
fn dictionary_signature(table: &Table, attrs: &[usize]) -> u64 {
    let mut h = DefaultHasher::new();
    for &a in attrs {
        if let Ok(cat) = table.cat(a) {
            a.hash(&mut h);
            let n = cat.cardinality();
            n.hash(&mut h);
            for code in 0..n as u32 {
                cat.value_of(code).hash(&mut h);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{SlidingWindow, StreamConfig};
    use scorpion_agg::aggregate_by_name;
    use scorpion_table::{Field, Schema, Value};

    /// Schema: hour (group), sensor (explain), temp (agg).
    fn feed_schema() -> Schema {
        Schema::new(vec![Field::disc("hour"), Field::disc("sensor"), Field::cont("temp")]).unwrap()
    }

    /// One chunk = one hour of readings; sensor "bad" goes hot during
    /// `hot_hours`.
    fn build_window(hours: usize, hot_hours: std::ops::Range<usize>) -> SlidingWindow {
        let cfg = StreamConfig::new(feed_schema(), 0, 2, hours.max(1)).unwrap();
        let mut w = SlidingWindow::new(cfg, aggregate_by_name("avg").unwrap());
        for hour in 0..hours {
            w.push_chunk(hour_chunk(hour, hot_hours.contains(&hour))).unwrap();
        }
        w
    }

    fn hour_chunk(hour: usize, hot: bool) -> Vec<Vec<Value>> {
        let key = format!("h{hour:03}");
        let mut rows = Vec::new();
        for s in 0..6 {
            let sid = format!("s{s}");
            // Deterministic small jitter keeps the MAD non-degenerate.
            let jitter = ((hour * 7 + s * 13) % 10) as f64 * 0.05;
            let temp = if hot && s == 3 { 120.0 + jitter } else { 20.0 + jitter };
            for _ in 0..3 {
                rows.push(vec![Value::Str(key.clone()), Value::Str(sid.clone()), Value::Num(temp)]);
            }
        }
        rows
    }

    fn session() -> ContinuousSession {
        ContinuousSession::new(ContinuousConfig {
            detector: DetectorConfig { min_groups: 6, ..Default::default() },
            ..Default::default()
        })
    }

    #[test]
    fn quiet_window_yields_none() {
        let w = build_window(10, 0..0);
        let s = session();
        assert!(s.explain(&w).unwrap().is_none());
        assert!(!s.is_warm());
    }

    #[test]
    fn flags_and_explains_the_planted_sensor() {
        let w = build_window(12, 8..10);
        let s = session();
        let ex = s.explain(&w).unwrap().expect("detection");
        assert!(!ex.warm);
        assert_eq!(ex.outliers.len(), 2);
        // The flagged hours are the hot ones.
        for &o in &ex.outliers {
            let key = ex.grouping.display_key(&ex.table, o);
            assert!(key == "h008" || key == "h009", "{key}");
        }
        // The predicate must single out sensor s3.
        let best = ex.explanation.best();
        let rendered = best.predicate.display(&ex.table);
        assert!(rendered.contains("s3"), "predicate was: {rendered}");
    }

    #[test]
    fn unchanged_signature_reuses_partitions() {
        let mut w = build_window(12, 8..10);
        let s = session();
        let first = s.explain(&w).unwrap().expect("detection");
        assert!(!first.warm);
        assert!(s.is_warm());
        // Slide: a fresh quiet hour arrives, the oldest quiet hour
        // leaves. The hot groups' chunks are untouched.
        w.push_chunk(hour_chunk(12, false)).unwrap();
        let second = s.explain(&w).unwrap().expect("detection");
        assert!(second.warm, "outlier chunks unchanged → warm re-explanation");
        let rendered = second.explanation.best().predicate.display(&second.table);
        assert!(rendered.contains("s3"), "predicate was: {rendered}");
        assert_eq!(s.stats(), SessionStats { warm_runs: 1, cold_runs: 1 });
    }

    #[test]
    fn outlier_chunk_change_invalidates() {
        let mut w = build_window(12, 8..10);
        let s = session();
        let _ = s.explain(&w).unwrap().expect("detection");
        // A new hot hour arrives: the outlier set changes → cold rebuild.
        w.push_chunk(hour_chunk(12, true)).unwrap();
        // Make hour 12 hot by pushing its chunk with the hot sensor; the
        // detector should now flag three hours.
        let ex = s.explain(&w).unwrap().expect("detection");
        assert!(!ex.warm, "outlier set changed → cold rebuild");
        assert_eq!(ex.outliers.len(), 3);
        assert_eq!(s.stats().cold_runs, 2);
    }

    #[test]
    fn dictionary_drift_forces_cold_rebuild() {
        // Hour 0 carries a sensor ("zz") that appears first in the
        // window and nowhere else. Evicting it renumbers every other
        // sensor's dictionary code in the next materialization, so
        // cached partitions (which store codes) must not be reused even
        // though the outlier hours' chunks are untouched.
        let cfg = StreamConfig::new(feed_schema(), 0, 2, 12).unwrap();
        let mut w = SlidingWindow::new(cfg, aggregate_by_name("avg").unwrap());
        for hour in 0..12 {
            let mut rows = hour_chunk(hour, (8..10).contains(&hour));
            if hour == 0 {
                rows.insert(
                    0,
                    vec![
                        Value::Str("h000".to_string()),
                        Value::Str("zz".to_string()),
                        Value::Num(20.0),
                    ],
                );
            }
            w.push_chunk(rows).unwrap();
        }
        let s = session();
        let first = s.explain(&w).unwrap().expect("detection");
        assert!(!first.warm);
        // Slide: quiet hour 12 in, hour 0 (and "zz") out.
        w.push_chunk(hour_chunk(12, false)).unwrap();
        let second = s.explain(&w).unwrap().expect("detection");
        assert!(!second.warm, "dictionary changed → cached codes are stale → cold");
        assert_eq!(s.stats(), SessionStats { warm_runs: 0, cold_runs: 2 });
        // And the rebuilt explanation still names the right sensor.
        let rendered = second.explanation.best().predicate.display(&second.table);
        assert!(rendered.contains("s3"), "predicate was: {rendered}");
    }

    #[test]
    fn invalidate_clears_cache() {
        let w = build_window(12, 8..10);
        let s = session();
        let _ = s.explain(&w).unwrap().expect("detection");
        assert!(s.is_warm());
        s.invalidate();
        assert!(!s.is_warm());
        let again = s.explain(&w).unwrap().expect("detection");
        assert!(!again.warm);
    }

    #[test]
    fn render_shows_ranked_predicates() {
        let w = build_window(12, 8..10);
        let ex = session().explain(&w).unwrap().expect("detection");
        let text = ex.render(3);
        assert!(text.contains("inf="), "{text}");
    }
}

//! Automatic outlier labeling over the live result series.
//!
//! The offline API (§3.3) expects a human to mark outlier results, give
//! error directions, and pick hold-outs. A monitoring service has no
//! human in the loop, so this module derives all three from the series
//! itself with a robust location/scale estimate: the median and the MAD
//! (median absolute deviation, scaled by 1.4826 to be consistent with σ
//! under normality). Groups whose modified z-score exceeds the threshold
//! become outliers with error direction `sign(z)`; the non-flagged
//! groups closest to the median become the hold-out set.

use crate::window::GroupAggregate;

/// Detector knobs.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Modified z-score magnitude above which a group is an outlier
    /// (3.5 is the classic Iglewicz–Hoaglin recommendation).
    pub threshold: f64,
    /// Maximum hold-out groups handed to the engine (most-normal first).
    pub max_holdouts: usize,
    /// Minimum series length; shorter series yield no detection (robust
    /// statistics are meaningless over a handful of groups).
    pub min_groups: usize,
    /// Floor on the robust scale. A series whose MAD-based scale falls
    /// below this is clamped up to it, so near-identical groups are not
    /// flagged over measurement noise. `0.0` disables the floor.
    pub min_scale: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { threshold: 3.5, max_holdouts: 8, min_groups: 6, min_scale: 0.0 }
    }
}

/// The derived labels for one window state.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Flagged groups: `(key, error direction)` with `+1` = too high,
    /// `−1` = too low — the error-vector component `v_o` of §3.2.
    pub outliers: Vec<(String, f64)>,
    /// Hold-out group keys, most normal first.
    pub holdouts: Vec<String>,
    /// Robust center (median) of the series.
    pub center: f64,
    /// Robust scale (1.4826·MAD) of the series.
    pub scale: f64,
}

/// Median/MAD outlier detector over a group-by result series.
#[derive(Debug, Clone, Default)]
pub struct OutlierDetector {
    cfg: DetectorConfig,
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

impl OutlierDetector {
    /// Creates a detector with the given knobs.
    pub fn new(cfg: DetectorConfig) -> Self {
        OutlierDetector { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Scans a series; returns `None` when nothing is flagged (or the
    /// series is too short to judge).
    pub fn detect(&self, series: &[GroupAggregate]) -> Option<Detection> {
        if series.len() < self.cfg.min_groups.max(2) {
            return None;
        }
        let mut values: Vec<f64> = series.iter().map(|g| g.value).collect();
        values.sort_by(f64::total_cmp);
        let center = median(&values);
        let mut deviations: Vec<f64> = values.iter().map(|v| (v - center).abs()).collect();
        deviations.sort_by(f64::total_cmp);
        let mad = median(&deviations);
        let mut scale = 1.4826 * mad;
        if scale <= f64::EPSILON {
            // Degenerate series (≥ half the groups identical): fall back
            // to the mean absolute deviation, consistent under normality
            // with factor 1.2533.
            let mean_ad = deviations.iter().sum::<f64>() / deviations.len() as f64;
            scale = 1.2533 * mean_ad;
        }
        scale = scale.max(self.cfg.min_scale);
        if scale <= f64::EPSILON {
            // Perfectly flat series: nothing can be an outlier.
            return None;
        }

        let mut outliers = Vec::new();
        let mut normals: Vec<(f64, &GroupAggregate)> = Vec::new();
        for g in series {
            let z = (g.value - center) / scale;
            if z.abs() >= self.cfg.threshold {
                outliers.push((g.key.clone(), z.signum()));
            } else {
                normals.push((z.abs(), g));
            }
        }
        if outliers.is_empty() {
            return None;
        }
        normals.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.key.cmp(&b.1.key)));
        let holdouts =
            normals.iter().take(self.cfg.max_holdouts).map(|(_, g)| g.key.clone()).collect();
        Some(Detection { outliers, holdouts, center, scale })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> Vec<GroupAggregate> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| GroupAggregate { key: format!("g{i:02}"), value: v, rows: 10 })
            .collect()
    }

    #[test]
    fn flags_a_planted_spike() {
        let mut vals = vec![10.0, 10.2, 9.8, 10.1, 9.9, 10.0, 10.3, 9.7];
        vals.push(42.0);
        let d = OutlierDetector::default().detect(&series(&vals)).expect("detection");
        assert_eq!(d.outliers, vec![("g08".to_string(), 1.0)]);
        assert!(!d.holdouts.contains(&"g08".to_string()));
        assert!((d.center - 10.0).abs() < 0.5);
    }

    #[test]
    fn flags_low_outliers_with_negative_direction() {
        let mut vals = vec![50.0; 9];
        // Perturb slightly so the MAD is not degenerate.
        for (i, v) in vals.iter_mut().enumerate() {
            *v += (i as f64 - 4.0) * 0.1;
        }
        vals.push(1.0);
        let d = OutlierDetector::default().detect(&series(&vals)).expect("detection");
        assert_eq!(d.outliers.len(), 1);
        assert_eq!(d.outliers[0].1, -1.0);
    }

    #[test]
    fn quiet_series_yields_none() {
        let vals = vec![10.0, 10.1, 9.9, 10.05, 9.95, 10.02, 10.0, 9.98];
        assert!(OutlierDetector::default().detect(&series(&vals)).is_none());
    }

    #[test]
    fn flat_series_yields_none() {
        let vals = vec![7.0; 12];
        assert!(OutlierDetector::default().detect(&series(&vals)).is_none());
    }

    #[test]
    fn degenerate_mad_falls_back_to_mean_deviation() {
        // More than half identical → MAD = 0, but the spike must still
        // be caught through the mean-absolute-deviation fallback.
        let mut vals = vec![5.0; 8];
        vals.push(500.0);
        let d = OutlierDetector::default().detect(&series(&vals)).expect("detection");
        assert_eq!(d.outliers.len(), 1);
    }

    #[test]
    fn min_scale_floor_suppresses_noise_flags() {
        // Tight series with a barely-above-noise point: flagged without
        // the floor, suppressed with it.
        let mut vals = vec![10.0, 10.01, 9.99, 10.02, 9.98, 10.0, 10.01];
        vals.push(10.2);
        let loose = OutlierDetector::default();
        assert!(loose.detect(&series(&vals)).is_some());
        let floored = OutlierDetector::new(DetectorConfig { min_scale: 0.5, ..Default::default() });
        assert!(floored.detect(&series(&vals)).is_none());
    }

    #[test]
    fn short_series_yields_none() {
        let vals = vec![1.0, 100.0];
        assert!(OutlierDetector::default().detect(&series(&vals)).is_none());
    }

    #[test]
    fn holdouts_are_most_normal_and_bounded() {
        let mut vals: Vec<f64> = (0..20).map(|i| 10.0 + (i as f64) * 0.05).collect();
        vals.push(99.0);
        let det = OutlierDetector::new(DetectorConfig { max_holdouts: 4, ..Default::default() });
        let d = det.detect(&series(&vals)).expect("detection");
        assert_eq!(d.holdouts.len(), 4);
        // Hold-outs must be nearer the center than any non-chosen normal.
        let chosen: Vec<f64> = d
            .holdouts
            .iter()
            .map(|k| {
                let idx: usize = k[1..].parse().unwrap();
                (vals[idx] - d.center).abs()
            })
            .collect();
        let worst_chosen = chosen.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(worst_chosen <= (vals[19] - d.center).abs());
    }
}

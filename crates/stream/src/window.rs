//! Chunked sliding window over a row stream, maintained with mergeable
//! partial aggregates.
//!
//! Each ingested batch becomes an immutable *chunk*. On arrival the
//! chunk's rows are summarized once into per-group partial states
//! ([`scorpion_agg::MergeableAggregate::partial_of`]); the window's
//! group-by series is
//! maintained by merging those partials into running totals. When a
//! chunk expires:
//!
//! * retractable aggregates (SUM/COUNT/AVG/STDDEV/VARIANCE) subtract the
//!   chunk's partials in O(groups-in-chunk) — §5.1 `remove` applied to
//!   the time dimension;
//! * mergeable-only aggregates (MIN/MAX) re-merge the surviving chunks'
//!   constant-size partials for the touched groups — still never
//!   re-reading rows;
//! * black-box aggregates (MEDIAN) fall back to recomputing from the
//!   buffered rows at read time.
//!
//! Raw rows are buffered for the window's lifetime regardless, because
//! explanation needs the full relation: [`SlidingWindow::materialize`]
//! rebuilds a [`Table`] + provenance [`Grouping`] for the engine.

use crate::error::{Result, StreamError};
use scorpion_agg::{AggState, Aggregate};
use scorpion_table::{group_by, AttrType, Grouping, Schema, Table, TableBuilder, Value};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Static description of the stream relation and the continuous query.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Schema every ingested row must conform to.
    pub schema: Schema,
    /// The group-by attribute (must be discrete).
    pub group_attr: usize,
    /// The aggregated attribute (must be continuous).
    pub agg_attr: usize,
    /// Window capacity in chunks; pushing beyond it evicts the oldest.
    pub window_chunks: usize,
}

impl StreamConfig {
    /// Validates and builds a stream configuration.
    pub fn new(
        schema: Schema,
        group_attr: usize,
        agg_attr: usize,
        window_chunks: usize,
    ) -> Result<Self> {
        if window_chunks == 0 {
            return Err(StreamError::BadConfig("window must hold at least one chunk"));
        }
        if group_attr == agg_attr {
            return Err(StreamError::BadConfig("group and aggregate attributes must differ"));
        }
        let g = schema.field(group_attr).map_err(StreamError::Table)?;
        if g.ty() != AttrType::Discrete {
            return Err(StreamError::BadConfig("group-by attribute must be discrete"));
        }
        let a = schema.field(agg_attr).map_err(StreamError::Table)?;
        if a.ty() != AttrType::Continuous {
            return Err(StreamError::BadConfig("aggregate attribute must be continuous"));
        }
        Ok(StreamConfig { schema, group_attr, agg_attr, window_chunks })
    }
}

/// One ingested batch: buffered rows plus the per-group partial states
/// summarizing its aggregate-attribute values.
struct Chunk {
    id: u64,
    rows: Vec<Vec<Value>>,
    /// Per group key: (partial state, row count). The state is unused
    /// (empty) when the aggregate is not mergeable.
    groups: BTreeMap<String, (AggState, usize)>,
    /// Per group key: the aggregate-attribute values, kept only for
    /// black-box aggregates so [`SlidingWindow::series`] recomputes in
    /// O(rows-of-group) instead of rescanning every buffered row.
    values: BTreeMap<String, Vec<f64>>,
}

/// Running per-group totals over the live window.
struct GroupTotal {
    partial: AggState,
    rows: usize,
}

/// True when subtracting `removed` may have destroyed the precision of
/// `remaining`: some component of the removed partial is ≥ 2²⁰ (~10⁶)
/// times the magnitude of what is left, i.e. at least 20 of the
/// result's 53 mantissa bits were cancelled away. False positives only
/// cost a cheap re-merge.
fn cancellation_suspect(removed: &AggState, remaining: &AggState) -> bool {
    const RATIO: f64 = (1u64 << 20) as f64;
    removed
        .as_slice()
        .iter()
        .zip(remaining.as_slice())
        .any(|(r, keep)| r.abs() > RATIO * keep.abs().max(f64::MIN_POSITIVE))
}

/// Receipt returned by [`SlidingWindow::push_chunk`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkReceipt {
    /// Id assigned to the ingested chunk (monotonically increasing).
    pub chunk_id: u64,
    /// Rows ingested.
    pub rows: usize,
    /// Id of the chunk evicted by this push, if the window was full.
    pub evicted: Option<u64>,
}

/// One point of the live result series.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAggregate {
    /// Group key (the discrete group attribute's value).
    pub key: String,
    /// Current windowed aggregate value.
    pub value: f64,
    /// Rows of this group live in the window.
    pub rows: usize,
}

/// A chunked sliding window maintaining a group-by aggregate series.
pub struct SlidingWindow {
    cfg: StreamConfig,
    agg: Arc<dyn Aggregate>,
    chunks: VecDeque<Chunk>,
    totals: BTreeMap<String, GroupTotal>,
    next_chunk_id: u64,
    rows_ingested: u64,
}

impl SlidingWindow {
    /// Creates an empty window for the given continuous query.
    pub fn new(cfg: StreamConfig, agg: Arc<dyn Aggregate>) -> Self {
        SlidingWindow {
            cfg,
            agg,
            chunks: VecDeque::new(),
            totals: BTreeMap::new(),
            next_chunk_id: 0,
            rows_ingested: 0,
        }
    }

    /// The window configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The aggregate operator.
    pub fn aggregate(&self) -> &Arc<dyn Aggregate> {
        &self.agg
    }

    /// Number of live chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Number of live rows.
    pub fn n_rows(&self) -> usize {
        self.chunks.iter().map(|c| c.rows.len()).sum()
    }

    /// Total rows ever ingested (including evicted ones).
    pub fn rows_ingested(&self) -> u64 {
        self.rows_ingested
    }

    /// Ids of the live chunks containing rows of `key`, oldest first.
    pub fn chunks_of(&self, key: &str) -> Vec<u64> {
        self.chunks.iter().filter(|c| c.groups.contains_key(key)).map(|c| c.id).collect()
    }

    /// Ingests one batch as a new chunk, evicting the oldest chunk when
    /// the window is at capacity.
    pub fn push_chunk(&mut self, rows: Vec<Vec<Value>>) -> Result<ChunkReceipt> {
        let mergeable = self.agg.mergeable();
        let mut groups: BTreeMap<String, (AggState, usize)> = BTreeMap::new();
        let mut values: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != self.cfg.schema.len() {
                return Err(StreamError::BadRow(format!(
                    "row {i} has {} values, schema has {}",
                    row.len(),
                    self.cfg.schema.len()
                )));
            }
            let key = match &row[self.cfg.group_attr] {
                Value::Str(s) => s.clone(),
                other => {
                    return Err(StreamError::BadRow(format!(
                        "row {i}: group attribute must be a string, got {other:?}"
                    )))
                }
            };
            let v = row[self.cfg.agg_attr].as_num().ok_or_else(|| {
                StreamError::BadRow(format!("row {i}: aggregate attribute must be numeric"))
            })?;
            values.entry(key).or_default().push(v);
        }
        for (key, vals) in &values {
            let (state, n) = match mergeable {
                Some(m) => (m.partial_of(vals), vals.len()),
                None => (AggState::zero(0), vals.len()),
            };
            groups.insert(key.clone(), (state, n));
        }
        // Black-box aggregates need the raw values at read time; for
        // mergeable operators the partials subsume them.
        let values = if mergeable.is_none() { values } else { BTreeMap::new() };

        // Merge the new chunk's partials into the running totals.
        if let Some(m) = mergeable {
            for (key, (state, n)) in &groups {
                let total = self
                    .totals
                    .entry(key.clone())
                    .or_insert_with(|| GroupTotal { partial: m.empty_partial(), rows: 0 });
                m.merge(&mut total.partial, state);
                total.rows += n;
            }
        } else {
            for (key, (_, n)) in &groups {
                let total = self
                    .totals
                    .entry(key.clone())
                    .or_insert_with(|| GroupTotal { partial: AggState::zero(0), rows: 0 });
                total.rows += n;
            }
        }

        let chunk_id = self.next_chunk_id;
        self.next_chunk_id += 1;
        self.rows_ingested += rows.len() as u64;
        let n_rows = rows.len();
        self.chunks.push_back(Chunk { id: chunk_id, rows, groups, values });

        let evicted = if self.chunks.len() > self.cfg.window_chunks {
            let old = self.chunks.pop_front().expect("non-empty window");
            self.retract(&old);
            Some(old.id)
        } else {
            None
        };
        Ok(ChunkReceipt { chunk_id, rows: n_rows, evicted })
    }

    /// Removes an evicted chunk's contribution from the running totals.
    fn retract(&mut self, old: &Chunk) {
        let mergeable = self.agg.mergeable();
        for (key, (state, n)) in &old.groups {
            let Some(total) = self.totals.get_mut(key) else { continue };
            total.rows -= (*n).min(total.rows);
            if total.rows == 0 {
                self.totals.remove(key);
                continue;
            }
            match mergeable {
                Some(m) if m.retractable() => {
                    // O(1) retraction (§5.1 `remove` on the time axis) —
                    // but floating-point subtraction is lossy when the
                    // evicted partial dwarfs what remains (absorption:
                    // 1e16 + 1 − 1e16 == 0), and the error would persist
                    // for the group's lifetime. Guard the conditioning
                    // and fall back to re-merging the surviving chunks'
                    // partials, which is still row-free and only
                    // O(window chunks).
                    m.unmerge(&mut total.partial, state);
                    if cancellation_suspect(state, &total.partial) {
                        total.partial = Self::remerge(&self.chunks, m, key);
                    }
                }
                Some(m) => {
                    // MIN/MAX: the extremum may have left with the
                    // chunk; recover the runner-up from the surviving
                    // chunks' partials.
                    total.partial = Self::remerge(&self.chunks, m, key);
                }
                None => {}
            }
        }
    }

    /// Rebuilds one group's partial by merging the surviving chunks'
    /// per-chunk partials (no row re-reads).
    fn remerge(
        chunks: &VecDeque<Chunk>,
        m: &dyn scorpion_agg::MergeableAggregate,
        key: &str,
    ) -> AggState {
        let mut acc = m.empty_partial();
        for c in chunks {
            if let Some((s, _)) = c.groups.get(key) {
                m.merge(&mut acc, s);
            }
        }
        acc
    }

    /// The current windowed aggregate value of `key`, if the group is
    /// live.
    pub fn value_of(&self, key: &str) -> Option<f64> {
        let total = self.totals.get(key)?;
        match self.agg.mergeable() {
            Some(m) => Some(m.finalize(&total.partial)),
            None => Some(self.agg.compute(&self.raw_values(key))),
        }
    }

    /// The live group-by result series, sorted by group key.
    pub fn series(&self) -> Vec<GroupAggregate> {
        self.totals
            .iter()
            .map(|(key, total)| {
                let value = match self.agg.mergeable() {
                    Some(m) => m.finalize(&total.partial),
                    None => self.agg.compute(&self.raw_values(key)),
                };
                GroupAggregate { key: key.clone(), value, rows: total.rows }
            })
            .collect()
    }

    /// Collects `key`'s aggregate-attribute values from the live chunks'
    /// per-group buffers (black-box fallback path).
    fn raw_values(&self, key: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for c in &self.chunks {
            if let Some(vs) = c.values.get(key) {
                out.extend_from_slice(vs);
            }
        }
        out
    }

    /// Materializes the live window as a relation plus provenance — the
    /// substrate the explanation engine runs on. Rows appear in chunk
    /// arrival order, so the result is deterministic.
    pub fn materialize(&self) -> Result<(Table, Grouping)> {
        let mut b = TableBuilder::new(self.cfg.schema.clone());
        b.reserve(self.n_rows());
        for c in &self.chunks {
            for row in &c.rows {
                b.push_row(row.iter().cloned()).map_err(StreamError::Table)?;
            }
        }
        let table = b.build();
        let grouping = group_by(&table, &[self.cfg.group_attr]).map_err(StreamError::Table)?;
        Ok((table, grouping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_agg::aggregate_by_name;
    use scorpion_table::Field;

    fn two_col_schema() -> Schema {
        Schema::new(vec![Field::disc("g"), Field::cont("v")]).unwrap()
    }

    fn window(agg: &str, capacity: usize) -> SlidingWindow {
        let cfg = StreamConfig::new(two_col_schema(), 0, 1, capacity).unwrap();
        SlidingWindow::new(cfg, aggregate_by_name(agg).unwrap())
    }

    fn chunk(rows: &[(&str, f64)]) -> Vec<Vec<Value>> {
        rows.iter().map(|&(g, v)| vec![Value::from(g), Value::from(v)]).collect()
    }

    #[test]
    fn config_validation() {
        let s = two_col_schema;
        assert!(matches!(StreamConfig::new(s(), 0, 1, 0), Err(StreamError::BadConfig(_))));
        assert!(matches!(StreamConfig::new(s(), 1, 1, 2), Err(StreamError::BadConfig(_))));
        assert!(matches!(StreamConfig::new(s(), 1, 0, 2), Err(StreamError::BadConfig(_))));
        assert!(StreamConfig::new(s(), 0, 1, 2).is_ok());
    }

    #[test]
    fn push_and_evict_maintains_sum() {
        let mut w = window("sum", 2);
        let r1 = w.push_chunk(chunk(&[("a", 1.0), ("a", 2.0), ("b", 10.0)])).unwrap();
        assert_eq!(r1, ChunkReceipt { chunk_id: 0, rows: 3, evicted: None });
        let _ = w.push_chunk(chunk(&[("a", 4.0)])).unwrap();
        assert_eq!(w.value_of("a"), Some(7.0));
        // Third push evicts chunk 0: group b vanishes, a keeps only 4.
        let r3 = w.push_chunk(chunk(&[("c", 100.0)])).unwrap();
        assert_eq!(r3.evicted, Some(0));
        assert_eq!(w.value_of("a"), Some(4.0));
        assert_eq!(w.value_of("b"), None);
        assert_eq!(w.value_of("c"), Some(100.0));
        assert_eq!(w.n_chunks(), 2);
        assert_eq!(w.rows_ingested(), 5);
    }

    #[test]
    fn evicting_a_dominant_chunk_does_not_absorb_survivors() {
        // 1e16 + 1.0 == 1e16 in f64: a pure unmerge would leave the
        // window claiming sum 0 / avg 0 after the huge chunk leaves.
        for (agg, want) in [("sum", 2.0), ("avg", 1.0)] {
            let mut w = window(agg, 2);
            w.push_chunk(chunk(&[("a", 1e16)])).unwrap();
            w.push_chunk(chunk(&[("a", 1.0)])).unwrap();
            let r = w.push_chunk(chunk(&[("a", 1.0)])).unwrap();
            assert_eq!(r.evicted, Some(0));
            let got = w.value_of("a").unwrap();
            assert!((got - want).abs() < 1e-9, "{agg}: {got} != {want}");
        }
    }

    #[test]
    fn min_max_retraction_recovers_runner_up() {
        let mut w = window("max", 2);
        w.push_chunk(chunk(&[("a", 9.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 5.0)])).unwrap();
        assert_eq!(w.value_of("a"), Some(9.0));
        // Evicting the chunk holding the maximum must fall back to the
        // runner-up — the case plain retraction cannot handle.
        w.push_chunk(chunk(&[("a", 7.0)])).unwrap();
        assert_eq!(w.value_of("a"), Some(7.0));
    }

    #[test]
    fn median_blackbox_fallback() {
        let mut w = window("median", 3);
        w.push_chunk(chunk(&[("a", 1.0), ("a", 50.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 3.0)])).unwrap();
        assert_eq!(w.value_of("a"), Some(3.0));
        let s = w.series();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rows, 3);
    }

    #[test]
    fn series_is_sorted_and_complete() {
        let mut w = window("avg", 4);
        w.push_chunk(chunk(&[("b", 2.0), ("a", 1.0)])).unwrap();
        w.push_chunk(chunk(&[("c", 3.0)])).unwrap();
        let s = w.series();
        let keys: Vec<&str> = s.iter().map(|g| g.key.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn chunks_of_tracks_membership() {
        let mut w = window("sum", 3);
        w.push_chunk(chunk(&[("a", 1.0)])).unwrap();
        w.push_chunk(chunk(&[("b", 1.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 1.0), ("b", 1.0)])).unwrap();
        assert_eq!(w.chunks_of("a"), vec![0, 2]);
        assert_eq!(w.chunks_of("b"), vec![1, 2]);
        w.push_chunk(chunk(&[("c", 1.0)])).unwrap(); // evicts chunk 0
        assert_eq!(w.chunks_of("a"), vec![2]);
    }

    #[test]
    fn bad_rows_are_rejected() {
        let mut w = window("sum", 2);
        assert!(matches!(w.push_chunk(vec![vec![Value::from("a")]]), Err(StreamError::BadRow(_))));
        assert!(matches!(
            w.push_chunk(vec![vec![Value::from(1.0), Value::from(2.0)]]),
            Err(StreamError::BadRow(_))
        ));
        assert!(matches!(
            w.push_chunk(vec![vec![Value::from("a"), Value::from("x")]]),
            Err(StreamError::BadRow(_))
        ));
    }

    #[test]
    fn materialize_round_trips() {
        let mut w = window("avg", 2);
        w.push_chunk(chunk(&[("a", 1.0), ("b", 5.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 3.0)])).unwrap();
        let (t, g) = w.materialize().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(g.len(), 2);
        // Windowed series must agree with a fresh group-by over the
        // materialized relation.
        for i in 0..g.len() {
            let key = g.display_key(&t, i);
            let vals: Vec<f64> = g.rows(i).iter().map(|&r| t.num(1).unwrap()[r as usize]).collect();
            let want = w.aggregate().compute(&vals);
            assert_eq!(w.value_of(&key), Some(want));
        }
    }

    #[test]
    fn empty_window_series_is_empty() {
        let w = window("sum", 2);
        assert!(w.series().is_empty());
        assert_eq!(w.n_rows(), 0);
        let (t, g) = w.materialize().unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(g.len(), 0);
    }
}

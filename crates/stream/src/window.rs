//! Chunked sliding window over a row stream, maintained with mergeable
//! partial aggregates.
//!
//! Each ingested batch becomes an immutable *chunk*. On arrival the
//! chunk's rows are summarized once into per-group partial states
//! ([`scorpion_agg::MergeableAggregate::partial_of`]); the window's
//! group-by series is
//! maintained by merging those partials into running totals. When a
//! chunk expires:
//!
//! * retractable aggregates (SUM/COUNT/AVG/STDDEV/VARIANCE) subtract the
//!   chunk's partials in O(groups-in-chunk) — §5.1 `remove` applied to
//!   the time dimension;
//! * mergeable-only aggregates (MIN/MAX) re-merge the surviving chunks'
//!   constant-size partials for the touched groups — still never
//!   re-reading rows;
//! * black-box aggregates (MEDIAN) fall back to recomputing from the
//!   buffered rows at read time.
//!
//! ## Sketch mode
//!
//! [`StreamConfig::with_sketches`] lets aggregates that expose a
//! [`scorpion_agg::SketchAggregate`] tier (MEDIAN, PERCENTILE,
//! COUNT DISTINCT) serve [`SlidingWindow::value_of`] and
//! [`SlidingWindow::series`] from per-group [`SketchPartial`]s instead
//! of buffered raw values: each chunk is summarized once into per-group
//! sketches, totals are maintained by merge, and eviction either
//! retracts exactly (quantile sketches form a group under merge) or
//! re-merges the survivors (HLL). The answer carries the sketch's
//! documented error bound; exact `compute` remains the oracle whenever
//! sketch mode is off.
//!
//! ## Compaction tier
//!
//! Raw rows are buffered because explanation needs the full relation:
//! [`SlidingWindow::materialize`] rebuilds a [`Table`] + provenance
//! [`Grouping`] for the engine. [`StreamConfig::with_compaction`] bounds
//! that buffer: once a chunk ages past the `keep_recent` newest chunks
//! and no flagged group ever touched it
//! ([`SlidingWindow::mark_flagged`]), the compaction tier drops its raw
//! rows and retains only the per-group partials, sketches, and a
//! per-group [`RowMask`] of the chunk-local row positions. Series
//! maintenance is unaffected (it never re-reads rows); materialization
//! and the warm-reuse signature ([`SlidingWindow::chunks_of`]) simply
//! skip compacted chunks, so resident memory is O(groups · chunks)
//! instead of O(rows) on quiet streams while flagged chunks stay fully
//! re-explainable.

use crate::error::{Result, StreamError};
use scorpion_agg::{AggState, Aggregate, SketchAggregate};
use scorpion_obs::Phases;
use scorpion_sketch::{HeavyHitter, SketchPartial, SpaceSaving};
use scorpion_table::{group_by, AttrType, Grouping, RowMask, Schema, Table, TableBuilder, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Static description of the stream relation and the continuous query.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Schema every ingested row must conform to.
    pub schema: Schema,
    /// The group-by attribute (must be discrete).
    pub group_attr: usize,
    /// The aggregated attribute (must be continuous).
    pub agg_attr: usize,
    /// Window capacity in chunks; pushing beyond it evicts the oldest.
    pub window_chunks: usize,
    /// Serve the series from the aggregate's sketch tier when it has one
    /// (approximate, within the sketch's error bound). Off by default:
    /// exact `compute` stays the oracle.
    pub sketch_mode: bool,
    /// Mask-aware compaction: keep raw rows only for the newest
    /// `keep_recent` chunks and for chunks a flagged group touched;
    /// older never-flagged chunks drop their rows. `None` (default)
    /// disables compaction. Choose `keep_recent` to cover the
    /// detection horizon — a group flagged for the first time still
    /// needs raw rows somewhere.
    pub compact_keep_recent: Option<usize>,
}

impl StreamConfig {
    /// Validates and builds a stream configuration.
    pub fn new(
        schema: Schema,
        group_attr: usize,
        agg_attr: usize,
        window_chunks: usize,
    ) -> Result<Self> {
        if window_chunks == 0 {
            return Err(StreamError::BadConfig("window must hold at least one chunk"));
        }
        if group_attr == agg_attr {
            return Err(StreamError::BadConfig("group and aggregate attributes must differ"));
        }
        let g = schema.field(group_attr).map_err(StreamError::Table)?;
        if g.ty() != AttrType::Discrete {
            return Err(StreamError::BadConfig("group-by attribute must be discrete"));
        }
        let a = schema.field(agg_attr).map_err(StreamError::Table)?;
        if a.ty() != AttrType::Continuous {
            return Err(StreamError::BadConfig("aggregate attribute must be continuous"));
        }
        Ok(StreamConfig {
            schema,
            group_attr,
            agg_attr,
            window_chunks,
            sketch_mode: false,
            compact_keep_recent: None,
        })
    }

    /// Enables (or disables) the sketch tier for sketch-capable
    /// aggregates.
    pub fn with_sketches(mut self, on: bool) -> Self {
        self.sketch_mode = on;
        self
    }

    /// Enables the compaction tier, always retaining raw rows for the
    /// newest `keep_recent` chunks.
    pub fn with_compaction(mut self, keep_recent: usize) -> Result<Self> {
        if keep_recent == 0 {
            return Err(StreamError::BadConfig("compaction must keep at least one recent chunk"));
        }
        self.compact_keep_recent = Some(keep_recent);
        Ok(self)
    }
}

/// One ingested batch: buffered rows plus the per-group partial states
/// summarizing its aggregate-attribute values.
struct Chunk {
    id: u64,
    rows: Vec<Vec<Value>>,
    /// Per group key: (partial state, row count). The state is unused
    /// (empty) when the aggregate is not mergeable.
    groups: BTreeMap<String, (AggState, usize)>,
    /// Per group key: the aggregate-attribute values, kept only for
    /// black-box aggregates so [`SlidingWindow::series`] recomputes in
    /// O(rows-of-group) instead of rescanning every buffered row.
    values: BTreeMap<String, Vec<f64>>,
    /// Per group key: sketch summary of the aggregate attribute
    /// (sketch mode only).
    sketches: BTreeMap<String, SketchPartial>,
    /// Per group key: mask of the chunk-local row positions the group
    /// occupied. Built when the chunk is compacted — the only
    /// row-membership record that survives the raw rows.
    masks: BTreeMap<String, RowMask>,
    /// Raw rows dropped by the compaction tier.
    compacted: bool,
    /// A flagged group's rows live here; exempt from compaction so warm
    /// re-explanation keeps its evidence.
    flagged: bool,
}

/// Running per-group totals over the live window.
struct GroupTotal {
    partial: AggState,
    rows: usize,
    /// Merged sketch over the group's live chunks (sketch mode only).
    sketch: Option<SketchPartial>,
}

/// True when subtracting `removed` may have destroyed the precision of
/// `remaining`: some component of the removed partial is ≥ 2²⁰ (~10⁶)
/// times the magnitude of what is left, i.e. at least 20 of the
/// result's 53 mantissa bits were cancelled away. False positives only
/// cost a cheap re-merge.
fn cancellation_suspect(removed: &AggState, remaining: &AggState) -> bool {
    const RATIO: f64 = (1u64 << 20) as f64;
    removed
        .as_slice()
        .iter()
        .zip(remaining.as_slice())
        .any(|(r, keep)| r.abs() > RATIO * keep.abs().max(f64::MIN_POSITIVE))
}

/// Receipt returned by [`SlidingWindow::push_chunk`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkReceipt {
    /// Id assigned to the ingested chunk (monotonically increasing).
    pub chunk_id: u64,
    /// Rows ingested.
    pub rows: usize,
    /// Id of the chunk evicted by this push, if the window was full.
    pub evicted: Option<u64>,
}

/// One point of the live result series.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAggregate {
    /// Group key (the discrete group attribute's value).
    pub key: String,
    /// Current windowed aggregate value.
    pub value: f64,
    /// Rows of this group live in the window.
    pub rows: usize,
}

/// A chunked sliding window maintaining a group-by aggregate series.
pub struct SlidingWindow {
    cfg: StreamConfig,
    agg: Arc<dyn Aggregate>,
    chunks: VecDeque<Chunk>,
    totals: BTreeMap<String, GroupTotal>,
    next_chunk_id: u64,
    rows_ingested: u64,
    /// SpaceSaving heavy-hitter summary of group keys over the window's
    /// ingest lifetime (weights = rows per key; never retracted).
    heavy: SpaceSaving,
    /// Chunks the compaction tier has stripped so far (lifetime count).
    compactions: u64,
    /// Maintenance-phase attribution (`window.compact`), drained by the
    /// session layer into explanation diagnostics.
    phases: Phases,
}

impl SlidingWindow {
    /// Creates an empty window for the given continuous query.
    pub fn new(cfg: StreamConfig, agg: Arc<dyn Aggregate>) -> Self {
        SlidingWindow {
            cfg,
            agg,
            chunks: VecDeque::new(),
            totals: BTreeMap::new(),
            next_chunk_id: 0,
            rows_ingested: 0,
            heavy: SpaceSaving::default_sketch(),
            compactions: 0,
            phases: Phases::new(),
        }
    }

    /// The window configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The aggregate operator.
    pub fn aggregate(&self) -> &Arc<dyn Aggregate> {
        &self.agg
    }

    /// The active sketch tier: `Some` only when sketch mode is on *and*
    /// the aggregate exposes one.
    pub fn sketch_tier(&self) -> Option<&dyn SketchAggregate> {
        if self.cfg.sketch_mode {
            self.agg.sketch()
        } else {
            None
        }
    }

    /// Number of live chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Number of raw rows resident in the window. With compaction this
    /// counts only retained rows; see [`Self::series`]'s per-group
    /// `rows` for the logical count.
    pub fn n_rows(&self) -> usize {
        self.chunks.iter().map(|c| c.rows.len()).sum()
    }

    /// Raw rows resident (alias of [`Self::n_rows`], the gauge exported
    /// to diagnostics).
    pub fn resident_rows(&self) -> usize {
        self.n_rows()
    }

    /// Approximate bytes resident in the window: buffered rows and
    /// value vectors plus per-group partials, sketches, and masks.
    pub fn resident_bytes(&self) -> u64 {
        // A Value is a tagged enum (≥ 16 bytes); strings add heap. Use a
        // flat 32 bytes/value — the gauge tracks growth, not the
        // allocator.
        let mut bytes = 0u64;
        let per_value = 32 * self.cfg.schema.len() as u64;
        for c in &self.chunks {
            bytes += c.rows.len() as u64 * per_value;
            for (key, vs) in &c.values {
                bytes += key.len() as u64 + 8 * vs.len() as u64;
            }
            for (key, (state, _)) in c.groups.iter() {
                bytes += key.len() as u64 + std::mem::size_of_val(state) as u64 + 16;
            }
            for (key, s) in &c.sketches {
                bytes += key.len() as u64 + s.approx_bytes() as u64;
            }
            for (key, m) in &c.masks {
                bytes += key.len() as u64 + 8 * m.words().len() as u64;
            }
        }
        for (key, t) in &self.totals {
            bytes += key.len() as u64 + std::mem::size_of_val(&t.partial) as u64 + 24;
            if let Some(s) = &t.sketch {
                bytes += s.approx_bytes() as u64;
            }
        }
        bytes + self.heavy.approx_bytes() as u64
    }

    /// Chunks whose raw rows the compaction tier has dropped (live).
    pub fn n_compacted_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.compacted).count()
    }

    /// Lifetime count of chunks compacted (including since-evicted
    /// ones).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Maintenance-phase timings (`window.compact`); the session layer
    /// drains these into explanation diagnostics.
    pub fn phases(&self) -> &Phases {
        &self.phases
    }

    /// Total rows ever ingested (including evicted ones).
    pub fn rows_ingested(&self) -> u64 {
        self.rows_ingested
    }

    /// Approximate heaviest group keys by ingested row count
    /// (SpaceSaving; `err ≤ rows_ingested / 64`). Lifetime counts —
    /// eviction does not retract them.
    pub fn heavy_groups(&self, k: usize) -> Vec<HeavyHitter> {
        let mut hh = self.heavy.heavy_hitters();
        hh.truncate(k);
        hh
    }

    /// Ids of the live, *uncompacted* chunks containing rows of `key`,
    /// oldest first. Compacted chunks are excluded on purpose: this
    /// feeds the warm-reuse signature, and a compacted chunk's rows are
    /// absent from [`Self::materialize`] — excluding it keeps the
    /// signature consistent with the relation the engine actually sees.
    pub fn chunks_of(&self, key: &str) -> Vec<u64> {
        self.chunks
            .iter()
            .filter(|c| !c.compacted && c.groups.contains_key(key))
            .map(|c| c.id)
            .collect()
    }

    /// The retained row-membership mask of `key` within a compacted
    /// chunk (`None` if the chunk is live-with-rows, evicted, or never
    /// held the group).
    pub fn compacted_mask(&self, chunk_id: u64, key: &str) -> Option<&RowMask> {
        self.chunks.iter().find(|c| c.id == chunk_id && c.compacted)?.masks.get(key)
    }

    /// Marks every live chunk holding rows of the given group keys as
    /// flagged, permanently exempting them from compaction. Returns how
    /// many chunks were newly flagged. Call when the detector labels a
    /// group so its evidence rows survive for re-explanation.
    pub fn mark_flagged<'k>(&mut self, keys: impl IntoIterator<Item = &'k str>) -> usize {
        let keys: BTreeSet<&str> = keys.into_iter().collect();
        if keys.is_empty() {
            return 0;
        }
        let mut newly = 0;
        for c in &mut self.chunks {
            if !c.flagged && keys.iter().any(|k| c.groups.contains_key(*k)) {
                c.flagged = true;
                newly += 1;
            }
        }
        newly
    }

    /// Ingests one batch as a new chunk, evicting the oldest chunk when
    /// the window is at capacity and compacting aged never-flagged
    /// chunks when the compaction tier is enabled.
    pub fn push_chunk(&mut self, rows: Vec<Vec<Value>>) -> Result<ChunkReceipt> {
        let mergeable = self.agg.mergeable();
        let mut groups: BTreeMap<String, (AggState, usize)> = BTreeMap::new();
        let mut values: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != self.cfg.schema.len() {
                return Err(StreamError::BadRow(format!(
                    "row {i} has {} values, schema has {}",
                    row.len(),
                    self.cfg.schema.len()
                )));
            }
            let key = match &row[self.cfg.group_attr] {
                Value::Str(s) => s.clone(),
                other => {
                    return Err(StreamError::BadRow(format!(
                        "row {i}: group attribute must be a string, got {other:?}"
                    )))
                }
            };
            let v = row[self.cfg.agg_attr].as_num().ok_or_else(|| {
                StreamError::BadRow(format!("row {i}: aggregate attribute must be numeric"))
            })?;
            values.entry(key).or_default().push(v);
        }
        for (key, vals) in &values {
            let (state, n) = match mergeable {
                Some(m) => (m.partial_of(vals), vals.len()),
                None => (AggState::zero(0), vals.len()),
            };
            groups.insert(key.clone(), (state, n));
        }

        // Sketch tier: summarize each group's values once per chunk.
        let mut sketches: BTreeMap<String, SketchPartial> = BTreeMap::new();
        if let Some(sk) = self.sketch_tier() {
            for (key, vals) in &values {
                let mut partial = sk.sketch_empty();
                for &v in vals {
                    partial.insert(v);
                }
                sketches.insert(key.clone(), partial);
            }
        }

        // Black-box aggregates need the raw values at read time; for
        // mergeable operators the partials subsume them, and in sketch
        // mode the sketches do.
        let values =
            if mergeable.is_none() && sketches.is_empty() { values } else { BTreeMap::new() };

        // Merge the new chunk's partials into the running totals.
        if let Some(m) = mergeable {
            for (key, (state, n)) in &groups {
                let total = self.totals.entry(key.clone()).or_insert_with(|| GroupTotal {
                    partial: m.empty_partial(),
                    rows: 0,
                    sketch: None,
                });
                m.merge(&mut total.partial, state);
                total.rows += n;
            }
        } else {
            for (key, (_, n)) in &groups {
                let total = self.totals.entry(key.clone()).or_insert_with(|| GroupTotal {
                    partial: AggState::zero(0),
                    rows: 0,
                    sketch: None,
                });
                total.rows += n;
            }
        }
        for (key, partial) in &sketches {
            let total = self.totals.get_mut(key).expect("sketched group has a total");
            match &mut total.sketch {
                Some(s) => s.merge(partial).map_err(StreamError::Sketch)?,
                none => *none = Some(partial.clone()),
            }
        }
        for (key, (_, n)) in &groups {
            self.heavy.insert(key, *n as u64);
        }

        let chunk_id = self.next_chunk_id;
        self.next_chunk_id += 1;
        self.rows_ingested += rows.len() as u64;
        let n_rows = rows.len();
        self.chunks.push_back(Chunk {
            id: chunk_id,
            rows,
            groups,
            values,
            sketches,
            masks: BTreeMap::new(),
            compacted: false,
            flagged: false,
        });

        let evicted = if self.chunks.len() > self.cfg.window_chunks {
            let old = self.chunks.pop_front().expect("non-empty window");
            self.retract(&old)?;
            Some(old.id)
        } else {
            None
        };
        self.compact();
        Ok(ChunkReceipt { chunk_id, rows: n_rows, evicted })
    }

    /// Removes an evicted chunk's contribution from the running totals.
    fn retract(&mut self, old: &Chunk) -> Result<()> {
        let mergeable = self.agg.mergeable();
        for (key, (state, n)) in &old.groups {
            let Some(total) = self.totals.get_mut(key) else { continue };
            total.rows -= (*n).min(total.rows);
            if total.rows == 0 {
                self.totals.remove(key);
                continue;
            }
            match mergeable {
                Some(m) if m.retractable() => {
                    // O(1) retraction (§5.1 `remove` on the time axis) —
                    // but floating-point subtraction is lossy when the
                    // evicted partial dwarfs what remains (absorption:
                    // 1e16 + 1 − 1e16 == 0), and the error would persist
                    // for the group's lifetime. Guard the conditioning
                    // and fall back to re-merging the surviving chunks'
                    // partials, which is still row-free and only
                    // O(window chunks).
                    m.unmerge(&mut total.partial, state);
                    if cancellation_suspect(state, &total.partial) {
                        total.partial = Self::remerge(&self.chunks, m, key);
                    }
                }
                Some(m) => {
                    // MIN/MAX: the extremum may have left with the
                    // chunk; recover the runner-up from the surviving
                    // chunks' partials.
                    total.partial = Self::remerge(&self.chunks, m, key);
                }
                None => {}
            }
            // Sketch totals: quantile sketches retract exactly (bucket
            // counts form a group under merge); HLL cannot, so re-merge
            // the survivors' per-chunk sketches — row-free either way.
            if let Some(evicted_sketch) = old.sketches.get(key) {
                if let Some(total_sketch) = &mut total.sketch {
                    let retracted =
                        total_sketch.retract(evicted_sketch).map_err(StreamError::Sketch)?;
                    if !retracted {
                        total.sketch =
                            Self::remerge_sketch(&self.chunks, key).map_err(StreamError::Sketch)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Rebuilds one group's partial by merging the surviving chunks'
    /// per-chunk partials (no row re-reads).
    fn remerge(
        chunks: &VecDeque<Chunk>,
        m: &dyn scorpion_agg::MergeableAggregate,
        key: &str,
    ) -> AggState {
        let mut acc = m.empty_partial();
        for c in chunks {
            if let Some((s, _)) = c.groups.get(key) {
                m.merge(&mut acc, s);
            }
        }
        acc
    }

    /// Rebuilds one group's sketch total by merging the surviving
    /// chunks' per-chunk sketches.
    fn remerge_sketch(
        chunks: &VecDeque<Chunk>,
        key: &str,
    ) -> scorpion_sketch::Result<Option<SketchPartial>> {
        let mut acc: Option<SketchPartial> = None;
        for c in chunks {
            if let Some(s) = c.sketches.get(key) {
                match &mut acc {
                    Some(a) => a.merge(s)?,
                    none => *none = Some(s.clone()),
                }
            }
        }
        Ok(acc)
    }

    /// Strips raw rows from chunks older than the `keep_recent` newest
    /// that no flagged group ever touched, leaving partials + sketches +
    /// per-group row masks. Requires a row-free read path: a mergeable
    /// partial or an active sketch tier. Timed as `window.compact`.
    fn compact(&mut self) {
        let Some(keep) = self.cfg.compact_keep_recent else { return };
        if self.agg.mergeable().is_none() && self.sketch_tier().is_none() {
            return; // black-box reads need the buffered values
        }
        if self.chunks.len() <= keep {
            return;
        }
        let start = Instant::now();
        let group_attr = self.cfg.group_attr;
        let mut did = 0u64;
        let eligible = self.chunks.len() - keep;
        for c in self.chunks.iter_mut().take(eligible) {
            if c.compacted || c.flagged {
                continue;
            }
            let mut masks: BTreeMap<String, RowMask> = BTreeMap::new();
            for (i, row) in c.rows.iter().enumerate() {
                if let Value::Str(key) = &row[group_attr] {
                    masks
                        .entry(key.clone())
                        .or_insert_with(|| RowMask::empty(c.rows.len()))
                        .insert(i as u32);
                }
            }
            c.masks = masks;
            c.rows = Vec::new();
            c.values = BTreeMap::new();
            c.compacted = true;
            did += 1;
        }
        if did > 0 {
            self.compactions += did;
            self.phases.add_nanos("window.compact", start.elapsed().as_nanos() as u64, did);
        }
    }

    /// The current windowed aggregate value of `key`, if the group is
    /// live.
    pub fn value_of(&self, key: &str) -> Option<f64> {
        let total = self.totals.get(key)?;
        if let Some(sk) = self.sketch_tier() {
            if let Some(sketch) = &total.sketch {
                return Some(sk.sketch_finalize(sketch));
            }
        }
        match self.agg.mergeable() {
            Some(m) => Some(m.finalize(&total.partial)),
            None => Some(self.agg.compute(&self.raw_values(key))),
        }
    }

    /// The live group-by result series, sorted by group key.
    pub fn series(&self) -> Vec<GroupAggregate> {
        let tier = self.sketch_tier();
        self.totals
            .iter()
            .map(|(key, total)| {
                let value = match (tier, &total.sketch) {
                    (Some(sk), Some(sketch)) => sk.sketch_finalize(sketch),
                    _ => match self.agg.mergeable() {
                        Some(m) => m.finalize(&total.partial),
                        None => self.agg.compute(&self.raw_values(key)),
                    },
                };
                GroupAggregate { key: key.clone(), value, rows: total.rows }
            })
            .collect()
    }

    /// Collects `key`'s aggregate-attribute values from the live chunks'
    /// per-group buffers (black-box fallback path).
    fn raw_values(&self, key: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for c in &self.chunks {
            if let Some(vs) = c.values.get(key) {
                out.extend_from_slice(vs);
            }
        }
        out
    }

    /// Materializes the live window as a relation plus provenance — the
    /// substrate the explanation engine runs on. Rows appear in chunk
    /// arrival order, so the result is deterministic. Compacted chunks
    /// contribute nothing (their rows are gone); [`Self::chunks_of`]
    /// skips them symmetrically so warm-reuse signatures stay consistent
    /// with this relation.
    pub fn materialize(&self) -> Result<(Table, Grouping)> {
        let mut b = TableBuilder::new(self.cfg.schema.clone());
        b.reserve(self.n_rows());
        for c in &self.chunks {
            for row in &c.rows {
                b.push_row(row.iter().cloned()).map_err(StreamError::Table)?;
            }
        }
        let table = b.build();
        let grouping = group_by(&table, &[self.cfg.group_attr]).map_err(StreamError::Table)?;
        Ok((table, grouping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_agg::aggregate_by_name;
    use scorpion_table::Field;

    fn two_col_schema() -> Schema {
        Schema::new(vec![Field::disc("g"), Field::cont("v")]).unwrap()
    }

    fn window(agg: &str, capacity: usize) -> SlidingWindow {
        let cfg = StreamConfig::new(two_col_schema(), 0, 1, capacity).unwrap();
        SlidingWindow::new(cfg, aggregate_by_name(agg).unwrap())
    }

    fn chunk(rows: &[(&str, f64)]) -> Vec<Vec<Value>> {
        rows.iter().map(|&(g, v)| vec![Value::from(g), Value::from(v)]).collect()
    }

    #[test]
    fn config_validation() {
        let s = two_col_schema;
        assert!(matches!(StreamConfig::new(s(), 0, 1, 0), Err(StreamError::BadConfig(_))));
        assert!(matches!(StreamConfig::new(s(), 1, 1, 2), Err(StreamError::BadConfig(_))));
        assert!(matches!(StreamConfig::new(s(), 1, 0, 2), Err(StreamError::BadConfig(_))));
        assert!(StreamConfig::new(s(), 0, 1, 2).is_ok());
        assert!(StreamConfig::new(s(), 0, 1, 2).unwrap().with_compaction(0).is_err());
    }

    #[test]
    fn push_and_evict_maintains_sum() {
        let mut w = window("sum", 2);
        let r1 = w.push_chunk(chunk(&[("a", 1.0), ("a", 2.0), ("b", 10.0)])).unwrap();
        assert_eq!(r1, ChunkReceipt { chunk_id: 0, rows: 3, evicted: None });
        let _ = w.push_chunk(chunk(&[("a", 4.0)])).unwrap();
        assert_eq!(w.value_of("a"), Some(7.0));
        // Third push evicts chunk 0: group b vanishes, a keeps only 4.
        let r3 = w.push_chunk(chunk(&[("c", 100.0)])).unwrap();
        assert_eq!(r3.evicted, Some(0));
        assert_eq!(w.value_of("a"), Some(4.0));
        assert_eq!(w.value_of("b"), None);
        assert_eq!(w.value_of("c"), Some(100.0));
        assert_eq!(w.n_chunks(), 2);
        assert_eq!(w.rows_ingested(), 5);
    }

    #[test]
    fn evicting_a_dominant_chunk_does_not_absorb_survivors() {
        // 1e16 + 1.0 == 1e16 in f64: a pure unmerge would leave the
        // window claiming sum 0 / avg 0 after the huge chunk leaves.
        for (agg, want) in [("sum", 2.0), ("avg", 1.0)] {
            let mut w = window(agg, 2);
            w.push_chunk(chunk(&[("a", 1e16)])).unwrap();
            w.push_chunk(chunk(&[("a", 1.0)])).unwrap();
            let r = w.push_chunk(chunk(&[("a", 1.0)])).unwrap();
            assert_eq!(r.evicted, Some(0));
            let got = w.value_of("a").unwrap();
            assert!((got - want).abs() < 1e-9, "{agg}: {got} != {want}");
        }
    }

    #[test]
    fn min_max_retraction_recovers_runner_up() {
        let mut w = window("max", 2);
        w.push_chunk(chunk(&[("a", 9.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 5.0)])).unwrap();
        assert_eq!(w.value_of("a"), Some(9.0));
        // Evicting the chunk holding the maximum must fall back to the
        // runner-up — the case plain retraction cannot handle.
        w.push_chunk(chunk(&[("a", 7.0)])).unwrap();
        assert_eq!(w.value_of("a"), Some(7.0));
    }

    #[test]
    fn median_blackbox_fallback() {
        let mut w = window("median", 3);
        w.push_chunk(chunk(&[("a", 1.0), ("a", 50.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 3.0)])).unwrap();
        assert_eq!(w.value_of("a"), Some(3.0));
        let s = w.series();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rows, 3);
    }

    #[test]
    fn series_is_sorted_and_complete() {
        let mut w = window("avg", 4);
        w.push_chunk(chunk(&[("b", 2.0), ("a", 1.0)])).unwrap();
        w.push_chunk(chunk(&[("c", 3.0)])).unwrap();
        let s = w.series();
        let keys: Vec<&str> = s.iter().map(|g| g.key.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn chunks_of_tracks_membership() {
        let mut w = window("sum", 3);
        w.push_chunk(chunk(&[("a", 1.0)])).unwrap();
        w.push_chunk(chunk(&[("b", 1.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 1.0), ("b", 1.0)])).unwrap();
        assert_eq!(w.chunks_of("a"), vec![0, 2]);
        assert_eq!(w.chunks_of("b"), vec![1, 2]);
        w.push_chunk(chunk(&[("c", 1.0)])).unwrap(); // evicts chunk 0
        assert_eq!(w.chunks_of("a"), vec![2]);
    }

    #[test]
    fn bad_rows_are_rejected() {
        let mut w = window("sum", 2);
        assert!(matches!(w.push_chunk(vec![vec![Value::from("a")]]), Err(StreamError::BadRow(_))));
        assert!(matches!(
            w.push_chunk(vec![vec![Value::from(1.0), Value::from(2.0)]]),
            Err(StreamError::BadRow(_))
        ));
        assert!(matches!(
            w.push_chunk(vec![vec![Value::from("a"), Value::from("x")]]),
            Err(StreamError::BadRow(_))
        ));
    }

    #[test]
    fn materialize_round_trips() {
        let mut w = window("avg", 2);
        w.push_chunk(chunk(&[("a", 1.0), ("b", 5.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 3.0)])).unwrap();
        let (t, g) = w.materialize().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(g.len(), 2);
        // Windowed series must agree with a fresh group-by over the
        // materialized relation.
        for i in 0..g.len() {
            let key = g.display_key(&t, i);
            let vals: Vec<f64> = g.rows(i).iter().map(|&r| t.num(1).unwrap()[r as usize]).collect();
            let want = w.aggregate().compute(&vals);
            assert_eq!(w.value_of(&key), Some(want));
        }
    }

    #[test]
    fn empty_window_series_is_empty() {
        let w = window("sum", 2);
        assert!(w.series().is_empty());
        assert_eq!(w.n_rows(), 0);
        let (t, g) = w.materialize().unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(g.len(), 0);
    }

    // ---- sketch mode ----------------------------------------------------

    fn sketch_window(agg: &str, capacity: usize) -> SlidingWindow {
        let cfg = StreamConfig::new(two_col_schema(), 0, 1, capacity).unwrap().with_sketches(true);
        SlidingWindow::new(cfg, aggregate_by_name(agg).unwrap())
    }

    #[test]
    fn sketch_median_tracks_exact_within_bound() {
        let mut exact = window("median", 3);
        let mut approx = sketch_window("median", 3);
        assert!(approx.sketch_tier().is_some());
        for base in [10.0, 20.0, 30.0, 40.0] {
            let rows: Vec<(String, f64)> =
                (0..20).map(|i| ("a".to_string(), base + i as f64)).collect();
            let borrowed: Vec<(&str, f64)> = rows.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            exact.push_chunk(chunk(&borrowed)).unwrap();
            approx.push_chunk(chunk(&borrowed)).unwrap();
            let want = exact.value_of("a").unwrap();
            let got = approx.value_of("a").unwrap();
            let tier = approx.sketch_tier().unwrap();
            let sketch = tier.sketch_empty();
            let tol = sketch.error_bound().magnitude() * want.abs() + 1e-9;
            assert!((got - want).abs() <= tol, "median {got} vs {want} (tol {tol})");
        }
    }

    #[test]
    fn sketch_eviction_retracts_quantiles_exactly() {
        let mut w = sketch_window("p50", 2);
        w.push_chunk(chunk(&[("a", 1000.0), ("a", 2000.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 5.0)])).unwrap();
        // Evict the big chunk: the surviving value must dominate.
        w.push_chunk(chunk(&[("a", 7.0)])).unwrap();
        let got = w.value_of("a").unwrap();
        assert!((5.0..=8.0).contains(&got), "retracted median {got}");
    }

    #[test]
    fn sketch_count_distinct_remerges_on_eviction() {
        let mut w = sketch_window("count_distinct", 2);
        let many: Vec<(String, f64)> = (0..500).map(|i| ("a".to_string(), i as f64)).collect();
        let borrowed: Vec<(&str, f64)> = many.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        w.push_chunk(chunk(&borrowed)).unwrap();
        w.push_chunk(chunk(&[("a", 1.0), ("a", 2.0)])).unwrap();
        // Evicting the 500-distinct chunk must re-merge, not retract.
        w.push_chunk(chunk(&[("a", 1.0)])).unwrap();
        let got = w.value_of("a").unwrap();
        assert!(got < 20.0, "after eviction only ~3 distinct remain, got {got}");
    }

    #[test]
    fn sketch_mode_off_stays_exact() {
        let mut w = window("p50", 2);
        w.push_chunk(chunk(&[("a", 1.0), ("a", 2.0), ("a", 100.0)])).unwrap();
        assert_eq!(w.value_of("a"), Some(2.0));
    }

    // ---- compaction tier ------------------------------------------------

    fn compacting_window(agg: &str, capacity: usize, keep: usize, sketches: bool) -> SlidingWindow {
        let cfg = StreamConfig::new(two_col_schema(), 0, 1, capacity)
            .unwrap()
            .with_sketches(sketches)
            .with_compaction(keep)
            .unwrap();
        SlidingWindow::new(cfg, aggregate_by_name(agg).unwrap())
    }

    #[test]
    fn compaction_bounds_resident_rows() {
        let mut w = compacting_window("avg", 100, 3, false);
        for i in 0..100 {
            let rows: Vec<(String, f64)> =
                (0..10).map(|j| (format!("g{}", j % 4), (i * 10 + j) as f64)).collect();
            let borrowed: Vec<(&str, f64)> = rows.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            w.push_chunk(chunk(&borrowed)).unwrap();
        }
        assert_eq!(w.n_chunks(), 100);
        // Only the newest `keep` chunks hold raw rows.
        assert_eq!(w.resident_rows(), 3 * 10);
        assert_eq!(w.n_compacted_chunks(), 97);
        // The series is untouched: logical rows and exact totals.
        let s = w.series();
        assert_eq!(s.iter().map(|g| g.rows).sum::<usize>(), 1000);
        let all: Vec<f64> = (0..1000).map(|k| k as f64).collect();
        // g0 holds the rows whose within-chunk position j = v mod 10 has
        // j mod 4 == 0.
        let per_group: Vec<f64> =
            all.iter().copied().filter(|v| ((*v as u64) % 10).is_multiple_of(4)).collect();
        let want = aggregate_by_name("avg").unwrap().compute(&per_group);
        assert!((w.value_of("g0").unwrap() - want).abs() < 1e-9);
        // Phase attribution recorded the work.
        let phases = w.phases().snapshot();
        let compact = phases.iter().find(|p| p.name == "window.compact").unwrap();
        assert_eq!(compact.count, 97);
    }

    #[test]
    fn flagged_chunks_keep_their_rows() {
        let mut w = compacting_window("avg", 10, 1, false);
        w.push_chunk(chunk(&[("hot", 9.0), ("cold", 1.0)])).unwrap();
        assert_eq!(w.mark_flagged(["hot"]), 1);
        for _ in 0..5 {
            w.push_chunk(chunk(&[("cold", 1.0)])).unwrap();
        }
        // Chunk 0 holds a flagged group: still materializable.
        assert_eq!(w.n_compacted_chunks(), 4);
        let (t, _) = w.materialize().unwrap();
        assert_eq!(t.len(), 2 + 1); // chunk 0 (2 rows) + newest chunk (1 row)
        assert_eq!(w.chunks_of("hot"), vec![0]);
    }

    #[test]
    fn compacted_chunks_leave_masks_and_exit_signatures() {
        let mut w = compacting_window("sum", 10, 1, false);
        w.push_chunk(chunk(&[("a", 1.0), ("b", 2.0), ("a", 3.0)])).unwrap();
        w.push_chunk(chunk(&[("a", 4.0)])).unwrap();
        w.push_chunk(chunk(&[("b", 5.0)])).unwrap();
        // Chunks 0 and 1 are compacted; masks record row membership.
        assert_eq!(w.n_compacted_chunks(), 2);
        let m = w.compacted_mask(0, "a").unwrap();
        assert_eq!(m.to_rows(), vec![0, 2]);
        assert!(w.compacted_mask(2, "b").is_none(), "live chunk has no mask");
        // Signatures skip compacted chunks, matching materialize().
        assert_eq!(w.chunks_of("a"), Vec::<u64>::new());
        assert_eq!(w.chunks_of("b"), vec![2]);
        // Totals remain exact.
        assert_eq!(w.value_of("a"), Some(8.0));
        assert_eq!(w.value_of("b"), Some(7.0));
    }

    #[test]
    fn blackbox_without_sketch_tier_never_compacts() {
        let mut w = compacting_window("median", 10, 1, false);
        for _ in 0..5 {
            w.push_chunk(chunk(&[("a", 1.0), ("a", 3.0)])).unwrap();
        }
        assert_eq!(w.n_compacted_chunks(), 0, "median needs its raw values");
        let exact = w.value_of("a").unwrap();
        assert!((1.0..=3.0).contains(&exact));
        // With the sketch tier on, the same window compacts.
        let mut ws = compacting_window("median", 10, 1, true);
        for _ in 0..5 {
            ws.push_chunk(chunk(&[("a", 1.0), ("a", 3.0)])).unwrap();
        }
        assert_eq!(ws.n_compacted_chunks(), 4);
        let got = ws.value_of("a").unwrap();
        assert!((0.9..=3.1).contains(&got), "sketched median {got}");
    }

    #[test]
    fn heavy_groups_tracks_dominant_keys() {
        let mut w = window("sum", 4);
        for _ in 0..10 {
            w.push_chunk(chunk(&[("big", 1.0), ("big", 1.0), ("small", 1.0)])).unwrap();
        }
        let hh = w.heavy_groups(1);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].key, "big");
        assert_eq!(hh[0].count, 20);
    }
}

//! Self-explain: Scorpion explains its own latency outliers.
//!
//! The flight recorder (`scorpion_obs::telemetry`) keeps one event per
//! request; `scorpion_core::telemetry` materializes those events as a
//! relation with one row per request, categorical dimension columns
//! (endpoint, algorithm, cache flags, …) and a numeric `latency_ms`
//! measure. This module closes the dogfooding loop with the same
//! pipeline a continuous session applies to user data:
//!
//! 1. `SELECT avg(latency_ms) FROM telemetry GROUP BY slice` — each
//!    aggregate result covers [`SLICE_WIDTH`] adjacent requests, so a
//!    slow slice holds both its offending and its normal tuples (the
//!    within-group contrast the DT partitioner needs, exactly the
//!    paper's outlier-group shape).
//! 2. The median/MAD [`OutlierDetector`] flags the slow slices
//!    (high-side only; fast slices are not a problem) and picks the
//!    most-normal slices as hold-outs.
//! 3. The DT engine searches the dimension columns for the predicate
//!    whose deletion best explains the latency spike — e.g.
//!    `algorithm in {naive} AND plan_cache in {miss}`.
//!
//! Both `GET /debug/slow` (live ring) and `scorpion audit`
//! (`--telemetry-csv` dump) are thin wrappers over [`explain_latency`].

use crate::detector::{DetectorConfig, OutlierDetector};
use crate::error::{Result, StreamError};
use crate::window::GroupAggregate;
use scorpion_agg::Avg;
use scorpion_core::telemetry::{
    LATENCY_COLUMN, PHASE_COLUMN_PREFIX, REQ_COLUMN, SLICE_COLUMN, SLICE_WIDTH,
};
use scorpion_core::{Algorithm, DtConfig, Explanation, Scorpion};
use scorpion_table::Table;
use std::sync::Arc;

/// Knobs for the self-explain pipeline.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Modified z-score above which a slice is slow (the detector's
    /// threshold; 3.5 is the Iglewicz–Hoaglin default).
    pub threshold: f64,
    /// Minimum events before the robust statistics are meaningful;
    /// smaller rings yield [`AuditOutcome::TooFewEvents`].
    pub min_events: usize,
    /// Hold-out slices handed to the engine, most normal first.
    pub max_holdouts: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig { threshold: 3.5, min_events: 6 * SLICE_WIDTH, max_holdouts: 16 }
    }
}

/// What the audit found.
#[derive(Debug)]
pub enum AuditOutcome {
    /// Fewer events than [`AuditConfig::min_events`].
    TooFewEvents,
    /// Latency is uniform: no slice crossed the threshold.
    NoOutliers {
        /// Robust center (median) of per-slice average latency, ms.
        center_ms: f64,
        /// Robust scale (1.4826·MAD) of per-slice average latency, ms.
        scale_ms: f64,
    },
    /// Slow slices were flagged and explained. Boxed: the report (with
    /// its embedded explanation and table handle) dwarfs the other
    /// variants.
    Explained(Box<AuditReport>),
}

/// The explained case: which slices were slow, and why.
#[derive(Debug)]
pub struct AuditReport {
    /// Flagged slices as `(slice key, avg latency_ms)`, slowest first.
    pub slow: Vec<(String, f64)>,
    /// Robust center (median) of per-slice average latency, ms.
    pub center_ms: f64,
    /// Robust scale (1.4826·MAD) of per-slice average latency, ms.
    pub scale_ms: f64,
    /// Influence-ranked predicates over the dimension columns, plus
    /// engine diagnostics — render with the paired [`AuditReport::table`].
    pub explanation: Explanation,
    /// The telemetry relation the explanation's predicates refer to.
    pub table: Arc<Table>,
}

/// How many events the audit looked at, plus the finding.
#[derive(Debug)]
pub struct Audit {
    /// Rows in the telemetry relation.
    pub events: usize,
    /// Threshold in force.
    pub threshold: f64,
    /// The finding.
    pub outcome: AuditOutcome,
}

/// Columns the engine may build predicates over: every dimension and
/// measure except the row key, the slice group key, the aggregated
/// latency, and the per-phase breakdown (phases partition the latency
/// itself — letting the engine "explain" slowness by its own phase
/// timings would be circular).
fn explain_attrs(table: &Table) -> Vec<usize> {
    table
        .schema()
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.name() != REQ_COLUMN
                && f.name() != SLICE_COLUMN
                && f.name() != LATENCY_COLUMN
                && !f.name().starts_with(PHASE_COLUMN_PREFIX)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Runs the self-explain pipeline over a telemetry relation (the
/// [`scorpion_core::telemetry::events_to_table`] shape).
pub fn explain_latency(table: &Table, cfg: &AuditConfig) -> Result<Audit> {
    let events = table.len();
    if events < cfg.min_events {
        return Ok(Audit { events, threshold: cfg.threshold, outcome: AuditOutcome::TooFewEvents });
    }
    let slice = table.attr(SLICE_COLUMN).map_err(StreamError::Table)?;
    let latency = table.attr(LATENCY_COLUMN).map_err(StreamError::Table)?;
    let attrs = explain_attrs(table);
    if attrs.is_empty() {
        return Err(StreamError::BadConfig("telemetry table has no dimension columns"));
    }

    let builder = Scorpion::on(table.clone())
        .group_by(&[slice], Arc::new(Avg), latency)
        .map_err(StreamError::Engine)?;
    let series: Vec<GroupAggregate> = (0..builder.len())
        .map(|i| GroupAggregate {
            key: builder.display_key(i),
            value: builder.results()[i],
            rows: SLICE_WIDTH,
        })
        .collect();

    let detector = OutlierDetector::new(DetectorConfig {
        threshold: cfg.threshold,
        max_holdouts: cfg.max_holdouts,
        min_groups: (cfg.min_events / SLICE_WIDTH).max(2),
        min_scale: 0.0,
    });
    let detection = detector.detect(&series);
    // Only the high side is a problem for latency.
    let slow_keys: Vec<&String> = detection
        .iter()
        .flat_map(|d| d.outliers.iter())
        .filter(|(_, dir)| *dir > 0.0)
        .map(|(k, _)| k)
        .collect();
    let Some(detection) = detection.as_ref().filter(|_| !slow_keys.is_empty()) else {
        let (center_ms, scale_ms) = detection.as_ref().map_or((0.0, 0.0), |d| (d.center, d.scale));
        return Ok(Audit {
            events,
            threshold: cfg.threshold,
            outcome: AuditOutcome::NoOutliers { center_ms, scale_ms },
        });
    };

    let mut slow: Vec<(String, f64)> = Vec::with_capacity(slow_keys.len());
    let mut outlier_labels = Vec::with_capacity(slow_keys.len());
    for key in &slow_keys {
        let i = builder
            .index_of_key(key)
            .ok_or(StreamError::BadConfig("detector key missing from grouping"))?;
        slow.push(((*key).clone(), builder.results()[i]));
        outlier_labels.push((i, 1.0));
    }
    slow.sort_by(|a, b| b.1.total_cmp(&a.1));
    let holdout_labels: Vec<usize> =
        detection.holdouts.iter().filter_map(|k| builder.index_of_key(k)).collect();

    let request = builder
        .outliers(outlier_labels)
        .holdouts(holdout_labels)
        .explain_attrs(attrs)
        .algorithm(Algorithm::DecisionTree(DtConfig::default()))
        .build()
        .map_err(StreamError::Engine)?;
    let explanation = request.explain().map_err(StreamError::Engine)?;
    let table = request.table().clone();

    Ok(Audit {
        events,
        threshold: cfg.threshold,
        outcome: AuditOutcome::Explained(Box::new(AuditReport {
            slow,
            center_ms: detection.center,
            scale_ms: detection.scale,
            explanation,
            table,
        })),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_core::telemetry::events_to_table;
    use scorpion_obs::{CacheHit, TelemetryEvent};

    /// A fleet of fast requests, then a burst where a slow
    /// (naive, plan-cache-miss) cell interleaves with fast requests —
    /// the audit must name the cell's attributes.
    fn planted_events() -> Vec<TelemetryEvent> {
        let mut events = Vec::new();
        for i in 0..64u64 {
            let slow = i >= 48 && i % 2 == 0;
            let mut e = TelemetryEvent::blank(i + 1, "explain");
            e.table = "sensors".into();
            e.aggregate = "avg".into();
            e.status = 200;
            e.algorithm = if slow { "naive".into() } else { "dt".into() };
            e.plan_cache = if slow { CacheHit::Miss } else { CacheHit::Hit };
            // Jitter keeps the MAD non-degenerate.
            e.total_us = if slow { 80_000 + i * 37 } else { 2_000 + i * 13 };
            e.phases_us = vec![("run.score", e.total_us * 9 / 10)];
            events.push(e);
        }
        events
    }

    #[test]
    fn audit_names_the_slow_cell() {
        let table = events_to_table(&planted_events()).unwrap();
        let audit = explain_latency(&table, &AuditConfig::default()).unwrap();
        let AuditOutcome::Explained(report) = audit.outcome else {
            panic!("expected an explanation, got {:?}", audit.outcome)
        };
        // The burst covers the last two 8-event slices.
        assert_eq!(report.slow.len(), 2);
        assert!(report.slow.iter().all(|(_, ms)| *ms >= 40.0));
        assert!(report.slow.iter().all(|(k, _)| k == "s0006" || k == "s0007"));
        let best = report.explanation.best().predicate.display(&report.table);
        assert!(
            best.contains("naive") || best.contains("plan_cache"),
            "top predicate should name the planted cell, got: {best}"
        );
    }

    #[test]
    fn quiet_telemetry_reports_no_outliers() {
        let mut events = planted_events();
        for e in &mut events {
            e.total_us = 2_000 + e.trace_id * 13;
        }
        let table = events_to_table(&events).unwrap();
        let audit = explain_latency(&table, &AuditConfig::default()).unwrap();
        assert!(matches!(audit.outcome, AuditOutcome::NoOutliers { .. }));
    }

    #[test]
    fn tiny_rings_are_too_few() {
        let table = events_to_table(&planted_events()[..4]).unwrap();
        let audit = explain_latency(&table, &AuditConfig::default()).unwrap();
        assert!(matches!(audit.outcome, AuditOutcome::TooFewEvents));
    }

    #[test]
    fn phase_columns_are_excluded_from_predicates() {
        let table = events_to_table(&planted_events()).unwrap();
        let attrs = explain_attrs(&table);
        for &a in &attrs {
            let name = table.schema().field(a).unwrap().name().to_owned();
            assert!(!name.starts_with(PHASE_COLUMN_PREFIX), "{name}");
            assert_ne!(name, LATENCY_COLUMN);
            assert_ne!(name, REQ_COLUMN);
            assert_ne!(name, SLICE_COLUMN);
        }
        // But the dimension and measure columns are all in.
        assert!(attrs.iter().any(|&a| table.schema().field(a).unwrap().name() == "algorithm"));
        assert!(attrs.iter().any(|&a| table.schema().field(a).unwrap().name() == "queue_wait_us"));
    }
}

//! # scorpion-stream
//!
//! The continuous Scorpion: turns the offline explain-the-outlier engine
//! into a monitoring service over a live feed. Four pieces:
//!
//! * [`SlidingWindow`] — ingests row batches as *chunks*, summarizes each
//!   chunk once into per-group mergeable partial states
//!   ([`scorpion_agg::MergeableAggregate`]), and maintains the windowed
//!   group-by aggregate series by merging partials on arrival and
//!   retracting them (§5.1 `remove`, generalized to `unmerge`) on
//!   eviction — no chunk is ever re-read.
//! * [`OutlierDetector`] — a robust (median/MAD) z-score detector over
//!   the live series that auto-generates the outlier labels, error
//!   directions, and hold-out set the offline
//!   [`scorpion_core::LabeledQuery`] API requires a human for.
//! * [`ContinuousSession`] — re-explains flagged windows incrementally:
//!   the DT partitioning is cached under a *chunk signature* of the
//!   outlier groups and reused (re-scored, re-merged) as long as window
//!   slides leave those groups' chunks untouched — the §8.3.3 cache
//!   generalized across time instead of across `c`.
//! * [`StreamExplanation`] — the self-contained result: the materialized
//!   window, detection metadata, and the ranked predicates.
//!
//! ```
//! use scorpion_agg::aggregate_by_name;
//! use scorpion_stream::{SlidingWindow, StreamConfig};
//! use scorpion_table::{Field, Schema, Value};
//!
//! let schema = Schema::new(vec![Field::disc("hour"), Field::cont("temp")]).unwrap();
//! let cfg = StreamConfig::new(schema, 0, 1, 3).unwrap();
//! let mut w = SlidingWindow::new(cfg, aggregate_by_name("avg").unwrap());
//! w.push_chunk(vec![
//!     vec![Value::from("h0"), Value::from(30.0)],
//!     vec![Value::from("h0"), Value::from(34.0)],
//! ]).unwrap();
//! assert_eq!(w.series()[0].value, 32.0);
//! ```

#![warn(missing_docs)]

mod audit;
mod detector;
mod error;
mod session;
mod window;

pub use audit::{explain_latency, Audit, AuditConfig, AuditOutcome, AuditReport};
pub use detector::{Detection, DetectorConfig, OutlierDetector};
pub use error::{Result, StreamError};
pub use session::{ContinuousConfig, ContinuousSession, SessionStats, StreamExplanation};
pub use window::{ChunkReceipt, GroupAggregate, SlidingWindow, StreamConfig};

//! Streaming sensor feed: an infinite, deterministic source of Intel-style
//! sensor readings delivered one chunk (hour) at a time, with injectable
//! anomaly *episodes* for exercising the continuous engine.
//!
//! Two episode kinds mirror the paper's §8.4 failure signatures:
//!
//! * [`EpisodeKind::Dropout`] — the sensor "dies": hot garbage readings
//!   (100–130°C) with the low-voltage / low-light signature of INTEL
//!   workload 1;
//! * [`EpisodeKind::Drift`] — battery drain: voltage sags and readings
//!   climb gradually over the episode, peaking near its end (the slow
//!   version of INTEL workload 2).
//!
//! Each produced [`FeedChunk`] carries ground truth (which row offsets
//! are anomalous), so monitors and tests can score their explanations.

use crate::rng::Rng;
use scorpion_table::{Field, Schema, Value};

/// The kind of an injected anomaly episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpisodeKind {
    /// Sudden failure: hot garbage readings with a low-voltage signature.
    Dropout,
    /// Gradual battery drain: readings climb as voltage sags.
    Drift,
}

/// One injected anomaly: a sensor misbehaving for a span of ticks.
#[derive(Debug, Clone)]
pub struct Episode {
    /// Index of the misbehaving sensor.
    pub sensor: usize,
    /// First tick (hour) of the episode.
    pub start: usize,
    /// Number of ticks it lasts.
    pub duration: usize,
    /// Failure signature.
    pub kind: EpisodeKind,
}

impl Episode {
    /// True when the episode is active at `tick`.
    pub fn active_at(&self, tick: usize) -> bool {
        tick >= self.start && tick < self.start + self.duration
    }

    /// Progress through the episode at `tick`, in `[0, 1]`.
    pub fn progress(&self, tick: usize) -> f64 {
        if self.duration <= 1 {
            return 1.0;
        }
        ((tick - self.start) as f64 / (self.duration - 1) as f64).clamp(0.0, 1.0)
    }
}

/// Feed parameters.
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// Number of simulated sensors.
    pub n_sensors: usize,
    /// Readings per sensor per tick.
    pub readings_per_tick: usize,
    /// Injected anomaly episodes.
    pub episodes: Vec<Episode>,
    /// RNG seed; the feed is fully deterministic given it.
    pub seed: u64,
}

impl FeedConfig {
    /// A demo feed: 20 sensors, a dropout episode on sensor 7 at ticks
    /// 30–35.
    pub fn demo() -> Self {
        FeedConfig {
            n_sensors: 20,
            readings_per_tick: 6,
            episodes: vec![Episode {
                sensor: 7,
                start: 30,
                duration: 6,
                kind: EpisodeKind::Dropout,
            }],
            seed: 0x5EED_F00D,
        }
    }
}

/// One tick's worth of readings plus ground truth.
#[derive(Debug, Clone)]
pub struct FeedChunk {
    /// The tick (hour) this chunk covers.
    pub tick: usize,
    /// Rows conforming to [`feed_schema`].
    pub rows: Vec<Vec<Value>>,
    /// Offsets into `rows` of the anomalous readings.
    pub anomalous: Vec<usize>,
    /// Episodes active during this tick, as `(sensor, kind)`.
    pub active: Vec<(usize, EpisodeKind)>,
}

/// The feed's row schema: `hour` (discrete), `sensorid` (discrete),
/// `voltage`, `light`, `temp` (continuous).
pub fn feed_schema() -> Schema {
    Schema::new(vec![
        Field::disc("hour"),
        Field::disc("sensorid"),
        Field::cont("voltage"),
        Field::cont("light"),
        Field::cont("temp"),
    ])
    .expect("unique field names")
}

/// Attribute index of the group-by key (`hour`).
pub const FEED_GROUP_ATTR: usize = 0;
/// Attribute index of the aggregated reading (`temp`).
pub const FEED_AGG_ATTR: usize = 4;

/// The key a given tick's chunk groups under.
pub fn tick_key(tick: usize) -> String {
    format!("h{tick:04}")
}

/// The sensor id string of sensor `i`.
pub fn sensor_id(i: usize) -> String {
    format!("s{i:02}")
}

/// A deterministic, infinite stream of sensor-reading chunks.
pub struct SensorFeed {
    cfg: FeedConfig,
    rng: Rng,
    tick: usize,
}

impl SensorFeed {
    /// Creates a feed at tick 0.
    pub fn new(cfg: FeedConfig) -> Self {
        let rng = Rng::seeded(cfg.seed);
        SensorFeed { cfg, rng, tick: 0 }
    }

    /// The feed parameters.
    pub fn config(&self) -> &FeedConfig {
        &self.cfg
    }

    /// The next tick to be produced.
    pub fn tick(&self) -> usize {
        self.tick
    }

    /// Produces the next chunk and advances the clock.
    pub fn next_chunk(&mut self) -> FeedChunk {
        let tick = self.tick;
        self.tick += 1;
        let key = tick_key(tick);
        let tod = (tick % 24) as f64;
        let base_temp = 18.0 + 6.0 * ((tod - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        let day = (6.0..19.0).contains(&tod);

        let mut rows = Vec::with_capacity(self.cfg.n_sensors * self.cfg.readings_per_tick);
        let mut anomalous = Vec::new();
        let mut active = Vec::new();
        for e in &self.cfg.episodes {
            if e.active_at(tick) {
                active.push((e.sensor, e.kind));
            }
        }
        for sensor in 0..self.cfg.n_sensors {
            let sid = sensor_id(sensor);
            let episode =
                self.cfg.episodes.iter().find(|e| e.sensor == sensor && e.active_at(tick));
            for _ in 0..self.cfg.readings_per_tick {
                let (voltage, light, temp) = match episode {
                    Some(e) => match e.kind {
                        EpisodeKind::Dropout => (
                            self.rng.uniform(2.30, 2.33),
                            self.rng.uniform(0.0, 150.0),
                            self.rng.uniform(100.0, 130.0),
                        ),
                        EpisodeKind::Drift => {
                            let p = e.progress(tick);
                            (
                                2.65 - 0.35 * p + self.rng.normal(0.0, 0.01),
                                if day {
                                    self.rng.uniform(200.0, 600.0)
                                } else {
                                    self.rng.uniform(0.0, 50.0)
                                },
                                base_temp + 15.0 + 45.0 * p + self.rng.normal(0.0, 1.0),
                            )
                        }
                    },
                    None => (
                        self.rng.normal(2.68, 0.02).clamp(2.5, 2.8),
                        if day {
                            self.rng.uniform(200.0, 600.0)
                        } else {
                            self.rng.uniform(0.0, 50.0)
                        },
                        base_temp + sensor as f64 * 0.03 + self.rng.normal(0.0, 0.6),
                    ),
                };
                if episode.is_some() {
                    anomalous.push(rows.len());
                }
                rows.push(vec![
                    Value::Str(key.clone()),
                    Value::Str(sid.clone()),
                    Value::Num(voltage),
                    Value::Num(light),
                    Value::Num(temp),
                ]);
            }
        }
        FeedChunk { tick, rows, anomalous, active }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SensorFeed::new(FeedConfig::demo());
        let mut b = SensorFeed::new(FeedConfig::demo());
        for _ in 0..5 {
            let (ca, cb) = (a.next_chunk(), b.next_chunk());
            assert_eq!(ca.rows, cb.rows);
            assert_eq!(ca.anomalous, cb.anomalous);
        }
    }

    #[test]
    fn chunk_shape_and_keys() {
        let cfg = FeedConfig::demo();
        let (sensors, per) = (cfg.n_sensors, cfg.readings_per_tick);
        let mut feed = SensorFeed::new(cfg);
        let c = feed.next_chunk();
        assert_eq!(c.tick, 0);
        assert_eq!(c.rows.len(), sensors * per);
        assert!(c.anomalous.is_empty());
        for row in &c.rows {
            assert_eq!(row.len(), feed_schema().len());
            assert_eq!(row[FEED_GROUP_ATTR], Value::Str(tick_key(0)));
            assert!(row[FEED_AGG_ATTR].as_num().is_some());
        }
        assert_eq!(feed.next_chunk().tick, 1);
    }

    #[test]
    fn dropout_rows_are_hot_and_attributed() {
        let mut feed = SensorFeed::new(FeedConfig::demo());
        let mut saw_episode = false;
        for _ in 0..40 {
            let c = feed.next_chunk();
            if c.active.is_empty() {
                assert!(c.anomalous.is_empty());
                continue;
            }
            saw_episode = true;
            assert!(!c.anomalous.is_empty());
            for &i in &c.anomalous {
                let row = &c.rows[i];
                assert_eq!(row[1], Value::Str(sensor_id(7)));
                let temp = row[FEED_AGG_ATTR].as_num().unwrap();
                assert!(temp >= 100.0, "dropout temp {temp}");
                let v = row[2].as_num().unwrap();
                assert!((2.30..2.33).contains(&v));
            }
        }
        assert!(saw_episode);
    }

    #[test]
    fn drift_episode_ramps() {
        let cfg = FeedConfig {
            episodes: vec![Episode { sensor: 2, start: 5, duration: 10, kind: EpisodeKind::Drift }],
            ..FeedConfig::demo()
        };
        let mut feed = SensorFeed::new(cfg);
        let mut first_mean = None;
        let mut last_mean = None;
        for _ in 0..20 {
            let c = feed.next_chunk();
            if c.anomalous.is_empty() {
                continue;
            }
            let temps: Vec<f64> =
                c.anomalous.iter().map(|&i| c.rows[i][FEED_AGG_ATTR].as_num().unwrap()).collect();
            let mean = temps.iter().sum::<f64>() / temps.len() as f64;
            if first_mean.is_none() {
                first_mean = Some(mean);
            }
            last_mean = Some(mean);
        }
        let (first, last) = (first_mean.unwrap(), last_mean.unwrap());
        assert!(last > first + 20.0, "drift should ramp: {first} → {last}");
    }

    #[test]
    fn episode_progress_is_clamped() {
        let e = Episode { sensor: 0, start: 10, duration: 5, kind: EpisodeKind::Drift };
        assert!(e.active_at(10) && e.active_at(14));
        assert!(!e.active_at(9) && !e.active_at(15));
        assert_eq!(e.progress(10), 0.0);
        assert_eq!(e.progress(14), 1.0);
        let one = Episode { sensor: 0, start: 3, duration: 1, kind: EpisodeKind::Dropout };
        assert_eq!(one.progress(3), 1.0);
    }
}

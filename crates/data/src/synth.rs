//! SYNTH: the paper's ground-truth synthetic workload (§8.1).
//!
//! `SELECT SUM(Av) FROM synthetic GROUP BY Ad` over 10 groups of tuples
//! uniformly distributed in `n` dimension attributes `A1..An ∈ [0, 100]`.
//! Half the groups are hold-outs drawing `Av` exclusively from the normal
//! distribution `N(10, 10)`; the other half are outlier groups containing
//! two nested random hyper-cubes: tuples inside the outer cube draw
//! medium-valued outliers `N((µ+10)/2, 10)`, tuples inside the inner cube
//! draw high-valued outliers `N(µ, 10)`. `µ = 80` is the Easy setting,
//! `µ = 30` the Hard one. The cube memberships are the ground truth the
//! accuracy figures (9–13) compare against.

use crate::rng::Rng;
use scorpion_table::{Clause, Field, Predicate, Schema, Table, TableBuilder, Value};

/// Per-dimension `(lo, hi)` cube ranges.
pub type CubeRanges = Vec<(f64, f64)>;

/// SYNTH generator parameters.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of dimension attributes `n` (paper: 2–4).
    pub dims: usize,
    /// Number of groups (paper: 10; half outliers, half hold-outs).
    pub groups: usize,
    /// Tuples per group (paper: 2,000; Figure 15 sweeps 500–10,000).
    pub tuples_per_group: usize,
    /// Mean of the high-valued outlier distribution (80 = Easy,
    /// 30 = Hard).
    pub mu: f64,
    /// Standard deviation of the normal tuple distribution (paper: 10;
    /// §8.3.2 re-runs with 0).
    pub normal_std: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fixed cube ranges `(outer, inner)` per dimension; `None` places
    /// random nested cubes with ~25% / ~25% expected tuple fractions.
    pub cubes: Option<(CubeRanges, CubeRanges)>,
}

impl SynthConfig {
    /// The Easy setting (`µ = 80`).
    pub fn easy(dims: usize) -> Self {
        SynthConfig {
            dims,
            groups: 10,
            tuples_per_group: 2000,
            mu: 80.0,
            normal_std: 10.0,
            seed: 0xE5,
            cubes: None,
        }
    }

    /// The Hard setting (`µ = 30`).
    pub fn hard(dims: usize) -> Self {
        SynthConfig { mu: 30.0, seed: 0x4A, ..SynthConfig::easy(dims) }
    }

    /// Overrides tuples per group (Figure 15's scale sweep).
    #[must_use]
    pub fn with_tuples_per_group(mut self, n: usize) -> Self {
        self.tuples_per_group = n;
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated SYNTH dataset with its ground truth.
pub struct SynthDataset {
    /// The relation: `Ad` (discrete group key), `Av` (aggregate value),
    /// `A1..An` (dimension attributes).
    pub table: Table,
    /// Generator parameters.
    pub config: SynthConfig,
    /// Group indices labeled as outliers (in `group_by(table, [0])`
    /// order), with error vector `<1>` ("too high").
    pub outlier_groups: Vec<usize>,
    /// Group indices labeled as hold-outs.
    pub holdout_groups: Vec<usize>,
    /// Outer cube ranges per dimension attribute.
    pub outer_cube: Vec<(f64, f64)>,
    /// Inner cube ranges per dimension attribute.
    pub inner_cube: Vec<(f64, f64)>,
    /// Ground-truth rows: outlier-group tuples inside the outer cube.
    pub outer_rows: Vec<u32>,
    /// Ground-truth rows: outlier-group tuples inside the inner cube.
    pub inner_rows: Vec<u32>,
}

/// Domain of every dimension attribute.
pub const DIM_LO: f64 = 0.0;
/// Upper end of the dimension domain.
pub const DIM_HI: f64 = 100.0;

/// Generates a SYNTH dataset.
pub fn generate(config: SynthConfig) -> SynthDataset {
    assert!(config.dims >= 1, "at least one dimension");
    assert!(config.groups >= 2, "need outlier and hold-out groups");
    let mut rng = Rng::seeded(config.seed);

    // Cube geometry: side fractions 0.25^(1/n) give ~25% of uniformly
    // placed tuples in the outer cube and ~25% of those in the inner one.
    let (outer, inner) = match &config.cubes {
        Some((o, i)) => {
            assert_eq!(o.len(), config.dims);
            assert_eq!(i.len(), config.dims);
            (o.clone(), i.clone())
        }
        None => {
            let frac = 0.25f64.powf(1.0 / config.dims as f64);
            let outer_side = (DIM_HI - DIM_LO) * frac;
            let inner_side = outer_side * frac;
            let mut outer = Vec::with_capacity(config.dims);
            let mut inner = Vec::with_capacity(config.dims);
            for _ in 0..config.dims {
                let o_lo = rng.uniform(DIM_LO, DIM_HI - outer_side);
                let i_lo = rng.uniform(o_lo, o_lo + outer_side - inner_side);
                outer.push((o_lo, o_lo + outer_side));
                inner.push((i_lo, i_lo + inner_side));
            }
            (outer, inner)
        }
    };

    let mut fields = vec![Field::disc("Ad"), Field::cont("Av")];
    for d in 0..config.dims {
        fields.push(Field::cont(format!("A{}", d + 1)));
    }
    let schema = Schema::new(fields).expect("unique field names");
    let mut b = TableBuilder::new(schema);
    b.reserve(config.groups * config.tuples_per_group);

    let n_outlier_groups = config.groups / 2;
    let mut outer_rows = Vec::new();
    let mut inner_rows = Vec::new();
    let mut row: u32 = 0;
    for g in 0..config.groups {
        let is_outlier_group = g < n_outlier_groups;
        let key = format!("g{g}");
        for _ in 0..config.tuples_per_group {
            let xs: Vec<f64> = (0..config.dims).map(|_| rng.uniform(DIM_LO, DIM_HI)).collect();
            let in_outer = xs.iter().zip(&outer).all(|(x, (lo, hi))| lo <= x && x < hi);
            let in_inner = in_outer && xs.iter().zip(&inner).all(|(x, (lo, hi))| lo <= x && x < hi);
            let av = if is_outlier_group && in_inner {
                rng.normal(config.mu, 10.0)
            } else if is_outlier_group && in_outer {
                rng.normal((config.mu + 10.0) / 2.0, 10.0)
            } else {
                rng.normal(10.0, config.normal_std)
            };
            if is_outlier_group && in_outer {
                outer_rows.push(row);
                if in_inner {
                    inner_rows.push(row);
                }
            }
            let mut vals: Vec<Value> = Vec::with_capacity(2 + config.dims);
            vals.push(Value::Str(key.clone()));
            vals.push(Value::Num(av));
            vals.extend(xs.into_iter().map(Value::Num));
            b.push_row(vals).expect("schema match");
            row += 1;
        }
    }

    SynthDataset {
        table: b.build(),
        outlier_groups: (0..n_outlier_groups).collect(),
        holdout_groups: (n_outlier_groups..config.groups).collect(),
        outer_cube: outer,
        inner_cube: inner,
        outer_rows,
        inner_rows,
        config,
    }
}

impl SynthDataset {
    /// The dimension attribute indices (`A1..An`) — the explanation
    /// attributes of the SYNTH workload.
    pub fn dim_attrs(&self) -> Vec<usize> {
        (2..2 + self.config.dims).collect()
    }

    /// The aggregate attribute index (`Av`).
    pub fn agg_attr(&self) -> usize {
        1
    }

    /// The group-by attribute index (`Ad`).
    pub fn group_attr(&self) -> usize {
        0
    }

    /// The ground-truth predicate for the outer (or inner) cube.
    pub fn truth_predicate(&self, inner: bool) -> Predicate {
        let cube = if inner { &self.inner_cube } else { &self.outer_cube };
        let clauses = cube.iter().enumerate().map(|(d, (lo, hi))| Clause::range(2 + d, *lo, *hi));
        Predicate::conjunction(clauses).expect("cube ranges are non-empty")
    }

    /// The ground-truth row set (outer or inner cube) as a slice.
    pub fn truth_rows(&self, inner: bool) -> &[u32] {
        if inner {
            &self.inner_rows
        } else {
            &self.outer_rows
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_table::group_by;

    #[test]
    fn shape_matches_paper() {
        let ds = generate(SynthConfig::easy(2));
        assert_eq!(ds.table.len(), 20_000);
        assert_eq!(ds.table.schema().len(), 4); // Ad, Av, A1, A2
        let g = group_by(&ds.table, &[0]).unwrap();
        assert_eq!(g.len(), 10);
        for i in 0..10 {
            assert_eq!(g.rows(i).len(), 2000);
        }
        assert_eq!(ds.outlier_groups, vec![0, 1, 2, 3, 4]);
        assert_eq!(ds.holdout_groups, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn cube_nesting_invariant() {
        for dims in 2..=4 {
            let ds = generate(SynthConfig::hard(dims));
            assert_eq!(ds.outer_cube.len(), dims);
            for ((ol, oh), (il, ih)) in ds.outer_cube.iter().zip(&ds.inner_cube) {
                assert!(ol <= il && ih <= oh, "inner cube must nest");
                assert!(DIM_LO <= *ol && *oh <= DIM_HI);
            }
        }
    }

    #[test]
    fn tuple_fractions_are_approximately_25_percent() {
        let ds = generate(SynthConfig::easy(2).with_seed(99));
        let per_group = ds.config.tuples_per_group as f64;
        let n_outlier_tuples = ds.outlier_groups.len() as f64 * per_group;
        let outer_frac = ds.outer_rows.len() as f64 / n_outlier_tuples;
        assert!((outer_frac - 0.25).abs() < 0.05, "outer fraction {outer_frac}");
        let inner_frac = ds.inner_rows.len() as f64 / ds.outer_rows.len() as f64;
        assert!((inner_frac - 0.25).abs() < 0.08, "inner fraction {inner_frac}");
    }

    #[test]
    fn truth_rows_live_in_outlier_groups_only() {
        let ds = generate(SynthConfig::easy(3));
        let g = group_by(&ds.table, &[0]).unwrap();
        let outlier_row_max = (ds.outlier_groups.len() * ds.config.tuples_per_group) as u32;
        for &r in &ds.outer_rows {
            assert!(r < outlier_row_max);
        }
        // inner ⊆ outer
        let outer: std::collections::HashSet<u32> = ds.outer_rows.iter().copied().collect();
        for &r in &ds.inner_rows {
            assert!(outer.contains(&r));
        }
        assert_eq!(g.rows(0).len(), 2000);
    }

    #[test]
    fn truth_predicate_selects_exactly_truth_rows() {
        let ds = generate(SynthConfig::easy(2));
        let all: Vec<u32> = (0..ds.table.len() as u32).collect();
        let p = ds.truth_predicate(false);
        let selected = p.select(&ds.table, &all).unwrap();
        // Restricted to outlier groups, the predicate matches exactly the
        // ground-truth rows.
        let outlier_max = (ds.outlier_groups.len() * ds.config.tuples_per_group) as u32;
        let sel_outliers: Vec<u32> = selected.into_iter().filter(|&r| r < outlier_max).collect();
        assert_eq!(sel_outliers, ds.outer_rows);
    }

    #[test]
    fn outlier_values_follow_mu() {
        let ds = generate(SynthConfig::easy(2));
        let av = ds.table.num(1).unwrap();
        let mean_inner: f64 =
            ds.inner_rows.iter().map(|&r| av[r as usize]).sum::<f64>() / ds.inner_rows.len() as f64;
        assert!((mean_inner - 80.0).abs() < 3.0, "inner mean {mean_inner}");
        // Hold-out groups are pure normal.
        let holdout_rows: Vec<u32> = (5 * 2000..6 * 2000).map(|r| r as u32).collect();
        let mean_hold: f64 =
            holdout_rows.iter().map(|&r| av[r as usize]).sum::<f64>() / holdout_rows.len() as f64;
        assert!((mean_hold - 10.0).abs() < 1.5, "hold-out mean {mean_hold}");
    }

    #[test]
    fn fixed_cubes_are_respected() {
        let cubes = (vec![(20.0, 80.0), (20.0, 80.0)], vec![(40.0, 60.0), (40.0, 60.0)]);
        let cfg = SynthConfig { cubes: Some(cubes.clone()), ..SynthConfig::easy(2) };
        let ds = generate(cfg);
        assert_eq!(ds.outer_cube, cubes.0);
        assert_eq!(ds.inner_cube, cubes.1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(SynthConfig::easy(2).with_seed(5));
        let b = generate(SynthConfig::easy(2).with_seed(5));
        assert_eq!(a.table.num(1).unwrap(), b.table.num(1).unwrap());
        assert_eq!(a.outer_rows, b.outer_rows);
    }
}

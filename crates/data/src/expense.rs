//! EXPENSE: a simulator of the 2012 US presidential campaign-expense
//! dataset (§8.1, §8.4).
//!
//! The real FEC dump (116,448 rows, 14 attributes, cardinalities from 2 up
//! to ~18,000 recipient names) is not bundled; this simulator preserves
//! the schema shape, the cardinality profile (one huge-cardinality
//! attribute, two around 100, one around 2,000, several small), and the
//! planted explanation: on 7 spike days the Obama campaign's per-day
//! `SUM(disb_amt)` jumps above $10M, driven by `GMMB INC.` / `DC` /
//! `MEDIA BUY` media purchases filed mostly under `file_num 800316`
//! (average ≈ $2.7M) with a second report (`800317`) slightly lower, so
//! the `file_num` clause matters at high `c` and drops below `c ≈ 0.1` —
//! matching the paper's observed behavior.
//!
//! The query is `SELECT sum(disb_amt) ... GROUP BY date` (the
//! `candidate = 'Obama'` filter is materialized: the table contains only
//! Obama rows, as §3.1 models selections). Ground truth for F-scores is
//! "all tuples with an expense greater than $1.5M", as in §8.4.

use crate::rng::Rng;
use scorpion_table::{Field, Schema, Table, TableBuilder, Value};

/// EXPENSE simulator parameters.
#[derive(Debug, Clone)]
pub struct ExpenseConfig {
    /// Number of days (groups). The paper's data spans ~547 days.
    pub days: usize,
    /// Baseline expense rows per day.
    pub rows_per_day: usize,
    /// Number of spike days (paper: 7 days over $10M).
    pub spike_days: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExpenseConfig {
    fn default() -> Self {
        ExpenseConfig { days: 180, rows_per_day: 120, spike_days: 7, seed: 0xFEC }
    }
}

/// A generated EXPENSE dataset with labels and ground truth.
pub struct ExpenseDataset {
    /// Schema: `date` (group-by), `disb_amt` (aggregate), and ten
    /// discrete explanation attributes.
    pub table: Table,
    /// Generator parameters.
    pub config: ExpenseConfig,
    /// Group indices (days) labeled as outliers, error vector `<1>`.
    pub outlier_days: Vec<usize>,
    /// Group indices labeled as hold-outs (paper: 27 typical days).
    pub holdout_days: Vec<usize>,
    /// Ground truth: rows with `disb_amt > 1.5M`.
    pub big_expense_rows: Vec<u32>,
}

impl ExpenseDataset {
    /// All discrete explanation attributes (everything but `date` and
    /// `disb_amt`).
    pub fn explain_attrs(&self) -> Vec<usize> {
        (2..self.table.schema().len()).collect()
    }

    /// The aggregate attribute (`disb_amt`).
    pub fn agg_attr(&self) -> usize {
        1
    }

    /// The group-by attribute (`date`).
    pub fn group_attr(&self) -> usize {
        0
    }
}

const STATES: [&str; 20] = [
    "DC", "NY", "CA", "TX", "IL", "VA", "MA", "FL", "OH", "PA", "WA", "MI", "NC", "GA", "CO", "MN",
    "MO", "WI", "AZ", "OR",
];

const DESCS: [&str; 12] = [
    "PAYROLL",
    "TRAVEL",
    "CONSULTING",
    "POLLING",
    "RENT",
    "PRINTING",
    "CATERING",
    "PHONES",
    "ONLINE ADVERTISING",
    "POSTAGE",
    "SITE RENTAL",
    "OFFICE SUPPLIES",
];

const ORG_TYPES: [&str; 6] = ["CORP", "LLC", "INDIVIDUAL", "PARTNERSHIP", "NONPROFIT", "GOV"];

const ELECTION_TYPES: [&str; 3] = ["P2012", "G2012", "O2012"];

const PAYEE_TYPES: [&str; 5] = ["VENDOR", "STAFF", "MEDIA", "CONSULTANT", "OTHER"];

/// Generates an EXPENSE dataset.
pub fn generate(config: ExpenseConfig) -> ExpenseDataset {
    assert!(config.spike_days < config.days, "spike days must fit in the span");
    let mut rng = Rng::seeded(config.seed);
    let schema = Schema::new(vec![
        Field::disc("date"),
        Field::cont("disb_amt"),
        Field::disc("recipient_nm"),
        Field::disc("recipient_st"),
        Field::disc("recipient_city"),
        Field::disc("recipient_zip"),
        Field::disc("organization_tp"),
        Field::disc("disb_desc"),
        Field::disc("file_num"),
        Field::disc("election_tp"),
        Field::disc("memo_ind"),
        Field::disc("payee_tp"),
    ])
    .expect("unique field names");
    let mut b = TableBuilder::new(schema);
    b.reserve(config.days * config.rows_per_day);

    // Vendor pool with a heavy tail of names (the paper's recipient_nm
    // has ~18k distinct values; we scale with the row count).
    let n_vendors = (config.days * config.rows_per_day / 12).clamp(200, 18_000);
    let vendors: Vec<String> = (0..n_vendors).map(|i| format!("VENDOR {i:05}")).collect();
    let cities: Vec<String> = (0..300).map(|i| format!("CITY{i:03}")).collect();
    let zips: Vec<String> = (0..2000).map(|i| format!("Z{i:05}")).collect();
    let files: Vec<String> = (0..18).map(|i| format!("{}", 800300 + i)).collect();

    // Spike days cluster late in the span ("in June").
    let spike_start = config.days - config.days / 6 - config.spike_days;
    let spike_days: Vec<usize> = (0..config.spike_days).map(|i| spike_start + i).collect();

    let mut big_rows = Vec::new();
    let mut row: u32 = 0;
    for day in 0..config.days {
        let date = format!("d{day:04}");
        for _ in 0..config.rows_per_day {
            // Baseline expense: log-uniform-ish $10 .. $20k.
            let amt = 10.0 * (10.0f64).powf(rng.uniform(0.0, 3.3));
            push_expense(
                &mut b,
                &date,
                amt,
                &vendors[rng.index(vendors.len())],
                STATES[rng.index(STATES.len())],
                &cities[rng.index(cities.len())],
                &zips[rng.index(zips.len())],
                ORG_TYPES[rng.index(ORG_TYPES.len())],
                DESCS[rng.index(DESCS.len())],
                &files[rng.index(files.len())],
                ELECTION_TYPES[rng.index(ELECTION_TYPES.len())],
                if rng.chance(0.1) { "Y" } else { "N" },
                PAYEE_TYPES[rng.index(PAYEE_TYPES.len())],
            );
            if amt > 1_500_000.0 {
                big_rows.push(row);
            }
            row += 1;
        }
        if spike_days.contains(&day) {
            // The GMMB INC. media buys: report 800316 averages ~$2.7M,
            // report 800317 a bit lower.
            for i in 0..5 {
                let (file, amt) = if i < 3 {
                    ("800316", rng.uniform(1_900_000.0, 3_500_000.0))
                } else {
                    ("800317", rng.uniform(1_600_000.0, 2_600_000.0))
                };
                push_expense(
                    &mut b,
                    &date,
                    amt,
                    "GMMB INC.",
                    "DC",
                    "CITY000",
                    "Z00001",
                    "CORP",
                    "MEDIA BUY",
                    file,
                    "G2012",
                    "N",
                    "MEDIA",
                );
                if amt > 1_500_000.0 {
                    big_rows.push(row);
                }
                row += 1;
            }
            // A few non-GMMB media purchases below the ground-truth bar.
            for _ in 0..3 {
                let amt = rng.uniform(150_000.0, 900_000.0);
                push_expense(
                    &mut b,
                    &date,
                    amt,
                    &vendors[rng.index(vendors.len())],
                    "NY",
                    &cities[rng.index(cities.len())],
                    &zips[rng.index(zips.len())],
                    "CORP",
                    "MEDIA BUY",
                    &files[rng.index(files.len())],
                    "G2012",
                    "N",
                    "MEDIA",
                );
                row += 1;
            }
        }
    }

    // Hold-outs: 27 typical days spread over the pre-spike span.
    let n_holdouts = 27.min(spike_start);
    let holdout_days: Vec<usize> =
        (0..n_holdouts).map(|i| i * spike_start / n_holdouts.max(1)).collect();

    ExpenseDataset {
        table: b.build(),
        config,
        outlier_days: spike_days,
        holdout_days,
        big_expense_rows: big_rows,
    }
}

#[allow(clippy::too_many_arguments)]
fn push_expense(
    b: &mut TableBuilder,
    date: &str,
    amt: f64,
    vendor: &str,
    st: &str,
    city: &str,
    zip: &str,
    org: &str,
    desc: &str,
    file: &str,
    election: &str,
    memo: &str,
    payee: &str,
) {
    b.push_row(vec![
        Value::Str(date.to_owned()),
        Value::Num(amt),
        Value::Str(vendor.to_owned()),
        Value::Str(st.to_owned()),
        Value::Str(city.to_owned()),
        Value::Str(zip.to_owned()),
        Value::Str(org.to_owned()),
        Value::Str(desc.to_owned()),
        Value::Str(file.to_owned()),
        Value::Str(election.to_owned()),
        Value::Str(memo.to_owned()),
        Value::Str(payee.to_owned()),
    ])
    .expect("schema match");
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_table::{aggregate_groups, group_by};

    #[test]
    fn spike_days_exceed_10m_typical_days_do_not() {
        let ds = generate(ExpenseConfig::default());
        let g = group_by(&ds.table, &[0]).unwrap();
        let sums = aggregate_groups(&ds.table, &g, 1, |v| v.iter().sum()).unwrap();
        for &d in &ds.outlier_days {
            assert!(sums[d] > 10_000_000.0, "day {d} sum {}", sums[d]);
        }
        for &d in &ds.holdout_days {
            assert!(sums[d] < 1_500_000.0, "day {d} sum {}", sums[d]);
        }
    }

    #[test]
    fn ground_truth_is_gmmb_only() {
        let ds = generate(ExpenseConfig::default());
        assert!(!ds.big_expense_rows.is_empty());
        let nm = ds.table.cat(2).unwrap();
        let gmmb = nm.code_of("GMMB INC.").unwrap();
        let mut gmmb_count = 0;
        for &r in &ds.big_expense_rows {
            // Baseline expenses cap at ~$20k, so >$1.5M rows are GMMB.
            assert_eq!(nm.codes()[r as usize], gmmb);
            gmmb_count += 1;
        }
        assert_eq!(gmmb_count, ds.outlier_days.len() * 5);
    }

    #[test]
    fn cardinality_profile_matches_paper_shape() {
        let ds = generate(ExpenseConfig::default());
        let card = |a: usize| ds.table.cat(a).unwrap().cardinality();
        assert!(card(2) >= 200, "recipient_nm cardinality {}", card(2));
        assert!(card(3) <= 30); // states
        assert!((50..=2000).contains(&card(5)), "zip {}", card(5));
        assert!(card(7) <= 20); // disb_desc
        assert_eq!(card(10), 2); // memo Y/N
    }

    #[test]
    fn labels_are_disjoint_and_in_range() {
        let ds = generate(ExpenseConfig::default());
        let g = group_by(&ds.table, &[0]).unwrap();
        for &d in ds.outlier_days.iter().chain(&ds.holdout_days) {
            assert!(d < g.len());
        }
        for d in &ds.holdout_days {
            assert!(!ds.outlier_days.contains(d));
        }
        assert_eq!(ds.outlier_days.len(), 7);
    }

    #[test]
    fn file_800316_averages_higher_than_800317() {
        let ds = generate(ExpenseConfig::default());
        let amt = ds.table.num(1).unwrap();
        let file = ds.table.cat(8).unwrap();
        let f316 = file.code_of("800316").unwrap();
        let f317 = file.code_of("800317").unwrap();
        let nm = ds.table.cat(2).unwrap();
        let gmmb = nm.code_of("GMMB INC.").unwrap();
        let mean_of = |code: u32| {
            let rows: Vec<usize> = (0..ds.table.len())
                .filter(|&r| file.codes()[r] == code && nm.codes()[r] == gmmb)
                .collect();
            rows.iter().map(|&r| amt[r]).sum::<f64>() / rows.len() as f64
        };
        assert!(mean_of(f316) > mean_of(f317));
        assert!(mean_of(f316) > 2_000_000.0);
    }
}

//! # scorpion-data
//!
//! Workload generators for the Scorpion evaluation (§8.1):
//!
//! * [`synth`] — the SYNTH ground-truth workload: `SUM(Av) GROUP BY Ad`
//!   with nested random hyper-cubes of medium- and high-valued outliers
//!   (Easy µ=80 / Hard µ=30, 2–4 dimensions).
//! * [`intel`] — a simulator of the Intel Lab sensor deployment with the
//!   two documented failure modes (dying sensor 15, battery-drained
//!   sensor 18). The real 2.3M-row trace is not redistributable; the
//!   simulator plants the same failure signatures (see DESIGN.md,
//!   "Substitutions").
//! * [`expense`] — a simulator of the 2012 campaign-expense dataset with
//!   the paper's cardinality profile and the GMMB INC. media-buy spikes.
//! * [`stream`] — an infinite chunked sensor feed with injectable
//!   dropout/drift anomaly episodes, feeding the `scorpion-stream`
//!   continuous engine.
//!
//! All generators are deterministic given their seed and return labeled
//! groups plus ground-truth row sets for precision/recall scoring.

#![warn(missing_docs)]

pub mod expense;
pub mod intel;
pub mod rng;
pub mod stream;
pub mod synth;

pub use expense::{ExpenseConfig, ExpenseDataset};
pub use intel::{FailureMode, IntelConfig, IntelDataset};
pub use rng::Rng;
pub use stream::{Episode, EpisodeKind, FeedChunk, FeedConfig, SensorFeed};
pub use synth::{SynthConfig, SynthDataset};

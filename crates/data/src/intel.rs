//! INTEL: a simulator of the Intel Lab sensor deployment (§8.1, §8.4).
//!
//! The real dataset (2.3M rows, 61 motes) is not available offline; this
//! simulator reproduces the two failure signatures the paper's INTEL
//! workloads are defined by, on top of a realistic diurnal model:
//!
//! * **Workload 1 — dying sensor**: sensor 15 starts "dying and
//!   generating temperatures above 100°C". Scorpion should return
//!   `sensorid = 15`, refining to a `light`/`voltage` clause at `c → 1`
//!   (the paper reports `light ∈ [0, 923] ∧ voltage ∈ [2.307, 2.33] ∧
//!   sensorid = 15`).
//! * **Workload 2 — battery drain**: sensor 18 "starts to lose battery
//!   power, indicated by low voltage readings, which causes above 100°C
//!   temperature readings"; the readings are *particularly* high (≈122°C)
//!   when light ∈ [283, 354]. Scorpion should return
//!   `light ∈ [283, 354] ∧ sensorid = 18` at `c = 1` and `sensorid = 18`
//!   at lower `c`.
//!
//! The query is `SELECT STDDEV(temp) GROUP BY hour`; failure hours are the
//! outliers ("too high"), normal hours the hold-outs.

use crate::rng::Rng;
use scorpion_table::{Field, Schema, Table, TableBuilder, Value};

/// Which failure the simulation injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Workload 1: a sensor dies and emits >100°C readings with a low
    /// light / low voltage signature.
    DyingSensor,
    /// Workload 2: battery drain — low voltage, 90–122°C readings,
    /// hottest when light ∈ [283, 354).
    BatteryDrain,
}

/// INTEL simulator parameters.
#[derive(Debug, Clone)]
pub struct IntelConfig {
    /// Number of motes (paper: 61).
    pub n_sensors: usize,
    /// Number of simulated hours (groups).
    pub hours: usize,
    /// Readings per sensor per hour.
    pub readings_per_hour: usize,
    /// The injected failure.
    pub failure: FailureMode,
    /// Hour at which the failure starts.
    pub failure_start: usize,
    /// Number of failure hours.
    pub failure_hours: usize,
    /// RNG seed.
    pub seed: u64,
}

impl IntelConfig {
    /// Workload 1 defaults: 20 outlier hours, sensor 15 dying.
    pub fn workload1() -> Self {
        IntelConfig {
            n_sensors: 61,
            hours: 72,
            readings_per_hour: 4,
            failure: FailureMode::DyingSensor,
            failure_start: 40,
            failure_hours: 20,
            seed: 0x17E1,
        }
    }

    /// Workload 2 defaults: battery drain on sensor 18.
    pub fn workload2() -> Self {
        IntelConfig {
            failure: FailureMode::BatteryDrain,
            failure_start: 30,
            failure_hours: 30,
            seed: 0x17E2,
            ..IntelConfig::workload1()
        }
    }
}

/// The failing sensor id per workload (paper: 15 and 18).
pub fn failing_sensor(mode: FailureMode) -> usize {
    match mode {
        FailureMode::DyingSensor => 15,
        FailureMode::BatteryDrain => 18,
    }
}

/// A generated INTEL dataset with labels and ground truth.
pub struct IntelDataset {
    /// Schema: `hour` (discrete), `sensorid` (discrete), `voltage`,
    /// `humidity`, `light`, `temp` (continuous).
    pub table: Table,
    /// Generator parameters.
    pub config: IntelConfig,
    /// Group indices (hours) labeled as outliers, error vector `<1>`.
    pub outlier_hours: Vec<usize>,
    /// Group indices labeled as hold-outs.
    pub holdout_hours: Vec<usize>,
    /// Ground-truth rows: the failing sensor's anomalous readings.
    pub failing_rows: Vec<u32>,
}

impl IntelDataset {
    /// Explanation attributes: sensorid, voltage, humidity, light
    /// (the paper uses these four).
    pub fn explain_attrs(&self) -> Vec<usize> {
        vec![1, 2, 3, 4]
    }

    /// The aggregate attribute (`temp`).
    pub fn agg_attr(&self) -> usize {
        5
    }

    /// The group-by attribute (`hour`).
    pub fn group_attr(&self) -> usize {
        0
    }
}

/// Generates an INTEL dataset.
pub fn generate(config: IntelConfig) -> IntelDataset {
    let mut rng = Rng::seeded(config.seed);
    let schema = Schema::new(vec![
        Field::disc("hour"),
        Field::disc("sensorid"),
        Field::cont("voltage"),
        Field::cont("humidity"),
        Field::cont("light"),
        Field::cont("temp"),
    ])
    .expect("unique field names");
    let mut b = TableBuilder::new(schema);
    b.reserve(config.hours * config.n_sensors * config.readings_per_hour);

    assert!(config.failure_start < config.hours, "failure must start within the simulated span");
    let bad_sensor = failing_sensor(config.failure);
    // Clip the failure window to the simulated span.
    let failure_end = (config.failure_start + config.failure_hours).min(config.hours);
    let mut failing_rows = Vec::new();
    let mut row: u32 = 0;

    for hour in 0..config.hours {
        let key = format!("h{hour:03}");
        let tod = (hour % 24) as f64;
        // Diurnal baselines.
        let base_temp = 18.0 + 6.0 * ((tod - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        let day = (6.0..19.0).contains(&tod);
        for sensor in 0..config.n_sensors {
            let sid = format!("s{sensor:02}");
            let failing =
                sensor == bad_sensor && hour >= config.failure_start && hour < failure_end;
            for _ in 0..config.readings_per_hour {
                let (voltage, humidity, light, temp);
                if failing {
                    match config.failure {
                        FailureMode::DyingSensor => {
                            // Dying sensor: hot garbage readings, the
                            // §8.4 voltage/light signature.
                            voltage = rng.uniform(2.307, 2.33);
                            light = rng.uniform(0.0, 200.0);
                            humidity = rng.uniform(0.0, 10.0);
                            temp = rng.uniform(100.0, 130.0);
                        }
                        FailureMode::BatteryDrain => {
                            voltage = rng.uniform(2.25, 2.39);
                            light = rng.uniform(250.0, 400.0);
                            humidity = rng.normal(30.0, 3.0);
                            // Paper: 90–122°C, peaking at ~122 when
                            // light ∈ [283, 354).
                            temp = if (283.0..354.0).contains(&light) {
                                rng.normal(120.0, 2.0).clamp(114.0, 122.0)
                            } else {
                                rng.normal(96.0, 3.0).clamp(90.0, 108.0)
                            };
                        }
                    }
                    failing_rows.push(row);
                } else {
                    voltage = rng.normal(2.68, 0.02).clamp(2.5, 2.8);
                    humidity = rng.normal(35.0, 4.0);
                    light = if day { rng.uniform(200.0, 600.0) } else { rng.uniform(0.0, 50.0) };
                    temp = base_temp + sensor as f64 * 0.02 + rng.normal(0.0, 0.6);
                }
                b.push_row(vec![
                    Value::Str(key.clone()),
                    Value::Str(sid.clone()),
                    Value::Num(voltage),
                    Value::Num(humidity),
                    Value::Num(light),
                    Value::Num(temp),
                ])
                .expect("schema match");
                row += 1;
            }
        }
    }

    // Labels: failure hours are outliers; hold-outs are sampled from the
    // pre-failure normal hours (the paper labels 13–21 hold-outs).
    let outlier_hours: Vec<usize> = (config.failure_start..failure_end).collect();
    let n_holdouts = 13.min(config.failure_start);
    let holdout_hours: Vec<usize> = (0..config.failure_start).rev().take(n_holdouts).collect();

    IntelDataset { table: b.build(), config, outlier_hours, holdout_hours, failing_rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_table::group_by;

    #[test]
    fn shape_and_grouping() {
        let cfg = IntelConfig { hours: 48, ..IntelConfig::workload1() };
        let expected = cfg.hours * cfg.n_sensors * cfg.readings_per_hour;
        let ds = generate(cfg);
        assert_eq!(ds.table.len(), expected);
        let g = group_by(&ds.table, &[0]).unwrap();
        assert_eq!(g.len(), 48);
    }

    #[test]
    fn failure_raises_stddev_in_outlier_hours() {
        let ds = generate(IntelConfig::workload1());
        let g = group_by(&ds.table, &[0]).unwrap();
        let temps = ds.table.num(5).unwrap();
        let stddev = |rows: &[u32]| {
            let n = rows.len() as f64;
            let mean = rows.iter().map(|&r| temps[r as usize]).sum::<f64>() / n;
            (rows.iter().map(|&r| (temps[r as usize] - mean).powi(2)).sum::<f64>() / n).sqrt()
        };
        let outlier_sd = stddev(g.rows(ds.outlier_hours[0]));
        let normal_sd = stddev(g.rows(ds.holdout_hours[0]));
        assert!(outlier_sd > 4.0 * normal_sd, "outlier sd {outlier_sd} vs normal {normal_sd}");
    }

    #[test]
    fn ground_truth_rows_belong_to_failing_sensor() {
        for cfg in [IntelConfig::workload1(), IntelConfig::workload2()] {
            let bad = failing_sensor(cfg.failure);
            let ds = generate(cfg);
            assert!(!ds.failing_rows.is_empty());
            let cat = ds.table.cat(1).unwrap();
            let bad_code = cat.code_of(&format!("s{bad:02}")).unwrap();
            for &r in &ds.failing_rows {
                assert_eq!(cat.codes()[r as usize], bad_code);
                assert!(ds.table.num(5).unwrap()[r as usize] > 85.0);
            }
        }
    }

    #[test]
    fn labels_do_not_overlap() {
        let ds = generate(IntelConfig::workload2());
        for h in &ds.holdout_hours {
            assert!(!ds.outlier_hours.contains(h));
        }
        assert_eq!(ds.outlier_hours.len(), ds.config.failure_hours);
        assert!(!ds.holdout_hours.is_empty());
    }

    #[test]
    fn failure_window_is_clipped_to_span() {
        let cfg = IntelConfig { hours: 48, ..IntelConfig::workload1() };
        let ds = generate(cfg);
        assert!(ds.outlier_hours.iter().all(|&h| h < 48));
        assert!(!ds.outlier_hours.is_empty());
    }

    #[test]
    fn battery_drain_has_light_band_signature() {
        let ds = generate(IntelConfig::workload2());
        let light = ds.table.num(4).unwrap();
        let temp = ds.table.num(5).unwrap();
        let (mut in_band, mut out_band) = (Vec::new(), Vec::new());
        for &r in &ds.failing_rows {
            let l = light[r as usize];
            if (283.0..354.0).contains(&l) {
                in_band.push(temp[r as usize]);
            } else {
                out_band.push(temp[r as usize]);
            }
        }
        assert!(!in_band.is_empty() && !out_band.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&in_band) > mean(&out_band) + 15.0);
    }

    #[test]
    fn dying_sensor_voltage_signature() {
        let ds = generate(IntelConfig::workload1());
        let v = ds.table.num(2).unwrap();
        for &r in &ds.failing_rows {
            assert!((2.307..2.33).contains(&v[r as usize]));
        }
    }
}

//! Seeded random sampling helpers.
//!
//! The approved offline dependency set includes `rand` but not
//! `rand_distr`, so gaussian sampling (needed by the SYNTH generator's
//! `N(µ, 10)` value distributions) is implemented here via the Box–Muller
//! transform. All generators in this crate are deterministic given their
//! seed.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seeded random source with uniform and gaussian sampling.
pub struct Rng {
    inner: StdRng,
    spare: Option<f64>,
}

impl Rng {
    /// Creates a deterministic source from a seed.
    pub fn seeded(seed: u64) -> Self {
        Rng { inner: StdRng::seed_from_u64(seed), spare: None }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo == hi {
            return lo;
        }
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_range(0.0..1.0) < p
    }

    /// Standard-normal sample via Box–Muller (with spare caching).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - self.inner.random_range(0.0..1.0);
        let u2: f64 = self.inner.random_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Gaussian sample `N(mean, std)`. `std = 0` returns `mean` exactly
    /// (used by the §8.3.2 zero-variance re-run).
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        if std == 0.0 {
            return mean;
        }
        mean + std * self.std_normal()
    }

    /// Picks a uniformly random element.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seeded(7);
        let mut b = Rng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
            assert_eq!(a.normal(5.0, 2.0), b.normal(5.0, 2.0));
            assert_eq!(a.index(10), b.index(10));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(2);
        let xa: Vec<f64> = (0..10).map(|_| a.uniform(0.0, 1.0)).collect();
        let xb: Vec<f64> = (0..10).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = Rng::seeded(3);
        for _ in 0..1000 {
            let v = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
        assert_eq!(r.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = Rng::seeded(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn zero_std_is_exact() {
        let mut r = Rng::seeded(5);
        assert_eq!(r.normal(42.0, 0.0), 42.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seeded(9);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn pick_covers_all_elements_eventually() {
        let mut r = Rng::seeded(13);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*r.pick(&xs) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! §6.4 Dimensionality reduction: automatic explanation-attribute
//! selection.
//!
//! The paper applies filter-based feature selection "by computing
//! correlation or mutual information scores" but defers the automatic
//! variant to future work, relying on users to drop attributes manually.
//! This module implements the automatic filter: attributes are ranked by
//! how strongly they associate with the *per-tuple influence* signal over
//! the outlier input groups —
//!
//! * continuous attributes: absolute Pearson correlation between the
//!   attribute and the tuple influences;
//! * discrete attributes: the ANOVA-style between-group variance ratio
//!   (η², "correlation ratio") of influences grouped by code.
//!
//! Both scores live in `[0, 1]`; an attribute that carries no information
//! about which tuples are influential scores near 0 and can be dropped
//! before the (exponential-in-attributes) predicate search begins.

use crate::error::Result;
use crate::scorer::Scorer;
use scorpion_table::Column;
use std::collections::HashMap;

/// An attribute with its influence-association score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrScore {
    /// Attribute index.
    pub attr: usize,
    /// Association with the influence signal, in `[0, 1]`.
    pub score: f64,
}

/// Scores each candidate attribute's association with per-tuple influence
/// over the outlier groups, descending.
pub fn rank_attributes(scorer: &Scorer<'_>, attrs: &[usize]) -> Result<Vec<AttrScore>> {
    // Pool (row, influence) pairs across outlier groups.
    let mut rows: Vec<u32> = Vec::new();
    let mut infs: Vec<f64> = Vec::new();
    for g in 0..scorer.n_outliers() {
        rows.extend_from_slice(scorer.outlier_rows(g));
        infs.extend(scorer.outlier_tuple_influences(g));
    }
    let mut out = Vec::with_capacity(attrs.len());
    for &attr in attrs {
        let score = match scorer.table().column(attr)? {
            Column::Num(vals) => {
                let xs: Vec<f64> = rows.iter().map(|&r| vals[r as usize]).collect();
                pearson(&xs, &infs).abs()
            }
            Column::Cat(cat) => {
                let codes: Vec<u32> = rows.iter().map(|&r| cat.codes()[r as usize]).collect();
                correlation_ratio(&codes, &infs)
            }
        };
        out.push(AttrScore { attr, score: if score.is_finite() { score } else { 0.0 } });
    }
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.attr.cmp(&b.attr)));
    Ok(out)
}

/// Keeps the `k` most influence-associated attributes.
pub fn select_attributes(scorer: &Scorer<'_>, attrs: &[usize], k: usize) -> Result<Vec<usize>> {
    let ranked = rank_attributes(scorer, attrs)?;
    Ok(ranked.into_iter().take(k.max(1)).map(|a| a.attr).collect())
}

/// Pearson correlation coefficient; 0 for degenerate inputs.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 2 || xs.len() != ys.len() {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (x, y) in xs.iter().zip(ys) {
        let (dx, dy) = (x - mx, y - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// η²: the fraction of influence variance explained by the grouping into
/// codes (between-group sum of squares over total sum of squares).
fn correlation_ratio(codes: &[u32], ys: &[f64]) -> f64 {
    if codes.len() < 2 || codes.len() != ys.len() {
        return 0.0;
    }
    let n = ys.len() as f64;
    let mean = ys.iter().sum::<f64>() / n;
    let total_ss: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
    if total_ss <= 0.0 {
        return 0.0;
    }
    let mut groups: HashMap<u32, (f64, f64)> = HashMap::new(); // code -> (sum, n)
    for (c, y) in codes.iter().zip(ys) {
        let e = groups.entry(*c).or_insert((0.0, 0.0));
        e.0 += y;
        e.1 += 1.0;
    }
    let between_ss: f64 = groups
        .values()
        .map(|(sum, cnt)| {
            let gm = sum / cnt;
            cnt * (gm - mean) * (gm - mean)
        })
        .sum();
    (between_ss / total_ss).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfluenceParams;
    use crate::scorer::GroupSpec;
    use scorpion_agg::Sum;
    use scorpion_table::{group_by, Field, Schema, Table, TableBuilder, Value};

    /// `x` drives the outlier values; `noise` (continuous) and `tag`
    /// (discrete) are uninformative.
    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::disc("g"),
            Field::cont("x"),
            Field::cont("noise"),
            Field::disc("tag"),
            Field::disc("culprit"),
            Field::cont("v"),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..400 {
            let x = (i as f64 * 7.7) % 100.0;
            let noise = (i as f64 * 13.1) % 50.0;
            let tag = ["a", "b"][i % 2];
            let hot = (30.0..60.0).contains(&x);
            let culprit = if hot { "bad" } else { "good" };
            let v = if hot { 90.0 } else { 5.0 };
            b.push_row(vec![
                Value::from("o"),
                Value::from(x),
                Value::from(noise),
                Value::from(tag),
                Value::from(culprit),
                Value::from(v),
            ])
            .unwrap();
        }
        b.build()
    }

    fn scorer(t: &Table) -> Scorer<'_> {
        let g = group_by(t, &[0]).unwrap();
        Scorer::new(
            t,
            &Sum,
            5,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![],
            InfluenceParams::default(),
            false,
        )
        .unwrap()
    }

    #[test]
    fn culprit_and_x_outrank_noise_and_tag() {
        let t = table();
        let s = scorer(&t);
        let ranked = rank_attributes(&s, &[1, 2, 3, 4]).unwrap();
        let score_of = |attr: usize| ranked.iter().find(|a| a.attr == attr).unwrap().score;
        // The discrete culprit flag perfectly explains influence.
        assert!(score_of(4) > 0.95, "culprit score {}", score_of(4));
        // Uninformative attributes score near zero.
        assert!(score_of(2) < 0.2, "noise score {}", score_of(2));
        assert!(score_of(3) < 0.2, "tag score {}", score_of(3));
        // And the ranking reflects it.
        assert_eq!(ranked[0].attr, 4);
    }

    #[test]
    fn select_keeps_top_k() {
        let t = table();
        let s = scorer(&t);
        let kept = select_attributes(&s, &[1, 2, 3, 4], 2).unwrap();
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&4));
        assert!(!kept.contains(&2) || !kept.contains(&3));
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0); // zero variance
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0); // degenerate
    }

    #[test]
    fn correlation_ratio_basics() {
        // Codes perfectly separate ys.
        let eta = correlation_ratio(&[0, 0, 1, 1], &[1.0, 1.0, 5.0, 5.0]);
        assert!((eta - 1.0).abs() < 1e-12);
        // Codes carry no information.
        let eta = correlation_ratio(&[0, 1, 0, 1], &[1.0, 1.0, 5.0, 5.0]);
        assert!(eta < 1e-12);
        // Constant ys.
        assert_eq!(correlation_ratio(&[0, 1], &[3.0, 3.0]), 0.0);
    }
}

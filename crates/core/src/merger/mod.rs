//! The Merger (§4.3): greedily expands high-influence predicates by
//! merging them with adjacent predicates while influence increases.
//!
//! Two optimizations from §6.3:
//!
//! 1. **Top-quartile expansion** — only predicates whose influence lies in
//!    the top quartile of the input ranking are expanded as seeds.
//! 2. **Cached-tuple approximation** — for incrementally removable
//!    aggregates, the influence of a merged box is *estimated* from each
//!    input partition's cardinality and cached mean-influence tuple,
//!    weighted by the volume each partition contributes to the merged box
//!    (Figure 7), avoiding Scorer calls entirely during expansion. Final
//!    results are re-scored exactly.
//!
//! Deviation note: the paper's contribution formula divides by `V_{p*}`;
//! we use the standard uniform-density estimate
//! `n_i = N_i · V(p_i ∩ p*) / V(p_i)` (the count of `p_i`'s tuples that
//! fall inside the merged box under uniformity), which is exact when the
//! merged box fully covers each input partition — DT partitions tile the
//! space disjointly, so the paper's `0.5·V₁₂` double-count correction for
//! overlapping partitions never triggers and is omitted.

use crate::config::MergerConfig;
use crate::error::Result;
use crate::result::{GroupStat, PartitionStats, ScoredPredicate};
use crate::scorer::Scorer;
use scorpion_agg::AggState;
use scorpion_obs::span;
use scorpion_table::{AttrDomain, Predicate};
use std::collections::HashSet;

/// Greedy bounding-box merger over scored predicates.
pub struct Merger<'s, 'a> {
    scorer: &'s Scorer<'a>,
    domains: &'s [AttrDomain],
    cfg: MergerConfig,
}

/// Counters describing one merge run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeDiag {
    /// Number of seeds expanded.
    pub seeds: usize,
    /// Number of accepted merge steps.
    pub merges: usize,
    /// Number of influence estimates served by the cached-tuple
    /// approximation (zero when the optimization is off).
    pub approx_estimates: u64,
    /// Number of exact Scorer evaluations during expansion.
    pub exact_estimates: u64,
}

impl<'s, 'a> Merger<'s, 'a> {
    /// Creates a merger bound to a scorer and the table's attribute
    /// domains.
    pub fn new(scorer: &'s Scorer<'a>, domains: &'s [AttrDomain], cfg: MergerConfig) -> Self {
        Merger { scorer, domains, cfg }
    }

    /// Merges the ranked input list, returning a ranked result list
    /// (exactly scored, best first) and diagnostics.
    pub fn merge(&self, input: Vec<ScoredPredicate>) -> Result<(Vec<ScoredPredicate>, MergeDiag)> {
        let _span = span!("merge");
        let mut diag = MergeDiag::default();
        if input.is_empty() {
            return Ok((Vec::new(), diag));
        }
        // Rank and dedup.
        let mut items = dedup_by_predicate(input);
        items.sort_by(|a, b| b.influence.total_cmp(&a.influence));

        let approx_ok = self.cfg.use_cached_tuples
            && self.scorer.is_incremental()
            && items.iter().all(|i| i.stats.is_some());

        let n_seeds =
            if self.cfg.top_quartile_only { (items.len().div_ceil(4)).max(1) } else { items.len() };

        let mut consumed = vec![false; items.len()];
        let mut results: Vec<ScoredPredicate> = Vec::new();

        for seed in 0..n_seeds {
            if consumed[seed] {
                continue;
            }
            consumed[seed] = true;
            diag.seeds += 1;
            let _span = span!("merge.pass");
            let mut cur = items[seed].clone();
            for _ in 0..self.cfg.max_expansions {
                let mut best: Option<(usize, ScoredPredicate)> = None;
                for (j, cand) in items.iter().enumerate() {
                    if consumed[j]
                        || !cur.predicate.is_adjacent(
                            &cand.predicate,
                            self.domains,
                            self.cfg.adjacency_eps,
                        )
                    {
                        continue;
                    }
                    if self.cfg.require_same_attrs
                        && !cur.predicate.attrs().eq(cand.predicate.attrs())
                    {
                        continue;
                    }
                    let merged_pred = cur.predicate.hull(&cand.predicate);
                    if merged_pred == cur.predicate {
                        // Candidate already inside the current box; absorb
                        // it without re-estimating.
                        consumed[j] = true;
                        continue;
                    }
                    let est = if approx_ok {
                        diag.approx_estimates += 1;
                        self.estimate_from_stats(&merged_pred, &items)?
                    } else {
                        diag.exact_estimates += 1;
                        let inf = self.scorer.influence(&merged_pred)?;
                        (inf, None)
                    };
                    if est.0 > cur.influence
                        && best.as_ref().is_none_or(|(_, b)| est.0 > b.influence)
                    {
                        best = Some((
                            j,
                            ScoredPredicate {
                                predicate: merged_pred,
                                influence: est.0,
                                stats: est.1,
                            },
                        ));
                    }
                }
                match best {
                    Some((j, merged)) => {
                        consumed[j] = true;
                        diag.merges += 1;
                        cur = merged;
                    }
                    None => break,
                }
            }
            results.push(cur);
        }

        // Unexpanded, unconsumed predicates pass through unchanged.
        for (j, item) in items.into_iter().enumerate() {
            if !consumed[j] {
                results.push(item);
            }
        }

        // Re-score the head of the ranking exactly (approximate scores are
        // only trusted for steering the expansion), and simplify away
        // clauses that span an attribute's full domain.
        results.sort_by(|a, b| b.influence.total_cmp(&a.influence));
        results.truncate(self.cfg.max_results.max(1));
        for r in &mut results {
            r.predicate = r.predicate.simplify(self.domains);
            r.influence = self.scorer.influence(&r.predicate)?;
        }
        results.sort_by(|a, b| b.influence.total_cmp(&a.influence));
        let results = dedup_by_predicate(results);
        Ok((results, diag))
    }

    /// §6.3 cached-tuple estimate of `merged`'s influence, built from the
    /// volume-weighted contributions of every input partition.
    fn estimate_from_stats(
        &self,
        merged: &Predicate,
        items: &[ScoredPredicate],
    ) -> Result<(f64, Option<PartitionStats>)> {
        let inc = self.scorer.incremental_agg().expect("approx requires incremental");
        let n_out = self.scorer.n_outliers();
        let n_hold = self.scorer.n_holdouts();
        let mut out: Vec<(f64, AggState)> = vec![(0.0, AggState::zero(inc.state_len())); n_out];
        let mut hold: Vec<(f64, AggState)> = vec![(0.0, AggState::zero(inc.state_len())); n_hold];
        // Accumulators for the merged partition's own stats (weighted mean
        // of representative values).
        let mut rep_out = vec![0.0f64; n_out];
        let mut rep_hold = vec![0.0f64; n_hold];

        for item in items {
            let Some(stats) = &item.stats else { continue };
            let Some(inter) = item.predicate.intersect(merged) else { continue };
            let item_vol = item.predicate.volume_fraction(self.domains);
            if item_vol <= 0.0 {
                continue;
            }
            let frac = (inter.volume_fraction(self.domains) / item_vol).clamp(0.0, 1.0);
            if frac <= 0.0 {
                continue;
            }
            for (g, st) in stats.outlier.iter().enumerate() {
                let n_i = st.n * frac;
                if n_i > 0.0 {
                    out[g].0 += n_i;
                    out[g].1.accumulate(&inc.scale(&inc.state_one(st.rep_value), n_i));
                    rep_out[g] += st.rep_value * n_i;
                }
            }
            for (g, st) in stats.holdout.iter().enumerate() {
                let n_i = st.n * frac;
                if n_i > 0.0 {
                    hold[g].0 += n_i;
                    hold[g].1.accumulate(&inc.scale(&inc.state_one(st.rep_value), n_i));
                    rep_hold[g] += st.rep_value * n_i;
                }
            }
        }
        let influence = self.scorer.influence_from_states(&out, &hold)?;
        let stats = PartitionStats {
            outlier: out
                .iter()
                .zip(&rep_out)
                .map(|((n, _), rep)| GroupStat {
                    n: *n,
                    rep_value: if *n > 0.0 { rep / n } else { 0.0 },
                })
                .collect(),
            holdout: hold
                .iter()
                .zip(&rep_hold)
                .map(|((n, _), rep)| GroupStat {
                    n: *n,
                    rep_value: if *n > 0.0 { rep / n } else { 0.0 },
                })
                .collect(),
        };
        Ok((influence, Some(stats)))
    }
}

/// Removes duplicate predicates, keeping the first (highest-scored after
/// sorting) occurrence.
fn dedup_by_predicate(input: Vec<ScoredPredicate>) -> Vec<ScoredPredicate> {
    let mut seen: HashSet<Predicate> = HashSet::with_capacity(input.len());
    input.into_iter().filter(|sp| seen.insert(sp.predicate.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfluenceParams;
    use crate::scorer::GroupSpec;
    use scorpion_agg::Avg;
    use scorpion_table::{domains_of, group_by, Clause, Field, Schema, Table, TableBuilder, Value};

    /// One outlier group, one hold-out group over x ∈ [0, 10). In the
    /// outlier group, tuples with x ∈ [2, 6) have value 100 (split across
    /// two partitions [2,4) and [4,6) that the Merger should recombine);
    /// the rest are 10. Hold-out is uniform 10.
    fn table() -> Table {
        let schema =
            Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..100 {
            let x = i as f64 * 0.1;
            let v = if (2.0..6.0).contains(&x) { 100.0 } else { 10.0 };
            b.push_row(vec![Value::from("o"), Value::from(x), Value::from(v)]).unwrap();
            b.push_row(vec![Value::from("h"), Value::from(x), Value::from(10.0)]).unwrap();
        }
        b.build()
    }

    fn scorer(t: &Table) -> Scorer<'_> {
        let g = group_by(t, &[0]).unwrap();
        Scorer::new(
            t,
            &Avg,
            2,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 }],
            InfluenceParams { lambda: 0.8, c: 0.0 },
            false,
        )
        .unwrap()
    }

    fn part(t: &Table, s: &Scorer<'_>, lo: f64, hi: f64) -> ScoredPredicate {
        let pred = Predicate::conjunction([Clause::range(1, lo, hi)]).unwrap();
        let inf = s.influence(&pred).unwrap();
        // Stats: exact cardinality and representative value per group.
        let x = t.num(1).unwrap();
        let v = t.num(2).unwrap();
        let stat_of = |rows: &[u32]| {
            let matched: Vec<u32> =
                rows.iter().copied().filter(|&r| (lo..hi).contains(&x[r as usize])).collect();
            let n = matched.len() as f64;
            let rep = if matched.is_empty() { 0.0 } else { v[matched[matched.len() / 2] as usize] };
            GroupStat { n, rep_value: rep }
        };
        let g = group_by(t, &[0]).unwrap();
        ScoredPredicate {
            predicate: pred,
            influence: inf,
            stats: Some(PartitionStats {
                outlier: vec![stat_of(g.rows(0))],
                holdout: vec![stat_of(g.rows(1))],
            }),
        }
    }

    fn partition_grid(t: &Table, s: &Scorer<'_>) -> Vec<ScoredPredicate> {
        (0..5).map(|i| part(t, s, i as f64 * 2.0, (i + 1) as f64 * 2.0)).collect()
    }

    #[test]
    fn merges_adjacent_hot_partitions_exact() {
        let t = table();
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        let cfg = MergerConfig {
            use_cached_tuples: false,
            top_quartile_only: false,
            ..MergerConfig::default()
        };
        let (merged, diag) = Merger::new(&s, &d, cfg).merge(partition_grid(&t, &s)).unwrap();
        assert!(diag.merges >= 1, "{diag:?}");
        let best = &merged[0];
        // Best box must cover [2, 6) and exclude the cold ends.
        let clause = best.predicate.clause(1).unwrap();
        assert!(clause.matches_num(2.5) && clause.matches_num(5.5), "{clause:?}");
        assert!(!clause.matches_num(0.5) && !clause.matches_num(9.5), "{clause:?}");
        // Output is ranked.
        for w in merged.windows(2) {
            assert!(w[0].influence >= w[1].influence);
        }
    }

    #[test]
    fn approximation_steers_to_same_box_without_scorer_calls() {
        let t = table();
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        let cfg = MergerConfig {
            use_cached_tuples: true,
            top_quartile_only: false,
            ..MergerConfig::default()
        };
        let before = s.scorer_calls();
        let (merged, diag) = Merger::new(&s, &d, cfg).merge(partition_grid(&t, &s)).unwrap();
        assert!(diag.approx_estimates > 0);
        assert_eq!(diag.exact_estimates, 0);
        let clause = merged[0].predicate.clause(1).unwrap();
        assert!(clause.matches_num(2.5) && clause.matches_num(5.5));
        assert!(!clause.matches_num(0.5));
        // Only the final re-scoring pass touches the Scorer.
        let calls = s.scorer_calls() - before;
        assert!(calls <= cfg_max_results() as u64 + 1, "calls = {calls}");
    }

    fn cfg_max_results() -> usize {
        MergerConfig::default().max_results
    }

    #[test]
    fn top_quartile_limits_seeds() {
        let t = table();
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        let input = partition_grid(&t, &s);
        let cfg = MergerConfig {
            use_cached_tuples: false,
            top_quartile_only: true,
            ..MergerConfig::default()
        };
        let (_, diag) = Merger::new(&s, &d, cfg).merge(input.clone()).unwrap();
        // ceil(5/4) = 2 seeds at most.
        assert!(diag.seeds <= 2, "{diag:?}");
        let cfg_all = MergerConfig {
            use_cached_tuples: false,
            top_quartile_only: false,
            ..MergerConfig::default()
        };
        let (_, diag_all) = Merger::new(&s, &d, cfg_all).merge(input).unwrap();
        assert!(diag_all.seeds >= diag.seeds);
    }

    #[test]
    fn empty_input_is_ok() {
        let t = table();
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        let (out, diag) = Merger::new(&s, &d, MergerConfig::default()).merge(Vec::new()).unwrap();
        assert!(out.is_empty());
        assert_eq!(diag, MergeDiag::default());
    }

    /// Figure 7's scenario: merging p1 and p2 produces a hull that also
    /// overlaps a *third* partition p3; the cached-tuple estimate must
    /// include p3's volume-weighted contribution, or it would
    /// under-estimate the number of deleted tuples.
    #[test]
    fn approximation_counts_unmerged_overlapping_partitions() {
        let t = table();
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        // Partitions: p1 = [2,4), p2 = [4,6) (both hot), p3 = [0,2)
        // (cold). The hull of p1 and p2 is [2,6) — p3 does not overlap,
        // so first check the baseline...
        let p1 = part(&t, &s, 2.0, 4.0);
        let p2 = part(&t, &s, 4.0, 6.0);
        let p3 = part(&t, &s, 0.0, 2.0);
        let cfg = MergerConfig {
            use_cached_tuples: true,
            top_quartile_only: false,
            ..MergerConfig::default()
        };
        let merger = Merger::new(&s, &d, cfg);
        let (out, diag) = merger.merge(vec![p1, p2, p3]).unwrap();
        assert!(diag.approx_estimates > 0);
        // ... the merged box's final (exact) influence matches the exact
        // influence of the same box computed directly — i.e. the estimate
        // steered to a box whose stats were assembled from *all* three
        // partitions' contributions without double counting.
        let best = &out[0];
        let direct = s.influence(&best.predicate).unwrap();
        assert!((best.influence - direct).abs() < 1e-9);
        // The winning box covers the hot region [2,6).
        let clause = best.predicate.clause(1).unwrap();
        assert!(clause.matches_num(2.5) && clause.matches_num(5.5));
    }

    /// The approximate estimate itself (pre-rescoring) should be close to
    /// the exact influence when partitions are uniform — validating the
    /// volume-weighted contribution formula.
    #[test]
    fn approximate_estimate_is_accurate_on_uniform_partitions() {
        let t = table();
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        let parts = partition_grid(&t, &s);
        let cfg = MergerConfig {
            use_cached_tuples: true,
            top_quartile_only: false,
            ..MergerConfig::default()
        };
        let merger = Merger::new(&s, &d, cfg);
        // Estimate the hull of the two hot partitions ([2,4) ∪ [4,6)).
        let hull = parts[1].predicate.hull(&parts[2].predicate);
        let (est, _) = merger.estimate_from_stats(&hull, &parts).unwrap();
        let exact = s.influence(&hull).unwrap();
        let rel = (est - exact).abs() / exact.abs().max(1.0);
        assert!(rel < 0.05, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn duplicate_predicates_are_deduped() {
        let t = table();
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        let p = part(&t, &s, 2.0, 4.0);
        let (out, _) = Merger::new(
            &s,
            &d,
            MergerConfig { top_quartile_only: false, ..MergerConfig::default() },
        )
        .merge(vec![p.clone(), p.clone(), p])
        .unwrap();
        let preds: HashSet<_> = out.iter().map(|sp| sp.predicate.clone()).collect();
        assert_eq!(preds.len(), out.len());
    }
}

//! Two-stage approximate influence search: deterministic stratified row
//! samples and closed-form influence intervals.
//!
//! The exact Scorer walks every matched row of every labeled group per
//! candidate. At large group sizes most of that work only refines a
//! score whose *ordering* was already decided, so this module front-ends
//! the exact path with a cheap interval pass:
//!
//! 1. Per labeled group, a deterministic stratified sampler picks a
//!    fixed subset of rows (`GroupSample`): one stratum holds the rows
//!    most deviant from the group's mean value (the influence-carrying
//!    tail), the other a seeded hash-rank spread over the rest. The
//!    sampled rows of a candidate are
//!    scored exactly; the unsampled matched rows are only *counted*
//!    (their count `u` is exact — it falls out of the same popcount that
//!    produces `n`), and their value-sum is bracketed by the sums of the
//!    `u` smallest and `u` largest unsampled values, which the sample
//!    precomputes as prefix sums of the sorted unsampled values. This is
//!    the lineage-style closed-form bound of Afrati et al., applied to
//!    the deleted-tuple state of §5.1.
//! 2. The removed-sum interval maps through the aggregate's
//!    `state_from_count_sum` hook to a Δ interval, and through the
//!    influence arithmetic (§3.2) to an influence interval per candidate.
//!    Candidates whose upper bound cannot reach the running top-k lower
//!    bound are pruned; survivors are scored exactly.
//!
//! Because every interval is a *deterministic envelope* — the true
//! influence always lies inside it, for every seed — the pruning is
//! conservative: the exact top-1 predicate can never be pruned, and the
//! reported error bound (worst distance between a pruned candidate's
//! estimate and its interval edge) is honest by construction. Aggregates
//! without a `(count, sum)`-determined state (MEDIAN, STDDEV, any
//! black-box) fall back to exact scoring with the reason recorded in
//! [`ApproxState::fallback`].

use crate::config::ApproxConfig;
use parking_lot::Mutex;
use scorpion_table::{Clause, RowMask};
use std::collections::HashMap;
use std::sync::Arc;

/// Bound on memoized compressed clause bitmaps; past it the memo is
/// dropped wholesale (the same runaway-search guard as
/// [`scorpion_table::ClauseMaskCache`], without its LRU bookkeeping —
/// compressed bitmaps are two orders of magnitude cheaper to rebuild).
const COMPRESSED_CLAUSE_CAP: usize = 4096;

/// The deterministic stratified sample of one labeled group.
///
/// Built once per data snapshot (the sort is the expensive part) and
/// shared read-only by every scoring pass over that snapshot.
#[derive(Debug, Clone)]
pub(crate) struct GroupSample {
    /// Sampled rows as a bitmap over the table's row domain (a subset of
    /// the group's mask, so the group's nonzero word span covers it).
    pub sampled: RowMask,
    /// Aggregate-attribute values of the *unsampled* rows, ascending.
    pub sorted_unsampled: Vec<f64>,
    /// `prefix[i]` = sum of the `i` smallest unsampled values
    /// (`prefix[len]` is the total unsampled sum).
    pub prefix: Vec<f64>,
    /// Mean of the unsampled values (0.0 when none) — the point estimate
    /// for one unsampled matched row.
    pub mean_unsampled: f64,
}

impl GroupSample {
    /// Samples `rows` (ascending, with `values` aligned) at `cfg`'s
    /// rate. Groups under `cfg.min_rows` are fully sampled, which
    /// degenerates the interval to the exact score.
    pub fn build(table_len: usize, rows: &[u32], values: &[f64], cfg: &ApproxConfig) -> Self {
        let len = rows.len();
        let target = if len < cfg.min_rows || cfg.sample_rate >= 1.0 {
            len
        } else {
            // At least 1 so every non-empty group anchors its estimate.
            ((cfg.sample_rate * len as f64).ceil() as usize).clamp(1, len)
        };
        let sampled_idx: Vec<usize> = if target == len {
            (0..len).collect()
        } else {
            // Stratified selection, both strata deterministic:
            //
            // * Half the budget goes to the rows most deviant from the
            //   group's mean value — the influence-carrying tail. Those
            //   rows are scored exactly for every candidate, which is
            //   what keeps the closed-form interval tight: the values
            //   the bound has to hedge over are the mid-range leftovers.
            // * The rest goes to a seeded hash-rank stratum over the
            //   remainder (smallest hashes win): uniform coverage that
            //   anchors the point estimate, stable under reruns.
            let mean = values.iter().sum::<f64>() / len as f64;
            let t_dev = target / 2;
            let mut by_dev: Vec<usize> = (0..len).collect();
            by_dev.sort_unstable_by(|&a, &b| {
                (values[b] - mean).abs().total_cmp(&(values[a] - mean).abs())
            });
            let mut chosen = vec![false; len];
            for &i in by_dev.iter().take(t_dev) {
                chosen[i] = true;
            }
            let t_hash = target - t_dev;
            if t_hash > 0 {
                let mut rest: Vec<(u64, usize)> = (0..len)
                    .filter(|&i| !chosen[i])
                    .map(|i| (splitmix64(cfg.seed ^ rows[i] as u64), i))
                    .collect();
                rest.select_nth_unstable(t_hash - 1);
                rest.truncate(t_hash);
                for (_, i) in rest {
                    chosen[i] = true;
                }
            }
            (0..len).filter(|&i| chosen[i]).collect()
        };
        let mut in_sample = vec![false; len];
        for &i in &sampled_idx {
            in_sample[i] = true;
        }
        let sampled_rows: Vec<u32> =
            rows.iter().zip(&in_sample).filter(|&(_, &s)| s).map(|(&r, _)| r).collect();
        let mut sorted_unsampled: Vec<f64> =
            values.iter().zip(&in_sample).filter(|&(_, &s)| !s).map(|(&v, _)| v).collect();
        sorted_unsampled.sort_unstable_by(f64::total_cmp);
        let mut prefix = Vec::with_capacity(sorted_unsampled.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &v in &sorted_unsampled {
            acc += v;
            prefix.push(acc);
        }
        let mean_unsampled =
            if sorted_unsampled.is_empty() { 0.0 } else { acc / sorted_unsampled.len() as f64 };
        GroupSample {
            sampled: RowMask::from_rows(table_len, &sampled_rows),
            sorted_unsampled,
            prefix,
            mean_unsampled,
        }
    }

    /// Bounds the value-sum of a removed subset of which `sampled_sum`
    /// over the sampled rows is known exactly and `u` unsampled rows
    /// matched (count exact, identity unknown): the unknown part lies
    /// between the sums of the `u` smallest and `u` largest unsampled
    /// values. Returns `(lo, estimate, hi)`.
    #[inline]
    pub fn removed_sum_bounds(&self, sampled_sum: f64, u: usize) -> (f64, f64, f64) {
        debug_assert!(u <= self.sorted_unsampled.len());
        let n_uns = self.sorted_unsampled.len();
        let total = self.prefix[n_uns];
        let lo = sampled_sum + self.prefix[u];
        let hi = sampled_sum + (total - self.prefix[n_uns - u]);
        let est = sampled_sum + u as f64 * self.mean_unsampled;
        (lo, est, hi)
    }
}

/// The sampler state of one labeled query under one [`ApproxConfig`]:
/// per-group samples for the outlier and hold-out groups, in Scorer
/// order, or a fallback marker when the aggregate admits no closed-form
/// interval.
///
/// Built by [`crate::Scorer::build_approx`] once per data snapshot (the
/// per-group value sort dominates) and attached to run scorers with
/// [`crate::Scorer::with_approx_state`]; engines rebuild it on rebind.
#[derive(Debug)]
pub struct ApproxState {
    /// The knobs this state was built under.
    pub(crate) cfg: ApproxConfig,
    /// One sample per outlier group, in Scorer order.
    pub(crate) outliers: Vec<GroupSample>,
    /// One sample per hold-out group, in Scorer order.
    pub(crate) holdouts: Vec<GroupSample>,
    /// The *sample universe*: every sampled row across the labeled
    /// groups, per-group ascending, outlier groups then hold-outs.
    /// Position `i` in this array is bit `i` of every compressed bitmap,
    /// so the interval pass reads `k` and `s` from a word loop over
    /// `len/64` words instead of masking the full table's bitmaps.
    pub(crate) universe_rows: Vec<u32>,
    /// Aggregate-attribute values aligned with `universe_rows`.
    pub(crate) universe_vals: Vec<f64>,
    /// Universe position range of each slot (groups are contiguous by
    /// construction): outlier group `g` is slot `g`, hold-out group `g`
    /// is slot `n_outliers + g`.
    pub(crate) slot_ranges: Vec<std::ops::Range<usize>>,
    /// Per-clause bitmaps over the sample universe, memoized on first
    /// use (compressed from the clause's full-table mask).
    compressed: Mutex<HashMap<Clause, Arc<Vec<u64>>>>,
    /// Why interval pruning is unavailable (`None` = available). Scoring
    /// through a fallback state is exact; the reason surfaces in
    /// [`crate::Diagnostics::approx_fallback`].
    pub(crate) fallback: Option<&'static str>,
    /// Wall-clock nanoseconds spent building the samples — surfaced as
    /// the `sampler.build` phase by the run that first reports it.
    pub(crate) build_nanos: u64,
}

impl ApproxState {
    /// Assembles state from per-group samples, deriving the sample
    /// universe. `vals` is the full aggregate-attribute column, indexed
    /// by global row id.
    pub(crate) fn assemble(
        cfg: ApproxConfig,
        outliers: Vec<GroupSample>,
        holdouts: Vec<GroupSample>,
        fallback: Option<&'static str>,
        vals: &[f64],
        build_nanos: u64,
    ) -> Self {
        let total: usize = outliers.iter().chain(&holdouts).map(|g| g.sampled.count_ones()).sum();
        let mut universe_rows = Vec::with_capacity(total);
        let mut universe_vals = Vec::with_capacity(total);
        let mut slot_ranges = Vec::with_capacity(outliers.len() + holdouts.len());
        for gs in outliers.iter().chain(&holdouts) {
            let start = universe_rows.len();
            for r in gs.sampled.iter() {
                universe_rows.push(r);
                universe_vals.push(vals[r as usize]);
            }
            slot_ranges.push(start..universe_rows.len());
        }
        ApproxState {
            cfg,
            outliers,
            holdouts,
            universe_rows,
            universe_vals,
            slot_ranges,
            compressed: Mutex::new(HashMap::new()),
            fallback,
            build_nanos,
        }
    }

    /// Number of 64-bit words in a compressed (sample-universe) bitmap.
    pub(crate) fn universe_words(&self) -> usize {
        self.universe_rows.len().div_ceil(64)
    }

    /// The compressed bitmap of `clause` over the sample universe,
    /// derived from the clause's full-table mask on first use and
    /// memoized for the candidates (and batches) that share the clause.
    pub(crate) fn compressed_clause(&self, clause: &Clause, full: &RowMask) -> Arc<Vec<u64>> {
        if let Some(hit) = self.compressed.lock().get(clause) {
            return hit.clone();
        }
        let mut words = vec![0u64; self.universe_words()];
        for (i, &r) in self.universe_rows.iter().enumerate() {
            if full.contains(r) {
                words[i >> 6] |= 1 << (i & 63);
            }
        }
        let built = Arc::new(words);
        let mut map = self.compressed.lock();
        if map.len() >= COMPRESSED_CLAUSE_CAP {
            map.clear();
        }
        map.insert(clause.clone(), built.clone());
        built
    }

    /// The configuration this state was built under.
    pub fn config(&self) -> &ApproxConfig {
        &self.cfg
    }

    /// Why interval pruning is unavailable, if it is (`None` means the
    /// approximate path is active).
    pub fn fallback(&self) -> Option<&'static str> {
        self.fallback
    }

    /// Nanoseconds spent building the per-group samples.
    pub fn build_nanos(&self) -> u64 {
        self.build_nanos
    }
}

/// An influence interval: the true influence lies in `[lo, hi]`; `est`
/// is the point estimate used as the reported score when a candidate is
/// pruned without exact evaluation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InfluenceInterval {
    /// Lower envelope.
    pub lo: f64,
    /// Upper envelope.
    pub hi: f64,
    /// Point estimate (always inside `[lo, hi]` up to rounding).
    pub est: f64,
}

impl InfluenceInterval {
    /// Worst distance between the estimate and either envelope edge —
    /// the per-candidate contribution to
    /// [`crate::Diagnostics::approx_error_bound`].
    pub fn error_bound(&self) -> f64 {
        (self.est - self.lo).max(self.hi - self.est).max(0.0)
    }
}

/// SplitMix64: the standard 64-bit finalizer used as a stateless,
/// high-quality row hash (the sampler only needs uniform ranks, not
/// cryptographic strength).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, min_rows: usize) -> ApproxConfig {
        ApproxConfig { sample_rate: rate, min_rows, ..ApproxConfig::default() }
    }

    #[test]
    fn sample_is_deterministic_and_sized() {
        let rows: Vec<u32> = (0..1000).collect();
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let a = GroupSample::build(1000, &rows, &values, &cfg(0.1, 16));
        let b = GroupSample::build(1000, &rows, &values, &cfg(0.1, 16));
        assert_eq!(a.sampled.count_ones(), 100);
        assert_eq!(a.sampled.to_rows(), b.sampled.to_rows(), "same seed, same sample");
        let other =
            GroupSample::build(1000, &rows, &values, &ApproxConfig { seed: 7, ..cfg(0.1, 16) });
        assert_ne!(a.sampled.to_rows(), other.sampled.to_rows(), "seed changes the sample");
    }

    #[test]
    fn small_groups_are_exhaustive() {
        let rows: Vec<u32> = (0..10).collect();
        let values = vec![1.0; 10];
        let s = GroupSample::build(10, &rows, &values, &cfg(0.1, 256));
        assert!(s.sorted_unsampled.is_empty(), "everything sampled");
        assert_eq!(s.sampled.count_ones(), 10);
        // Exhaustive bounds collapse to the sampled sum.
        let (lo, est, hi) = s.removed_sum_bounds(4.0, 0);
        assert_eq!((lo, est, hi), (4.0, 4.0, 4.0));
    }

    #[test]
    fn removed_sum_bounds_bracket_every_subset() {
        let rows: Vec<u32> = (0..8).collect();
        let values = vec![5.0, -1.0, 2.0, 8.0, 0.0, 3.0, -4.0, 7.0];
        let s = GroupSample::build(8, &rows, &values, &cfg(0.25, 1));
        let unsampled: Vec<f64> = {
            let sampled = s.sampled.to_rows();
            values
                .iter()
                .enumerate()
                .filter(|(i, _)| !sampled.contains(&(*i as u32)))
                .map(|(_, &v)| v)
                .collect()
        };
        // Every subset of the unsampled values must fit its size's bounds.
        for bits in 0u32..(1 << unsampled.len()) {
            let subset: Vec<f64> = unsampled
                .iter()
                .enumerate()
                .filter(|(i, _)| bits >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            let sum: f64 = subset.iter().sum();
            let (lo, est, hi) = s.removed_sum_bounds(0.0, subset.len());
            assert!(lo <= sum + 1e-9 && sum <= hi + 1e-9, "{sum} outside [{lo}, {hi}]");
            assert!(lo <= est + 1e-9 && est <= hi + 1e-9, "estimate outside its own envelope");
        }
    }

    #[test]
    fn interval_error_bound_is_nonnegative() {
        let i = InfluenceInterval { lo: -2.0, hi: 3.0, est: 1.0 };
        assert_eq!(i.error_bound(), 3.0);
        let exact = InfluenceInterval { lo: 1.0, hi: 1.0, est: 1.0 };
        assert_eq!(exact.error_bound(), 0.0);
    }
}

//! DT partitioner (§6.1): top-down, synchronized regression-tree
//! partitioning over per-tuple influences, for *independent* aggregates.
//!
//! Pipeline (following §6.1.1–§6.1.4):
//!
//! 1. Per-tuple influences are computed for every labeled input group
//!    (`v_o·Δ(t)` for outlier groups, `|Δ(t)|` for hold-out groups).
//! 2. The outlier groups are partitioned by one shared recursive tree:
//!    before an attribute/split is chosen, the candidate's error metric is
//!    computed per group and combined with `max` (§6.1.3), so every group
//!    receives the same partitioning without union-ing the groups (which
//!    would over-partition). The hold-out groups get their own tree.
//! 3. Splitting stops when a partition's influence spread falls under the
//!    [`ThresholdCurve`] (§6.1.1, Figure 4), with influence-weighted
//!    stratified sampling optionally bounding the per-node work (§6.1.2).
//! 4. The outlier partitioning is carved along the influential hold-out
//!    partitions (§6.1.4) so that predicates that would perturb hold-outs
//!    are separated from those that only touch outliers.
//!
//! The resulting partitions are scored exactly, tagged with the per-group
//! statistics the Merger's cached-tuple approximation needs (§6.3), and
//! handed to the [`crate::merger::Merger`].

mod threshold;

pub use threshold::ThresholdCurve;

use crate::config::DtConfig;
use crate::error::Result;
use crate::merger::{MergeDiag, Merger};
use crate::result::{GroupStat, PartitionStats, ScoredPredicate};
use crate::scorer::Scorer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scorpion_obs::{span, PhaseTiming, Phases};
use scorpion_table::{AttrDomain, Clause, Column, Predicate};
use std::collections::BTreeSet;
use std::time::Instant;

/// Counters describing one DT run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DtDiag {
    /// Leaves of the outlier-side tree.
    pub outlier_leaves: usize,
    /// Leaves of the hold-out-side tree.
    pub holdout_leaves: usize,
    /// Partitions after combining the two sides (§6.1.4).
    pub partitions: usize,
    /// Tuples sampled across all root groups divided by total tuples.
    pub sampled_fraction: f64,
}

/// The DT partitioner bound to a scorer.
pub struct DtPartitioner<'s, 'a> {
    scorer: &'s Scorer<'a>,
    attrs: Vec<usize>,
    domains: Vec<AttrDomain>,
    cfg: DtConfig,
    /// Wall-clock attribution of the pipeline stages (`dt.*` phases).
    phases: Phases,
}

/// A column borrowed for fast attribute access.
enum Col<'t> {
    Num(&'t [f64]),
    Cat(&'t [u32]),
}

/// One labeled group's tuples, flattened for tree construction.
struct SideGroup {
    rows: Vec<u32>,
    infs: Vec<f64>,
}

/// All groups of one side (outlier or hold-out) plus the side's threshold
/// curve.
struct SideData {
    groups: Vec<SideGroup>,
    curve: ThresholdCurve,
}

/// Per-group membership of a tree node: full positions and the sampled
/// subset used for split decisions.
#[derive(Clone)]
struct Slice {
    pos: Vec<u32>,
    sample: Vec<u32>,
}

/// A tree node spanning all groups of a side.
struct Node {
    pred: Predicate,
    slices: Vec<Slice>,
    depth: usize,
}

/// A candidate split.
enum Split {
    Cont { attr: usize, x: f64 },
    Disc { attr: usize, left: BTreeSet<u32> },
}

impl<'s, 'a> DtPartitioner<'s, 'a> {
    /// Creates a partitioner over the given explanation attributes.
    pub fn new(
        scorer: &'s Scorer<'a>,
        attrs: Vec<usize>,
        domains: Vec<AttrDomain>,
        cfg: DtConfig,
    ) -> Self {
        DtPartitioner { scorer, attrs, domains, cfg, phases: Phases::new() }
    }

    /// Takes the `dt.*` phase timings accumulated by partitioning runs
    /// so far (callers fold them into `Diagnostics.phases`).
    pub fn take_phases(&self) -> Vec<PhaseTiming> {
        self.phases.take()
    }

    /// Runs partitioning only: ranked, exactly scored partitions with the
    /// per-group statistics the Merger needs.
    pub fn partition(&self) -> Result<(Vec<ScoredPredicate>, DtDiag)> {
        let _span = span!("dt.partition");
        let mut diag = DtDiag::default();
        let cols = self.borrow_cols()?;
        let mut rng = StdRng::seed_from_u64(self.cfg.sampling.map(|s| s.seed).unwrap_or(0));

        // Outlier side.
        let out_side = self.phases.time("dt.influences", || self.build_side(true))?;
        let out_leaves = self
            .phases
            .time("dt.grow", || self.grow(&out_side, &cols, &mut rng, &mut diag.sampled_fraction));
        diag.outlier_leaves = out_leaves.len();

        // Hold-out side (if any).
        let mut hold_preds: Vec<(Predicate, f64)> = Vec::new();
        if self.scorer.n_holdouts() > 0 {
            let hold_side = self.phases.time("dt.influences", || self.build_side(false))?;
            let mut dummy = 0.0;
            let hold_leaves =
                self.phases.time("dt.grow", || self.grow(&hold_side, &cols, &mut rng, &mut dummy));
            diag.holdout_leaves = hold_leaves.len();
            hold_preds = hold_leaves
                .iter()
                .map(|n| (n.pred.clone(), mean_abs_influence(&hold_side, n)))
                .collect();
        }

        // §6.1.4: carve outlier partitions along influential hold-out
        // partitions.
        let combined = self.phases.time("dt.carve", || self.combine(&out_leaves, &hold_preds));
        diag.partitions = combined.len();

        let mut scored = self.phases.time("dt.finalize", || self.finalize(combined))?;
        // Bound the Merger's (quadratic) input; the ranking is exact, so
        // only the weakest partitions are dropped.
        scored.truncate(self.cfg.max_partitions.max(1));
        Ok((scored, diag))
    }

    /// Partition + merge: the full DT pipeline.
    pub fn run(&self) -> Result<(Vec<ScoredPredicate>, DtDiag, MergeDiag)> {
        let (parts, diag) = self.partition()?;
        let merger = Merger::new(self.scorer, &self.domains, self.cfg.merger.clone());
        let (merged, mdiag) = self.phases.time("run.merge", || merger.merge(parts))?;
        Ok((merged, diag, mdiag))
    }

    fn borrow_cols(&self) -> Result<Vec<(usize, Col<'a>)>> {
        let table = self.scorer.table();
        self.attrs
            .iter()
            .map(|&a| {
                Ok((
                    a,
                    match table.column(a)? {
                        Column::Num(v) => Col::Num(v),
                        Column::Cat(c) => Col::Cat(c.codes()),
                    },
                ))
            })
            .collect()
    }

    fn build_side(&self, outlier: bool) -> Result<SideData> {
        let n = if outlier { self.scorer.n_outliers() } else { self.scorer.n_holdouts() };
        let mut groups = Vec::with_capacity(n);
        let (mut inf_l, mut inf_u) = (f64::INFINITY, f64::NEG_INFINITY);
        for g in 0..n {
            let (rows, infs) = if outlier {
                (self.scorer.outlier_rows(g).to_vec(), self.scorer.outlier_tuple_influences(g))
            } else {
                (self.scorer.holdout_rows(g).to_vec(), self.scorer.holdout_tuple_influences(g))
            };
            for &v in &infs {
                inf_l = inf_l.min(v);
                inf_u = inf_u.max(v);
            }
            groups.push(SideGroup { rows, infs });
        }
        if inf_l > inf_u {
            (inf_l, inf_u) = (0.0, 0.0);
        }
        Ok(SideData {
            groups,
            curve: ThresholdCurve::new(
                self.cfg.tau_min,
                self.cfg.tau_max,
                self.cfg.inflection,
                inf_l,
                inf_u,
            ),
        })
    }

    /// Initial uniform sampling rate (§6.1.2):
    /// `min{ sr | 1 − (1−ε)^(sr·|D|) ≥ 0.95 }`.
    fn initial_rate(&self, group_len: usize) -> f64 {
        let Some(s) = self.cfg.sampling else { return 1.0 };
        if group_len < s.min_rows_to_sample || group_len == 0 {
            return 1.0;
        }
        let rate = (0.05f64).ln() / (group_len as f64 * (1.0 - s.epsilon).ln());
        rate.max(s.min_rate).min(1.0)
    }

    /// Grows one side's tree and returns its leaves.
    fn grow(
        &self,
        side: &SideData,
        cols: &[(usize, Col<'_>)],
        rng: &mut StdRng,
        sampled_fraction: &mut f64,
    ) -> Vec<Node> {
        let mut total = 0usize;
        let mut sampled = 0usize;
        let slices: Vec<Slice> = side
            .groups
            .iter()
            .map(|g| {
                let pos: Vec<u32> = (0..g.rows.len() as u32).collect();
                let rate = self.initial_rate(pos.len());
                let sample = if rate >= 1.0 {
                    pos.clone()
                } else {
                    draw(&pos, ((rate * pos.len() as f64).ceil() as usize).max(1), rng)
                };
                total += pos.len();
                sampled += sample.len();
                Slice { pos, sample }
            })
            .collect();
        if total > 0 {
            *sampled_fraction = sampled as f64 / total as f64;
        }
        // Adapt the minimum partition size to tiny inputs (the paper's
        // running example has 3-tuple groups): never demand more than a
        // quarter of the root's tuples.
        let root_total: usize = slices.iter().map(|s| s.sample.len()).sum();
        let min_size = self.cfg.min_partition_size.min((root_total / 4).max(2));
        let mut leaves = Vec::new();
        let mut stack = vec![Node { pred: Predicate::all(), slices, depth: 0 }];
        while let Some(node) = stack.pop() {
            // Leaf budget: on noisy data the influence spread never drops
            // under the threshold and the tree would grow to the depth
            // limit; finish the remaining frontier as leaves.
            if leaves.len() + stack.len() + 1 >= self.cfg.max_leaves {
                leaves.push(node);
                continue;
            }
            if self.should_stop(side, &node, min_size) {
                leaves.push(node);
                continue;
            }
            let split = {
                let _span = span!("dt.split");
                let start = Instant::now();
                let split = self.best_split(side, cols, &node);
                self.phases.add("dt.split", start.elapsed());
                split
            };
            match split {
                Some(split) => {
                    let _span = span!("dt.expand");
                    let start = Instant::now();
                    let (l, r) = self.apply_split(side, cols, node, &split, rng);
                    self.phases.add("dt.expand", start.elapsed());
                    stack.push(l);
                    stack.push(r);
                }
                None => leaves.push(node),
            }
        }
        leaves
    }

    fn should_stop(&self, side: &SideData, node: &Node, min_size: usize) -> bool {
        let total_sample: usize = node.slices.iter().map(|s| s.sample.len()).sum();
        if total_sample < min_size || node.depth >= self.cfg.max_depth {
            return true;
        }
        let mut sigma_max = 0.0f64;
        let mut inf_max = f64::NEG_INFINITY;
        for (g, slice) in node.slices.iter().enumerate() {
            let infs = &side.groups[g].infs;
            let (mut n, mut sum, mut sumsq) = (0.0, 0.0, 0.0);
            for &p in &slice.sample {
                let v = infs[p as usize];
                n += 1.0;
                sum += v;
                sumsq += v * v;
                inf_max = inf_max.max(v);
            }
            if n >= 2.0 {
                let var = (sumsq / n - (sum / n) * (sum / n)).max(0.0);
                sigma_max = sigma_max.max(var.sqrt());
            }
        }
        if !inf_max.is_finite() {
            return true;
        }
        sigma_max <= side.curve.threshold(inf_max)
    }

    /// Finds the best split, combining per-group error metrics with `max`
    /// (§6.1.3). Returns `None` when no split improves on the parent.
    fn best_split(&self, side: &SideData, cols: &[(usize, Col<'_>)], node: &Node) -> Option<Split> {
        let parent = combined_metric(side, node, |_, _| true).1;
        let mut best: Option<(f64, Split)> = None;
        for (attr, col) in cols {
            match col {
                Col::Num(vals) => {
                    // Sorted per-(node, attr) projection: each group's
                    // sampled (value, influence) pairs are sorted by value
                    // once, with prefix sums of influence and squared
                    // influence, so every candidate threshold below costs
                    // one binary search per group instead of a pass over
                    // the node's rows.
                    let mut projs: Vec<SortedProj> = Vec::with_capacity(node.slices.len());
                    let mut xs: Vec<f64> = Vec::new();
                    for (g, slice) in node.slices.iter().enumerate() {
                        let pairs: Vec<(f64, f64)> = slice
                            .sample
                            .iter()
                            .map(|&p| {
                                (
                                    vals[side.groups[g].rows[p as usize] as usize],
                                    side.groups[g].infs[p as usize],
                                )
                            })
                            .collect();
                        let proj = SortedProj::new(pairs);
                        xs.extend_from_slice(&proj.values);
                        projs.push(proj);
                    }
                    if xs.len() < 2 {
                        continue;
                    }
                    // Quantile candidates over the node's pooled sample.
                    xs.sort_by(f64::total_cmp);
                    let (lo, hi) = (xs[0], xs[xs.len() - 1]);
                    if lo == hi {
                        continue;
                    }
                    let k = self.cfg.n_split_candidates.max(1);
                    let mut seen = f64::NAN;
                    for q in 1..=k {
                        let x = xs[(xs.len() * q / (k + 1)).min(xs.len() - 1)];
                        if x <= lo || x > hi || x == seen {
                            continue;
                        }
                        seen = x;
                        let (ok, metric) = sorted_metric(&projs, x);
                        if ok && metric < parent && best.as_ref().is_none_or(|(m, _)| metric < *m) {
                            best = Some((metric, Split::Cont { attr: *attr, x }));
                        }
                    }
                }
                Col::Cat(codes) => {
                    // Order codes by pooled mean influence, try prefix
                    // splits.
                    let allowed = self.allowed_codes(node, *attr);
                    let mut acc: Vec<(u32, f64, f64)> = Vec::new(); // (code, sum, n)
                    for (g, slice) in node.slices.iter().enumerate() {
                        for &p in &slice.sample {
                            let code = codes[side.groups[g].rows[p as usize] as usize];
                            if let Some(c) = &allowed {
                                if !c.contains(&code) {
                                    continue;
                                }
                            }
                            match acc.iter_mut().find(|(k, _, _)| *k == code) {
                                Some(e) => {
                                    e.1 += side.groups[g].infs[p as usize];
                                    e.2 += 1.0;
                                }
                                None => acc.push((code, side.groups[g].infs[p as usize], 1.0)),
                            }
                        }
                    }
                    if acc.len() < 2 {
                        continue;
                    }
                    acc.sort_by(|a, b| (b.1 / b.2).total_cmp(&(a.1 / a.2)));
                    let max_j = (acc.len() - 1).min(self.cfg.max_discrete_splits);
                    let mut left: BTreeSet<u32> = BTreeSet::new();
                    for item in acc.iter().take(max_j) {
                        left.insert(item.0);
                        let (ok, metric) = combined_metric(side, node, |g, p| {
                            left.contains(&codes[side.groups[g].rows[p as usize] as usize])
                        });
                        if ok && metric < parent && best.as_ref().is_none_or(|(m, _)| metric < *m) {
                            best = Some((metric, Split::Disc { attr: *attr, left: left.clone() }));
                        }
                    }
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// The codes the node's predicate admits on `attr` (`None` =
    /// unconstrained).
    fn allowed_codes(&self, node: &Node, attr: usize) -> Option<BTreeSet<u32>> {
        match node.pred.clause(attr) {
            Some(Clause::In { codes, .. }) => Some(codes.clone()),
            _ => None,
        }
    }

    /// Splits `node`, partitioning full and sampled positions and applying
    /// the §6.1.2 stratified resampling to the children.
    ///
    /// For nodes spanning enough rows, the chosen split is compiled
    /// once into a left-side [`scorpion_table::RowMask`] via the clause
    /// kernels (`[−∞, x)` for continuous splits, the left code set for
    /// discrete ones) and row routing is a bit test. Small nodes of
    /// large tables skip the full-column kernel pass and route through
    /// direct value compares instead — the kernel touches every table
    /// row, which would dwarf the node's own work deep in the tree.
    fn apply_split(
        &self,
        side: &SideData,
        cols: &[(usize, Col<'_>)],
        node: Node,
        split: &Split,
        rng: &mut StdRng,
    ) -> (Node, Node) {
        let table = self.scorer.table();
        let node_rows: usize = node.slices.iter().map(|s| s.pos.len()).sum();
        let left_mask = if node_rows >= table.len() / 64 {
            let left_clause = match split {
                Split::Cont { attr, x } => Clause::range(*attr, f64::NEG_INFINITY, *x),
                Split::Disc { attr, left } => Clause::in_set(*attr, left.iter().copied()),
            };
            table.column(left_clause.attr()).ok().and_then(|col| left_clause.eval_mask(col))
        } else {
            None
        };
        let table_col = |attr: usize| {
            cols.iter().find(|(a, _)| *a == attr).map(|(_, c)| c).expect("split attr is bound")
        };
        let goes_left = |g: usize, p: u32| -> bool {
            let row = side.groups[g].rows[p as usize];
            if let Some(m) = &left_mask {
                return m.contains(row);
            }
            match split {
                Split::Cont { attr, x } => match table_col(*attr) {
                    Col::Num(vals) => vals[row as usize] < *x,
                    Col::Cat(_) => false,
                },
                Split::Disc { attr, left } => match table_col(*attr) {
                    Col::Cat(codes) => left.contains(&codes[row as usize]),
                    Col::Num(_) => false,
                },
            }
        };

        let (lp, rp) = self.child_predicates(&node.pred, split);
        let mut lslices = Vec::with_capacity(node.slices.len());
        let mut rslices = Vec::with_capacity(node.slices.len());
        for (g, slice) in node.slices.into_iter().enumerate() {
            let (mut pos_l, mut pos_r) = (Vec::new(), Vec::new());
            for p in slice.pos {
                if goes_left(g, p) {
                    pos_l.push(p);
                } else {
                    pos_r.push(p);
                }
            }
            let (mut sample_l, mut sample_r) = (Vec::new(), Vec::new());
            let (mut mass_l, mut mass_r) = (0.0f64, 0.0f64);
            for p in slice.sample {
                let inf = side.groups[g].infs[p as usize].abs();
                if goes_left(g, p) {
                    sample_l.push(p);
                    mass_l += inf;
                } else {
                    sample_r.push(p);
                    mass_r += inf;
                }
            }
            if let Some(s) = self.cfg.sampling {
                let parent_n = (sample_l.len() + sample_r.len()) as f64;
                let total_mass = mass_l + mass_r;
                let (share_l, share_r) = if total_mass > 0.0 {
                    (mass_l / total_mass, mass_r / total_mass)
                } else {
                    (0.5, 0.5)
                };
                top_up(&mut sample_l, &pos_l, share_l * parent_n, s.min_rate, rng);
                top_up(&mut sample_r, &pos_r, share_r * parent_n, s.min_rate, rng);
            }
            lslices.push(Slice { pos: pos_l, sample: sample_l });
            rslices.push(Slice { pos: pos_r, sample: sample_r });
        }
        (
            Node { pred: lp, slices: lslices, depth: node.depth + 1 },
            Node { pred: rp, slices: rslices, depth: node.depth + 1 },
        )
    }

    /// Child predicates refining the node's clause on the split attribute.
    fn child_predicates(&self, pred: &Predicate, split: &Split) -> (Predicate, Predicate) {
        match split {
            Split::Cont { attr, x } => {
                let (lo, hi) = match pred.clause(*attr) {
                    Some(Clause::Range { lo, hi, .. }) => (*lo, *hi),
                    _ => match &self.domains[*attr] {
                        AttrDomain::Continuous { lo, hi } => {
                            let span = hi - lo;
                            let pad = if span == 0.0 { 1e-9 } else { span * 1e-9 };
                            (*lo, hi + pad)
                        }
                        AttrDomain::Discrete { .. } => (0.0, 0.0),
                    },
                };
                (
                    pred.with_clause(Clause::range(*attr, lo, *x)),
                    pred.with_clause(Clause::range(*attr, *x, hi)),
                )
            }
            Split::Disc { attr, left } => {
                let all: BTreeSet<u32> = match pred.clause(*attr) {
                    Some(Clause::In { codes, .. }) => codes.clone(),
                    _ => match &self.domains[*attr] {
                        AttrDomain::Discrete { cardinality } => (0..*cardinality as u32).collect(),
                        AttrDomain::Continuous { .. } => BTreeSet::new(),
                    },
                };
                let right: BTreeSet<u32> = all.difference(left).copied().collect();
                (
                    pred.with_clause(Clause::in_set(*attr, left.iter().copied())),
                    pred.with_clause(Clause::in_set(*attr, right)),
                )
            }
        }
    }

    /// §6.1.4: carve each outlier partition along the influential hold-out
    /// partitions so hold-out-hurting regions are separated.
    fn combine(&self, out_leaves: &[Node], hold: &[(Predicate, f64)]) -> Vec<Predicate> {
        let influential: Vec<&Predicate> = if hold.is_empty() {
            Vec::new()
        } else {
            let global_mean = hold.iter().map(|(_, m)| m).sum::<f64>() / hold.len() as f64;
            hold.iter().filter(|(_, m)| *m >= global_mean).map(|(p, _)| p).collect()
        };
        let mut out = Vec::new();
        for leaf in out_leaves {
            let mut boxes = vec![leaf.pred.clone()];
            'carve: for h in &influential {
                let mut next = Vec::with_capacity(boxes.len() + 2);
                for b in &boxes {
                    let (inter, rems) = b.carve(h, &self.domains);
                    if let Some(i) = inter {
                        next.push(i);
                    }
                    next.extend(rems);
                    if next.len() > self.cfg.max_carve_pieces {
                        break 'carve;
                    }
                }
                boxes = next;
            }
            out.extend(boxes);
        }
        out
    }

    /// Scores each partition exactly and attaches the per-group statistics
    /// (cardinality + mean-influence representative tuple, §6.3).
    ///
    /// Partition membership is read from the Scorer's predicate masks,
    /// so sibling partitions sharing clauses (children of the same
    /// carve) reuse cached clause masks instead of re-walking rows.
    fn finalize(&self, preds: Vec<Predicate>) -> Result<Vec<ScoredPredicate>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(preds.len());
        for pred in preds {
            if !seen.insert(pred.clone()) {
                continue;
            }
            let pm = self.scorer.predicate_mask(&pred)?;
            let stat_for = |rows: &[u32], values: &[f64], infs: &[f64]| -> GroupStat {
                let mut idx: Vec<usize> = Vec::new();
                let mut sum = 0.0;
                for (i, &row) in rows.iter().enumerate() {
                    if pm.contains(row) {
                        idx.push(i);
                        sum += infs[i];
                    }
                }
                if idx.is_empty() {
                    return GroupStat { n: 0.0, rep_value: 0.0 };
                }
                let mean = sum / idx.len() as f64;
                let rep = idx
                    .iter()
                    .copied()
                    .min_by(|&a, &b| (infs[a] - mean).abs().total_cmp(&(infs[b] - mean).abs()))
                    .expect("non-empty");
                GroupStat { n: idx.len() as f64, rep_value: values[rep] }
            };
            let mut stats = PartitionStats::default();
            for g in 0..self.scorer.n_outliers() {
                stats.outlier.push(stat_for(
                    self.scorer.outlier_rows(g),
                    self.scorer.outlier_values(g),
                    &self.scorer.outlier_tuple_influences(g),
                ));
            }
            for g in 0..self.scorer.n_holdouts() {
                stats.holdout.push(stat_for(
                    self.scorer.holdout_rows(g),
                    self.scorer.holdout_values(g),
                    &self.scorer.holdout_tuple_influences(g),
                ));
            }
            let influence = self.scorer.influence(&pred)?;
            out.push(ScoredPredicate { predicate: pred, influence, stats: Some(stats) });
        }
        out.sort_by(|a, b| b.influence.total_cmp(&a.influence));
        Ok(out)
    }
}

/// Pooled mean |influence| of a node over all groups' samples.
fn mean_abs_influence(side: &SideData, node: &Node) -> f64 {
    let (mut sum, mut n) = (0.0, 0.0);
    for (g, slice) in node.slices.iter().enumerate() {
        for &p in &slice.sample {
            sum += side.groups[g].infs[p as usize].abs();
            n += 1.0;
        }
    }
    if n > 0.0 {
        sum / n
    } else {
        0.0
    }
}

/// One group's sampled rows of a (node, attribute) pair, projected to
/// value-sorted order with prefix sums of influence and squared
/// influence: the split metric at any threshold reduces to a
/// `partition_point` plus two prefix lookups.
struct SortedProj {
    /// Sampled attribute values, ascending (`total_cmp` order).
    values: Vec<f64>,
    /// `pref_s[i]` = influence sum of the `i` smallest-valued rows.
    pref_s: Vec<f64>,
    /// `pref_q[i]` = squared-influence sum of the `i` smallest-valued rows.
    pref_q: Vec<f64>,
}

impl SortedProj {
    fn new(mut pairs: Vec<(f64, f64)>) -> Self {
        pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut pref_s = Vec::with_capacity(pairs.len() + 1);
        let mut pref_q = Vec::with_capacity(pairs.len() + 1);
        let (mut s, mut q) = (0.0f64, 0.0f64);
        pref_s.push(0.0);
        pref_q.push(0.0);
        for &(_, inf) in &pairs {
            s += inf;
            q += inf * inf;
            pref_s.push(s);
            pref_q.push(q);
        }
        SortedProj { values: pairs.into_iter().map(|(v, _)| v).collect(), pref_s, pref_q }
    }

    /// `(count, influence sum, squared-influence sum)` of the rows with
    /// value `< x`.
    fn left_of(&self, x: f64) -> (usize, f64, f64) {
        let i = self.values.partition_point(|&v| v < x);
        (i, self.pref_s[i], self.pref_q[i])
    }
}

/// [`combined_metric`] over sorted projections: same per-group
/// size-weighted child variances combined with `max`, evaluated in
/// `O(groups · log sample)` per threshold.
fn sorted_metric(projs: &[SortedProj], x: f64) -> (bool, f64) {
    let mut metric = 0.0f64;
    let (mut tot_l, mut tot_r) = (0usize, 0usize);
    for proj in projs {
        let n_all = proj.values.len();
        let (nl_i, sl, ql) = proj.left_of(x);
        let nr_i = n_all - nl_i;
        tot_l += nl_i;
        tot_r += nr_i;
        let (nl, nr) = (nl_i as f64, nr_i as f64);
        let (sr, qr) = (proj.pref_s[n_all] - sl, proj.pref_q[n_all] - ql);
        let var = |n: f64, s: f64, q: f64| {
            if n < 1.0 {
                0.0
            } else {
                (q / n - (s / n) * (s / n)).max(0.0)
            }
        };
        let n = nl + nr;
        if n > 0.0 {
            let g_metric = (nl * var(nl, sl, ql) + nr * var(nr, sr, qr)) / n;
            metric = metric.max(g_metric);
        }
    }
    (tot_l > 0 && tot_r > 0, metric)
}

/// Computes the split error metric: per group, the size-weighted mean of
/// the child variances; combined across groups with `max` (§6.1.3).
/// Returns `(both_children_nonempty, metric)`.
fn combined_metric(
    side: &SideData,
    node: &Node,
    goes_left: impl Fn(usize, u32) -> bool,
) -> (bool, f64) {
    let mut metric = 0.0f64;
    let (mut tot_l, mut tot_r) = (0usize, 0usize);
    for (g, slice) in node.slices.iter().enumerate() {
        let infs = &side.groups[g].infs;
        let (mut nl, mut sl, mut ql) = (0.0, 0.0, 0.0);
        let (mut nr, mut sr, mut qr) = (0.0, 0.0, 0.0);
        for &p in &slice.sample {
            let v = infs[p as usize];
            if goes_left(g, p) {
                nl += 1.0;
                sl += v;
                ql += v * v;
            } else {
                nr += 1.0;
                sr += v;
                qr += v * v;
            }
        }
        tot_l += nl as usize;
        tot_r += nr as usize;
        let var = |n: f64, s: f64, q: f64| {
            if n < 1.0 {
                0.0
            } else {
                (q / n - (s / n) * (s / n)).max(0.0)
            }
        };
        let n = nl + nr;
        if n > 0.0 {
            let g_metric = (nl * var(nl, sl, ql) + nr * var(nr, sr, qr)) / n;
            metric = metric.max(g_metric);
        }
    }
    (tot_l > 0 && tot_r > 0, metric)
}

/// Draws `k` distinct elements uniformly from `pool` (partial
/// Fisher–Yates over a scratch copy).
fn draw(pool: &[u32], k: usize, rng: &mut StdRng) -> Vec<u32> {
    let k = k.min(pool.len());
    let mut scratch = pool.to_vec();
    for i in 0..k {
        let j = rng.random_range(i..scratch.len());
        scratch.swap(i, j);
    }
    scratch.truncate(k);
    scratch
}

/// Ensures `sample` reaches the stratified target size
/// `max(target_n, min_rate·|pos|)` by drawing additional positions from
/// `pos` that are not yet sampled (§6.1.2).
fn top_up(sample: &mut Vec<u32>, pos: &[u32], target_n: f64, min_rate: f64, rng: &mut StdRng) {
    if pos.is_empty() {
        return;
    }
    let target = (target_n.max(min_rate * pos.len() as f64).ceil() as usize).min(pos.len());
    if sample.len() >= target {
        return;
    }
    let have: std::collections::HashSet<u32> = sample.iter().copied().collect();
    let unsampled: Vec<u32> = pos.iter().copied().filter(|p| !have.contains(p)).collect();
    let extra = draw(&unsampled, target - sample.len(), rng);
    sample.extend(extra);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InfluenceParams, SamplingConfig};
    use crate::scorer::GroupSpec;
    use scorpion_agg::Avg;
    use scorpion_table::{domains_of, group_by, Field, Schema, Table, TableBuilder, Value};

    /// 2-D planted box: outlier group has value 100 inside
    /// x ∈ [20,60) ∧ y ∈ [20,60), 10 elsewhere; hold-out group uniform 10.
    fn planted_2d(n_per_group: usize) -> Table {
        let schema = Schema::new(vec![
            Field::disc("g"),
            Field::cont("x"),
            Field::cont("y"),
            Field::cont("v"),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        // Deterministic low-discrepancy-ish grid.
        for i in 0..n_per_group {
            let x = (i as f64 * 7.3) % 100.0;
            let y = (i as f64 * 13.7) % 100.0;
            let hot = (20.0..60.0).contains(&x) && (20.0..60.0).contains(&y);
            let v = if hot { 100.0 } else { 10.0 };
            b.push_row(vec!["o".into(), Value::from(x), Value::from(y), v.into()]).unwrap();
            b.push_row(vec!["h".into(), Value::from(x), Value::from(y), Value::from(10.0)])
                .unwrap();
        }
        b.build()
    }

    fn scorer(t: &Table) -> Scorer<'_> {
        let g = group_by(t, &[0]).unwrap();
        Scorer::new(
            t,
            &Avg,
            3,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 }],
            InfluenceParams { lambda: 0.5, c: 0.2 },
            false,
        )
        .unwrap()
    }

    fn dt_cfg() -> DtConfig {
        DtConfig { sampling: None, ..DtConfig::default() }
    }

    #[test]
    fn recovers_planted_box() {
        let t = planted_2d(600);
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        let dt = DtPartitioner::new(&s, vec![1, 2], d.clone(), dt_cfg());
        let (merged, diag, _) = dt.run().unwrap();
        assert!(diag.outlier_leaves >= 2, "{diag:?}");
        assert!(!merged.is_empty());
        let best = &merged[0];
        // The best box must cover the hot region's core and exclude the
        // far corners.
        let m = best.predicate.matcher(&t).unwrap();
        let x = t.num(1).unwrap();
        let y = t.num(2).unwrap();
        let rows = s.outlier_rows(0);
        let (mut hot_in, mut hot_tot, mut cold_in, mut cold_tot) = (0, 0, 0, 0);
        for &r in rows {
            let hot =
                (25.0..55.0).contains(&x[r as usize]) && (25.0..55.0).contains(&y[r as usize]);
            let cold =
                !((15.0..65.0).contains(&x[r as usize]) && (15.0..65.0).contains(&y[r as usize]));
            if hot {
                hot_tot += 1;
                if m.matches(r) {
                    hot_in += 1;
                }
            }
            if cold {
                cold_tot += 1;
                if m.matches(r) {
                    cold_in += 1;
                }
            }
        }
        assert!(hot_tot > 0 && cold_tot > 0);
        let recall = hot_in as f64 / hot_tot as f64;
        let leak = cold_in as f64 / cold_tot as f64;
        assert!(recall > 0.8, "core recall {recall}");
        assert!(leak < 0.2, "cold leak {leak}");
    }

    #[test]
    fn partitions_carry_stats() {
        let t = planted_2d(300);
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        let dt = DtPartitioner::new(&s, vec![1, 2], d, dt_cfg());
        let (parts, diag) = dt.partition().unwrap();
        assert_eq!(diag.partitions, parts.len());
        for p in &parts {
            let st = p.stats.as_ref().expect("stats attached");
            assert_eq!(st.outlier.len(), 1);
            assert_eq!(st.holdout.len(), 1);
        }
        // Partition cardinalities cover the outlier group at most once
        // per tuple (combined partitions are disjoint boxes).
        let total: f64 = parts.iter().map(|p| p.stats.as_ref().unwrap().outlier[0].n).sum();
        assert!(total <= s.outlier_rows(0).len() as f64 + 1e-9);
    }

    #[test]
    fn sampling_reduces_sampled_fraction_and_still_finds_box() {
        let t = planted_2d(3000);
        let s = scorer(&t);
        let d = domains_of(&t).unwrap();
        let cfg = DtConfig {
            sampling: Some(SamplingConfig {
                epsilon: 0.01,
                min_rows_to_sample: 500,
                min_rate: 0.05,
                seed: 42,
            }),
            ..DtConfig::default()
        };
        let dt = DtPartitioner::new(&s, vec![1, 2], d, cfg);
        let (merged, diag, _) = dt.run().unwrap();
        assert!(diag.sampled_fraction < 1.0, "{diag:?}");
        assert!(diag.sampled_fraction > 0.0);
        let best = &merged[0];
        let m = best.predicate.matcher(&t).unwrap();
        let x = t.num(1).unwrap();
        let y = t.num(2).unwrap();
        let mut hot_in = 0;
        let mut hot_tot = 0;
        for &r in s.outlier_rows(0) {
            if (30.0..50.0).contains(&x[r as usize]) && (30.0..50.0).contains(&y[r as usize]) {
                hot_tot += 1;
                if m.matches(r) {
                    hot_in += 1;
                }
            }
        }
        assert!(hot_in as f64 / hot_tot as f64 > 0.7);
    }

    #[test]
    fn discrete_attribute_split() {
        // Outliers correlate with sensor "s3".
        let schema =
            Schema::new(vec![Field::disc("g"), Field::disc("sid"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..300 {
            let sid = ["s1", "s2", "s3"][i % 3];
            let v = if sid == "s3" { 100.0 } else { 10.0 };
            b.push_row(vec!["o".into(), sid.into(), v.into()]).unwrap();
            b.push_row(vec!["h".into(), sid.into(), Value::from(10.0)]).unwrap();
        }
        let t = b.build();
        let g = group_by(&t, &[0]).unwrap();
        let s = Scorer::new(
            &t,
            &Avg,
            2,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 }],
            InfluenceParams { lambda: 0.5, c: 0.2 },
            false,
        )
        .unwrap();
        let d = domains_of(&t).unwrap();
        let dt = DtPartitioner::new(&s, vec![1], d, dt_cfg());
        let (merged, _, _) = dt.run().unwrap();
        let best = &merged[0];
        let s3 = t.cat(1).unwrap().code_of("s3").unwrap();
        let clause = best.predicate.clause(1).expect("sid clause");
        assert!(clause.matches_code(s3));
        assert!(!clause.matches_code(t.cat(1).unwrap().code_of("s1").unwrap()));
    }

    #[test]
    fn no_holdouts_is_supported() {
        let t = planted_2d(200);
        let g = group_by(&t, &[0]).unwrap();
        let s = Scorer::new(
            &t,
            &Avg,
            3,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![],
            InfluenceParams::default(),
            false,
        )
        .unwrap();
        let d = domains_of(&t).unwrap();
        let dt = DtPartitioner::new(&s, vec![1, 2], d, dt_cfg());
        let (merged, diag, _) = dt.run().unwrap();
        assert_eq!(diag.holdout_leaves, 0);
        assert!(!merged.is_empty());
    }

    #[test]
    fn threshold_curve_is_exported() {
        let c = ThresholdCurve::new(0.05, 0.25, 0.5, 0.0, 1.0);
        assert!(c.omega(1.0) < c.omega(0.0));
    }
}

//! The DT stopping-threshold curve (§6.1.1, Figure 4).
//!
//! A partition stops splitting when the spread of its tuples' influences
//! falls below a threshold that *depends on how influential the partition
//! is*: partitions containing influential tuples must be accurate (low
//! threshold τ_min·range), while non-influential partitions may stay
//! coarse (high threshold τ_max·range).
//!
//! The formula printed in the paper produces a negative threshold for
//! non-influential partitions, contradicting both its surrounding text
//! ("the error metric threshold can be **relaxed** for partitions that
//! don't contain any influential tuples") and Figure 4's plotted curve.
//! We implement the curve of Figure 4: flat at `τ_max` until the
//! inflection point `p`, then decreasing linearly to `τ_min` as
//! `inf_max → inf_u`. See DESIGN.md ("Paper-typo interpretations").

/// The threshold curve `ω(inf_max)`, bound to the influence bounds of one
/// dataset side.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdCurve {
    /// Minimum multiplicative threshold `τ_min`.
    pub tau_min: f64,
    /// Maximum multiplicative threshold `τ_max`.
    pub tau_max: f64,
    /// Inflection point `p ∈ (0, 1)` (paper: 0.5).
    pub inflection: f64,
    /// Lower bound of influence values in the dataset (`inf_l`).
    pub inf_l: f64,
    /// Upper bound of influence values in the dataset (`inf_u`).
    pub inf_u: f64,
}

impl ThresholdCurve {
    /// Builds the curve from per-side influence bounds.
    pub fn new(tau_min: f64, tau_max: f64, inflection: f64, inf_l: f64, inf_u: f64) -> Self {
        ThresholdCurve { tau_min, tau_max, inflection, inf_l, inf_u }
    }

    /// The multiplicative error `ω(inf_max)`, clamped to
    /// `[τ_min, τ_max]`.
    pub fn omega(&self, inf_max: f64) -> f64 {
        let range = self.inf_u - self.inf_l;
        if range <= 0.0 {
            // Degenerate side: a single influence level — any partition is
            // already perfectly homogeneous.
            return self.tau_max;
        }
        // Slope of the decreasing segment: covers τ_max → τ_min over the
        // top (1 − p) fraction of the influence range.
        let s = (self.tau_max - self.tau_min) / ((1.0 - self.inflection) * range);
        (self.tau_min + s * (self.inf_u - inf_max)).clamp(self.tau_min, self.tau_max)
    }

    /// The absolute stopping threshold
    /// `threshold = ω(inf_max) · (inf_u − inf_l)`: a partition whose
    /// influence spread (standard deviation) is below this value becomes a
    /// leaf.
    pub fn threshold(&self, inf_max: f64) -> f64 {
        self.omega(inf_max) * (self.inf_u - self.inf_l)
    }

    /// Samples the curve at `n` evenly spaced `inf_max` values — used by
    /// the Figure 4 regeneration harness.
    pub fn sample(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        (0..n)
            .map(|i| {
                let x = self.inf_l + (self.inf_u - self.inf_l) * (i as f64 / (n - 1) as f64);
                (x, self.omega(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> ThresholdCurve {
        ThresholdCurve::new(0.05, 0.25, 0.5, 0.0, 100.0)
    }

    #[test]
    fn endpoints_match_figure4() {
        let c = curve();
        // At the top of the influence range the threshold is tightest.
        assert!((c.omega(100.0) - 0.05).abs() < 1e-12);
        // Below the inflection point it saturates at τ_max.
        assert!((c.omega(0.0) - 0.25).abs() < 1e-12);
        assert!((c.omega(50.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn monotonically_nonincreasing_in_inf_max() {
        let c = curve();
        let samples = c.sample(101);
        for w in samples.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "{w:?}");
        }
        assert_eq!(samples.len(), 101);
        assert_eq!(samples[0].0, 0.0);
        assert_eq!(samples[100].0, 100.0);
    }

    #[test]
    fn inflection_point_location() {
        let c = curve();
        // Just above the inflection (inf_max = 50), ω starts decreasing.
        assert!(c.omega(51.0) < c.tau_max);
        assert!(c.omega(49.0) >= c.tau_max - 1e-12);
        // Midway through the decreasing segment: ω = (τ_min + τ_max)/2.
        assert!((c.omega(75.0) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn threshold_scales_with_range() {
        let c = curve();
        assert!((c.threshold(100.0) - 0.05 * 100.0).abs() < 1e-9);
        assert!((c.threshold(0.0) - 0.25 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_range_is_total() {
        let c = ThresholdCurve::new(0.05, 0.25, 0.5, 3.0, 3.0);
        assert_eq!(c.omega(3.0), 0.25);
        assert_eq!(c.threshold(3.0), 0.0);
    }

    #[test]
    fn negative_influence_bounds() {
        // Hold-out sides can have all-negative influence values.
        let c = ThresholdCurve::new(0.05, 0.25, 0.5, -10.0, -2.0);
        assert!((c.omega(-2.0) - 0.05).abs() < 1e-12);
        assert!((c.omega(-10.0) - 0.25).abs() < 1e-12);
        assert!(c.threshold(-2.0) > 0.0);
    }
}

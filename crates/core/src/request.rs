//! Owned, shareable explain requests and the [`Scorpion`] builder.
//!
//! [`crate::LabeledQuery`] borrows its table and grouping, which ties an
//! explanation to one stack frame. An [`ExplainRequest`] owns everything
//! through `Arc`s, so it can be cloned cheaply, moved into sessions or
//! worker threads, and re-run under different influence parameters —
//! the shape a long-lived explanation service needs.
//!
//! The fluent entry point mirrors the paper's Figure 2 flow (query →
//! inspect results → label → explain):
//!
//! ```
//! # use scorpion_core::{Scorpion, Result};
//! # use scorpion_table::{Field, Schema, TableBuilder};
//! # fn demo() -> Result<()> {
//! # let schema = Schema::new(vec![
//! #     Field::disc("time"), Field::disc("sensorid"), Field::cont("temp"),
//! # ]).unwrap();
//! # let mut b = TableBuilder::new(schema);
//! # for (t, s, v) in [
//! #     ("11AM", "1", 35.0), ("11AM", "2", 35.0),
//! #     ("12PM", "1", 35.0), ("12PM", "2", 100.0),
//! # ] {
//! #     b.push_row(vec![t.into(), s.into(), v.into()]).unwrap();
//! # }
//! # let table = b.build();
//! let request = Scorpion::on(table)
//!     .sql("SELECT avg(temp) FROM sensors GROUP BY time")?
//!     .outlier(1, 1.0)
//!     .holdout(0)
//!     .params(0.5, 0.2)
//!     .build()?;
//! let explanation = request.explain()?;
//! # let _ = explanation;
//! # Ok(())
//! # }
//! # demo().unwrap();
//! ```

use crate::api::LabeledQuery;
use crate::config::{Algorithm, ApproxConfig, InfluenceParams};
use crate::engine::{engine_for, Explainer, PreparedPlan};
use crate::error::{Result, ScorpionError};
use crate::prepared::PreparedQuery;
use crate::result::Explanation;
use crate::scorer::Scorer;
use scorpion_agg::Aggregate;
use scorpion_table::{aggregate_groups, group_by, Grouping, Table};
use std::sync::Arc;

/// A fully specified Influential Predicates problem (§3.3) with owned,
/// `Arc`-shared data: the query (table + grouping + aggregate), the
/// labels (`O`, `V`, `H`), the influence parameters, and the search
/// options. Cloning is cheap (`Arc` bumps plus the label vectors).
///
/// Build one with [`Scorpion`]; run it with [`ExplainRequest::explain`],
/// or prepare it once and re-run it cheaply across parameter changes
/// with [`crate::session::ScorpionSession`].
#[derive(Clone)]
pub struct ExplainRequest {
    pub(crate) table: Arc<Table>,
    pub(crate) grouping: Arc<Grouping>,
    pub(crate) agg: Arc<dyn Aggregate>,
    pub(crate) agg_attr: usize,
    pub(crate) outliers: Vec<(usize, f64)>,
    pub(crate) holdouts: Vec<usize>,
    pub(crate) params: InfluenceParams,
    pub(crate) algorithm: Algorithm,
    pub(crate) explain_attrs: Option<Vec<usize>>,
    pub(crate) max_explain_attrs: Option<usize>,
    pub(crate) force_blackbox: bool,
    pub(crate) influence_cache_entries: usize,
    pub(crate) approx: Option<ApproxConfig>,
}

impl ExplainRequest {
    /// Assembles a request directly from owned parts — the programmatic
    /// path for callers that already hold a materialized table and
    /// grouping (e.g. the streaming engine). Labels are validated;
    /// parameters default to [`InfluenceParams::default`] and the
    /// algorithm to [`Algorithm::Auto`] (adjust with the `with_*`
    /// methods).
    pub fn from_parts(
        table: Arc<Table>,
        grouping: Arc<Grouping>,
        agg: Arc<dyn Aggregate>,
        agg_attr: usize,
        outliers: Vec<(usize, f64)>,
        holdouts: Vec<usize>,
    ) -> Result<Self> {
        let req = ExplainRequest {
            table,
            grouping,
            agg,
            agg_attr,
            outliers,
            holdouts,
            params: InfluenceParams::default(),
            algorithm: Algorithm::Auto,
            explain_attrs: None,
            max_explain_attrs: None,
            force_blackbox: false,
            influence_cache_entries: 0,
            approx: None,
        };
        req.validate()?;
        Ok(req)
    }

    /// The input relation `D`.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The query's grouping (which doubles as provenance, §4.1).
    pub fn grouping(&self) -> &Arc<Grouping> {
        &self.grouping
    }

    /// The aggregate operator.
    pub fn aggregate(&self) -> &Arc<dyn Aggregate> {
        &self.agg
    }

    /// The aggregated attribute (`A_agg`).
    pub fn agg_attr(&self) -> usize {
        self.agg_attr
    }

    /// Outlier labels: `(result index, error-vector component)`.
    pub fn outliers(&self) -> &[(usize, f64)] {
        &self.outliers
    }

    /// Hold-out result indices.
    pub fn holdouts(&self) -> &[usize] {
        &self.holdouts
    }

    /// The influence parameters this request runs at by default.
    pub fn params(&self) -> InfluenceParams {
        self.params
    }

    /// The configured algorithm choice.
    pub fn algorithm(&self) -> &Algorithm {
        &self.algorithm
    }

    /// Returns a copy at different influence parameters.
    #[must_use]
    pub fn with_params(&self, params: InfluenceParams) -> Self {
        ExplainRequest { params, ..self.clone() }
    }

    /// Returns a copy at a different `c` (λ kept).
    #[must_use]
    pub fn with_c(&self, c: f64) -> Self {
        self.with_params(self.params.with_c(c))
    }

    /// Returns a copy running a different algorithm.
    #[must_use]
    pub fn with_algorithm(&self, algorithm: Algorithm) -> Self {
        ExplainRequest { algorithm, ..self.clone() }
    }

    /// Returns a copy restricted to the given explanation attributes
    /// (`None` restores the `A_rest` default).
    #[must_use]
    pub fn with_explain_attrs(&self, explain_attrs: Option<Vec<usize>>) -> Self {
        ExplainRequest { explain_attrs, ..self.clone() }
    }

    /// The configured [`crate::InfluenceCache`] bound for plans prepared
    /// from this request (`0` = the cache's default bound).
    pub fn influence_cache_entries(&self) -> usize {
        self.influence_cache_entries
    }

    /// Returns a copy whose prepared plans bound their influence cache
    /// to `entries` predicates, evicting LRU past that (`0` = default).
    #[must_use]
    pub fn with_influence_cache_entries(&self, entries: usize) -> Self {
        ExplainRequest { influence_cache_entries: entries, ..self.clone() }
    }

    /// The approximate-search configuration, if any.
    pub fn approx(&self) -> Option<&ApproxConfig> {
        self.approx.as_ref()
    }

    /// Returns a copy running the two-stage approximate influence
    /// search under `approx` (`None` restores the exact default).
    /// Validate the knobs with [`ApproxConfig::validate`] at the edge;
    /// plans also reject out-of-range values when building sampler
    /// state.
    #[must_use]
    pub fn with_approx(&self, approx: Option<ApproxConfig>) -> Self {
        ExplainRequest { approx, ..self.clone() }
    }

    /// A borrowed [`LabeledQuery`] view of this request — the bridge to
    /// the original borrowed API (and its validation).
    pub fn as_labeled(&self) -> LabeledQuery<'_> {
        LabeledQuery {
            table: &self.table,
            grouping: &self.grouping,
            agg: self.agg.as_ref(),
            agg_attr: self.agg_attr,
            outliers: self.outliers.clone(),
            holdouts: self.holdouts.clone(),
        }
    }

    /// Validates the labels against the grouping.
    pub fn validate(&self) -> Result<()> {
        self.as_labeled().validate()
    }

    /// The explanation attributes `A_rest = A − A_gb − A_agg` (§3.1).
    pub fn default_explain_attrs(&self) -> Vec<usize> {
        self.as_labeled().default_explain_attrs()
    }

    /// The attributes the search will run over: the configured set, or
    /// `A_rest`. Errors when nothing remains. (§6.4 feature selection,
    /// when configured, is applied by the engine during `prepare`.)
    pub fn resolved_attrs(&self) -> Result<Vec<usize>> {
        let attrs = match &self.explain_attrs {
            Some(a) => a.clone(),
            None => self.default_explain_attrs(),
        };
        if attrs.is_empty() {
            return Err(ScorpionError::NoExplainAttributes);
        }
        Ok(attrs)
    }

    /// Builds a Scorer at this request's own parameters.
    pub fn scorer(&self) -> Result<Scorer<'_>> {
        self.scorer_at(self.params)
    }

    /// Builds a Scorer at the given parameters.
    pub fn scorer_at(&self, params: InfluenceParams) -> Result<Scorer<'_>> {
        self.as_labeled().scorer(params, self.force_blackbox)
    }

    /// Resolves [`Algorithm::Auto`] against the aggregate's §5
    /// properties.
    pub fn resolve_algorithm(&self) -> Result<Algorithm> {
        crate::api::resolve_algorithm(&self.as_labeled(), &self.algorithm)
    }

    /// The engine implementing this request's (resolved) algorithm.
    pub fn engine(&self) -> Result<Box<dyn Explainer>> {
        engine_for(&self.resolve_algorithm()?)
    }

    /// Runs the expensive, `c`-agnostic preparation phase, returning a
    /// plan that can be re-run cheaply under any [`InfluenceParams`].
    pub fn prepare(&self) -> Result<Box<dyn PreparedPlan>> {
        self.engine()?.prepare(self)
    }

    /// Solves the Influential Predicates problem: prepare + run at this
    /// request's parameters. For repeated runs under changing
    /// parameters, keep the [`ExplainRequest::prepare`] plan (or use a
    /// [`crate::session::ScorpionSession`]) instead of calling this in
    /// a loop.
    pub fn explain(&self) -> Result<Explanation> {
        self.prepare()?.run(&self.params)
    }
}

/// Auto-labels a result series for scripted exploration: the `k` results
/// deviating most from the median become outliers (error = sign of the
/// deviation), and up to `k` results closest to the median become
/// hold-outs. The two sets are always disjoint — on tiny series the
/// hold-out set shrinks (down to empty) rather than re-using an outlier
/// index.
pub fn label_extremes(results: &[f64], k: usize) -> (Vec<(usize, f64)>, Vec<usize>) {
    let n = results.len();
    let median = {
        let mut v = results.to_vec();
        let mid = (n.max(1) - 1) / 2;
        v.sort_by(f64::total_cmp);
        v.get(mid).copied().unwrap_or(0.0)
    };
    let mut by_dev: Vec<(usize, f64)> =
        results.iter().enumerate().map(|(i, &v)| (i, v - median)).collect();
    by_dev.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    let k = k.min(n / 2).max(1.min(n));
    let outliers: Vec<(usize, f64)> =
        by_dev.iter().take(k).map(|&(i, d)| (i, d.signum())).collect();
    // Hold-outs come from the far (median-nearest) end of the ranking;
    // never overlap the outlier prefix.
    let h_k = k.min(n - outliers.len());
    let holdouts: Vec<usize> = by_dev.iter().rev().take(h_k).map(|&(i, _)| i).collect();
    (outliers, holdouts)
}

/// The fluent entry point: pick a table, run a query, label results,
/// build an [`ExplainRequest`].
pub struct Scorpion {
    table: Arc<Table>,
}

impl Scorpion {
    /// Starts a request on `table` (accepts `Table` or `Arc<Table>`).
    pub fn on(table: impl Into<Arc<Table>>) -> Self {
        Scorpion { table: table.into() }
    }

    /// Parses and executes a select-project-group-by SQL query (WHERE
    /// clauses are materialized, §3.1) and moves to the labeling stage.
    pub fn sql(self, sql: &str) -> Result<RequestBuilder> {
        let pq = PreparedQuery::new(&self.table, sql)?;
        Ok(RequestBuilder {
            table: Arc::new(pq.table),
            grouping: Arc::new(pq.grouping),
            agg: pq.agg,
            agg_attr: pq.agg_attr,
            results: pq.results,
            request: RequestOpts::default(),
        })
    }

    /// Groups the table by `group_attrs` and aggregates `agg_attr` with
    /// `agg` — the programmatic equivalent of
    /// `SELECT agg(a) … GROUP BY g`.
    pub fn group_by(
        self,
        group_attrs: &[usize],
        agg: Arc<dyn Aggregate>,
        agg_attr: usize,
    ) -> Result<RequestBuilder> {
        let grouping = group_by(&self.table, group_attrs)?;
        self.query(grouping, agg, agg_attr)
    }

    /// Uses an existing grouping (accepts `Grouping` or
    /// `Arc<Grouping>`) with the given aggregate.
    pub fn query(
        self,
        grouping: impl Into<Arc<Grouping>>,
        agg: Arc<dyn Aggregate>,
        agg_attr: usize,
    ) -> Result<RequestBuilder> {
        let grouping = grouping.into();
        let agg_ref = agg.clone();
        let results =
            aggregate_groups(&self.table, &grouping, agg_attr, move |v| agg_ref.compute(v))?;
        Ok(RequestBuilder {
            table: self.table,
            grouping,
            agg,
            agg_attr,
            results,
            request: RequestOpts::default(),
        })
    }
}

/// Options accumulated between the query stage and `build()`.
struct RequestOpts {
    outliers: Vec<(usize, f64)>,
    holdouts: Vec<usize>,
    params: InfluenceParams,
    algorithm: Algorithm,
    explain_attrs: Option<Vec<usize>>,
    max_explain_attrs: Option<usize>,
    force_blackbox: bool,
    influence_cache_entries: usize,
    approx: Option<ApproxConfig>,
}

impl Default for RequestOpts {
    fn default() -> Self {
        RequestOpts {
            outliers: Vec::new(),
            holdouts: Vec::new(),
            params: InfluenceParams::default(),
            algorithm: Algorithm::Auto,
            explain_attrs: None,
            max_explain_attrs: None,
            force_blackbox: false,
            influence_cache_entries: 0,
            approx: None,
        }
    }
}

/// Second builder stage: the query has run; label results and set knobs.
pub struct RequestBuilder {
    table: Arc<Table>,
    grouping: Arc<Grouping>,
    agg: Arc<dyn Aggregate>,
    agg_attr: usize,
    results: Vec<f64>,
    request: RequestOpts,
}

impl RequestBuilder {
    /// The aggregate result series, in group order (what a result chart
    /// shows the user).
    pub fn results(&self) -> &[f64] {
        &self.results
    }

    /// Number of results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True when the query produced no results.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Human-readable key of result `i`.
    pub fn display_key(&self, i: usize) -> String {
        self.grouping.display_key(&self.table, i)
    }

    /// Result index of a displayed group key, if present.
    pub fn index_of_key(&self, key: &str) -> Option<usize> {
        (0..self.grouping.len()).find(|&i| self.display_key(i) == key)
    }

    /// The outlier labels staged so far.
    pub fn outlier_labels(&self) -> &[(usize, f64)] {
        &self.request.outliers
    }

    /// The hold-out labels staged so far.
    pub fn holdout_labels(&self) -> &[usize] {
        &self.request.holdouts
    }

    /// Labels result `i` an outlier with error-vector component `error`
    /// (+1 = "too high", −1 = "too low"; magnitudes are weights).
    #[must_use]
    pub fn outlier(mut self, i: usize, error: f64) -> Self {
        self.request.outliers.push((i, error));
        self
    }

    /// Labels several outliers at once.
    #[must_use]
    pub fn outliers(mut self, labels: impl IntoIterator<Item = (usize, f64)>) -> Self {
        self.request.outliers.extend(labels);
        self
    }

    /// Labels result `i` a hold-out ("this one looks normal").
    #[must_use]
    pub fn holdout(mut self, i: usize) -> Self {
        self.request.holdouts.push(i);
        self
    }

    /// Labels several hold-outs at once.
    #[must_use]
    pub fn holdouts(mut self, labels: impl IntoIterator<Item = usize>) -> Self {
        self.request.holdouts.extend(labels);
        self
    }

    /// Auto-labels the `k` most deviant results as outliers and up to
    /// `k` median-nearest results as hold-outs (see [`label_extremes`]).
    #[must_use]
    pub fn auto_label(mut self, k: usize) -> Self {
        let (o, h) = label_extremes(&self.results, k);
        self.request.outliers = o;
        self.request.holdouts = h;
        self
    }

    /// Sets both influence knobs (§3.2, §7).
    #[must_use]
    pub fn params(mut self, lambda: f64, c: f64) -> Self {
        self.request.params = InfluenceParams { lambda, c };
        self
    }

    /// Sets the selectivity exponent `c`, keeping λ.
    #[must_use]
    pub fn c(mut self, c: f64) -> Self {
        self.request.params = self.request.params.with_c(c);
        self
    }

    /// Picks the algorithm explicitly (default: [`Algorithm::Auto`]).
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.request.algorithm = algorithm;
        self
    }

    /// Restricts the explanation attributes (default: `A_rest`).
    #[must_use]
    pub fn explain_attrs(mut self, attrs: impl IntoIterator<Item = usize>) -> Self {
        self.request.explain_attrs = Some(attrs.into_iter().collect());
        self
    }

    /// §6.4 dimensionality reduction: keep only the `k` most associated
    /// attributes before searching.
    #[must_use]
    pub fn max_explain_attrs(mut self, k: usize) -> Self {
        self.request.max_explain_attrs = Some(k);
        self
    }

    /// Forces black-box aggregate evaluation even when an incremental
    /// decomposition exists (ablation).
    #[must_use]
    pub fn force_blackbox(mut self, on: bool) -> Self {
        self.request.force_blackbox = on;
        self
    }

    /// Bounds the prepared plan's influence cache to `entries`
    /// predicates, evicting LRU past that (`0` = the default bound).
    #[must_use]
    pub fn influence_cache_entries(mut self, entries: usize) -> Self {
        self.request.influence_cache_entries = entries;
        self
    }

    /// Opts into the two-stage approximate influence search. Exact
    /// scoring stays the default; with this set, candidate batches are
    /// interval-pruned before exact scoring and diagnostics report
    /// `candidates_pruned` and `approx_error_bound`.
    #[must_use]
    pub fn approx(mut self, cfg: ApproxConfig) -> Self {
        self.request.approx = Some(cfg);
        self
    }

    /// Validates the labels and produces the owned request.
    pub fn build(self) -> Result<ExplainRequest> {
        let req = ExplainRequest {
            table: self.table,
            grouping: self.grouping,
            agg: self.agg,
            agg_attr: self.agg_attr,
            outliers: self.request.outliers,
            holdouts: self.request.holdouts,
            params: self.request.params,
            algorithm: self.request.algorithm,
            explain_attrs: self.request.explain_attrs,
            max_explain_attrs: self.request.max_explain_attrs,
            force_blackbox: self.request.force_blackbox,
            influence_cache_entries: self.request.influence_cache_entries,
            approx: self.request.approx,
        };
        req.validate()?;
        Ok(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_agg::Avg;
    use scorpion_table::{Field, Schema, TableBuilder};

    fn sensors() -> Table {
        let schema = Schema::new(vec![
            Field::disc("time"),
            Field::disc("sensorid"),
            Field::cont("voltage"),
            Field::cont("temp"),
        ])
        .unwrap();
        let rows: [(&str, &str, f64, f64); 9] = [
            ("11AM", "1", 2.64, 34.0),
            ("11AM", "2", 2.65, 35.0),
            ("11AM", "3", 2.63, 35.0),
            ("12PM", "1", 2.70, 35.0),
            ("12PM", "2", 2.70, 35.0),
            ("12PM", "3", 2.30, 100.0),
            ("1PM", "1", 2.70, 35.0),
            ("1PM", "2", 2.70, 35.0),
            ("1PM", "3", 2.30, 80.0),
        ];
        let mut b = TableBuilder::new(schema);
        for (t, s, v, temp) in rows {
            b.push_row(vec![t.into(), s.into(), v.into(), temp.into()]).unwrap();
        }
        b.build()
    }

    #[test]
    fn sql_builder_end_to_end() {
        let req = Scorpion::on(sensors())
            .sql("SELECT avg(temp), time FROM sensors GROUP BY time")
            .unwrap()
            .outlier(1, 1.0)
            .outlier(2, 1.0)
            .holdout(0)
            .params(0.5, 0.5)
            .build()
            .unwrap();
        let ex = req.explain().unwrap();
        let all: Vec<u32> = (0..req.table().len() as u32).collect();
        let sel = ex.best().predicate.select(req.table(), &all).unwrap();
        assert!(sel.contains(&5) && sel.contains(&8), "{sel:?}");
    }

    #[test]
    fn group_by_builder_matches_sql() {
        let t = sensors();
        let via_sql = Scorpion::on(t.clone())
            .sql("SELECT avg(temp) FROM s GROUP BY time")
            .unwrap()
            .outlier(1, 1.0)
            .holdout(0)
            .build()
            .unwrap();
        let via_group = Scorpion::on(t)
            .group_by(&[0], Arc::new(Avg), 3)
            .unwrap()
            .outlier(1, 1.0)
            .holdout(0)
            .build()
            .unwrap();
        let a = via_sql.explain().unwrap();
        let b = via_group.explain().unwrap();
        assert_eq!(a.best().predicate, b.best().predicate);
        assert!((a.best().influence - b.best().influence).abs() < 1e-12);
    }

    #[test]
    fn builder_exposes_results_and_keys() {
        let b = Scorpion::on(sensors()).sql("SELECT avg(temp) FROM s GROUP BY time").unwrap();
        assert_eq!(b.len(), 3);
        assert!((b.results()[1] - 56.6667).abs() < 1e-3);
        assert_eq!(b.index_of_key("12PM"), Some(1));
        assert_eq!(b.index_of_key("nope"), None);
    }

    #[test]
    fn build_validates_labels() {
        let mk = || Scorpion::on(sensors()).sql("SELECT avg(temp) FROM s GROUP BY time").unwrap();
        assert!(matches!(mk().build(), Err(ScorpionError::NoOutliers)));
        assert!(matches!(
            mk().outlier(9, 1.0).build(),
            Err(ScorpionError::BadLabel { index: 9, .. })
        ));
        assert!(matches!(
            mk().outlier(0, 1.0).holdout(0).build(),
            Err(ScorpionError::OverlappingLabels { index: 0 })
        ));
    }

    #[test]
    fn request_is_cheaply_cloneable_and_tweakable() {
        let req = Scorpion::on(sensors())
            .sql("SELECT avg(temp) FROM s GROUP BY time")
            .unwrap()
            .outlier(1, 1.0)
            .holdout(0)
            .build()
            .unwrap();
        let tweaked = req.with_c(0.9);
        assert_eq!(tweaked.params().c, 0.9);
        assert_eq!(tweaked.params().lambda, req.params().lambda);
        assert!(Arc::ptr_eq(req.table(), tweaked.table()));
    }

    #[test]
    fn label_extremes_is_always_disjoint() {
        for n in 1..8usize {
            for k in 1..4usize {
                let results: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
                let (o, h) = label_extremes(&results, k);
                assert!(!o.is_empty(), "n={n} k={k}");
                for &i in &h {
                    assert!(
                        !o.iter().any(|&(oi, _)| oi == i),
                        "overlap at n={n} k={k}: outliers {o:?}, holdouts {h:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_result_yields_no_holdout() {
        let (o, h) = label_extremes(&[42.0], 1);
        assert_eq!(o.len(), 1);
        assert!(h.is_empty());
    }

    #[test]
    fn auto_label_flows_into_build() {
        let req = Scorpion::on(sensors())
            .sql("SELECT avg(temp) FROM s GROUP BY time")
            .unwrap()
            .auto_label(1)
            .build()
            .unwrap();
        assert_eq!(req.outliers().len(), 1);
        assert_eq!(req.holdouts().len(), 1);
        assert!(req.explain().unwrap().best().influence.is_finite());
    }
}

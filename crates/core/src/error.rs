//! Error type for the Scorpion engine.

use std::fmt;

/// Errors produced by the Scorpion engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScorpionError {
    /// Propagated from the relational substrate.
    Table(scorpion_table::TableError),
    /// The request labeled no outlier results.
    NoOutliers,
    /// An outlier/hold-out label referenced a result index that the
    /// grouping does not contain.
    BadLabel {
        /// Offending result index.
        index: usize,
        /// Number of results in the grouping.
        len: usize,
    },
    /// The same result was labeled both outlier and hold-out
    /// (`H ∩ O = ∅` in the problem statement).
    OverlappingLabels {
        /// The doubly-labeled result index.
        index: usize,
    },
    /// A configuration value is out of range.
    BadConfig(&'static str),
    /// The chosen algorithm's prerequisites (§5 properties) are not met.
    UnsupportedAggregate {
        /// Algorithm that was requested.
        algorithm: &'static str,
        /// What is missing.
        requires: &'static str,
    },
    /// The query named an aggregate the registry does not recognize.
    /// Display lists the registered vocabulary so CLI and server errors
    /// tell the user what *would* work.
    UnknownAggregate {
        /// The unrecognized aggregate name as the query spelled it.
        name: String,
    },
    /// No explanation attributes remain after removing group-by and
    /// aggregate attributes.
    NoExplainAttributes,
}

impl fmt::Display for ScorpionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScorpionError::Table(e) => write!(f, "table error: {e}"),
            ScorpionError::NoOutliers => write!(f, "at least one outlier result must be labeled"),
            ScorpionError::BadLabel { index, len } => {
                write!(f, "label references result {index}, but the query produced {len} results")
            }
            ScorpionError::OverlappingLabels { index } => {
                write!(f, "result {index} labeled both outlier and hold-out")
            }
            ScorpionError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            ScorpionError::UnsupportedAggregate { algorithm, requires } => {
                write!(f, "{algorithm} requires {requires}")
            }
            ScorpionError::UnknownAggregate { name } => {
                write!(
                    f,
                    "unknown aggregate '{name}'; registered aggregates: {} \
                     (plus percentile(col, p) for any p in (0, 1])",
                    scorpion_agg::registered_names().join(", ")
                )
            }
            ScorpionError::NoExplainAttributes => {
                write!(f, "no attributes available to build explanations over")
            }
        }
    }
}

impl std::error::Error for ScorpionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScorpionError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scorpion_table::TableError> for ScorpionError {
    fn from(e: scorpion_table::TableError) -> Self {
        ScorpionError::Table(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ScorpionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ScorpionError::BadLabel { index: 9, len: 3 };
        assert!(e.to_string().contains('9'));
        let t: ScorpionError = scorpion_table::TableError::Empty("table").into();
        assert!(std::error::Error::source(&t).is_some());
        assert!(std::error::Error::source(&ScorpionError::NoOutliers).is_none());
    }
}

//! MC partitioner (§6.2): bottom-up subspace search for *independent,
//! anti-monotonic* aggregates (SUM, COUNT).
//!
//! The algorithm follows CLIQUE's shape: start from single-attribute units
//! (15 equi-width bins per continuous attribute, one unit per discrete
//! value), then repeatedly (a) prune units that cannot improve on the best
//! predicate found so far, (b) merge adjacent surviving units with the
//! Merger, and (c) intersect surviving units to raise dimensionality by
//! one. The search terminates when no merged predicate improves on `best`.
//!
//! Pruning must respect two ways influence breaks anti-monotonicity
//! (Figure 6): a predicate may be penalized only because it overlaps a
//! hold-out (its contained predicates might not — so pruning uses the
//! hold-out-free influence `inf(O, ∅, p, V)`), and `inf = Δ/|p|^c` can
//! *increase* as a predicate shrinks (so a predicate also survives when
//! its best single tuple beats `best`; with `c = 1`, a predicate's
//! influence is the mean of its tuples' influences, bounded by that
//! maximum). A predicate is pruned only when **both** escape hatches fail.
//! (The comparison directions in the paper's pseudo-code lines 20–21 are
//! printed inverted; see DESIGN.md.)

use crate::config::McConfig;
use crate::error::Result;
use crate::merger::{MergeDiag, Merger};
use crate::result::ScoredPredicate;
use crate::scorer::Scorer;
use scorpion_obs::{span, PhaseTiming, Phases};
use scorpion_table::{bin_edges, AttrDomain, Clause, Predicate};
use std::collections::{HashMap, HashSet};

/// Counters describing one MC run.
#[derive(Debug, Clone, Default)]
pub struct McDiag {
    /// Number of levels (dimensionalities) explored.
    pub levels: usize,
    /// Units generated at level 1.
    pub initial_units: usize,
    /// Candidates pruned across all levels.
    pub pruned: u64,
    /// Candidates scored across all levels.
    pub scored: u64,
    /// Aggregate Merger diagnostics.
    pub merge: MergeDiag,
    /// True when the anytime budget ([`McConfig::time_budget`]) expired
    /// before the level loop converged; the returned predicates are the
    /// best found so far.
    pub budget_exhausted: bool,
    /// Per-phase wall-clock attribution (`mc.*` phases), summed across
    /// levels.
    pub phases: Vec<PhaseTiming>,
}

/// Runs the MC search over the given explanation attributes. Returns the
/// ranked result list (best first) and diagnostics.
pub fn mc_search(
    scorer: &Scorer<'_>,
    attrs: &[usize],
    domains: &[AttrDomain],
    cfg: &McConfig,
) -> Result<(Vec<ScoredPredicate>, McDiag)> {
    let units = initial_units(scorer, attrs, domains, cfg)?;
    mc_search_units(scorer, attrs, domains, cfg, units)
}

/// Runs the MC search from pre-built level-1 units — the cheap,
/// re-runnable phase of the engine split: unit construction is
/// `c`-agnostic and can be prepared once (see
/// [`crate::engine::McEngine`]), while the search itself depends on the
/// scorer's parameters.
pub fn mc_search_units(
    scorer: &Scorer<'_>,
    attrs: &[usize],
    domains: &[AttrDomain],
    cfg: &McConfig,
    units: Vec<Predicate>,
) -> Result<(Vec<ScoredPredicate>, McDiag)> {
    let mut diag = McDiag::default();
    let merger = Merger::new(scorer, domains, cfg.merger.clone());
    let threads = crate::scorer::resolve_threads(cfg.score_threads);
    let phases = Phases::new();
    // Anytime budget: checked between whole level phases (score, prune,
    // merge, intersect are each uninterruptible) — level granularity is
    // the natural checkpoint, since every completed level has already
    // folded its improvements into `results`.
    let started = std::time::Instant::now();
    let over_budget = || cfg.time_budget.is_some_and(|b| started.elapsed() >= b);

    // Level 1: single-attribute units.
    diag.initial_units = units.len();
    let top_k = cfg.merger.max_results;
    let mut scored =
        phases.time("mc.level_score", || score_all(scorer, units, threads, top_k, &mut diag))?;
    if scored.is_empty() {
        diag.phases = phases.take();
        return Ok((vec![ScoredPredicate::new(Predicate::all(), 0.0)], diag));
    }

    // `best` starts as the paper's Null: the first iteration neither
    // prunes nor filters, so level 2 is always reachable.
    let mut best: Option<ScoredPredicate> = None;
    let max_dims = if cfg.max_dims == 0 { attrs.len() } else { cfg.max_dims.min(attrs.len()) };
    let mut results: Vec<ScoredPredicate> = Vec::new();
    let mut level = 1usize;

    loop {
        diag.levels = level;
        if over_budget() {
            diag.budget_exhausted = true;
            break;
        }
        let _span = span!("mc.level");

        // Prune candidates that can no longer matter (§6.2 PRUNE).
        if let Some(b) = &best {
            let before = scored.len();
            if !cfg.disable_pruning {
                scored = phases.time("mc.prune", || prune(scorer, scored, b.influence))?;
            }
            diag.pruned += (before - scored.len()) as u64;
        }
        if scored.is_empty() {
            break;
        }

        // Merge adjacent units; keep improvements over `best`.
        let (merged, mdiag) = phases.time("mc.level_merge", || merger.merge(scored.clone()))?;
        diag.merge.seeds += mdiag.seeds;
        diag.merge.merges += mdiag.merges;
        diag.merge.exact_estimates += mdiag.exact_estimates;
        diag.merge.approx_estimates += mdiag.approx_estimates;
        let improved: Vec<ScoredPredicate> = match &best {
            Some(b) => merged.into_iter().filter(|m| m.influence > b.influence).collect(),
            None => merged,
        };
        if improved.is_empty() {
            break;
        }
        results.extend(improved.iter().cloned());
        best = improved.iter().max_by(|a, b| a.influence.total_cmp(&b.influence)).cloned();

        if level >= max_dims {
            break;
        }
        if over_budget() {
            diag.budget_exhausted = true;
            break;
        }

        // Keep the units contained in some improved merged predicate, then
        // raise dimensionality by intersecting.
        let contained: Vec<ScoredPredicate> = scored
            .iter()
            .filter(|u| improved.iter().any(|m| u.predicate.implies(&m.predicate)))
            .cloned()
            .collect();
        let next = intersect_level(&contained, level);
        if next.is_empty() {
            break;
        }
        let mut next_scored =
            phases.time("mc.level_score", || score_all(scorer, next, threads, top_k, &mut diag))?;
        // Bound the frontier by hold-out-free influence.
        if next_scored.len() > cfg.max_candidates_per_level {
            let mut keyed: Vec<(f64, ScoredPredicate)> = next_scored
                .into_iter()
                .map(|sp| {
                    let k =
                        scorer.influence_outliers_only(&sp.predicate).unwrap_or(f64::NEG_INFINITY);
                    (k, sp)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
            keyed.truncate(cfg.max_candidates_per_level);
            next_scored = keyed.into_iter().map(|(_, sp)| sp).collect();
        }
        scored = next_scored;
        level += 1;
    }

    // Rank: best first, then remaining merged results.
    if let Some(b) = best {
        results.push(b);
    }
    results.sort_by(|a, b| b.influence.total_cmp(&a.influence));
    let mut seen = HashSet::new();
    results.retain(|sp| seen.insert(sp.predicate.clone()));
    if results.is_empty() {
        results.push(ScoredPredicate::new(Predicate::all(), 0.0));
    }
    diag.phases = phases.take();
    Ok((results, diag))
}

/// Builds the level-1 units: one predicate per continuous bin, one per
/// discrete value occurring in the outlier input groups. Unit geometry
/// depends only on the domains and the outlier rows — not on `c` or `λ`
/// — which is what makes it cacheable across parameter changes.
pub(crate) fn initial_units(
    scorer: &Scorer<'_>,
    attrs: &[usize],
    domains: &[AttrDomain],
    cfg: &McConfig,
) -> Result<Vec<Predicate>> {
    let mut units = Vec::new();
    for &attr in attrs {
        match &domains[attr] {
            AttrDomain::Continuous { lo, hi } => {
                let edges = bin_edges(*lo, *hi, cfg.n_bins.max(1));
                for w in edges.windows(2) {
                    let p = Predicate::conjunction([Clause::range(attr, w[0], w[1])])
                        .expect("bin clause is non-empty");
                    units.push(p);
                }
            }
            AttrDomain::Discrete { .. } => {
                let cat = scorer.table().cat(attr)?;
                let codes = cat.codes();
                let mut freq: HashMap<u32, u32> = HashMap::new();
                for g in 0..scorer.n_outliers() {
                    for &row in scorer.outlier_rows(g) {
                        *freq.entry(codes[row as usize]).or_insert(0) += 1;
                    }
                }
                let mut by_freq: Vec<(u32, u32)> = freq.into_iter().collect();
                by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                by_freq.truncate(cfg.max_discrete_values);
                for (code, _) in by_freq {
                    let p = Predicate::conjunction([Clause::in_set(attr, [code])])
                        .expect("singleton clause is non-empty");
                    units.push(p);
                }
            }
        }
    }
    Ok(units)
}

/// Scores a deduplicated candidate batch, fanning out across `threads`
/// scoped workers (§8.3.2's parallelism extension, via
/// [`Scorer::influence_batch_pruned`]). When the scorer carries an
/// approximate state, candidates whose influence interval cannot reach
/// the batch's top-`top_k` lower bound are skipped and reported at their
/// interval estimate; without one the batch is scored exactly.
fn score_all(
    scorer: &Scorer<'_>,
    preds: impl IntoIterator<Item = Predicate>,
    threads: usize,
    top_k: usize,
    diag: &mut McDiag,
) -> Result<Vec<ScoredPredicate>> {
    let mut seen = HashSet::new();
    let preds: Vec<Predicate> = preds.into_iter().filter(|p| seen.insert(p.clone())).collect();
    diag.scored += preds.len() as u64;
    let batch = scorer.influence_batch_pruned(&preds, threads, top_k);
    preds.into_iter().zip(batch.scores).map(|(p, inf)| Ok(ScoredPredicate::new(p, inf?))).collect()
}

/// §6.2 PRUNE: a candidate survives when its hold-out-free influence, or
/// the influence of its best single outlier tuple, still reaches `best`.
fn prune(
    scorer: &Scorer<'_>,
    preds: Vec<ScoredPredicate>,
    best: f64,
) -> Result<Vec<ScoredPredicate>> {
    let mut out = Vec::with_capacity(preds.len());
    for sp in preds {
        let keep = scorer.influence_outliers_only(&sp.predicate)? >= best
            || scorer.max_tuple_influence(&sp.predicate)? >= best;
        if keep {
            out.push(sp);
        }
    }
    Ok(out)
}

/// Intersects pairs of `level`-dimensional candidates that share
/// `level − 1` attributes with identical clauses, producing
/// `(level + 1)`-dimensional candidates (the CLIQUE join).
fn intersect_level(preds: &[ScoredPredicate], level: usize) -> Vec<Predicate> {
    let units: Vec<&Predicate> =
        preds.iter().map(|sp| &sp.predicate).filter(|p| p.num_clauses() == level).collect();
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for i in 0..units.len() {
        for j in i + 1..units.len() {
            let (a, b) = (units[i], units[j]);
            let attrs_a: Vec<usize> = a.attrs().collect();
            let attrs_b: Vec<usize> = b.attrs().collect();
            let union: HashSet<usize> = attrs_a.iter().chain(attrs_b.iter()).copied().collect();
            if union.len() != level + 1 {
                continue;
            }
            // Shared attributes must carry identical clauses (grid
            // alignment), otherwise the intersection is a fragment that a
            // different pair already generates.
            let shared_ok =
                attrs_a.iter().filter(|x| attrs_b.contains(x)).all(|&x| a.clause(x) == b.clause(x));
            if !shared_ok {
                continue;
            }
            if let Some(p) = a.intersect(b) {
                if seen.insert(p.clone()) {
                    out.push(p);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfluenceParams;
    use crate::scorer::GroupSpec;
    use scorpion_agg::Sum;
    use scorpion_table::{domains_of, group_by, Field, Schema, Table, TableBuilder, Value};

    /// SYNTH-like 2-D data for SUM: outlier group has high values inside
    /// the box x,y ∈ [20,60)²; both groups uniform elsewhere.
    fn planted(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::disc("g"),
            Field::cont("x"),
            Field::cont("y"),
            Field::cont("v"),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..n {
            let x = (i as f64 * 7.3) % 100.0;
            let y = (i as f64 * 13.7) % 100.0;
            let hot = (20.0..60.0).contains(&x) && (20.0..60.0).contains(&y);
            let v = if hot { 80.0 } else { 10.0 };
            b.push_row(vec!["o".into(), Value::from(x), Value::from(y), v.into()]).unwrap();
            b.push_row(vec!["h".into(), Value::from(x), Value::from(y), Value::from(10.0)])
                .unwrap();
        }
        b.build()
    }

    fn scorer(t: &Table, c: f64) -> Scorer<'_> {
        let g = group_by(t, &[0]).unwrap();
        Scorer::new(
            t,
            &Sum,
            3,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 }],
            InfluenceParams { lambda: 0.5, c },
            false,
        )
        .unwrap()
    }

    fn cfg() -> McConfig {
        let mut cfg = McConfig::default();
        cfg.merger.top_quartile_only = false;
        cfg
    }

    /// At moderate `c`, dilution beats growth: the best reachable
    /// predicate constrains x to (roughly) the hot band [20, 60). (§7:
    /// low `c` produces coarse, high-recall predicates.)
    #[test]
    fn moderate_c_recovers_hot_band() {
        let t = planted(800);
        let s = scorer(&t, 0.5);
        let d = domains_of(&t).unwrap();
        let (results, diag) = mc_search(&s, &[1, 2], &d, &cfg()).unwrap();
        assert!(diag.initial_units > 0);
        assert!(diag.scored > 0);
        let best = &results[0];
        // Some dimension is constrained to the hot band: admits the core
        // [27, 53) and rejects the fringes.
        let constrained = best.predicate.clauses().any(|cl| {
            cl.matches_num(27.0)
                && cl.matches_num(52.9)
                && !cl.matches_num(10.0)
                && !cl.matches_num(75.0)
        });
        assert!(constrained, "expected a hot-band clause, got {}", best.predicate.display(&t));
        assert!(best.influence > 0.0);
    }

    /// At `c = 1` influence is a per-tuple average, so the optimum is any
    /// pure-hot region: MC's level-2 refinement must deliver perfect
    /// precision on the outlier group.
    #[test]
    fn high_c_gives_pure_hot_predicates() {
        let t = planted(800);
        let s = scorer(&t, 1.0);
        let d = domains_of(&t).unwrap();
        let (results, diag) = mc_search(&s, &[1, 2], &d, &cfg()).unwrap();
        assert!(diag.levels >= 2, "{diag:?}");
        let best = &results[0];
        let m = best.predicate.matcher(&t).unwrap();
        let x = t.num(1).unwrap();
        let y = t.num(2).unwrap();
        let mut matched = 0;
        for &r in s.outlier_rows(0) {
            if m.matches(r) {
                matched += 1;
                let (xi, yi) = (x[r as usize], y[r as usize]);
                assert!(
                    (20.0..60.0).contains(&xi) && (20.0..60.0).contains(&yi),
                    "impure tuple ({xi}, {yi}) in {}",
                    best.predicate.display(&t)
                );
            }
        }
        assert!(matched > 0);
    }

    /// Pruning trades quality for work: it never *improves* the best
    /// influence, and it cuts the number of surviving candidates.
    #[test]
    fn pruning_is_a_work_quality_tradeoff() {
        let t = planted(600);
        let s1 = scorer(&t, 0.5);
        let d = domains_of(&t).unwrap();
        let (r1, diag1) = mc_search(&s1, &[1, 2], &d, &cfg()).unwrap();
        let s2 = scorer(&t, 0.5);
        let no_prune = McConfig { disable_pruning: true, ..cfg() };
        let (r2, diag2) = mc_search(&s2, &[1, 2], &d, &no_prune).unwrap();
        assert!(diag1.pruned > 0, "{diag1:?}");
        assert_eq!(diag2.pruned, 0);
        // The unpruned search sees a superset of candidates.
        assert!(r2[0].influence >= r1[0].influence - 1e-9);
        assert!(r1[0].influence > 0.0);
    }

    #[test]
    fn discrete_units_cover_outlier_values_only() {
        let schema =
            Schema::new(vec![Field::disc("g"), Field::disc("state"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..100 {
            let st = ["DC", "NY", "CA", "TX"][i % 4];
            let v = if st == "DC" { 200.0 } else { 5.0 };
            b.push_row(vec!["o".into(), st.into(), v.into()]).unwrap();
            // Hold-out group sees an extra state the outliers never have.
            let st_h = ["WA", "NY", "CA", "TX"][i % 4];
            b.push_row(vec!["h".into(), st_h.into(), Value::from(5.0)]).unwrap();
        }
        let t = b.build();
        let g = group_by(&t, &[0]).unwrap();
        let s = Scorer::new(
            &t,
            &Sum,
            2,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 }],
            InfluenceParams { lambda: 0.5, c: 0.5 },
            false,
        )
        .unwrap();
        let d = domains_of(&t).unwrap();
        let units = initial_units(&s, &[1], &d, &cfg()).unwrap();
        // 4 distinct states in the outlier group (DC, NY, CA, TX); WA is
        // hold-out-only and must not appear.
        assert_eq!(units.len(), 4);
        let wa = t.cat(1).unwrap().code_of("WA").unwrap();
        for u in &units {
            assert!(!u.clause(1).unwrap().matches_code(wa));
        }
        let (results, _) = mc_search(&s, &[1], &d, &cfg()).unwrap();
        let dc = t.cat(1).unwrap().code_of("DC").unwrap();
        assert!(results[0].predicate.clause(1).unwrap().matches_code(dc));
        assert!(!results[0].predicate.clause(1).unwrap().matches_code(wa));
    }

    #[test]
    fn intersect_level_joins_grid_aligned_pairs() {
        let px = Predicate::conjunction([Clause::range(0, 0.0, 1.0)]).unwrap();
        let py = Predicate::conjunction([Clause::range(1, 2.0, 3.0)]).unwrap();
        let pz = Predicate::conjunction([Clause::range(0, 1.0, 2.0)]).unwrap();
        let scored = vec![
            ScoredPredicate::new(px.clone(), 1.0),
            ScoredPredicate::new(py.clone(), 1.0),
            ScoredPredicate::new(pz.clone(), 1.0),
        ];
        let next = intersect_level(&scored, 1);
        // px×py and pz×py join; px×pz share the same attribute → no join.
        assert_eq!(next.len(), 2);
        for p in &next {
            assert_eq!(p.num_clauses(), 2);
        }
    }

    #[test]
    fn respects_max_dims() {
        let t = planted(400);
        let s = scorer(&t, 0.5);
        let d = domains_of(&t).unwrap();
        let one_dim = McConfig { max_dims: 1, ..cfg() };
        let (results, diag) = mc_search(&s, &[1, 2], &d, &one_dim).unwrap();
        assert!(diag.levels <= 1);
        for r in &results {
            assert!(r.predicate.num_clauses() <= 2); // merged hulls of 1-D units
        }
    }

    /// An exhausted anytime budget stops between levels but still returns
    /// a usable (possibly degenerate) best-so-far result set.
    #[test]
    fn zero_budget_exits_early_with_results() {
        let t = planted(400);
        let s = scorer(&t, 0.5);
        let d = domains_of(&t).unwrap();
        let budgeted = McConfig { time_budget: Some(std::time::Duration::ZERO), ..cfg() };
        let (results, diag) = mc_search(&s, &[1, 2], &d, &budgeted).unwrap();
        assert!(diag.budget_exhausted, "{diag:?}");
        assert!(!results.is_empty());
        // And the default (no budget) never reports exhaustion.
        let (_, full) = mc_search(&s, &[1, 2], &d, &cfg()).unwrap();
        assert!(!full.budget_exhausted);
    }
}

//! Cross-`c` caching (§8.3.3).
//!
//! The result predicates are sensitive to `c`, so a user (or a UI slider)
//! will re-run the same Scorpion query at several `c` values. Two
//! observations make this cheap:
//!
//! 1. The DT partitioner is `c`-agnostic: single-tuple influence
//!    `v·Δ(t)/1^c` does not depend on `c`, so the partitioning (and the
//!    per-partition statistics) can be computed once and only *re-scored*
//!    for each new `c`.
//! 2. The Merger is deterministic and monotone in `c`: decreasing `c`
//!    only merges further, so a previous run at a *higher* `c` is a valid
//!    warm start for the merge frontier.
//!
//! [`ScorpionSession`] implements both: partitions are cached after the
//! first run, and each merge starts from the cached merged output of the
//! nearest cached `c' ≥ c`.

use crate::api::LabeledQuery;
use crate::config::{DtConfig, InfluenceParams};
use crate::dt::DtPartitioner;
use crate::error::Result;
use crate::merger::Merger;
use crate::result::{Diagnostics, Explanation, ScoredPredicate};
use parking_lot::Mutex;
use scorpion_table::{domains_of, AttrDomain, OrdF64};
use std::collections::BTreeMap;
use std::time::Instant;

struct SessionCache {
    /// Unscored partitions (predicate + stats); influence fields hold the
    /// score at partition-build time and are recomputed per `c`.
    partitions: Option<Vec<ScoredPredicate>>,
    /// Merged outputs keyed by `c`.
    merged_by_c: BTreeMap<OrdF64, Vec<ScoredPredicate>>,
}

/// A reusable Scorpion session for DT queries, caching partitioning work
/// across changes of the `c` knob.
pub struct ScorpionSession<'a> {
    query: LabeledQuery<'a>,
    lambda: f64,
    dt_cfg: DtConfig,
    explain_attrs: Vec<usize>,
    domains: Vec<AttrDomain>,
    cache: Mutex<SessionCache>,
}

impl<'a> ScorpionSession<'a> {
    /// Creates a session. `explain_attrs = None` selects `A_rest`.
    pub fn new(
        query: LabeledQuery<'a>,
        lambda: f64,
        dt_cfg: DtConfig,
        explain_attrs: Option<Vec<usize>>,
    ) -> Result<Self> {
        query.validate()?;
        let explain_attrs = explain_attrs.unwrap_or_else(|| query.default_explain_attrs());
        let domains = domains_of(query.table)?;
        Ok(ScorpionSession {
            query,
            lambda,
            dt_cfg,
            explain_attrs,
            domains,
            cache: Mutex::new(SessionCache { partitions: None, merged_by_c: BTreeMap::new() }),
        })
    }

    /// Runs (or re-runs) the query at the given `c`, reusing cached work.
    pub fn run_with_c(&self, c: f64) -> Result<Explanation> {
        let start = Instant::now();
        let params = InfluenceParams { lambda: self.lambda, c };
        let scorer = self.query.scorer(params, false)?;

        // 1. Partitions: build once, re-score per c.
        let partitions: Vec<ScoredPredicate> = {
            let cached = self.cache.lock().partitions.clone();
            match cached {
                Some(parts) => {
                    let mut rescored = parts;
                    for p in &mut rescored {
                        p.influence = scorer.influence(&p.predicate)?;
                    }
                    rescored.sort_by(|a, b| b.influence.total_cmp(&a.influence));
                    rescored
                }
                None => {
                    let dt = DtPartitioner::new(
                        &scorer,
                        self.explain_attrs.clone(),
                        self.domains.clone(),
                        self.dt_cfg.clone(),
                    );
                    let (parts, _) = dt.partition()?;
                    self.cache.lock().partitions = Some(parts.clone());
                    parts
                }
            }
        };
        let n_partitions = partitions.len();

        // 2. Merge with warm start from the nearest cached c' ≥ c.
        let warm: Vec<ScoredPredicate> = {
            let cache = self.cache.lock();
            cache.merged_by_c.range(OrdF64(c)..).next().map(|(_, v)| v.clone()).unwrap_or_default()
        };
        let mut input = partitions;
        for mut sp in warm {
            // Warm-start predicates carry stale influences; re-score.
            sp.influence = scorer.influence(&sp.predicate)?;
            input.push(sp);
        }
        let merger = Merger::new(&scorer, &self.domains, self.dt_cfg.merger.clone());
        let (merged, _) = merger.merge(input)?;
        self.cache.lock().merged_by_c.insert(OrdF64(c), merged.clone());

        Ok(Explanation {
            predicates: merged,
            diagnostics: Diagnostics {
                algorithm: "dt",
                runtime: start.elapsed(),
                scorer_calls: scorer.scorer_calls(),
                candidates: n_partitions as u64,
                partitions: n_partitions,
                budget_exhausted: false,
            },
        })
    }

    /// True when the partitioning cache has been populated.
    pub fn is_warm(&self) -> bool {
        self.cache.lock().partitions.is_some()
    }

    /// Drops all cached state (used by the caching ablation).
    pub fn clear_cache(&self) {
        let mut c = self.cache.lock();
        c.partitions = None;
        c.merged_by_c.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpion_agg::Avg;
    use scorpion_table::{group_by, Field, Grouping, Schema, Table, TableBuilder, Value};

    fn planted() -> (Table, Grouping) {
        let schema =
            Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..400 {
            let x = (i as f64 * 7.3) % 100.0;
            let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
            b.push_row(vec!["o".into(), Value::from(x), v.into()]).unwrap();
            b.push_row(vec!["h".into(), Value::from(x), Value::from(10.0)]).unwrap();
        }
        let t = b.build();
        let g = group_by(&t, &[0]).unwrap();
        (t, g)
    }

    #[test]
    fn cached_rerun_matches_cold_run() {
        let (t, g) = planted();
        let q = LabeledQuery {
            table: &t,
            grouping: &g,
            agg: &Avg,
            agg_attr: 2,
            outliers: vec![(0, 1.0)],
            holdouts: vec![1],
        };
        let dt_cfg = DtConfig { sampling: None, ..DtConfig::default() };
        let session = ScorpionSession::new(q, 0.5, dt_cfg.clone(), None).unwrap();
        assert!(!session.is_warm());
        // Warm the cache at high c, then run at a lower c.
        let _ = session.run_with_c(0.5).unwrap();
        assert!(session.is_warm());
        let warm = session.run_with_c(0.1).unwrap();

        // Cold session straight at c = 0.1.
        let q2 = LabeledQuery {
            table: &t,
            grouping: &g,
            agg: &Avg,
            agg_attr: 2,
            outliers: vec![(0, 1.0)],
            holdouts: vec![1],
        };
        let cold_session = ScorpionSession::new(q2, 0.5, dt_cfg, None).unwrap();
        let cold = cold_session.run_with_c(0.1).unwrap();

        // The warm-started merge must be at least as good as the cold one
        // (it sees a superset of the cold run's inputs).
        assert!(warm.best().influence >= cold.best().influence - 1e-9);
    }

    #[test]
    fn rescoring_partition_cache_changes_with_c() {
        let (t, g) = planted();
        let q = LabeledQuery {
            table: &t,
            grouping: &g,
            agg: &Avg,
            agg_attr: 2,
            outliers: vec![(0, 1.0)],
            holdouts: vec![1],
        };
        let session =
            ScorpionSession::new(q, 0.5, DtConfig { sampling: None, ..DtConfig::default() }, None)
                .unwrap();
        let hi = session.run_with_c(1.0).unwrap();
        let lo = session.run_with_c(0.0).unwrap();
        // c = 0 rewards raw Δ: the chosen predicate should select at
        // least as many tuples as the c = 1 predicate.
        let rows: Vec<u32> = (0..t.len() as u32).collect();
        let n_hi = hi.best().predicate.count(&t, &rows).unwrap();
        let n_lo = lo.best().predicate.count(&t, &rows).unwrap();
        assert!(n_lo >= n_hi, "c=0 picked {n_lo} rows, c=1 picked {n_hi}");
    }

    #[test]
    fn clear_cache_resets() {
        let (t, g) = planted();
        let q = LabeledQuery {
            table: &t,
            grouping: &g,
            agg: &Avg,
            agg_attr: 2,
            outliers: vec![(0, 1.0)],
            holdouts: vec![1],
        };
        let session =
            ScorpionSession::new(q, 0.5, DtConfig { sampling: None, ..DtConfig::default() }, None)
                .unwrap();
        let _ = session.run_with_c(0.3).unwrap();
        assert!(session.is_warm());
        session.clear_cache();
        assert!(!session.is_warm());
    }
}

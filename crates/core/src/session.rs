//! Cross-parameter caching sessions (§8.3.3, generalized).
//!
//! The result predicates are sensitive to `c`, so a user (or a UI
//! slider) will re-run the same Scorpion query at several `c` values.
//! The expensive phase of every algorithm is `c`-agnostic — DT tree
//! growth, MC unit construction, NAIVE candidate enumeration — and so is
//! each scored predicate's per-group `(n, Δ)` evaluation. A
//! [`ScorpionSession`] therefore wraps any [`Explainer`] engine's
//! [`PreparedPlan`]:
//!
//! 1. The first run triggers [`Explainer::prepare`] (lazily) and pays
//!    the full cost.
//! 2. Every later run, at any `(λ, c)`, re-scores through the plan's
//!    shared [`crate::InfluenceCache`] — known predicates re-score with
//!    pure arithmetic, no matcher passes — and, for DT, warm-starts the
//!    merge from the cached output of the nearest `c' ≥ c` (the Merger
//!    is monotone in `c`: decreasing `c` only merges further).
//!
//! This is the §8.3.3 DT cache made algorithm-generic: warm cross-`c`
//! runs now work for DT **and** MC **and** NAIVE.

use crate::config::InfluenceParams;
use crate::engine::{Explainer, PreparedPlan};
use crate::error::Result;
use crate::request::ExplainRequest;
use crate::result::Explanation;
use parking_lot::Mutex;
use std::sync::Arc;

/// A reusable Scorpion session: one request, one engine, cached
/// preparation, cheap re-runs across parameter changes.
pub struct ScorpionSession {
    req: ExplainRequest,
    engine: Box<dyn Explainer>,
    plan: Mutex<Option<Arc<dyn PreparedPlan>>>,
}

impl ScorpionSession {
    /// Creates a session for the request's (resolved) algorithm.
    pub fn new(req: ExplainRequest) -> Result<Self> {
        req.validate()?;
        let engine = req.engine()?;
        Ok(ScorpionSession { req, engine, plan: Mutex::new(None) })
    }

    /// Creates a session driven by an explicit engine (overriding the
    /// request's algorithm choice).
    pub fn with_engine(req: ExplainRequest, engine: Box<dyn Explainer>) -> Result<Self> {
        req.validate()?;
        Ok(ScorpionSession { req, engine, plan: Mutex::new(None) })
    }

    /// The underlying request.
    pub fn request(&self) -> &ExplainRequest {
        &self.req
    }

    /// Diagnostic name of the engine in charge.
    pub fn algorithm(&self) -> &'static str {
        self.engine.algorithm()
    }

    /// The session's prepared plan, preparing it on first use.
    pub fn plan(&self) -> Result<Arc<dyn PreparedPlan>> {
        let mut guard = self.plan.lock();
        if let Some(p) = &*guard {
            return Ok(p.clone());
        }
        let p: Arc<dyn PreparedPlan> = Arc::from(self.engine.prepare(&self.req)?);
        *guard = Some(p.clone());
        Ok(p)
    }

    /// Runs (or re-runs) the query at the given parameters, reusing all
    /// cached work.
    pub fn run(&self, params: InfluenceParams) -> Result<Explanation> {
        self.plan()?.run(&params)
    }

    /// Runs (or re-runs) the query under a best-effort wall-clock
    /// budget — see [`PreparedPlan::run_with_budget`] for the per-engine
    /// semantics (anytime engines return best-so-far with
    /// `budget_exhausted` set; DT runs to completion regardless).
    pub fn run_with_budget(
        &self,
        params: InfluenceParams,
        budget: Option<std::time::Duration>,
    ) -> Result<Explanation> {
        self.plan()?.run_with_budget(&params, budget)
    }

    /// Runs at the request's own parameters.
    pub fn run_default(&self) -> Result<Explanation> {
        self.run(self.req.params())
    }

    /// Runs at the given `c`, keeping the request's λ — the UI-slider
    /// path.
    pub fn run_with_c(&self, c: f64) -> Result<Explanation> {
        self.run(self.req.params().with_c(c))
    }

    /// True when the preparation phase has already run.
    pub fn is_warm(&self) -> bool {
        self.plan.lock().is_some()
    }

    /// Drops all cached state (used by the caching ablation). The next
    /// run prepares from scratch.
    pub fn clear_cache(&self) {
        *self.plan.lock() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, DtConfig};
    use crate::request::Scorpion;
    use scorpion_agg::Avg;
    use scorpion_table::{Field, Schema, Table, TableBuilder, Value};
    use std::sync::Arc as StdArc;

    fn planted() -> Table {
        let schema =
            Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..400 {
            let x = (i as f64 * 7.3) % 100.0;
            let v = if (20.0..60.0).contains(&x) { 80.0 } else { 10.0 };
            b.push_row(vec!["o".into(), Value::from(x), v.into()]).unwrap();
            b.push_row(vec!["h".into(), Value::from(x), Value::from(10.0)]).unwrap();
        }
        b.build()
    }

    fn dt_request(table: Table) -> crate::request::ExplainRequest {
        Scorpion::on(table)
            .group_by(&[0], StdArc::new(Avg), 2)
            .unwrap()
            .outlier(0, 1.0)
            .holdout(1)
            .params(0.5, 0.5)
            .algorithm(Algorithm::DecisionTree(DtConfig { sampling: None, ..DtConfig::default() }))
            .build()
            .unwrap()
    }

    #[test]
    fn cached_rerun_matches_cold_run() {
        let t = planted();
        let session = ScorpionSession::new(dt_request(t.clone())).unwrap();
        assert!(!session.is_warm());
        // Warm the cache at high c, then run at a lower c.
        let _ = session.run_with_c(0.5).unwrap();
        assert!(session.is_warm());
        let warm = session.run_with_c(0.1).unwrap();

        // Cold session straight at c = 0.1.
        let cold_session = ScorpionSession::new(dt_request(t)).unwrap();
        let cold = cold_session.run_with_c(0.1).unwrap();

        // The warm-started merge must be at least as good as the cold one
        // (it sees a superset of the cold run's inputs) and strictly
        // cheaper in scorer calls.
        assert!(warm.best().influence >= cold.best().influence - 1e-9);
        assert!(
            warm.diagnostics.scorer_calls < cold.diagnostics.scorer_calls,
            "warm {} vs cold {}",
            warm.diagnostics.scorer_calls,
            cold.diagnostics.scorer_calls
        );
    }

    #[test]
    fn rescoring_partition_cache_changes_with_c() {
        let t = planted();
        let session = ScorpionSession::new(dt_request(t.clone())).unwrap();
        let hi = session.run_with_c(1.0).unwrap();
        let lo = session.run_with_c(0.0).unwrap();
        // c = 0 rewards raw Δ: the chosen predicate should select at
        // least as many tuples as the c = 1 predicate.
        let rows: Vec<u32> = (0..t.len() as u32).collect();
        let n_hi = hi.best().predicate.count(&t, &rows).unwrap();
        let n_lo = lo.best().predicate.count(&t, &rows).unwrap();
        assert!(n_lo >= n_hi, "c=0 picked {n_lo} rows, c=1 picked {n_hi}");
    }

    #[test]
    fn clear_cache_resets() {
        let session = ScorpionSession::new(dt_request(planted())).unwrap();
        let _ = session.run_with_c(0.3).unwrap();
        assert!(session.is_warm());
        session.clear_cache();
        assert!(!session.is_warm());
    }

    #[test]
    fn session_resolves_auto_algorithm() {
        let req = Scorpion::on(planted())
            .group_by(&[0], StdArc::new(Avg), 2)
            .unwrap()
            .outlier(0, 1.0)
            .holdout(1)
            .build()
            .unwrap();
        let session = ScorpionSession::new(req).unwrap();
        assert_eq!(session.algorithm(), "dt"); // AVG → DT via Auto
        assert!(session.run_default().unwrap().best().influence.is_finite());
    }
}

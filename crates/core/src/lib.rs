//! # scorpion-core
//!
//! The Scorpion engine (Wu & Madden, VLDB 2013): given a group-by
//! aggregate query, user-labeled outlier and hold-out results, and error
//! vectors, find the predicate over the non-aggregate attributes with
//! maximum *influence* — the predicate whose deletion best "explains away"
//! the outliers (§3).
//!
//! Components, mirroring the paper's architecture (Figure 2):
//!
//! * [`Scorpion`] / [`ExplainRequest`] — the fluent, owned entry point:
//!   `Scorpion::on(table).sql(…)?.outlier(…).holdout(…).build()?`.
//! * [`engine::Explainer`] / [`engine::PreparedPlan`] — every algorithm
//!   as a two-phase engine: an expensive, `c`-agnostic `prepare` (DT
//!   partitioning, MC unit construction, NAIVE candidate enumeration)
//!   and a cheap, re-runnable `run` (§8.3.3, generalized).
//! * [`Scorer`] — influence evaluation, with the §5.1 incremental fast
//!   path and the cross-run [`InfluenceCache`].
//! * Partitioners — [`naive::naive_search`] (§4.2),
//!   [`dt::DtPartitioner`] (§6.1), [`mc::mc_search`] (§6.2).
//! * [`merger::Merger`] — greedy bounding-box merging with the §6.3
//!   optimizations.
//! * [`session::ScorpionSession`] — algorithm-generic cross-parameter
//!   caching over a prepared plan.
//! * [`explain`] — the borrowed one-call entry point with automatic
//!   algorithm selection from the aggregate's §5 properties.

#![warn(missing_docs)]

pub mod api;
pub mod approx;
pub mod config;
pub mod dt;
pub mod engine;
mod error;
pub mod features;
pub mod lru;
pub mod mc;
pub mod merger;
pub mod naive;
pub mod prepared;
pub mod request;
mod result;
mod scorer;
pub mod session;
pub mod telemetry;

pub use api::{explain, resolve_algorithm, LabeledQuery};
pub use approx::ApproxState;
pub use config::{
    Algorithm, ApproxConfig, DtConfig, InfluenceParams, McConfig, MergerConfig, NaiveConfig,
    SamplingConfig, ScorpionConfig, APPROX_CONFIDENCE_RANGE, APPROX_RATE_RANGE,
};
pub use engine::{engine_for, DtEngine, EngineRun, Explainer, McEngine, NaiveEngine, PreparedPlan};
pub use error::{Result, ScorpionError};
pub use lru::LruShard;
pub use prepared::PreparedQuery;
pub use request::{label_extremes, ExplainRequest, RequestBuilder, Scorpion};
pub use result::{Diagnostics, Explanation, GroupStat, PartitionStats, ScoredPredicate};
pub use scorer::{resolve_threads, GroupSpec, InfluenceCache, PrunedBatch, Scorer};
pub use scorpion_obs::PhaseTiming;
pub use session::ScorpionSession;
pub use telemetry::{
    apply_diagnostics, events_to_table, table_csv, telemetry_table_from_csv, TelemetryTable,
};

//! NAIVE partitioner (§4.2): anytime exhaustive predicate enumeration.
//!
//! The paper's baseline enumerates every conjunction of single-attribute
//! clauses: all consecutive bin ranges over each continuous attribute and
//! all value subsets over each discrete attribute. Because the space is
//! exponential, the experiments (§8.2) use a *modified* exhaustive
//! algorithm that generates predicates in order of increasing complexity —
//! number of clauses, and size of discrete value sets — and stops after a
//! wall-clock budget, returning the best predicate found so far. This
//! module implements that modified algorithm, including the best-so-far
//! trace Figure 11 plots.

use crate::config::NaiveConfig;
use crate::error::Result;
use crate::result::ScoredPredicate;
use crate::scorer::Scorer;
use scorpion_table::{bin_edges, AttrDomain, Clause, Predicate};
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

/// One improvement of the best-so-far predicate (Figure 11's time series).
#[derive(Debug, Clone)]
pub struct TracePoint {
    /// Wall-clock time of the improvement, from search start.
    pub elapsed: Duration,
    /// Influence of the new best predicate.
    pub influence: f64,
    /// The new best predicate.
    pub predicate: Predicate,
}

/// Result of a NAIVE search.
#[derive(Debug, Clone)]
pub struct NaiveOutcome {
    /// The most influential predicate found.
    pub best: ScoredPredicate,
    /// Best-so-far improvements (empty unless `keep_trace`).
    pub trace: Vec<TracePoint>,
    /// Number of predicates scored.
    pub evaluated: u64,
    /// False when the time budget expired before the enumeration finished.
    pub completed: bool,
    /// When the returned predicate was first found — the paper's
    /// "earliest time that NAIVE converges" (Figure 14).
    pub converged_at: Duration,
}

/// Per-attribute clause candidates.
#[derive(Clone)]
enum AttrClauses {
    /// All consecutive-bin ranges, from the §4.2 equi-width binning.
    Continuous(Vec<Clause>),
    /// Distinct codes (most frequent in the outlier groups first); subsets
    /// are enumerated on the fly up to the configured size.
    Discrete { attr: usize, codes: Vec<u32> },
}

/// The `c`-agnostic phase of a NAIVE run: the per-attribute clause
/// candidates the enumeration walks. Geometry depends only on the
/// domains, the binning config, and the outlier rows, so it can be
/// prepared once and re-enumerated cheaply at any influence parameters
/// (see [`crate::engine::NaiveEngine`]).
#[derive(Clone)]
pub(crate) struct NaiveCandidates {
    candidates: Vec<AttrClauses>,
    has_discrete: bool,
}

/// Builds the candidate clause sets for the given explanation
/// attributes.
pub(crate) fn naive_candidates(
    scorer: &Scorer<'_>,
    attrs: &[usize],
    domains: &[AttrDomain],
    cfg: &NaiveConfig,
) -> Result<NaiveCandidates> {
    let mut candidates: Vec<AttrClauses> = Vec::with_capacity(attrs.len());
    let mut has_discrete = false;
    for &attr in attrs {
        match &domains[attr] {
            AttrDomain::Continuous { lo, hi } => {
                let edges = bin_edges(*lo, *hi, cfg.n_bins.max(1));
                let mut clauses = Vec::with_capacity(cfg.n_bins * (cfg.n_bins + 1) / 2);
                for i in 0..edges.len() - 1 {
                    for j in i + 1..edges.len() {
                        clauses.push(Clause::range(attr, edges[i], edges[j]));
                    }
                }
                candidates.push(AttrClauses::Continuous(clauses));
            }
            AttrDomain::Discrete { .. } => {
                has_discrete = true;
                candidates.push(AttrClauses::Discrete {
                    attr,
                    codes: outlier_codes(scorer, attr, cfg.max_discrete_values)?,
                });
            }
        }
    }
    Ok(NaiveCandidates { candidates, has_discrete })
}

/// Runs the NAIVE search over the given explanation attributes.
pub fn naive_search(
    scorer: &Scorer<'_>,
    attrs: &[usize],
    domains: &[AttrDomain],
    cfg: &NaiveConfig,
) -> Result<NaiveOutcome> {
    let cands = naive_candidates(scorer, attrs, domains, cfg)?;
    naive_search_prepared(scorer, &cands, cfg)
}

/// Runs the NAIVE enumeration over prepared candidates — the cheap,
/// re-runnable phase of the engine split.
pub(crate) fn naive_search_prepared(
    scorer: &Scorer<'_>,
    cands: &NaiveCandidates,
    cfg: &NaiveConfig,
) -> Result<NaiveOutcome> {
    let start = Instant::now();
    let candidates = &cands.candidates;
    let n_attrs = candidates.len();
    let max_clauses = if cfg.max_clauses == 0 { n_attrs } else { cfg.max_clauses.min(n_attrs) };
    let max_subset = if cands.has_discrete { cfg.max_discrete_subset.max(1) } else { 1 };

    let mut st = SearchState {
        scorer,
        cfg,
        start,
        best: None,
        trace: Vec::new(),
        evaluated: 0,
        converged_at: Duration::ZERO,
    };

    // Increasing complexity: outer loop over the maximum discrete-subset
    // size `s`, inner loop over the number of clauses `k` (§8.2). For
    // s > 1, at least one discrete clause must have size exactly `s` so
    // no predicate is scored twice across rounds.
    let mut completed = true;
    'outer: for s in 1..=max_subset {
        for k in 1..=max_clauses {
            let mut chosen: Vec<Clause> = Vec::with_capacity(k);
            let flow = enumerate_combos(candidates, 0, k, s, s == 1, &mut chosen, &mut st);
            if flow.is_break() {
                completed = false;
                break 'outer;
            }
        }
    }

    let best = st.best.unwrap_or_else(|| ScoredPredicate::new(Predicate::all(), f64::NEG_INFINITY));
    Ok(NaiveOutcome {
        best,
        trace: st.trace,
        evaluated: st.evaluated,
        completed,
        converged_at: st.converged_at,
    })
}

/// Distinct codes of `attr` appearing in the outlier input groups, most
/// frequent first, capped at `max_values`. Values absent from every
/// outlier group cannot contribute positive outlier influence, so NAIVE
/// does not enumerate them.
fn outlier_codes(scorer: &Scorer<'_>, attr: usize, max_values: usize) -> Result<Vec<u32>> {
    let cat = scorer.table().cat(attr)?;
    let codes = cat.codes();
    let mut freq: HashMap<u32, u32> = HashMap::new();
    for g in 0..scorer.n_outliers() {
        for &row in scorer.outlier_rows(g) {
            *freq.entry(codes[row as usize]).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(u32, u32)> = freq.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(max_values);
    Ok(out.into_iter().map(|(c, _)| c).collect())
}

/// Advances `idx` to the next k-combination of `0..n` in lexicographic
/// order; returns false when exhausted.
fn next_combination(idx: &mut [usize], n: usize) -> bool {
    let k = idx.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if idx[i] < n - (k - i) {
            idx[i] += 1;
            for j in i + 1..k {
                idx[j] = idx[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

struct SearchState<'s, 'a> {
    scorer: &'s Scorer<'a>,
    cfg: &'s NaiveConfig,
    start: Instant,
    best: Option<ScoredPredicate>,
    trace: Vec<TracePoint>,
    evaluated: u64,
    converged_at: Duration,
}

impl SearchState<'_, '_> {
    fn score(&mut self, clauses: &[Clause]) -> ControlFlow<()> {
        if let Some(budget) = self.cfg.time_budget {
            if self.evaluated.is_multiple_of(128) && self.start.elapsed() > budget {
                return ControlFlow::Break(());
            }
        }
        let Some(pred) = Predicate::conjunction(clauses.iter().cloned()) else {
            return ControlFlow::Continue(());
        };
        self.evaluated += 1;
        let inf = match self.scorer.influence(&pred) {
            Ok(v) => v,
            Err(_) => return ControlFlow::Continue(()),
        };
        let improved = self.best.as_ref().is_none_or(|b| inf > b.influence);
        if improved {
            self.converged_at = self.start.elapsed();
            if self.cfg.keep_trace {
                self.trace.push(TracePoint {
                    elapsed: self.converged_at,
                    influence: inf,
                    predicate: pred.clone(),
                });
            }
            self.best = Some(ScoredPredicate::new(pred, inf));
        }
        ControlFlow::Continue(())
    }
}

/// Chooses `k` more attributes starting at `from` and enumerates the
/// cartesian product of their clause candidates. `have_exact_s` tracks
/// whether a discrete clause of size exactly `s` has been placed (required
/// for `s > 1` to keep rounds disjoint).
fn enumerate_combos(
    candidates: &[AttrClauses],
    from: usize,
    k: usize,
    s: usize,
    have_exact_s: bool,
    chosen: &mut Vec<Clause>,
    st: &mut SearchState<'_, '_>,
) -> ControlFlow<()> {
    if k == 0 {
        if have_exact_s {
            return st.score(chosen);
        }
        return ControlFlow::Continue(());
    }
    if from + k > candidates.len() {
        return ControlFlow::Continue(());
    }
    // Option 1: skip attribute `from`.
    enumerate_combos(candidates, from + 1, k, s, have_exact_s, chosen, st)?;
    // Option 2: constrain attribute `from` with each candidate clause.
    match &candidates[from] {
        AttrClauses::Continuous(clauses) => {
            for c in clauses {
                chosen.push(c.clone());
                enumerate_combos(candidates, from + 1, k - 1, s, have_exact_s, chosen, st)?;
                chosen.pop();
            }
        }
        AttrClauses::Discrete { attr, codes } => {
            for size in 1..=s.min(codes.len()) {
                let exact = have_exact_s || size == s;
                let mut idx: Vec<usize> = (0..size).collect();
                loop {
                    let subset: Vec<u32> = idx.iter().map(|&i| codes[i]).collect();
                    chosen.push(Clause::in_set(*attr, subset));
                    let flow = enumerate_combos(candidates, from + 1, k - 1, s, exact, chosen, st);
                    chosen.pop();
                    flow?;
                    if !next_combination(&mut idx, codes.len()) {
                        break;
                    }
                }
            }
        }
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfluenceParams;
    use crate::scorer::GroupSpec;
    use scorpion_agg::Sum;
    use scorpion_table::{domains_of, group_by, Field, Schema, Table, TableBuilder, Value};

    /// Two groups over x ∈ [0,10): group "o" has value 100 for x ∈ [4,6),
    /// 1 elsewhere; group "h" is uniformly 1. The planted explanation is
    /// x ∈ [4,6).
    fn planted() -> Table {
        let schema =
            Schema::new(vec![Field::disc("g"), Field::cont("x"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..50 {
            let x = i as f64 * 0.2; // 0.0 .. 9.8
            let v = if (4.0..6.0).contains(&x) { 100.0 } else { 1.0 };
            b.push_row(vec![Value::from("o"), Value::from(x), Value::from(v)]).unwrap();
            b.push_row(vec![Value::from("h"), Value::from(x), Value::from(1.0)]).unwrap();
        }
        b.build()
    }

    fn scorer(t: &Table, c: f64) -> Scorer<'_> {
        let g = group_by(t, &[0]).unwrap();
        Scorer::new(
            t,
            &Sum,
            2,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 }],
            InfluenceParams { lambda: 0.5, c },
            false,
        )
        .unwrap()
    }

    /// At c = 1 influence is a per-tuple average, so the optimum is any
    /// pure-hot range: NAIVE must return a predicate selecting only hot
    /// outlier tuples.
    #[test]
    fn c1_best_predicate_is_pure_hot() {
        let t = planted();
        let s = scorer(&t, 1.0);
        let domains = domains_of(&t).unwrap();
        let cfg = NaiveConfig { n_bins: 10, keep_trace: true, ..NaiveConfig::default() };
        let out = naive_search(&s, &[1], &domains, &cfg).unwrap();
        assert!(out.completed);
        assert!(out.evaluated > 0);
        let rows: Vec<u32> = (0..t.len() as u32).collect();
        let selected = out.best.predicate.select(&t, &rows).unwrap();
        let x = t.num(1).unwrap();
        let codes = t.cat(0).unwrap().codes();
        let mut hot_selected = 0;
        for &r in &selected {
            if codes[r as usize] == 0 {
                assert!(
                    (4.0..6.0).contains(&x[r as usize]),
                    "cold outlier row {r} selected by {}",
                    out.best.predicate.display(&t)
                );
                hot_selected += 1;
            }
        }
        assert!(hot_selected > 0);
        assert!(!out.trace.is_empty());
        for w in out.trace.windows(2) {
            assert!(w[1].influence > w[0].influence);
        }
    }

    /// At c = 0 raw Δ dominates, so the optimum must cover every hot
    /// outlier row (Figure 9's C = 0 panel encloses the whole outer cube).
    #[test]
    fn c0_best_predicate_covers_all_hot_rows() {
        let t = planted();
        let s = scorer(&t, 0.0);
        let domains = domains_of(&t).unwrap();
        let cfg = NaiveConfig { n_bins: 10, ..NaiveConfig::default() };
        let out = naive_search(&s, &[1], &domains, &cfg).unwrap();
        assert!(out.completed);
        let rows: Vec<u32> = (0..t.len() as u32).collect();
        let selected = out.best.predicate.select(&t, &rows).unwrap();
        let x = t.num(1).unwrap();
        let codes = t.cat(0).unwrap().codes();
        for &r in &rows {
            if codes[r as usize] == 0 && (4.0..6.0).contains(&x[r as usize]) {
                assert!(selected.contains(&r), "hot row {r} missing");
            }
        }
    }

    #[test]
    fn budget_zero_terminates_quickly() {
        let t = planted();
        let s = scorer(&t, 0.5);
        let domains = domains_of(&t).unwrap();
        let cfg = NaiveConfig { time_budget: Some(Duration::ZERO), ..NaiveConfig::default() };
        let out = naive_search(&s, &[1], &domains, &cfg).unwrap();
        assert!(!out.completed);
        assert!(out.evaluated <= 129);
    }

    #[test]
    fn finds_planted_discrete_pair() {
        let schema =
            Schema::new(vec![Field::disc("g"), Field::disc("color"), Field::cont("v")]).unwrap();
        let mut b = TableBuilder::new(schema);
        for i in 0..30 {
            let color = ["red", "blue", "green"][i % 3];
            let v = if color != "green" { 50.0 } else { 1.0 };
            b.push_row(vec![Value::from("o"), Value::from(color), Value::from(v)]).unwrap();
            b.push_row(vec![Value::from("h"), Value::from(color), Value::from(1.0)]).unwrap();
        }
        let t = b.build();
        let g = group_by(&t, &[0]).unwrap();
        let s = Scorer::new(
            &t,
            &Sum,
            2,
            vec![GroupSpec { rows: g.rows(0).to_vec(), error: 1.0 }],
            vec![GroupSpec { rows: g.rows(1).to_vec(), error: 1.0 }],
            InfluenceParams { lambda: 0.5, c: 0.2 },
            false,
        )
        .unwrap();
        let domains = domains_of(&t).unwrap();
        let cfg = NaiveConfig { max_discrete_subset: 2, ..NaiveConfig::default() };
        let out = naive_search(&s, &[1], &domains, &cfg).unwrap();
        assert!(out.completed);
        let clause = out.best.predicate.clause(1).expect("color clause");
        let cat = t.cat(1).unwrap();
        assert!(clause.matches_code(cat.code_of("red").unwrap()));
        assert!(clause.matches_code(cat.code_of("blue").unwrap()));
        assert!(!clause.matches_code(cat.code_of("green").unwrap()));
    }

    #[test]
    fn respects_max_clauses_and_counts_evaluations() {
        let t = planted();
        let s = scorer(&t, 1.0);
        let domains = domains_of(&t).unwrap();
        let cfg = NaiveConfig { max_clauses: 1, n_bins: 5, ..NaiveConfig::default() };
        let out = naive_search(&s, &[1, 2], &domains, &cfg).unwrap();
        assert!(out.best.predicate.num_clauses() <= 1);
        // One-clause predicates over two continuous attrs with 5 bins:
        // 2 attrs × C(6,2) = 2 × 15 = 30.
        assert_eq!(out.evaluated, 30);
    }

    #[test]
    fn next_combination_enumerates_all() {
        let mut idx = vec![0usize, 1];
        let mut seen = vec![idx.clone()];
        while next_combination(&mut idx, 4) {
            seen.push(idx.clone());
        }
        assert_eq!(
            seen,
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3]]
        );
    }
}

//! SQL-driven query preparation: parse → select → group → aggregate →
//! label, mirroring the end-to-end flow of the paper's system (Figure 2):
//! the user runs an aggregate query, sees the result series, and labels
//! result indices.

use crate::api::LabeledQuery;
use crate::error::{Result, ScorpionError};
use scorpion_agg::{aggregate_by_name, Aggregate};
use scorpion_table::{
    aggregate_groups, apply_selection, group_by, parse_query, Grouping, Table, TableError,
};
use std::sync::Arc;

/// A parsed, executed aggregate query ready for labeling.
pub struct PreparedQuery {
    /// The (possibly WHERE-materialized) input relation `D`.
    pub table: Table,
    /// Grouping over `A_gb` — also the provenance mapping.
    pub grouping: Grouping,
    /// The resolved aggregate operator.
    pub agg: Arc<dyn Aggregate>,
    /// Aggregate attribute index in `table`.
    pub agg_attr: usize,
    /// The aggregate result series, in group order (what the user's chart
    /// shows).
    pub results: Vec<f64>,
}

impl PreparedQuery {
    /// Parses and executes a select-project-group-by query against
    /// `source`. WHERE clauses are materialized into a fresh table, as
    /// §3.1 models selections.
    pub fn new(source: &Table, sql: &str) -> Result<Self> {
        let parsed = parse_query(sql)?;
        let agg = aggregate_by_name(&parsed.agg_name)
            .ok_or_else(|| ScorpionError::UnknownAggregate { name: parsed.agg_name.clone() })?;
        let table = if parsed.selection.is_empty() {
            source.clone()
        } else {
            let rows = apply_selection(source, &parsed.selection)?;
            source.select_rows(&rows)?
        };
        if table.is_empty() {
            return Err(ScorpionError::Table(TableError::Empty("selected input")));
        }
        let gb_attrs: Vec<usize> = parsed
            .group_by
            .iter()
            .map(|name| table.attr(name))
            .collect::<std::result::Result<_, _>>()?;
        let agg_attr = table.attr(&parsed.agg_attr)?;
        let grouping = group_by(&table, &gb_attrs)?;
        let agg_ref = agg.clone();
        let results = aggregate_groups(&table, &grouping, agg_attr, move |v| agg_ref.compute(v))?;
        Ok(PreparedQuery { table, grouping, agg, agg_attr, results })
    }

    /// Labels result indices and returns the query Scorpion consumes.
    /// `outliers` pairs each result index with its error-vector component.
    pub fn labeled(&self, outliers: Vec<(usize, f64)>, holdouts: Vec<usize>) -> LabeledQuery<'_> {
        LabeledQuery {
            table: &self.table,
            grouping: &self.grouping,
            agg: self.agg.as_ref(),
            agg_attr: self.agg_attr,
            outliers,
            holdouts,
        }
    }

    /// Convenience auto-labeling for exploration: flags the `k` results
    /// whose values deviate most from the median as outliers (error = sign
    /// of the deviation) and up to `k` of the closest as hold-outs — the
    /// two sets are always disjoint, so tiny result series (down to a
    /// single result) never produce overlapping labels. Real users label
    /// through a chart; this mirrors that for scripted runs.
    pub fn label_extremes(&self, k: usize) -> (Vec<(usize, f64)>, Vec<usize>) {
        crate::request::label_extremes(&self.results, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScorpionConfig;
    use scorpion_table::{Field, Schema, TableBuilder};

    fn sensors() -> Table {
        let schema = Schema::new(vec![
            Field::disc("time"),
            Field::disc("sensorid"),
            Field::cont("voltage"),
            Field::cont("temp"),
        ])
        .unwrap();
        let rows: [(&str, &str, f64, f64); 9] = [
            ("11AM", "1", 2.64, 34.0),
            ("11AM", "2", 2.65, 35.0),
            ("11AM", "3", 2.63, 35.0),
            ("12PM", "1", 2.70, 35.0),
            ("12PM", "2", 2.70, 35.0),
            ("12PM", "3", 2.30, 100.0),
            ("1PM", "1", 2.70, 35.0),
            ("1PM", "2", 2.70, 35.0),
            ("1PM", "3", 2.30, 80.0),
        ];
        let mut b = TableBuilder::new(schema);
        for (t, s, v, temp) in rows {
            b.push_row(vec![t.into(), s.into(), v.into(), temp.into()]).unwrap();
        }
        b.build()
    }

    #[test]
    fn prepare_and_explain_q1() {
        let t = sensors();
        let q =
            PreparedQuery::new(&t, "SELECT avg(temp), time FROM sensors GROUP BY time").unwrap();
        assert_eq!(q.results.len(), 3);
        assert!((q.results[1] - 56.6667).abs() < 1e-3);
        let labeled = q.labeled(vec![(1, 1.0), (2, 1.0)], vec![0]);
        let ex = crate::api::explain(&labeled, &ScorpionConfig::default()).unwrap();
        let sel = ex
            .best()
            .predicate
            .select(&q.table, &(0..q.table.len() as u32).collect::<Vec<_>>())
            .unwrap();
        assert!(sel.contains(&5) && sel.contains(&8));
    }

    #[test]
    fn where_clause_materializes() {
        let t = sensors();
        let q = PreparedQuery::new(
            &t,
            "SELECT avg(temp) FROM sensors WHERE sensorid = '3' GROUP BY time",
        )
        .unwrap();
        assert_eq!(q.table.len(), 3);
        assert_eq!(q.results.len(), 3);
        assert!((q.results[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn numeric_where() {
        let t = sensors();
        let q = PreparedQuery::new(
            &t,
            "SELECT avg(temp) FROM sensors WHERE voltage >= 2.5 GROUP BY time",
        )
        .unwrap();
        // The two low-voltage readings are filtered out.
        assert_eq!(q.table.len(), 7);
        assert!(q.results.iter().all(|&v| v < 40.0));
    }

    #[test]
    fn unknown_aggregate_rejected_with_vocabulary() {
        let t = sensors();
        let err = match PreparedQuery::new(&t, "SELECT geomean(temp) FROM s GROUP BY time") {
            Err(e) => e,
            Ok(_) => panic!("geomean is not registered"),
        };
        assert!(matches!(err, ScorpionError::UnknownAggregate { .. }));
        let msg = err.to_string();
        assert!(msg.contains("geomean"), "names the offender: {msg}");
        for name in scorpion_agg::registered_names() {
            assert!(msg.contains(name), "lists {name}: {msg}");
        }
    }

    #[test]
    fn empty_selection_rejected() {
        let t = sensors();
        assert!(PreparedQuery::new(
            &t,
            "SELECT avg(temp) FROM s WHERE sensorid = 'nope' GROUP BY time"
        )
        .is_err());
    }

    #[test]
    fn label_extremes_is_disjoint_on_tiny_series() {
        // Regression: with a single result, `k` clamps to 1 and the old
        // code emitted the same index as both outlier and hold-out, so
        // `explain` always failed with OverlappingLabels.
        let t = sensors();
        let q = PreparedQuery::new(
            &t,
            "SELECT avg(temp) FROM sensors WHERE time = '12PM' GROUP BY time",
        )
        .unwrap();
        assert_eq!(q.results.len(), 1);
        let (outliers, holdouts) = q.label_extremes(1);
        assert_eq!(outliers.len(), 1);
        assert!(holdouts.is_empty(), "single result must not double-label: {holdouts:?}");
        let labeled = q.labeled(outliers, holdouts);
        assert!(labeled.validate().is_ok());
        // And the downstream explain must no longer be doomed to fail.
        assert!(crate::api::explain(&labeled, &ScorpionConfig::default()).is_ok());
    }

    #[test]
    fn label_extremes_flags_the_hot_hours() {
        let t = sensors();
        let q = PreparedQuery::new(&t, "SELECT avg(temp) FROM s GROUP BY time").unwrap();
        let (outliers, holdouts) = q.label_extremes(1);
        // Median result is 50 (α3); α1 (34.7) deviates most → flagged
        // "too low" (error −1).
        assert_eq!(outliers[0].0, 0);
        assert_eq!(outliers[0].1, -1.0);
        // The hold-out is the result closest to the median (α3 itself).
        assert_eq!(holdouts, vec![2]);
    }
}

//! Configuration for the Scorpion engine and its algorithms.

use std::time::Duration;

/// The influence knobs shared by every algorithm.
///
/// * `lambda` (§3.2): weight of outlier influence vs. hold-out penalty in
///   `inf(O,H,p,V) = λ·avg_o inf(o,p,v_o) − (1−λ)·max_h |inf(h,p)|`.
/// * `c` (§7): the denominator exponent in `inf = Δ/|p(g_o)|^c`. `c = 0`
///   maximizes raw Δ regardless of how many tuples are deleted; larger `c`
///   demands more selective predicates. The paper's basic definition is
///   `c = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfluenceParams {
    /// Hold-out importance trade-off, in `[0, 1]`.
    pub lambda: f64,
    /// Selectivity exponent, `>= 0`.
    pub c: f64,
}

impl Default for InfluenceParams {
    fn default() -> Self {
        InfluenceParams { lambda: 0.5, c: 0.5 }
    }
}

impl InfluenceParams {
    /// Convenience constructor.
    pub fn new(lambda: f64, c: f64) -> Self {
        InfluenceParams { lambda, c }
    }

    /// Replaces `c`, keeping `lambda`.
    #[must_use]
    pub fn with_c(self, c: f64) -> Self {
        InfluenceParams { c, ..self }
    }
}

/// Configuration of the NAIVE exhaustive partitioner (§4.2, §8.2).
#[derive(Debug, Clone)]
pub struct NaiveConfig {
    /// Number of equi-width bins per continuous attribute (paper: 15).
    pub n_bins: usize,
    /// Maximum number of clauses per predicate (defaults to all attributes
    /// when 0).
    pub max_clauses: usize,
    /// Maximum cardinality of a discrete clause's value set.
    pub max_discrete_subset: usize,
    /// Cap on the distinct values considered per discrete attribute
    /// (values are drawn from the outlier input groups).
    pub max_discrete_values: usize,
    /// Anytime budget: the search stops after this much wall-clock time
    /// and returns the best predicate so far (the paper ran NAIVE for up
    /// to 40 minutes).
    pub time_budget: Option<Duration>,
    /// Record the best-so-far trace (Figure 11) at every improvement.
    pub keep_trace: bool,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig {
            n_bins: 15,
            max_clauses: 0,
            max_discrete_subset: 3,
            max_discrete_values: 64,
            time_budget: Some(Duration::from_secs(60)),
            keep_trace: false,
        }
    }
}

/// Configuration of the influence-weighted sampling inside DT (§6.1.2).
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// `ε`: the assumed fraction of the dataset occupied by an influential
    /// cluster; drives the initial uniform sampling rate
    /// `min{ sr | 1 − (1−ε)^(sr·|D|) ≥ 0.95 }`.
    pub epsilon: f64,
    /// Groups smaller than this are never sampled.
    pub min_rows_to_sample: usize,
    /// Sampling-rate floor applied after stratified reweighting.
    pub min_rate: f64,
    /// RNG seed (sampling is deterministic given the seed).
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig { epsilon: 0.01, min_rows_to_sample: 4000, min_rate: 0.05, seed: 0x5C09 }
    }
}

/// Configuration of the two-stage approximate influence search.
///
/// When attached to a request, candidate predicates are first scored with
/// closed-form influence *intervals* derived from a deterministic
/// stratified row sample (per input group); candidates whose interval
/// upper bound cannot reach the running top-k lower bound are pruned
/// before exact scoring. The intervals are conservative envelopes — the
/// true influence always lies inside them — so the exact top-1 predicate
/// is never pruned and the reported `approx_error_bound` is honest by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// Fraction of each group's rows sampled exactly, in `(0, 1]`. Rows
    /// are chosen by seeded hash rank, so the sample is deterministic and
    /// identical across reruns. `1.0` degenerates to exact scoring.
    pub sample_rate: f64,
    /// Requested confidence level for the influence intervals, in
    /// `(0.5, 1]`. The current bounds are deterministic envelopes with
    /// coverage 1.0, so any admissible value is met; the knob is
    /// validated and reserved for future distribution-sensitive
    /// tightening (Macke et al.).
    pub confidence: f64,
    /// Groups smaller than this are never sampled (interval bounds on
    /// tiny groups cost more than exact scoring saves); their rows are
    /// scored exactly and contribute zero to the error bound.
    pub min_rows: usize,
    /// Seed of the hash-rank sampler (deterministic given the seed).
    pub seed: u64,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig { sample_rate: 0.1, confidence: 0.95, min_rows: 256, seed: 0x5C09 }
    }
}

/// Valid range for [`ApproxConfig::sample_rate`], used in error messages.
pub const APPROX_RATE_RANGE: &str = "(0.0, 1.0]";
/// Valid range for [`ApproxConfig::confidence`], used in error messages.
pub const APPROX_CONFIDENCE_RANGE: &str = "(0.5, 1.0]";

impl ApproxConfig {
    /// Validates the knobs, returning a message naming the offending
    /// field and its valid range on failure.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if !(self.sample_rate > 0.0 && self.sample_rate <= 1.0) {
            return Err(format!(
                "approx sample_rate must be in {APPROX_RATE_RANGE}, got {}",
                self.sample_rate
            ));
        }
        if !(self.confidence > 0.5 && self.confidence <= 1.0) {
            return Err(format!(
                "approx confidence must be in {APPROX_CONFIDENCE_RANGE}, got {}",
                self.confidence
            ));
        }
        Ok(())
    }
}

/// Configuration of the DT (decision-tree) partitioner (§6.1).
#[derive(Debug, Clone)]
pub struct DtConfig {
    /// Minimum multiplicative error threshold `τ_min` (§6.1.1).
    pub tau_min: f64,
    /// Maximum multiplicative error threshold `τ_max` (§6.1.1).
    pub tau_max: f64,
    /// Inflection point `p` of the threshold curve (paper: 0.5).
    pub inflection: f64,
    /// Do not split partitions with fewer sampled tuples than this.
    pub min_partition_size: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Number of candidate split points per continuous attribute
    /// (quantiles of the partition's sample).
    pub n_split_candidates: usize,
    /// Maximum number of prefix splits tried on a discrete attribute.
    pub max_discrete_splits: usize,
    /// §6.1.2 sampling; `None` disables it.
    pub sampling: Option<SamplingConfig>,
    /// Guard on the number of pieces one outlier partition may be carved
    /// into when combining with hold-out partitions (§6.1.4).
    pub max_carve_pieces: usize,
    /// Budget on leaves per tree side. Noisy (Hard) data keeps per-tuple
    /// influence variance above the stopping threshold, which would grow
    /// trees to the depth limit (§8.3.2 observes exactly this); once the
    /// budget is reached, remaining nodes become leaves as-is.
    pub max_leaves: usize,
    /// Overall cap on combined partitions handed to the Merger (its
    /// expansion scan is quadratic in the input size).
    pub max_partitions: usize,
    /// Worker threads for batched influence re-scoring
    /// ([`crate::Scorer::influence_batch`]) in the engine's warm path.
    /// `0` = auto-detect from the host's available parallelism.
    pub score_threads: usize,
    /// Merger settings for the DT pipeline.
    pub merger: MergerConfig,
}

impl Default for DtConfig {
    fn default() -> Self {
        DtConfig {
            tau_min: 0.025,
            tau_max: 0.2,
            inflection: 0.5,
            min_partition_size: 16,
            max_depth: 12,
            n_split_candidates: 16,
            max_discrete_splits: 16,
            sampling: Some(SamplingConfig::default()),
            max_carve_pieces: 64,
            max_leaves: 512,
            max_partitions: 1024,
            score_threads: 0,
            merger: MergerConfig { use_cached_tuples: true, ..MergerConfig::default() },
        }
    }
}

/// Configuration of the MC (bottom-up) partitioner (§6.2).
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Number of equi-width bins per continuous attribute (paper: 15).
    pub n_bins: usize,
    /// Cap on the distinct values considered per discrete attribute
    /// (values are drawn from the outlier input groups; values absent from
    /// every outlier group have non-positive influence and are pruned
    /// immediately by any positive `best`).
    pub max_discrete_values: usize,
    /// Cap on candidates carried between levels (kept by outlier-only
    /// influence); prevents worst-case blowup on hard data.
    pub max_candidates_per_level: usize,
    /// Maximum predicate dimensionality (defaults to all attributes
    /// when 0).
    pub max_dims: usize,
    /// Disable the §6.2 pruning rules (ablation only).
    pub disable_pruning: bool,
    /// Anytime budget: the level loop stops once this much wall-clock
    /// time has elapsed and returns the best predicates found so far
    /// (`McDiag::budget_exhausted` reports the early exit). `None` (the
    /// default) runs to convergence.
    pub time_budget: Option<Duration>,
    /// Worker threads for batched candidate scoring
    /// ([`crate::Scorer::influence_batch`]) at each level. `0` =
    /// auto-detect from the host's available parallelism.
    pub score_threads: usize,
    /// Merger settings for the MC pipeline (exact scoring; the
    /// cached-tuple approximation is a DT-specific optimization).
    pub merger: MergerConfig,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            n_bins: 15,
            max_discrete_values: 256,
            max_candidates_per_level: 4096,
            max_dims: 0,
            disable_pruning: false,
            time_budget: None,
            score_threads: 0,
            merger: MergerConfig {
                use_cached_tuples: false,
                require_same_attrs: true,
                ..MergerConfig::default()
            },
        }
    }
}

/// Configuration of the Merger (§4.3, §6.3).
#[derive(Debug, Clone)]
pub struct MergerConfig {
    /// §6.3 optimization 1: only expand seeds whose influence is in the
    /// top quartile of the input ranking.
    pub top_quartile_only: bool,
    /// §6.3 optimization 2: estimate merged influence from cached
    /// partition statistics instead of calling the Scorer (requires an
    /// incrementally removable aggregate and partition stats).
    pub use_cached_tuples: bool,
    /// Adjacency tolerance as a fraction of each attribute's domain span.
    pub adjacency_eps: f64,
    /// Only merge predicates constraining the same attribute set. MC sets
    /// this: in the subspace-clustering frame (§6.2), adjacent units live
    /// in the same subspace, and cross-subspace hulls would degenerate to
    /// unconstrained predicates; dimensionality grows only by
    /// intersection.
    pub require_same_attrs: bool,
    /// Maximum number of merge steps per seed.
    pub max_expansions: usize,
    /// Number of top results re-scored exactly and returned.
    pub max_results: usize,
}

impl Default for MergerConfig {
    fn default() -> Self {
        MergerConfig {
            top_quartile_only: true,
            use_cached_tuples: false,
            adjacency_eps: 1e-6,
            require_same_attrs: false,
            max_expansions: 64,
            max_results: 16,
        }
    }
}

/// Which partitioning algorithm to run.
#[derive(Debug, Clone, Default)]
pub enum Algorithm {
    /// Choose automatically from the aggregate's declared properties
    /// (§5): independent + anti-monotonic → MC; independent → DT;
    /// otherwise NAIVE.
    #[default]
    Auto,
    /// Exhaustive anytime search (§4.2).
    Naive(NaiveConfig),
    /// Top-down regression-tree partitioning (§6.1).
    DecisionTree(DtConfig),
    /// Bottom-up subspace search (§6.2).
    BottomUp(McConfig),
}

/// Top-level engine configuration.
#[derive(Debug, Clone, Default)]
pub struct ScorpionConfig {
    /// Influence knobs (λ and c).
    pub params: InfluenceParams,
    /// Algorithm selection.
    pub algorithm: Algorithm,
    /// Attributes over which explanations are built (`A_rest`). `None`
    /// selects every attribute not used by the group-by or the aggregate.
    pub explain_attrs: Option<Vec<usize>>,
    /// Force black-box aggregate evaluation even when an incremental
    /// decomposition exists (ablation).
    pub force_blackbox: bool,
    /// §6.4 dimensionality reduction: keep only the `k` attributes most
    /// associated with the influence signal before searching. `None`
    /// keeps all explanation attributes.
    pub max_explain_attrs: Option<usize>,
    /// Two-stage approximate influence search. `None` (the default)
    /// keeps every scoring path exact.
    pub approx: Option<ApproxConfig>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers() {
        let n = NaiveConfig::default();
        assert_eq!(n.n_bins, 15);
        let m = McConfig::default();
        assert_eq!(m.n_bins, 15);
        let d = DtConfig::default();
        assert!(d.tau_min < d.tau_max);
        assert_eq!(d.inflection, 0.5);
        let p = InfluenceParams::default();
        assert_eq!(p.lambda, 0.5);
    }

    #[test]
    fn with_c_preserves_lambda() {
        let p = InfluenceParams::new(0.7, 0.3).with_c(0.9);
        assert_eq!(p.lambda, 0.7);
        assert_eq!(p.c, 0.9);
    }

    #[test]
    fn approx_validation_names_range() {
        assert!(ApproxConfig::default().validate().is_ok());
        let bad_rate = ApproxConfig { sample_rate: 0.0, ..ApproxConfig::default() };
        let msg = bad_rate.validate().unwrap_err();
        assert!(msg.contains("sample_rate") && msg.contains(APPROX_RATE_RANGE), "{msg}");
        let bad_conf = ApproxConfig { confidence: 0.5, ..ApproxConfig::default() };
        let msg = bad_conf.validate().unwrap_err();
        assert!(msg.contains("confidence") && msg.contains(APPROX_CONFIDENCE_RANGE), "{msg}");
        let nan = ApproxConfig { sample_rate: f64::NAN, ..ApproxConfig::default() };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn merger_defaults_differ_by_pipeline() {
        assert!(DtConfig::default().merger.use_cached_tuples);
        assert!(!McConfig::default().merger.use_cached_tuples);
    }
}
